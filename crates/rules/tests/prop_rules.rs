//! Property-based tests of the rule-language pipeline: the ARON
//! compilation and its building blocks are semantics-preserving on
//! generated programs from a parametric family.

use ftr_rules::compile::{expand_quantifiers, fold_consts};
use ftr_rules::eval::{eval_expr, EvalCtx};
use ftr_rules::{compile, fire_reference, parse, CompileOptions, InputMap, RegFile, Value};
use proptest::prelude::*;

/// Generates a small rule program over a fixed environment: integer
/// counter, symbol state, bool array, int array — with randomized rule
/// premises drawn from a grammar of comparisons, membership tests and
/// quantifiers.
fn gen_program(premises: &[String], conclusions: &[String]) -> String {
    let mut rules = String::new();
    for (p, c) in premises.iter().zip(conclusions) {
        rules.push_str(&format!("  IF {p} THEN {c};\n"));
    }
    format!(
        "CONSTANT st = {{alpha, beta, gamma}}\n\
         CONSTANT dirs = 0 TO 3\n\
         VARIABLE state IN st INIT alpha\n\
         VARIABLE count IN 0 TO 15 INIT 0\n\
         VARIABLE flags[dirs] IN bool\n\
         INPUT level[dirs] IN 0 TO 7\n\
         INPUT go IN bool\n\
         ON f(d IN dirs) RETURNS 0 TO 15\n{rules}END f;"
    )
}

fn arb_premise() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("state = alpha".to_string()),
        Just("state = beta".to_string()),
        Just("state IN {beta, gamma}".to_string()),
        Just("count = 0".to_string()),
        Just("count > 3".to_string()),
        Just("count <= 9".to_string()),
        Just("go".to_string()),
        Just("flags(d)".to_string()),
        Just("level(d) > 2".to_string()),
        Just("level(d) = 7".to_string()),
        Just("level(0) < level(1)".to_string()),
        Just("EXISTS i IN dirs: flags(i)".to_string()),
        Just("FORALL i IN dirs: level(i) < 6".to_string()),
        Just("d IN {0, 2}".to_string()),
        Just("TRUE".to_string()),
    ];
    // combine 1-3 atoms with AND / OR / NOT
    proptest::collection::vec((atom, any::<u8>()), 1..4).prop_map(|parts| {
        let mut out = String::new();
        for (i, (a, tag)) in parts.iter().enumerate() {
            if i > 0 {
                out.push_str(if tag % 2 == 0 { " AND " } else { " OR " });
            }
            if tag % 3 == 0 {
                out.push_str(&format!("NOT ({a})"));
            } else {
                out.push_str(&format!("({a})"));
            }
        }
        out
    })
}

fn arb_conclusion() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("RETURN(1)".to_string()),
        Just("RETURN(d)".to_string()),
        Just("count <- min(count + 1, 15), RETURN(2)".to_string()),
        Just("state <- beta, RETURN(3)".to_string()),
        Just("flags(d) <- TRUE, RETURN(4)".to_string()),
        Just("state <- latmax(state, beta), RETURN(5)".to_string()),
        Just("RETURN(min(count, 9))".to_string()),
    ]
}

/// A randomized environment for the fixed declarations above.
fn build_env(
    prog: &ftr_rules::Program,
    state_idx: u32,
    count: i64,
    flags: [bool; 4],
    levels: [i64; 4],
    go: bool,
) -> (RegFile, InputMap) {
    let mut regs = RegFile::new(prog);
    regs.write(prog, 0, &[], Value::Sym { ty: 0, idx: state_idx }).unwrap();
    regs.write(prog, 1, &[], Value::Int(count)).unwrap();
    for (i, &f) in flags.iter().enumerate() {
        regs.write(prog, 2, &[Value::Int(i as i64)], Value::Bool(f)).unwrap();
    }
    let mut im = InputMap::new();
    for (i, &l) in levels.iter().enumerate() {
        im.set(prog, "level", &[Value::Int(i as i64)], Value::Int(l)).unwrap();
    }
    im.set(prog, "go", &[], Value::Bool(go)).unwrap();
    (regs, im)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central ARON property: compiled table selection ≡ reference
    /// first-match semantics, for random programs and random environments.
    #[test]
    fn compiled_equals_reference(
        premises in proptest::collection::vec(arb_premise(), 1..6),
        conclusions in proptest::collection::vec(arb_conclusion(), 6),
        state_idx in 0u32..3,
        count in 0i64..16,
        flags in any::<[bool; 4]>(),
        levels in proptest::array::uniform4(0i64..8),
        go in any::<bool>(),
        d in 0i64..4,
    ) {
        let src = gen_program(&premises, &conclusions[..premises.len()]);
        let prog = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let compiled = compile(&prog, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{e}\n{src}"));

        let (mut regs_a, im) = build_env(&prog, state_idx, count, flags, levels, go);
        let mut regs_b = regs_a.clone();
        let params = [Value::Int(d)];

        let r = fire_reference(&prog, 0, &params, &mut regs_a, &im);
        let k = compiled.bases[0].fire(&prog, &params, &mut regs_b, &im);
        match (r, k) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b, "outcome diverged\n{}", src);
                prop_assert_eq!(regs_a, regs_b, "state diverged\n{}", src);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "one side errored: {a:?} vs {b:?}\n{src}"),
        }
    }

    /// Quantifier expansion and constant folding preserve semantics of the
    /// premise under every environment.
    #[test]
    fn expansion_preserves_semantics(
        premise in arb_premise(),
        state_idx in 0u32..3,
        count in 0i64..16,
        flags in any::<[bool; 4]>(),
        levels in proptest::array::uniform4(0i64..8),
        go in any::<bool>(),
        d in 0i64..4,
    ) {
        let src = gen_program(&[premise], &["RETURN(1)".to_string()]);
        let prog = parse(&src).unwrap();
        let e0 = prog.rulebases[0].rules[0].premise.clone();
        let e1 = expand_quantifiers(&prog, &e0).unwrap();
        let e2 = fold_consts(&prog, &e1).unwrap();

        let (regs, im) = build_env(&prog, state_idx, count, flags, levels, go);
        let params = [Value::Int(d)];
        let mut ctx = EvalCtx::new(&prog, &regs, &im, &params);
        let v0 = eval_expr(&mut ctx, &e0).unwrap();
        let mut ctx = EvalCtx::new(&prog, &regs, &im, &params);
        let v1 = eval_expr(&mut ctx, &e1).unwrap();
        let mut ctx = EvalCtx::new(&prog, &regs, &im, &params);
        let v2 = eval_expr(&mut ctx, &e2).unwrap();
        prop_assert_eq!(v0, v1, "expansion changed semantics\n{}", src);
        prop_assert_eq!(v1, v2, "folding changed semantics\n{}", src);
    }

    /// Pretty-printing any generated program round-trips to identical
    /// compiled tables.
    #[test]
    fn pretty_roundtrip_generated(
        premises in proptest::collection::vec(arb_premise(), 1..5),
        conclusions in proptest::collection::vec(arb_conclusion(), 5),
    ) {
        let src = gen_program(&premises, &conclusions[..premises.len()]);
        let p1 = parse(&src).unwrap();
        let printed = ftr_rules::pretty::print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        let o = CompileOptions::default();
        let c1 = compile(&p1, &o).unwrap();
        let c2 = compile(&p2, &o).unwrap();
        prop_assert_eq!(&c1.bases[0].table, &c2.bases[0].table, "\n{}", printed);
    }

    /// Table geometry invariant: entries equals the product of the feature
    /// radices, and every entry indexes a real rule (or 0).
    #[test]
    fn table_geometry(
        premises in proptest::collection::vec(arb_premise(), 1..6),
        conclusions in proptest::collection::vec(arb_conclusion(), 6),
    ) {
        let src = gen_program(&premises, &conclusions[..premises.len()]);
        let prog = parse(&src).unwrap();
        let compiled = compile(&prog, &CompileOptions::default()).unwrap();
        let b = &compiled.bases[0];
        let product: u64 = b.radices.iter().product();
        prop_assert_eq!(b.entries, product.max(1));
        prop_assert_eq!(b.table.len() as u64, b.entries);
        for &e in &b.table {
            if let Some(nz) = e {
                prop_assert!((nz.get() as usize) <= premises.len());
            }
        }
    }
}
