//! The bytecode dispatch loop.
//!
//! Execution of one interpretation follows the same three stages as the
//! table interpreter: the premise block accumulates the mixed-radix table
//! index, the kernel is one jump-table lookup, and the selected conclusion
//! block queues effects into the [`Scratch`] frame, which commit with the
//! parallel-write semantics of [`crate::eval::apply_rule`]. The probed
//! variant records the exact `(base, stage)` sequence the table
//! interpreter's `fire_probed` would — including the error cases (premise
//! error: nothing recorded; kernel error: Premise only; conclusion error:
//! all three stages recorded before the error returns).

use super::{BaseCode, Op, Slot, SlotRange};
use crate::ast::Program;
use crate::env::{InputProvider, RegFile};
use crate::error::{Result, RuleError};
use crate::eval::{apply_bin, apply_builtin, values_equal, EventInstance, FireOutcome};
use crate::probe::{InterpProbe, Stage};
use crate::value::{Domain, Value};
use std::time::Instant;

/// Reusable per-machine execution frame: value slots, set iterators and
/// the queued effects of the conclusion in flight. Owning one per
/// [`crate::event::Machine`] means steady-state firing allocates nothing.
#[derive(Debug, Default)]
pub struct Scratch {
    slots: Vec<Value>,
    iters: Vec<IterState>,
    writes: Vec<QueuedWrite>,
    emits: Vec<EventInstance>,
    returned: Option<Value>,
}

#[derive(Debug)]
struct QueuedWrite {
    var: usize,
    indices: Vec<Value>,
    value: Value,
}

/// An in-progress set iteration (canonical ordinal order, like
/// [`crate::eval::set_elements`]).
#[derive(Clone, Copy, Debug)]
struct IterState {
    dom: Domain,
    mask: u64,
    size: u64,
    pos: u64,
}

impl IterState {
    fn idle() -> Self {
        IterState { dom: Domain::Bool, mask: 0, size: 0, pos: 0 }
    }
}

impl Scratch {
    /// Creates an empty frame; it grows to fit whichever base fires.
    pub fn new() -> Self {
        Scratch::default()
    }

    fn reset(&mut self, code: &BaseCode) {
        // The lowering only ever emits def-before-use slot accesses
        // (every op writes its `dst` before any later op reads it, on
        // every control-flow path — including entry into a conclusion
        // block via the kernel jump), so values left over from the
        // previous fire are unobservable and the buffers are grown, not
        // cleared: reset stays O(1) on the steady-state fire path.
        if self.slots.len() < code.slot_count as usize {
            self.slots.resize(code.slot_count as usize, Value::Bool(false));
        }
        if self.iters.len() < code.iter_count as usize {
            self.iters.resize(code.iter_count as usize, IterState::idle());
        }
        self.writes.clear();
        self.emits.clear();
        self.returned = None;
    }

    /// Applies the queued writes with the reference parallel-write
    /// semantics — same pre-state reads, apply order, duplicate tolerance
    /// and conflict error as [`crate::eval::apply_rule`].
    fn commit(&mut self, prog: &Program, rule: usize, regs: &mut RegFile) -> Result<FireOutcome> {
        let mut done: Vec<(usize, Vec<u64>, Value)> = Vec::new();
        for w in &self.writes {
            let ords = RegFile::ordinals(prog, w.var, &w.indices)?;
            if let Some((_, _, prev)) = done.iter().find(|(v, o, _)| *v == w.var && *o == ords) {
                if !values_equal(prog, prev, &w.value)? {
                    return Err(RuleError::eval(format!(
                        "conflicting parallel writes to `{}`",
                        prog.vars[w.var].name
                    )));
                }
                continue;
            }
            regs.write(prog, w.var, &w.indices, w.value)?;
            done.push((w.var, ords, w.value));
        }
        Ok(FireOutcome {
            rule: Some(rule),
            returned: self.returned.take(),
            emitted: std::mem::take(&mut self.emits),
        })
    }
}

/// Why a code segment stopped.
enum Halt {
    /// Premise block finished; payload is the accumulated table index.
    AtDispatch(u64),
    /// Conclusion block finished as rule `Some(r)` or the gap (`None`).
    Done(Option<u16>),
}

struct Exec<'a> {
    prog: &'a Program,
    code: &'a BaseCode,
    params: &'a [Value],
    regs: &'a RegFile,
    inputs: &'a dyn InputProvider,
    sc: &'a mut Scratch,
}

impl Exec<'_> {
    fn slot(&self, s: Slot) -> Value {
        self.sc.slots[s as usize]
    }

    fn vals(&self, r: SlotRange) -> &[Value] {
        &self.sc.slots[r.as_range()]
    }

    fn run(&mut self, mut pc: u32) -> Result<Halt> {
        let mut acc = 0u64;
        loop {
            let op = self
                .code
                .ops
                .get(pc as usize)
                .ok_or_else(|| RuleError::eval(format!("bytecode pc {pc} out of range")))?;
            pc += 1;
            match op {
                Op::Const { dst, v } => self.sc.slots[*dst as usize] = *v,
                Op::Copy { src, dst } => self.sc.slots[*dst as usize] = self.slot(*src),
                Op::ReadVar { var, idx, dst } => {
                    let v = self.regs.read(self.prog, *var as usize, self.vals(*idx))?;
                    self.sc.slots[*dst as usize] = v;
                }
                Op::ReadInput { input, idx, dst } => {
                    let v = self.inputs.read_input(self.prog, *input as usize, self.vals(*idx))?;
                    self.sc.slots[*dst as usize] = v;
                }
                Op::ReadParam { param, dst } => {
                    let v = self
                        .params
                        .get(*param as usize)
                        .copied()
                        .ok_or_else(|| RuleError::eval(format!("missing parameter {param}")))?;
                    self.sc.slots[*dst as usize] = v;
                }
                Op::Not { src, dst } => {
                    let b = self.slot(*src).as_bool()?;
                    self.sc.slots[*dst as usize] = Value::Bool(!b);
                }
                Op::Neg { src, dst } => {
                    let n = self.slot(*src).as_int()?;
                    self.sc.slots[*dst as usize] = Value::Int(-n);
                }
                Op::Bin { op, lhs, rhs, dst } => {
                    let v = apply_bin(self.prog, *op, &self.slot(*lhs), &self.slot(*rhs))?;
                    self.sc.slots[*dst as usize] = v;
                }
                Op::AsBool { src, dst } => {
                    let b = self.slot(*src).as_bool()?;
                    self.sc.slots[*dst as usize] = Value::Bool(b);
                }
                Op::CallB { builtin, args, dst } => {
                    let v = apply_builtin(self.prog, self.inputs, *builtin, self.vals(*args))?;
                    self.sc.slots[*dst as usize] = v;
                }
                Op::Jump { target } => pc = *target,
                Op::CondJump { src, when, target } => {
                    if self.slot(*src).as_bool()? == *when {
                        pc = *target;
                    }
                }
                Op::IterInit { iter, src } => {
                    let (dom, mask) = self.slot(*src).as_set()?;
                    let ss = self.prog.sym_sizes();
                    // A set value can hold at most 64 elements by
                    // construction; the cap keeps the bit test in range.
                    let size = dom.size(&ss).min(64);
                    self.sc.iters[*iter as usize] = IterState { dom, mask, size, pos: 0 };
                }
                Op::IterNext { iter, dst, exit } => {
                    let st = &mut self.sc.iters[*iter as usize];
                    let mut next = None;
                    while st.pos < st.size {
                        let k = st.pos;
                        st.pos += 1;
                        if st.mask & (1 << k) != 0 {
                            next = Some(st.dom.value_at(k));
                            break;
                        }
                    }
                    match next {
                        Some(v) => self.sc.slots[*dst as usize] = v,
                        None => pc = *exit,
                    }
                }
                Op::DigitDirect { src, dom, stride } => {
                    let v = self.slot(*src);
                    let ss = self.prog.sym_sizes();
                    let d = dom.ordinal(&v, &ss).ok_or_else(|| {
                        RuleError::eval(format!("direct feature value {v} outside {dom:?}"))
                    })?;
                    acc += d * stride;
                }
                Op::DigitPred { src, stride } => {
                    if self.slot(*src).as_bool()? {
                        acc += stride;
                    }
                }
                Op::Dispatch => return Ok(Halt::AtDispatch(acc)),
                Op::QueueWrite { var, idx, val } => {
                    let w = QueuedWrite {
                        var: *var as usize,
                        indices: self.sc.slots[idx.as_range()].to_vec(),
                        value: self.slot(*val),
                    };
                    self.sc.writes.push(w);
                }
                Op::QueueReturn { src } => {
                    let v = self.slot(*src);
                    match &self.sc.returned {
                        Some(prev) if !values_equal(self.prog, prev, &v)? => {
                            return Err(RuleError::eval(format!(
                                "conflicting RETURN values {prev} vs {v}"
                            )));
                        }
                        _ => self.sc.returned = Some(v),
                    }
                }
                Op::QueueEmit { event, args } => {
                    let ev = EventInstance {
                        event: self.code.events[*event as usize].clone(),
                        args: self.sc.slots[args.as_range()].to_vec(),
                    };
                    self.sc.emits.push(ev);
                }
                Op::Commit { rule } => return Ok(Halt::Done(Some(*rule))),
                Op::CommitGap => return Ok(Halt::Done(None)),
            }
        }
    }
}

impl BaseCode {
    /// Kernel stage: one table lookup, checked like
    /// [`crate::interp::CompiledRuleBase::entry`].
    fn kernel(&self, idx: u64) -> Result<u32> {
        self.jump_table.get(idx as usize).copied().ok_or_else(|| {
            RuleError::eval(format!(
                "corrupt rule table: index {idx} outside {} entries",
                self.jump_table.len()
            ))
        })
    }

    fn conclude(
        &self,
        prog: &Program,
        params: &[Value],
        regs: &mut RegFile,
        inputs: &dyn InputProvider,
        scratch: &mut Scratch,
        target: u32,
    ) -> Result<FireOutcome> {
        let halt = Exec { prog, code: self, params, regs, inputs, sc: scratch }.run(target)?;
        match halt {
            Halt::Done(None) => Ok(FireOutcome::default()),
            Halt::Done(Some(rule)) => scratch.commit(prog, rule as usize, regs),
            Halt::AtDispatch(_) => {
                Err(RuleError::eval("bytecode re-entered dispatch in a conclusion".to_string()))
            }
        }
    }

    /// One full interpretation: premise block, kernel jump, conclusion
    /// block, commit. Behaviour (outcome, register effects, error-ness)
    /// matches [`crate::interp::CompiledRuleBase::fire`] exactly.
    pub fn fire(
        &self,
        prog: &Program,
        params: &[Value],
        regs: &mut RegFile,
        inputs: &dyn InputProvider,
        scratch: &mut Scratch,
    ) -> Result<FireOutcome> {
        scratch.reset(self);
        let halt = Exec { prog, code: self, params, regs, inputs, sc: scratch }.run(0)?;
        let Halt::AtDispatch(idx) = halt else {
            return Err(RuleError::eval("bytecode premise block did not dispatch".to_string()));
        };
        let target = self.kernel(idx)?;
        self.conclude(prog, params, regs, inputs, scratch, target)
    }

    /// Like [`BaseCode::fire`], but reports per-stage wall-clock cost to
    /// `probe` with the same record points as the table interpreter's
    /// `fire_probed`.
    pub fn fire_probed(
        &self,
        prog: &Program,
        params: &[Value],
        regs: &mut RegFile,
        inputs: &dyn InputProvider,
        scratch: &mut Scratch,
        probe: &dyn InterpProbe,
    ) -> Result<FireOutcome> {
        scratch.reset(self);
        let t0 = Instant::now();
        let halt = Exec { prog, code: self, params, regs, inputs, sc: scratch }.run(0)?;
        let Halt::AtDispatch(idx) = halt else {
            return Err(RuleError::eval("bytecode premise block did not dispatch".to_string()));
        };
        let t1 = Instant::now();
        probe.record_stage(self.rb, Stage::Premise, (t1 - t0).as_nanos() as u64);
        let target = self.kernel(idx)?;
        let t2 = Instant::now();
        probe.record_stage(self.rb, Stage::Kernel, (t2 - t1).as_nanos() as u64);
        let out = self.conclude(prog, params, regs, inputs, scratch, target);
        probe.record_stage(self.rb, Stage::Conclusion, t2.elapsed().as_nanos() as u64);
        out
    }
}
