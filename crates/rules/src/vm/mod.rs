//! ftr-vm — a direct-threaded bytecode backend for compiled rule programs.
//!
//! The ARON table interpreter ([`crate::interp`]) re-walks the feature ASTs
//! on every interpretation. This module lowers a [`CompiledProgram`] once
//! into flat, register-indexed bytecode and executes it with a dispatch
//! loop, eliminating the per-fire AST traversal while preserving the
//! interpreter's observable behaviour **exactly**:
//!
//! * the three-stage cost contract — [`crate::probe::InterpProbe`] sees the
//!   same `(base, stage)` record sequence (Premise → Kernel → Conclusion)
//!   per interpretation, and [`crate::event::MachineStats`] /
//!   `StepWeights` scaling are untouched because the [`crate::event::Machine`]
//!   dispatch layer is shared;
//! * rule selection — the lowered **cascade jump table** is derived from
//!   the filled ARON table with the same checked entry decode, but stores
//!   *code offsets* instead of rule indices (the direct-threaded part):
//!   the kernel stage is a single indexed jump straight into the selected
//!   rule's conclusion block, with gaps jumping to a shared gap exit;
//! * conclusion semantics — writes/returns/emits queue into a scratch
//!   frame and commit with the same parallel-write (pre-state read,
//!   ordered apply, duplicate-tolerant conflict detection) rules as
//!   [`crate::eval::apply_rule`], and builtins share
//!   `crate::eval::apply_builtin` so the two backends cannot drift.
//!
//! Layout of one lowered base ([`BaseCode`]): the op stream starts with the
//! premise block (feature-digit computation accumulating the mixed-radix
//! table index) terminated by [`Op::Dispatch`]; after it come the gap exit
//! and one conclusion block per rule, each terminated by
//! [`Op::Commit`]/[`Op::CommitGap`]. `jump_table[i]` is the op offset the
//! kernel jumps to for table entry `i`.
//!
//! Bytecode is *validated at load* ([`VmProgram::validate`]): jump targets,
//! slot/iter indices, variable/input/event/rule references and builtin
//! arities are all range-checked against the program, so malformed or
//! corrupted code is rejected before it can execute.

mod exec;
mod lower;

pub use exec::Scratch;

use crate::ast::{BinOp, Builtin, Program};
use crate::error::{Result, RuleError};
use crate::interp::CompiledProgram;
use crate::value::{Domain, Value};

/// Which rule-execution backend a machine/router uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The ARON table interpreter (the reference hardware model).
    #[default]
    Table,
    /// The lowered direct-threaded bytecode VM.
    Bytecode,
}

impl Backend {
    /// Reads the `FTR_BACKEND` environment variable: `bytecode` selects
    /// the VM, `table` (or anything else, including unset) the table
    /// interpreter.
    pub fn from_env() -> Self {
        match std::env::var("FTR_BACKEND").as_deref() {
            Ok("bytecode") => Backend::Bytecode,
            _ => Backend::Table,
        }
    }
}

/// Index of a value slot in the per-fire scratch frame.
pub type Slot = u16;

/// A contiguous run of value slots (indexed-read indices, emit/call args).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRange {
    /// First slot.
    pub start: u16,
    /// Number of slots.
    pub count: u16,
}

impl SlotRange {
    /// Empty range (scalar reads).
    pub const EMPTY: SlotRange = SlotRange { start: 0, count: 0 };

    pub(crate) fn as_range(self) -> std::ops::Range<usize> {
        self.start as usize..self.start as usize + self.count as usize
    }
}

/// One bytecode instruction. All value operands are scratch-frame slot
/// indices; control flow uses absolute op offsets within the base.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// `slots[dst] <- v`
    Const {
        /// Destination slot.
        dst: Slot,
        /// Literal (also used for resolved `CONSTANT` references).
        v: Value,
    },
    /// `slots[dst] <- slots[src]`
    Copy {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- regs.read(var, slots[idx])`
    ReadVar {
        /// Register index ([`Program::vars`]).
        var: u16,
        /// Index-value slots (empty for scalar registers).
        idx: SlotRange,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- inputs.read_input(input, slots[idx])`
    ReadInput {
        /// Input index ([`Program::inputs`]).
        input: u16,
        /// Index-value slots (empty for scalar inputs).
        idx: SlotRange,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- params[param]`
    ReadParam {
        /// Event-parameter position.
        param: u16,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- Bool(!slots[src])`
    Not {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- Int(-slots[src])`
    Neg {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- slots[lhs] op slots[rhs]` — never `And`/`Or`, which
    /// lower to [`Op::CondJump`] chains to keep short-circuit semantics.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand slot.
        lhs: Slot,
        /// Right operand slot.
        rhs: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- Bool(slots[src].as_bool()?)` — boolean check at the
    /// tail of a short-circuit chain.
    AsBool {
        /// Source slot.
        src: Slot,
        /// Destination slot.
        dst: Slot,
    },
    /// `slots[dst] <- builtin(slots[args])`; `argmin`/`argmax` carry their
    /// input id inside the [`Builtin`] and read inputs while scanning.
    CallB {
        /// Which builtin.
        builtin: Builtin,
        /// Evaluated argument slots.
        args: SlotRange,
        /// Destination slot.
        dst: Slot,
    },
    /// `pc <- target`
    Jump {
        /// Absolute op offset.
        target: u32,
    },
    /// `if slots[src].as_bool()? == when { pc <- target }`
    CondJump {
        /// Condition slot.
        src: Slot,
        /// Polarity.
        when: bool,
        /// Absolute op offset.
        target: u32,
    },
    /// Starts iterating the set in `slots[src]` (canonical ordinal order).
    IterInit {
        /// Iterator index.
        iter: u16,
        /// Slot holding the set value.
        src: Slot,
    },
    /// `slots[dst] <- next element`, or `pc <- exit` when exhausted.
    IterNext {
        /// Iterator index.
        iter: u16,
        /// Destination slot for the element (the loop binder).
        dst: Slot,
        /// Absolute op offset jumped to after the last element.
        exit: u32,
    },
    /// Premise stage: `idx_acc += ordinal(slots[src], dom) * stride`;
    /// errors when the value falls outside the feature's domain.
    DigitDirect {
        /// Slot holding the feature subject value.
        src: Slot,
        /// Feature domain.
        dom: Domain,
        /// Mixed-radix stride of this digit.
        stride: u64,
    },
    /// Premise stage: `idx_acc += stride` when `slots[src]` is true.
    DigitPred {
        /// Slot holding the predicate value.
        src: Slot,
        /// Mixed-radix stride of this digit.
        stride: u64,
    },
    /// Kernel stage: `pc <- jump_table[idx_acc]` — the direct-threaded
    /// cascade jump into the selected rule's conclusion block.
    Dispatch,
    /// Queues a register write (applied at [`Op::Commit`] with
    /// parallel-write semantics).
    QueueWrite {
        /// Target register.
        var: u16,
        /// Evaluated index slots.
        idx: SlotRange,
        /// Evaluated value slot.
        val: Slot,
    },
    /// Queues a `RETURN`; conflicting values error like the evaluator.
    QueueReturn {
        /// Evaluated value slot.
        src: Slot,
    },
    /// Queues an event emission.
    QueueEmit {
        /// Index into [`BaseCode::events`].
        event: u16,
        /// Evaluated argument slots.
        args: SlotRange,
    },
    /// Applies queued writes (pre-state reads, ordered apply, conflict
    /// detection) and finishes the fire as rule `rule`.
    Commit {
        /// Rule index the block belongs to.
        rule: u16,
    },
    /// Finishes the fire as the gap (no applicable rule) outcome.
    CommitGap,
}

/// One rule base lowered to bytecode.
#[derive(Clone, Debug, PartialEq)]
pub struct BaseCode {
    /// Index into [`Program::rulebases`].
    pub rb: usize,
    /// Flat op stream: premise block, gap exit, one conclusion block per
    /// rule.
    pub ops: Vec<Op>,
    /// ARON table entry → op offset of the selected conclusion block.
    pub jump_table: Vec<u32>,
    /// Scratch value slots the code addresses.
    pub slot_count: u16,
    /// Scratch set iterators the code addresses.
    pub iter_count: u16,
    /// Event names referenced by [`Op::QueueEmit`].
    pub events: Vec<String>,
}

/// A complete lowered program: one [`BaseCode`] per compiled rule base.
#[derive(Clone, Debug, PartialEq)]
pub struct VmProgram {
    /// Per-base code, indexed like [`CompiledProgram::bases`].
    pub bases: Vec<BaseCode>,
}

impl VmProgram {
    /// Lowers every base of a compiled program. The resulting code is
    /// already validated.
    pub fn lower(compiled: &CompiledProgram) -> Result<Self> {
        let bases: Result<Vec<BaseCode>> =
            compiled.bases.iter().map(|cb| lower::lower_base(&compiled.prog, cb)).collect();
        let vm = VmProgram { bases: bases? };
        vm.validate(compiled)?;
        Ok(vm)
    }

    /// Range-checks every instruction against the program: jump targets,
    /// slot/iterator indices, register/input/parameter/event/rule
    /// references, builtin arities and the jump-table geometry. Malformed
    /// bytecode must be rejected here, at load, never executed.
    pub fn validate(&self, compiled: &CompiledProgram) -> Result<()> {
        let prog = &compiled.prog;
        if self.bases.len() != compiled.bases.len() {
            return Err(bad(format!(
                "bytecode has {} bases, program has {}",
                self.bases.len(),
                compiled.bases.len()
            )));
        }
        for (bi, (code, cb)) in self.bases.iter().zip(&compiled.bases).enumerate() {
            validate_base(prog, bi, code, cb.table.len())?;
        }
        Ok(())
    }
}

fn bad(msg: String) -> RuleError {
    RuleError::eval(format!("invalid bytecode: {msg}"))
}

fn validate_base(prog: &Program, bi: usize, code: &BaseCode, entries: usize) -> Result<()> {
    if code.rb != bi {
        return Err(bad(format!("base {bi} labelled rb={}", code.rb)));
    }
    let rb = prog.rulebases.get(bi).ok_or_else(|| bad(format!("no rule base {bi}")))?;
    let n_ops = code.ops.len() as u32;
    let slot = |s: Slot| -> Result<()> {
        if s < code.slot_count {
            Ok(())
        } else {
            Err(bad(format!("base {bi}: slot {s} >= slot_count {}", code.slot_count)))
        }
    };
    let range = |r: SlotRange| -> Result<()> {
        let end = r.start as u32 + r.count as u32;
        if end <= code.slot_count as u32 {
            Ok(())
        } else {
            Err(bad(format!("base {bi}: slot range {r:?} escapes slot_count {}", code.slot_count)))
        }
    };
    let target = |t: u32| -> Result<()> {
        if t < n_ops {
            Ok(())
        } else {
            Err(bad(format!("base {bi}: jump target {t} >= {n_ops} ops")))
        }
    };
    if code.jump_table.len() != entries {
        return Err(bad(format!(
            "base {bi}: jump table has {} entries, ARON table has {entries}",
            code.jump_table.len()
        )));
    }
    for &t in &code.jump_table {
        target(t)?;
    }
    for op in &code.ops {
        match op {
            Op::Const { dst, .. } => slot(*dst)?,
            Op::Copy { src, dst } | Op::AsBool { src, dst } => {
                slot(*src)?;
                slot(*dst)?;
            }
            Op::ReadVar { var, idx, dst } => {
                if *var as usize >= prog.vars.len() {
                    return Err(bad(format!("base {bi}: register {var} out of range")));
                }
                range(*idx)?;
                slot(*dst)?;
            }
            Op::ReadInput { input, idx, dst } => {
                if *input as usize >= prog.inputs.len() {
                    return Err(bad(format!("base {bi}: input {input} out of range")));
                }
                range(*idx)?;
                slot(*dst)?;
            }
            Op::ReadParam { param, dst } => {
                if *param as usize >= rb.params.len() {
                    return Err(bad(format!("base {bi}: parameter {param} out of range")));
                }
                slot(*dst)?;
            }
            Op::Not { src, dst } | Op::Neg { src, dst } => {
                slot(*src)?;
                slot(*dst)?;
            }
            Op::Bin { op, lhs, rhs, dst } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    return Err(bad(format!(
                        "base {bi}: {op:?} must lower to short-circuit branches"
                    )));
                }
                slot(*lhs)?;
                slot(*rhs)?;
                slot(*dst)?;
            }
            Op::CallB { builtin, args, dst } => {
                if args.count as usize != builtin_arity(*builtin) {
                    return Err(bad(format!(
                        "base {bi}: {builtin:?} takes {} args, got {}",
                        builtin_arity(*builtin),
                        args.count
                    )));
                }
                if let Builtin::ArgMin(input) | Builtin::ArgMax(input) = builtin {
                    if *input >= prog.inputs.len() {
                        return Err(bad(format!("base {bi}: builtin input {input} out of range")));
                    }
                }
                range(*args)?;
                slot(*dst)?;
            }
            Op::Jump { target: t } => target(*t)?,
            Op::CondJump { src, target: t, .. } => {
                slot(*src)?;
                target(*t)?;
            }
            Op::IterInit { iter, src } => {
                if *iter >= code.iter_count {
                    return Err(bad(format!("base {bi}: iterator {iter} out of range")));
                }
                slot(*src)?;
            }
            Op::IterNext { iter, dst, exit } => {
                if *iter >= code.iter_count {
                    return Err(bad(format!("base {bi}: iterator {iter} out of range")));
                }
                slot(*dst)?;
                target(*exit)?;
            }
            Op::DigitDirect { src, .. } | Op::DigitPred { src, .. } => slot(*src)?,
            Op::Dispatch => {}
            Op::QueueWrite { var, idx, val } => {
                if *var as usize >= prog.vars.len() {
                    return Err(bad(format!("base {bi}: write register {var} out of range")));
                }
                range(*idx)?;
                slot(*val)?;
            }
            Op::QueueReturn { src } => slot(*src)?,
            Op::QueueEmit { event, args } => {
                if *event as usize >= code.events.len() {
                    return Err(bad(format!("base {bi}: event {event} out of range")));
                }
                range(*args)?;
            }
            Op::Commit { rule } => {
                if *rule as usize >= rb.rules.len() {
                    return Err(bad(format!("base {bi}: commit names rule {rule} out of range")));
                }
            }
            Op::CommitGap => {}
        }
    }
    Ok(())
}

/// Number of argument expressions each builtin consumes (argmin/argmax
/// keep only their set argument; the scanned input lives in the enum).
fn builtin_arity(b: Builtin) -> usize {
    match b {
        Builtin::Popcount | Builtin::Card | Builtin::ArgMin(_) | Builtin::ArgMax(_) => 1,
        Builtin::Min
        | Builtin::Max
        | Builtin::AbsDiff
        | Builtin::Xor
        | Builtin::Bit
        | Builtin::LatMax
        | Builtin::Union
        | Builtin::Isect
        | Builtin::Diff
        | Builtin::Include
        | Builtin::Exclude => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::env::{InputMap, RegFile};
    use crate::event::{Machine, StepWeights};
    use crate::parser::parse;
    use crate::probe::{InterpProbe, Stage};
    use std::sync::{Arc, Mutex};

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    const SRC: &str = "
CONSTANT st = {safe, warn, faulty}
CONSTANT dirs = 0 TO 3
VARIABLE state IN st INIT safe
VARIABLE hits IN 0 TO 15 INIT 0
INPUT level[dirs] IN 0 TO 9
ON classify(d IN dirs) RETURNS 0 TO 2
  IF state = faulty THEN RETURN(2);
  IF level(d) > 6 AND state = safe THEN state <- warn, hits <- hits + 1, RETURN(1);
  IF level(d) > 8 THEN state <- faulty, RETURN(2);
  IF TRUE THEN RETURN(0);
END classify;
";

    /// The Figure-4 style program: quantified command, set membership,
    /// multiple bases, emissions — the loops/emit ops all get exercised.
    const FIG4: &str = "
CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}
CONSTANT dirs = 0 TO 5
VARIABLE number_unsafe IN 0 TO 7 INIT 0
VARIABLE number_faulty IN 0 TO 7 INIT 0
VARIABLE neighb_state[dirs] IN fault_states INIT safe
VARIABLE state IN fault_states INIT safe
INPUT new_state[dirs] IN fault_states

ON update_state(dir IN dirs)
  IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0
  THEN neighb_state(dir) <- new_state(dir),
       number_faulty <- number_faulty + 1,
       number_unsafe <- number_unsafe + 1;
  IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe AND number_unsafe = 2
  THEN state <- ounsafe,
       number_unsafe <- number_unsafe + 1,
       FORALL i IN dirs: !send_newmessage(i, ounsafe),
       neighb_state(dir) <- new_state(dir);
END update_state;
";

    #[test]
    fn bytecode_matches_table_exhaustively() {
        let p = parse(SRC).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let vm = VmProgram::lower(&c).unwrap();
        let mut sc = Scratch::new();
        for state_idx in 0..3u32 {
            for level in 0..10i64 {
                for d in 0..4i64 {
                    let mut regs_a = RegFile::new(&p);
                    regs_a.write(&p, 0, &[], Value::Sym { ty: 0, idx: state_idx }).unwrap();
                    let mut regs_b = regs_a.clone();
                    let mut inp = InputMap::new();
                    inp.set_default(&p, "level", int(0)).unwrap();
                    inp.set(&p, "level", &[int(d)], int(level)).unwrap();

                    let t = c.bases[0].fire(&p, &[int(d)], &mut regs_a, &inp).unwrap();
                    let b = vm.bases[0].fire(&p, &[int(d)], &mut regs_b, &inp, &mut sc).unwrap();
                    assert_eq!(t, b, "state={state_idx} level={level} d={d}");
                    assert_eq!(regs_a, regs_b, "post-state diverged");
                }
            }
        }
    }

    #[test]
    fn quantified_commands_and_emissions_match_table() {
        let p = parse(FIG4).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let vm = VmProgram::lower(&c).unwrap();
        let mut sc = Scratch::new();
        let sunsafe = p.symbol_value("sunsafe").unwrap();

        let mut regs_a = RegFile::new(&p);
        regs_a.write(&p, 0, &[], int(2)).unwrap(); // number_unsafe = 2
        let mut regs_b = regs_a.clone();
        let mut inp = InputMap::new();
        inp.set_default(&p, "new_state", p.symbol_value("safe").unwrap()).unwrap();
        inp.set(&p, "new_state", &[int(4)], sunsafe).unwrap();

        let t = c.bases[0].fire(&p, &[int(4)], &mut regs_a, &inp).unwrap();
        let b = vm.bases[0].fire(&p, &[int(4)], &mut regs_b, &inp, &mut sc).unwrap();
        assert_eq!(t, b, "FORALL emissions must match in content and order");
        assert_eq!(t.emitted.len(), 6);
        assert_eq!(regs_a, regs_b);
    }

    #[test]
    fn probe_sequence_and_outcome_parity() {
        #[derive(Default)]
        struct Recorder(Mutex<Vec<(usize, Stage)>>);
        impl InterpProbe for Recorder {
            fn record_stage(&self, base: usize, stage: Stage, _nanos: u64) {
                self.0.lock().unwrap().push((base, stage));
            }
        }

        let p = parse(SRC).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let vm = VmProgram::lower(&c).unwrap();
        let mut sc = Scratch::new();
        let mut inp = InputMap::new();
        inp.set_default(&p, "level", int(7)).unwrap();

        let rec_t = Recorder::default();
        let rec_b = Recorder::default();
        let mut regs_a = RegFile::new(&p);
        let mut regs_b = regs_a.clone();
        let t = c.bases[0].fire_probed(&p, &[int(1)], &mut regs_a, &inp, &rec_t).unwrap();
        let b = vm.bases[0].fire_probed(&p, &[int(1)], &mut regs_b, &inp, &mut sc, &rec_b).unwrap();
        assert_eq!(t, b);
        assert_eq!(regs_a, regs_b);
        let seen_t = rec_t.0.lock().unwrap().clone();
        let seen_b = rec_b.0.lock().unwrap().clone();
        assert_eq!(seen_t, seen_b, "stage record sequences must be identical");
        assert_eq!(seen_b, vec![(0, Stage::Premise), (0, Stage::Kernel), (0, Stage::Conclusion)]);
    }

    #[test]
    fn gap_entries_are_noops_on_both_backends() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 5\n\
             ON f() RETURNS 0 TO 1\n\
               IF n = 0 THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let vm = VmProgram::lower(&c).unwrap();
        let mut sc = Scratch::new();
        let mut regs = RegFile::new(&p);
        let out = vm.bases[0].fire(&p, &[], &mut regs, &InputMap::new(), &mut sc).unwrap();
        assert_eq!(out, crate::eval::FireOutcome::default());
    }

    #[test]
    fn error_parity_on_conflicting_writes() {
        let p =
            parse("VARIABLE a IN 0 TO 9\nON f()\n IF TRUE THEN a <- 1, a <- 2;\nEND f;").unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let vm = VmProgram::lower(&c).unwrap();
        let mut sc = Scratch::new();
        let mut regs_a = RegFile::new(&p);
        let mut regs_b = regs_a.clone();
        let t = c.bases[0].fire(&p, &[], &mut regs_a, &InputMap::new());
        let b = vm.bases[0].fire(&p, &[], &mut regs_b, &InputMap::new(), &mut sc);
        assert!(t.is_err() && b.is_err());
        assert_eq!(t.unwrap_err().to_string(), b.unwrap_err().to_string());
    }

    #[test]
    fn corrupt_table_rejected_at_lowering() {
        let p = parse(SRC).unwrap();
        let mut c = compile(&p, &CompileOptions::default()).unwrap();
        for e in c.bases[0].table.iter_mut() {
            *e = std::num::NonZeroU16::new(200);
        }
        let err = VmProgram::lower(&c).unwrap_err();
        assert!(err.to_string().contains("corrupt rule table"), "{err}");
    }

    #[test]
    fn malformed_bytecode_rejected_at_load() {
        let p = parse(SRC).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let good = VmProgram::lower(&c).unwrap();

        // jump target past the end of the op stream
        let mut bad = good.clone();
        bad.bases[0].ops.push(Op::Jump { target: 10_000 });
        assert!(bad.validate(&c).is_err());

        // slot index outside the declared frame
        let mut bad = good.clone();
        let n = bad.bases[0].slot_count;
        bad.bases[0].ops[0] = Op::Const { dst: n, v: Value::Bool(true) };
        assert!(bad.validate(&c).is_err());

        // jump table entry pointing outside the code
        let mut bad = good.clone();
        bad.bases[0].jump_table[0] = u32::MAX;
        assert!(bad.validate(&c).is_err());

        // jump table geometry no longer matching the ARON table
        let mut bad = good.clone();
        bad.bases[0].jump_table.pop();
        assert!(bad.validate(&c).is_err());

        // register reference outside the program
        let mut bad = good.clone();
        bad.bases[0].ops[0] = Op::ReadVar { var: 99, idx: SlotRange::EMPTY, dst: 0 };
        assert!(bad.validate(&c).is_err());

        // AND must never appear as a strict binary op
        let mut bad = good.clone();
        bad.bases[0].ops[0] = Op::Bin { op: BinOp::And, lhs: 0, rhs: 0, dst: 0 };
        assert!(bad.validate(&c).is_err());

        // builtin arity mismatch
        let mut bad = good.clone();
        bad.bases[0].ops[0] =
            Op::CallB { builtin: Builtin::Min, args: SlotRange { start: 0, count: 1 }, dst: 0 };
        assert!(bad.validate(&c).is_err());

        // wrong number of bases
        let mut bad = good.clone();
        bad.bases.clear();
        assert!(bad.validate(&c).is_err());

        // the untouched program still validates
        assert!(good.validate(&c).is_ok());
    }

    #[test]
    fn machine_backend_selection_preserves_cascades_and_stats() {
        let src = "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON a()\n IF n < 3 THEN n <- n + 1, !a();\n IF n = 3 THEN !done(n);\nEND a;";
        let run = |backend: Backend| {
            let p = parse(src).unwrap();
            let mut m = Machine::new(p, &CompileOptions::default()).unwrap();
            m.set_backend(backend).unwrap();
            assert_eq!(m.backend(), backend);
            let casc = m.fire_cascade("a", &[], &InputMap::new()).unwrap();
            (casc.outcomes, casc.host_events, casc.steps, m.stats.clone())
        };
        let table = run(Backend::Table);
        let bytecode = run(Backend::Bytecode);
        assert_eq!(table, bytecode, "cascade outcomes and stats must be bit-identical");
        assert_eq!(bytecode.1.len(), 1, "host event from the cascade");
    }

    #[test]
    fn probe_and_step_weights_compose_identically_on_both_backends() {
        // The modeled-cost contract under *both* hooks at once: with a
        // probe attached and non-uniform `StepWeights` installed, the
        // bytecode machine must report the same stage-record sequence and
        // the same weighted step counts as the table machine.
        #[derive(Default)]
        struct Recorder(Mutex<Vec<(usize, Stage)>>);
        impl InterpProbe for Recorder {
            fn record_stage(&self, base: usize, stage: Stage, _nanos: u64) {
                self.0.lock().unwrap().push((base, stage));
            }
        }

        let src = "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON a()\n IF n < 3 THEN n <- n + 1, !a();\n IF n = 3 THEN !done(n);\nEND a;";
        let run = |backend: Backend| {
            let p = parse(src).unwrap();
            let mut m = Machine::new(p, &CompileOptions::default()).unwrap();
            m.set_backend(backend).unwrap();
            let mut w = StepWeights::identity(m.program());
            w.per_base[0] = vec![3, 5, 2]; // rule 0, rule 1, gap
            m.set_step_weights(Arc::new(w));
            let rec = Arc::new(Recorder::default());
            m.set_probe(rec.clone());
            let casc = m.fire_cascade("a", &[], &InputMap::new()).unwrap();
            let seen = rec.0.lock().unwrap().clone();
            (casc.steps, m.stats.total_steps, m.stats.per_base.clone(), seen)
        };
        let table = run(Backend::Table);
        let bytecode = run(Backend::Bytecode);
        assert_eq!(table, bytecode, "probe records and weighted steps must match");
        // 3 fires of rule 0 (weight 3) + 1 fire of rule 1 (weight 5)
        assert_eq!(bytecode.0, 14, "weighted cascade steps");
        assert_eq!(bytecode.2, vec![4], "per_base counts physical interpretations");
        assert_eq!(bytecode.3.len(), 12, "three stages per dispatched fire");
    }

    #[test]
    fn backend_from_env_defaults_to_table() {
        // Reads only; env mutation in tests goes through ftr_sim::envlock.
        if std::env::var("FTR_BACKEND").is_err() {
            assert_eq!(Backend::from_env(), Backend::Table);
        }
    }
}
