//! Lowering from a [`CompiledRuleBase`] to flat bytecode.
//!
//! The op stream mirrors the three interpretation stages:
//!
//! * **premise block** — evaluates each extracted feature in index-digit
//!   order, accumulating the mixed-radix table index with
//!   [`Op::DigitDirect`]/[`Op::DigitPred`] (strides baked in at lowering),
//!   and ends in [`Op::Dispatch`];
//! * **gap block** — a single [`Op::CommitGap`];
//! * **conclusion blocks** — one per rule, each queueing its effects and
//!   ending in [`Op::Commit`].
//!
//! The jump table is derived from the filled ARON table with the same
//! checked decode as the table interpreter ([`CompiledRuleBase::decode_entry`]),
//! so corrupt tables are rejected at lowering instead of mis-firing.
//!
//! Error-behaviour parity with [`crate::eval`] is part of the contract:
//! evaluation order inside expressions, short-circuiting of `AND`/`OR`,
//! quantifier early exit and assignment index-before-value evaluation all
//! match the reference evaluator, so the two backends agree not only on
//! every `Ok` outcome but on *whether* a given interpretation errors.

use super::{BaseCode, Op, Slot, SlotRange};
use crate::ast::{Command, Expr, Program, Quant, Ref};
use crate::compile::FeatureKind;
use crate::error::{Result, RuleError};
use crate::interp::CompiledRuleBase;

/// Lowers one compiled base. The caller ([`super::VmProgram::lower`])
/// validates the result.
pub(crate) fn lower_base(prog: &Program, cb: &CompiledRuleBase) -> Result<BaseCode> {
    let rb_name = &prog.rulebases[cb.rb].name;
    let mut lw = Lowerer {
        prog,
        rb_name,
        ops: Vec::new(),
        next_slot: 0,
        iter_depth: 0,
        max_iter: 0,
        binders: Vec::new(),
        events: Vec::new(),
    };

    // Premise block: feature digits in index order, least significant first.
    let mut stride = 1u64;
    for (f, radix) in cb.features.iter().zip(&cb.radices) {
        match &f.kind {
            FeatureKind::Direct { subject, dom } => {
                let src = lw.expr(subject)?;
                lw.ops.push(Op::DigitDirect { src, dom: *dom, stride });
            }
            FeatureKind::Predicate { expr } => {
                let src = lw.expr(expr)?;
                lw.ops.push(Op::DigitPred { src, stride });
            }
        }
        stride = stride.saturating_mul(*radix);
    }
    lw.ops.push(Op::Dispatch);

    // Gap block, then one conclusion block per rule.
    let gap_off = lw.here();
    lw.ops.push(Op::CommitGap);
    let rb = &prog.rulebases[cb.rb];
    let mut rule_offs = Vec::with_capacity(rb.rules.len());
    for (ri, rule) in rb.rules.iter().enumerate() {
        rule_offs.push(lw.here());
        lw.commands(&rule.conclusion)?;
        lw.ops.push(Op::Commit { rule: ri as u16 });
    }

    // Direct-threaded cascade: table entry -> conclusion-block offset.
    let jump_table: Result<Vec<u32>> = cb
        .table
        .iter()
        .map(|&e| {
            Ok(match cb.decode_entry(e)? {
                None => gap_off,
                Some(r) => rule_offs[r],
            })
        })
        .collect();

    Ok(BaseCode {
        rb: cb.rb,
        ops: lw.ops,
        jump_table: jump_table?,
        slot_count: lw.next_slot as u16,
        iter_count: lw.max_iter,
        events: lw.events,
    })
}

struct Lowerer<'a> {
    prog: &'a Program,
    rb_name: &'a str,
    ops: Vec<Op>,
    /// Bump slot allocator (kept as u32 to detect u16 overflow).
    next_slot: u32,
    /// Current loop-nesting depth; iterators are allocated by depth.
    iter_depth: u16,
    max_iter: u16,
    /// Binder slots, innermost last (`Bound(0)` = last).
    binders: Vec<Slot>,
    events: Vec<String>,
}

impl Lowerer<'_> {
    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn too_big(&self, what: &str) -> RuleError {
        RuleError::eval(format!("rule base `{}` too large to lower: {what}", self.rb_name))
    }

    fn slot(&mut self) -> Result<Slot> {
        let s = self.next_slot;
        self.next_slot += 1;
        if self.next_slot > u16::MAX as u32 {
            return Err(self.too_big("more than 65535 value slots"));
        }
        Ok(s as Slot)
    }

    fn slot_range(&mut self, count: usize) -> Result<SlotRange> {
        let start = self.next_slot;
        self.next_slot += count as u32;
        if self.next_slot > u16::MAX as u32 || count > u16::MAX as usize {
            return Err(self.too_big("more than 65535 value slots"));
        }
        Ok(SlotRange { start: start as u16, count: count as u16 })
    }

    fn iter_enter(&mut self) -> Result<u16> {
        let i = self.iter_depth;
        self.iter_depth = self
            .iter_depth
            .checked_add(1)
            .ok_or_else(|| self.too_big("loop nesting exceeds u16"))?;
        self.max_iter = self.max_iter.max(self.iter_depth);
        Ok(i)
    }

    fn iter_exit(&mut self) {
        self.iter_depth -= 1;
    }

    /// Emits a jump/conditional-jump placeholder; returns its op index for
    /// [`Lowerer::patch`].
    fn placeholder(&mut self, op: Op) -> usize {
        let at = self.ops.len();
        self.ops.push(op);
        at
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump { target: t }
            | Op::CondJump { target: t, .. }
            | Op::IterNext { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn event_index(&mut self, name: &str) -> Result<u16> {
        if let Some(i) = self.events.iter().position(|e| e == name) {
            return Ok(i as u16);
        }
        if self.events.len() >= u16::MAX as usize {
            return Err(self.too_big("more than 65534 distinct emitted events"));
        }
        self.events.push(name.to_string());
        Ok((self.events.len() - 1) as u16)
    }

    /// Lowers `exprs` into a freshly allocated contiguous slot range
    /// (evaluated left to right, like the evaluator's argument collection).
    fn expr_list(&mut self, exprs: &[Expr]) -> Result<SlotRange> {
        let range = self.slot_range(exprs.len())?;
        for (k, e) in exprs.iter().enumerate() {
            let s = self.expr(e)?;
            self.ops.push(Op::Copy { src: s, dst: range.start + k as u16 });
        }
        Ok(range)
    }

    /// Lowers an expression; returns the slot holding its value.
    fn expr(&mut self, e: &Expr) -> Result<Slot> {
        match e {
            Expr::Lit(v) => {
                let dst = self.slot()?;
                self.ops.push(Op::Const { dst, v: *v });
                Ok(dst)
            }
            Expr::Ref(r) => self.reference(r),
            Expr::Indexed { target, indices } => {
                let idx = self.expr_list(indices)?;
                let dst = self.slot()?;
                match target {
                    crate::ast::IndexedRef::Var(v) => {
                        self.ops.push(Op::ReadVar { var: *v as u16, idx, dst })
                    }
                    crate::ast::IndexedRef::Input(i) => {
                        self.ops.push(Op::ReadInput { input: *i as u16, idx, dst })
                    }
                }
                Ok(dst)
            }
            Expr::Un(op, inner) => {
                let src = self.expr(inner)?;
                let dst = self.slot()?;
                self.ops.push(match op {
                    crate::ast::UnOp::Not => Op::Not { src, dst },
                    crate::ast::UnOp::Neg => Op::Neg { src, dst },
                });
                Ok(dst)
            }
            Expr::Bin(crate::ast::BinOp::And, l, r) => self.short_circuit(l, r, false),
            Expr::Bin(crate::ast::BinOp::Or, l, r) => self.short_circuit(l, r, true),
            Expr::Bin(op, l, r) => {
                let lhs = self.expr(l)?;
                let rhs = self.expr(r)?;
                let dst = self.slot()?;
                self.ops.push(Op::Bin { op: *op, lhs, rhs, dst });
                Ok(dst)
            }
            Expr::Quant { q, set, body, .. } => self.quant(*q, set, body),
            Expr::Call { builtin, args } => {
                let args = self.expr_list(args)?;
                let dst = self.slot()?;
                self.ops.push(Op::CallB { builtin: *builtin, args, dst });
                Ok(dst)
            }
        }
    }

    fn reference(&mut self, r: &Ref) -> Result<Slot> {
        match r {
            Ref::Const(i) => {
                let v = self
                    .prog
                    .consts
                    .get(*i)
                    .ok_or_else(|| RuleError::eval(format!("unknown constant {i}")))?
                    .value;
                let dst = self.slot()?;
                self.ops.push(Op::Const { dst, v });
                Ok(dst)
            }
            Ref::Var(i) => {
                let dst = self.slot()?;
                self.ops.push(Op::ReadVar { var: *i as u16, idx: SlotRange::EMPTY, dst });
                Ok(dst)
            }
            Ref::Input(i) => {
                let dst = self.slot()?;
                self.ops.push(Op::ReadInput { input: *i as u16, idx: SlotRange::EMPTY, dst });
                Ok(dst)
            }
            Ref::Param(i) => {
                let dst = self.slot()?;
                self.ops.push(Op::ReadParam { param: *i as u16, dst });
                Ok(dst)
            }
            // The binder's slot is only ever written by its loop's
            // `IterNext`, so it can be used in place — no copy needed.
            Ref::Bound(d) => {
                let n = self.binders.len();
                self.binders
                    .get(n.wrapping_sub(1 + d))
                    .copied()
                    .ok_or_else(|| RuleError::eval(format!("unbound binder depth {d}")))
            }
        }
    }

    /// `AND`/`OR` lower to branches so the right operand is not evaluated
    /// when the left decides — matching the evaluator's short-circuit
    /// semantics (including *which* sub-expressions can raise errors).
    fn short_circuit(&mut self, l: &Expr, r: &Expr, or: bool) -> Result<Slot> {
        let dst = self.slot()?;
        let lhs = self.expr(l)?;
        // AND: a false left short-circuits; OR: a true left does.
        let j_short = self.placeholder(Op::CondJump { src: lhs, when: or, target: u32::MAX });
        let rhs = self.expr(r)?;
        self.ops.push(Op::AsBool { src: rhs, dst });
        let j_end = self.placeholder(Op::Jump { target: u32::MAX });
        let short = self.here();
        self.patch(j_short, short);
        self.ops.push(Op::Const { dst, v: crate::value::Value::Bool(or) });
        let end = self.here();
        self.patch(j_end, end);
        Ok(dst)
    }

    /// Quantifiers iterate the set in canonical order with early exit on
    /// the deciding element, like [`crate::eval::eval_expr`].
    fn quant(&mut self, q: Quant, set: &Expr, body: &Expr) -> Result<Slot> {
        let forall = matches!(q, Quant::Forall);
        let dst = self.slot()?;
        self.ops.push(Op::Const { dst, v: crate::value::Value::Bool(forall) });
        let src = self.expr(set)?;
        let iter = self.iter_enter()?;
        self.ops.push(Op::IterInit { iter, src });
        let elem = self.slot()?;
        let head = self.here();
        let j_exit = self.placeholder(Op::IterNext { iter, dst: elem, exit: u32::MAX });
        self.binders.push(elem);
        let body_slot = self.expr(body);
        self.binders.pop();
        let body_slot = body_slot?;
        // EXISTS: a false body continues the loop, a true one decides;
        // FORALL: dual.
        self.ops.push(Op::CondJump { src: body_slot, when: forall, target: head });
        self.ops.push(Op::Const { dst, v: crate::value::Value::Bool(!forall) });
        let end = self.here();
        self.patch(j_exit, end);
        self.iter_exit();
        Ok(dst)
    }

    /// Lowers conclusion commands; effects queue into the scratch frame
    /// and are applied by `Commit` with the parallel-write semantics.
    fn commands(&mut self, cmds: &[Command]) -> Result<()> {
        for cmd in cmds {
            match cmd {
                Command::Assign { var, indices, value } => {
                    let idx = self.expr_list(indices)?;
                    let val = self.expr(value)?;
                    self.ops.push(Op::QueueWrite { var: *var as u16, idx, val });
                }
                Command::Return(e) => {
                    let src = self.expr(e)?;
                    self.ops.push(Op::QueueReturn { src });
                }
                Command::Emit { event, args } => {
                    let args = self.expr_list(args)?;
                    let event = self.event_index(event)?;
                    self.ops.push(Op::QueueEmit { event, args });
                }
                Command::ForAll { set, body, .. } => {
                    let src = self.expr(set)?;
                    let iter = self.iter_enter()?;
                    self.ops.push(Op::IterInit { iter, src });
                    let elem = self.slot()?;
                    let head = self.here();
                    let j_exit = self.placeholder(Op::IterNext { iter, dst: elem, exit: u32::MAX });
                    self.binders.push(elem);
                    let r = self.commands(body);
                    self.binders.pop();
                    r?;
                    self.ops.push(Op::Jump { target: head });
                    let end = self.here();
                    self.patch(j_exit, end);
                    self.iter_exit();
                }
            }
        }
        Ok(())
    }
}
