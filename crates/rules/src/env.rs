//! Execution environment: register file and input providers.

use crate::ast::{InputDecl, Program};
use crate::error::{Result, RuleError};
use crate::value::Value;
use std::collections::HashMap;

/// The register file holding all declared `VARIABLE`s of a program
/// (the paper's "registers ... updated by using arithmetic or logical
/// units"). Arrays are stored flattened in row-major order of their index
/// domains.
#[derive(Clone, Debug, PartialEq)]
pub struct RegFile {
    slots: Vec<Vec<Value>>,
}

impl RegFile {
    /// Creates the register file with every cell at its declared INIT value.
    pub fn new(prog: &Program) -> Self {
        let ss = prog.sym_sizes();
        let slots = prog
            .vars
            .iter()
            .map(|v| {
                let cells: u64 = v.index_domains.iter().map(|d| d.size(&ss)).product();
                vec![v.init; cells.max(1) as usize]
            })
            .collect();
        RegFile { slots }
    }

    /// Flattened cell index from per-dimension ordinals.
    fn flat(prog: &Program, var: usize, ordinals: &[u64]) -> usize {
        let ss = prog.sym_sizes();
        let mut idx = 0u64;
        for (ord, dom) in ordinals.iter().zip(&prog.vars[var].index_domains) {
            idx = idx * dom.size(&ss) + ord;
        }
        idx as usize
    }

    /// Converts index values to ordinals, checking domains.
    pub fn ordinals(prog: &Program, var: usize, indices: &[Value]) -> Result<Vec<u64>> {
        let decl = &prog.vars[var];
        if indices.len() != decl.index_domains.len() {
            return Err(RuleError::eval(format!(
                "`{}` expects {} indices, got {}",
                decl.name,
                decl.index_domains.len(),
                indices.len()
            )));
        }
        let ss = prog.sym_sizes();
        indices
            .iter()
            .zip(&decl.index_domains)
            .map(|(v, d)| {
                d.ordinal(v, &ss).ok_or_else(|| {
                    RuleError::eval(format!("index {v} out of domain {d:?} for `{}`", decl.name))
                })
            })
            .collect()
    }

    /// Reads a register cell.
    pub fn read(&self, prog: &Program, var: usize, indices: &[Value]) -> Result<Value> {
        let ords = Self::ordinals(prog, var, indices)?;
        Ok(self.slots[var][Self::flat(prog, var, &ords)])
    }

    /// Writes a register cell, checking the value against the declared
    /// element type.
    pub fn write(&mut self, prog: &Program, var: usize, indices: &[Value], v: Value) -> Result<()> {
        let decl = &prog.vars[var];
        let ss = prog.sym_sizes();
        let ok = match (decl.elem, &v) {
            (crate::value::Type::Scalar(d), val) => d.contains(val, &ss),
            (crate::value::Type::Set(d), Value::Set { dom, .. }) => {
                // same domain kind; mask interpreted over the declared domain
                matches!(
                    (d, dom),
                    (crate::value::Domain::Int { .. }, crate::value::Domain::Int { .. })
                        | (crate::value::Domain::Bool, crate::value::Domain::Bool)
                ) || matches!((d, dom), (crate::value::Domain::Sym(x), crate::value::Domain::Sym(y)) if x == *y)
            }
            _ => false,
        };
        if !ok {
            return Err(RuleError::eval(format!(
                "value {v} outside domain of `{}` ({:?})",
                decl.name, decl.elem
            )));
        }
        let ords = Self::ordinals(prog, var, indices)?;
        let flat = Self::flat(prog, var, &ords);
        self.slots[var][flat] = v;
        Ok(())
    }

    /// Direct read by flat cell (used by the cost/debug reports).
    pub fn raw(&self, var: usize) -> &[Value] {
        &self.slots[var]
    }
}

/// Source of external input values (header fields, link states, buffer
/// occupancies) for one rule-base invocation.
pub trait InputProvider {
    /// Reads input `input` (index into [`Program::inputs`]) at `indices`.
    fn read_input(&self, prog: &Program, input: usize, indices: &[Value]) -> Result<Value>;
}

/// Simple map-backed input provider with optional per-input defaults.
///
/// Index tuples are packed into a single `u64` (16 bits per dimension, up
/// to four dimensions) so reads stay allocation-free on the hot path.
#[derive(Clone, Debug, Default)]
pub struct InputMap {
    values: HashMap<(usize, u64), Value>,
    defaults: HashMap<usize, Value>,
}

/// Packs up to four per-dimension ordinals into one key.
fn pack_ordinals(ords: &[u64]) -> Result<u64> {
    if ords.len() > 4 {
        return Err(RuleError::eval("inputs support at most 4 index dimensions".to_string()));
    }
    let mut key = 0u64;
    for (i, &o) in ords.iter().enumerate() {
        if o >= 1 << 16 {
            return Err(RuleError::eval("input index ordinal exceeds 16 bits".to_string()));
        }
        key |= o << (16 * i);
    }
    Ok(key)
}

impl InputMap {
    /// Creates an empty provider (reads fail unless set or defaulted).
    pub fn new() -> Self {
        Self::default()
    }

    fn key(
        prog: &Program,
        decl: &InputDecl,
        input: usize,
        indices: &[Value],
    ) -> Result<(usize, u64)> {
        if indices.len() != decl.index_domains.len() {
            return Err(RuleError::eval(format!(
                "input `{}` expects {} indices, got {}",
                decl.name,
                decl.index_domains.len(),
                indices.len()
            )));
        }
        let ss = prog.sym_sizes();
        let mut ords = [0u64; 4];
        for (i, (v, d)) in indices.iter().zip(&decl.index_domains).enumerate() {
            if i >= 4 {
                return Err(RuleError::eval(
                    "inputs support at most 4 index dimensions".to_string(),
                ));
            }
            ords[i] = d
                .ordinal(v, &ss)
                .ok_or_else(|| RuleError::eval(format!("input index {v} out of domain {d:?}")))?;
        }
        Ok((input, pack_ordinals(&ords[..indices.len()])?))
    }

    /// Sets a scalar or indexed input value by name.
    pub fn set(&mut self, prog: &Program, name: &str, indices: &[Value], v: Value) -> Result<()> {
        let (input, decl) = prog
            .inputs
            .iter()
            .enumerate()
            .find(|(_, d)| d.name == name)
            .ok_or_else(|| RuleError::eval(format!("unknown input `{name}`")))?;
        let key = Self::key(prog, decl, input, indices)?;
        self.values.insert(key, v);
        Ok(())
    }

    /// Sets a default returned for any unset cell of input `name`.
    pub fn set_default(&mut self, prog: &Program, name: &str, v: Value) -> Result<()> {
        let input = prog
            .inputs
            .iter()
            .position(|d| d.name == name)
            .ok_or_else(|| RuleError::eval(format!("unknown input `{name}`")))?;
        self.defaults.insert(input, v);
        Ok(())
    }
}

impl InputProvider for InputMap {
    fn read_input(&self, prog: &Program, input: usize, indices: &[Value]) -> Result<Value> {
        let decl = &prog.inputs[input];
        let key = Self::key(prog, decl, input, indices)?;
        if let Some(v) = self.values.get(&key) {
            return Ok(*v);
        }
        if let Some(v) = self.defaults.get(&input) {
            return Ok(*v);
        }
        Err(RuleError::eval(format!("input `{}` (packed index {}) has no value", decl.name, key.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog() -> Program {
        parse(
            "CONSTANT dirs = 0 TO 3\n\
             VARIABLE a IN 0 TO 7 INIT 2\n\
             VARIABLE arr[dirs] IN 0 TO 3 INIT 1\n\
             VARIABLE grid[dirs, dirs] IN bool\n\
             INPUT load[dirs] IN 0 TO 15\n\
             INPUT flag IN bool\n",
        )
        .unwrap()
    }

    #[test]
    fn regfile_initialization() {
        let p = prog();
        let r = RegFile::new(&p);
        assert_eq!(r.read(&p, 0, &[]).unwrap(), Value::Int(2));
        for i in 0..4 {
            assert_eq!(r.read(&p, 1, &[Value::Int(i)]).unwrap(), Value::Int(1));
        }
        assert_eq!(r.raw(2).len(), 16);
    }

    #[test]
    fn regfile_write_read_roundtrip() {
        let p = prog();
        let mut r = RegFile::new(&p);
        r.write(&p, 1, &[Value::Int(2)], Value::Int(3)).unwrap();
        assert_eq!(r.read(&p, 1, &[Value::Int(2)]).unwrap(), Value::Int(3));
        assert_eq!(r.read(&p, 1, &[Value::Int(1)]).unwrap(), Value::Int(1));
        r.write(&p, 2, &[Value::Int(1), Value::Int(3)], Value::Bool(true)).unwrap();
        assert_eq!(r.read(&p, 2, &[Value::Int(1), Value::Int(3)]).unwrap(), Value::Bool(true));
        assert_eq!(r.read(&p, 2, &[Value::Int(3), Value::Int(1)]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn regfile_rejects_out_of_domain() {
        let p = prog();
        let mut r = RegFile::new(&p);
        assert!(r.write(&p, 0, &[], Value::Int(8)).is_err());
        assert!(r.write(&p, 0, &[], Value::Bool(true)).is_err());
        assert!(r.read(&p, 1, &[Value::Int(4)]).is_err());
        assert!(r.read(&p, 1, &[]).is_err());
    }

    #[test]
    fn input_map_reads() {
        let p = prog();
        let mut m = InputMap::new();
        m.set(&p, "load", &[Value::Int(1)], Value::Int(9)).unwrap();
        m.set(&p, "flag", &[], Value::Bool(true)).unwrap();
        assert_eq!(m.read_input(&p, 0, &[Value::Int(1)]).unwrap(), Value::Int(9));
        assert_eq!(m.read_input(&p, 1, &[]).unwrap(), Value::Bool(true));
        assert!(m.read_input(&p, 0, &[Value::Int(0)]).is_err());
        m.set_default(&p, "load", Value::Int(0)).unwrap();
        assert_eq!(m.read_input(&p, 0, &[Value::Int(0)]).unwrap(), Value::Int(0));
    }

    #[test]
    fn input_map_unknown_name() {
        let p = prog();
        let mut m = InputMap::new();
        assert!(m.set(&p, "nope", &[], Value::Int(0)).is_err());
    }
}
