//! Tokens of the rule language.
//!
//! The surface syntax follows the paper's notation as closely as ASCII
//! allows: `IF <premise> THEN <conclusion>;`, `ON <event>(<params>)`,
//! assignment `<-`, event generation `!event(args)`, inequality `/=`,
//! comments `-- to end of line`.

use crate::error::Pos;
use std::fmt;

/// Keywords are uppercase in source, mirroring the paper's examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    Constant,
    Variable,
    Input,
    On,
    End,
    If,
    Then,
    Return,
    Returns,
    In,
    To,
    Init,
    Exists,
    Forall,
    And,
    Or,
    Not,
    Nft,
    True,
    False,
    SetOf,
}

impl Keyword {
    /// Parses an uppercase identifier as a keyword.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "CONSTANT" => Keyword::Constant,
            "VARIABLE" => Keyword::Variable,
            "INPUT" => Keyword::Input,
            "ON" => Keyword::On,
            "END" => Keyword::End,
            "IF" => Keyword::If,
            "THEN" => Keyword::Then,
            "RETURN" => Keyword::Return,
            "RETURNS" => Keyword::Returns,
            "IN" => Keyword::In,
            "TO" => Keyword::To,
            "INIT" => Keyword::Init,
            "EXISTS" => Keyword::Exists,
            "FORALL" => Keyword::Forall,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "NFT" => Keyword::Nft,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "SETOF" => Keyword::SetOf,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Keyword (uppercase reserved word).
    Kw(Keyword),
    /// Identifier (variable, event, symbol name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `<-` assignment
    Assign,
    /// `!` event generation prefix
    Bang,
    /// `=`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Semi => write!(f, ";"),
            Tok::Assign => write!(f, "<-"),
            Tok::Bang => write!(f, "!"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "/="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
