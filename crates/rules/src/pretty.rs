//! Pretty-printer: resolved AST → rule-language source.
//!
//! Useful for debugging compiled configurations, for the paper's
//! "transformations on rule bases" idea (a transformation is AST → AST;
//! printing makes the result inspectable), and as a test oracle: printing
//! a parsed program and re-parsing it must produce an equivalent program.

use crate::ast::*;
use crate::value::{Domain, Type, Value};
use std::fmt::Write;

/// Renders a whole program as parseable source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for st in &p.sym_types {
        let _ = writeln!(out, "CONSTANT {} = {{{}}}", st.name, st.symbols.join(", "));
    }
    for c in &p.consts {
        match (&c.ty, &c.value) {
            // full-set constants of symbol types were emitted above
            (Type::Set(Domain::Sym(_)), _) => {}
            (Type::Set(Domain::Int { lo, hi }), _) => {
                let _ = writeln!(out, "CONSTANT {} = {lo} TO {hi}", c.name);
            }
            (_, Value::Int(v)) => {
                let _ = writeln!(out, "CONSTANT {} = {v}", c.name);
            }
            _ => {}
        }
    }
    for v in &p.vars {
        let idx = print_index_domains(p, &v.index_domains);
        // omit INIT when it is the type's default (empty sets in
        // particular have no literal syntax)
        let default = match v.elem {
            Type::Scalar(d) => d.value_at(0),
            Type::Set(d) => Value::empty_set(d),
        };
        if v.init == default {
            let _ = writeln!(out, "VARIABLE {}{idx} IN {}", v.name, print_type(p, &v.elem));
        } else {
            let _ = writeln!(
                out,
                "VARIABLE {}{idx} IN {} INIT {}",
                v.name,
                print_type(p, &v.elem),
                print_value(p, &v.init)
            );
        }
    }
    for i in &p.inputs {
        let idx = print_index_domains(p, &i.index_domains);
        let _ = writeln!(out, "INPUT {}{idx} IN {}", i.name, print_type(p, &i.elem));
    }
    for rb in &p.rulebases {
        let _ = writeln!(out);
        let params = rb
            .params
            .iter()
            .map(|pa| format!("{} IN {}", pa.name, print_domain(p, &pa.dom)))
            .collect::<Vec<_>>()
            .join(", ");
        let returns =
            rb.returns.map(|t| format!(" RETURNS {}", print_type(p, &t))).unwrap_or_default();
        let nft = if rb.nft { " NFT" } else { "" };
        let _ = writeln!(out, "ON {}({params}){returns}{nft}", rb.name);
        for (ri, rule) in rb.rules.iter().enumerate() {
            let binders = BinderNames::new(rb, ri);
            let _ = writeln!(out, "  IF {}", print_expr(p, rb, &rule.premise, &binders));
            let cmds = rule
                .conclusion
                .iter()
                .map(|c| print_command(p, rb, c, &binders))
                .collect::<Vec<_>>()
                .join(",\n       ");
            let _ = writeln!(out, "  THEN {cmds};");
        }
        let _ = writeln!(out, "END {};", rb.name);
    }
    out
}

/// Deterministic fresh names for de Bruijn binders.
struct BinderNames {
    prefix: String,
}

impl BinderNames {
    fn new(rb: &RuleBase, rule: usize) -> Self {
        let _ = rb;
        BinderNames { prefix: format!("q{rule}_") }
    }

    fn name(&self, depth_from_root: usize) -> String {
        format!("{}{}", self.prefix, depth_from_root)
    }
}

fn print_index_domains(p: &Program, doms: &[Domain]) -> String {
    if doms.is_empty() {
        String::new()
    } else {
        format!("[{}]", doms.iter().map(|d| print_domain(p, d)).collect::<Vec<_>>().join(", "))
    }
}

fn print_domain(p: &Program, d: &Domain) -> String {
    match d {
        Domain::Int { lo, hi } => format!("{lo} TO {hi}"),
        Domain::Sym(t) => p.sym_types[*t].name.clone(),
        Domain::Bool => "bool".into(),
    }
}

fn print_type(p: &Program, t: &Type) -> String {
    match t {
        Type::Scalar(d) => print_domain(p, d),
        Type::Set(d) => format!("SETOF {}", print_domain(p, d)),
    }
}

fn print_value(p: &Program, v: &Value) -> String {
    match v {
        Value::Int(x) => x.to_string(),
        Value::Bool(true) => "TRUE".into(),
        Value::Bool(false) => "FALSE".into(),
        Value::Sym { .. } | Value::Set { .. } => p.display_value(v),
    }
}

fn print_expr(p: &Program, rb: &RuleBase, e: &Expr, binders: &BinderNames) -> String {
    print_expr_d(p, rb, e, binders, 0)
}

fn print_expr_d(
    p: &Program,
    rb: &RuleBase,
    e: &Expr,
    binders: &BinderNames,
    depth: usize,
) -> String {
    match e {
        Expr::Lit(v) => print_value(p, v),
        Expr::Ref(r) => match r {
            Ref::Const(i) => p.consts[*i].name.clone(),
            Ref::Var(i) => p.vars[*i].name.clone(),
            Ref::Input(i) => p.inputs[*i].name.clone(),
            Ref::Param(i) => rb.params[*i].name.clone(),
            Ref::Bound(d) => binders.name(depth - 1 - d),
        },
        Expr::Indexed { target, indices } => {
            let name = match target {
                IndexedRef::Var(i) => &p.vars[*i].name,
                IndexedRef::Input(i) => &p.inputs[*i].name,
            };
            let args = indices
                .iter()
                .map(|i| print_expr_d(p, rb, i, binders, depth))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{name}({args})")
        }
        Expr::Un(op, inner) => {
            let i = print_expr_d(p, rb, inner, binders, depth);
            match op {
                UnOp::Not => format!("NOT ({i})"),
                UnOp::Neg => format!("-({i})"),
            }
        }
        Expr::Bin(op, l, r) => {
            let ls = print_expr_d(p, rb, l, binders, depth);
            let rs = print_expr_d(p, rb, r, binders, depth);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Eq => "=",
                BinOp::Ne => "/=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::In => "IN",
            };
            format!("({ls} {sym} {rs})")
        }
        Expr::Quant { q, set, body, .. } => {
            let kw = match q {
                Quant::Exists => "EXISTS",
                Quant::Forall => "FORALL",
            };
            let name = binders.name(depth);
            let s = print_expr_d(p, rb, set, binders, depth);
            let b = print_expr_d(p, rb, body, binders, depth + 1);
            format!("({kw} {name} IN {s}: {b})")
        }
        Expr::Call { builtin, args } => {
            let argv: Vec<String> =
                args.iter().map(|a| print_expr_d(p, rb, a, binders, depth)).collect();
            match builtin {
                Builtin::ArgMin(i) => format!("argmin({}, {})", p.inputs[*i].name, argv[0]),
                Builtin::ArgMax(i) => format!("argmax({}, {})", p.inputs[*i].name, argv[0]),
                other => {
                    let name = match other {
                        Builtin::Min => "min",
                        Builtin::Max => "max",
                        Builtin::AbsDiff => "absdiff",
                        Builtin::Xor => "xor",
                        Builtin::Popcount => "popcount",
                        Builtin::Bit => "bit",
                        Builtin::LatMax => "latmax",
                        Builtin::Card => "card",
                        Builtin::Union => "union",
                        Builtin::Isect => "isect",
                        Builtin::Diff => "diff",
                        Builtin::Include => "include",
                        Builtin::Exclude => "exclude",
                        Builtin::ArgMin(_) | Builtin::ArgMax(_) => unreachable!(),
                    };
                    format!("{name}({})", argv.join(", "))
                }
            }
        }
    }
}

fn print_command(p: &Program, rb: &RuleBase, c: &Command, binders: &BinderNames) -> String {
    print_command_d(p, rb, c, binders, 0)
}

fn print_command_d(
    p: &Program,
    rb: &RuleBase,
    c: &Command,
    binders: &BinderNames,
    depth: usize,
) -> String {
    match c {
        Command::Assign { var, indices, value } => {
            let name = &p.vars[*var].name;
            let idx = if indices.is_empty() {
                String::new()
            } else {
                format!(
                    "({})",
                    indices
                        .iter()
                        .map(|i| print_expr_d(p, rb, i, binders, depth))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            format!("{name}{idx} <- {}", print_expr_d(p, rb, value, binders, depth))
        }
        Command::Return(e) => format!("RETURN({})", print_expr_d(p, rb, e, binders, depth)),
        Command::Emit { event, args } => {
            let argv = args
                .iter()
                .map(|a| print_expr_d(p, rb, a, binders, depth))
                .collect::<Vec<_>>()
                .join(", ");
            format!("!{event}({argv})")
        }
        Command::ForAll { set, body, .. } => {
            let name = binders.name(depth);
            let s = print_expr_d(p, rb, set, binders, depth);
            let b = print_command_d(p, rb, &body[0], binders, depth + 1);
            format!("FORALL {name} IN {s}: {b}")
        }
    }
}

/// One-line rendering of an expression for diagnostics (Figure-7 style
/// configuration dumps). Quantifier binders get positional names.
pub fn describe_expr(p: &Program, rb: &RuleBase, e: &Expr) -> String {
    let binders = BinderNames { prefix: "i".into() };
    print_expr(p, rb, e, &binders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::parser::parse;

    /// Round trip: print(parse(src)) re-parses, and the re-parsed program
    /// compiles to *identical* rule tables (semantic equality).
    #[test]
    fn roundtrip_shipped_style_program() {
        let src = "
CONSTANT st = {safe, warn, dead}
CONSTANT dirs = 0 TO 3
CONSTANT lim = 7
VARIABLE state IN st INIT safe
VARIABLE count IN 0 TO 7 INIT 0
VARIABLE marks[dirs] IN bool
VARIABLE avail IN SETOF dirs INIT {0, 1, 2, 3}
INPUT level[dirs] IN 0 TO 9
INPUT q[dirs] IN 0 TO 255

ON check(d IN dirs) RETURNS 0 TO 15 NFT
  IF state = safe AND level(d) > 6 THEN RETURN(argmin(q, avail));
  IF EXISTS i IN avail: level(i) = 0 THEN count <- count + 1, RETURN(14);
  IF d IN {1, 3} THEN marks(d) <- TRUE, RETURN(13);
  IF TRUE THEN state <- warn,
               avail <- exclude(avail, d),
               FORALL i IN avail: !notify(i, count),
               RETURN(15);
END check;
";
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));

        let o = CompileOptions::default();
        let c1 = compile(&p1, &o).unwrap();
        let c2 = compile(&p2, &o).unwrap();
        assert_eq!(c1.bases.len(), c2.bases.len());
        for (a, b) in c1.bases.iter().zip(&c2.bases) {
            assert_eq!(a.table, b.table, "tables diverged:\n{printed}");
            assert_eq!(a.entries, b.entries);
            assert_eq!(a.width_bits, b.width_bits);
        }
    }

    #[test]
    fn roundtrip_all_shipped_programs() {
        // exercised with the real shipped sources via ftr-algos in the
        // integration suite; here a structural smoke check on Figure 4
        let src = "
CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}
CONSTANT dirs = 0 TO 5
VARIABLE number_unsafe IN 0 TO 7 INIT 0
VARIABLE number_faulty IN 0 TO 7 INIT 0
VARIABLE neighb_state[dirs] IN fault_states INIT safe
VARIABLE state IN fault_states INIT safe
INPUT new_state[dirs] IN fault_states

ON update_state(dir IN dirs)
  IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0
  THEN neighb_state(dir) <- new_state(dir),
       number_faulty <- number_faulty + 1;
END update_state;
";
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1.rulebases[0].rules.len(), p2.rulebases[0].rules.len());
        assert!(
            printed.contains("CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}")
        );
        assert!(printed.contains("number_faulty <- (number_faulty + 1)"));
    }
}
