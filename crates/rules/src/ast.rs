//! Resolved, typed abstract syntax of rule programs.
//!
//! The parser produces this representation directly (names resolved against
//! the declarations, expressions typed bottom-up), so everything downstream
//! — the reference evaluator, the ARON compiler, the cost model — works on
//! indices instead of strings.

use crate::error::Pos;
use crate::value::{Domain, Type, Value};
use serde::{Deserialize, Serialize};

/// A declared symbol type (`CONSTANT states = {safe, faulty, ...}`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SymType {
    /// Type name (also names the full-set constant).
    pub name: String,
    /// Symbol names in declaration order; the order defines the finite
    /// lattice used by `latmax` (later symbols are "higher").
    pub symbols: Vec<String>,
}

/// A named constant (`CONSTANT radix = 8`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConstDecl {
    /// Constant name.
    pub name: String,
    /// Its value.
    pub value: Value,
    /// Its type.
    pub ty: Type,
}

/// A register (`VARIABLE name[index_doms] IN elem INIT init`).
///
/// Registers are the algorithm state of §4.2; their widths are the register
/// bits counted in the paper's §5 evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VarDecl {
    /// Register name.
    pub name: String,
    /// Index domains (empty for a plain register).
    pub index_domains: Vec<Domain>,
    /// Element type.
    pub elem: Type,
    /// Initial value of every cell.
    pub init: Value,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// An external input (`INPUT name[index_doms] IN elem`): header fields, link
/// states, buffer occupancies — anything the router hardware feeds to the
/// rule interpreter per invocation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InputDecl {
    /// Input name.
    pub name: String,
    /// Index domains (empty for a scalar input).
    pub index_domains: Vec<Domain>,
    /// Element type.
    pub elem: Type,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// An event parameter (`ON update_state(dir IN dirs)`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Its domain.
    pub dom: Domain,
}

/// What a name refers to after resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ref {
    /// Constant index in [`Program::consts`].
    Const(usize),
    /// Register index in [`Program::vars`].
    Var(usize),
    /// Input index in [`Program::inputs`].
    Input(usize),
    /// Event parameter position of the enclosing rule base.
    Param(usize),
    /// Quantifier/`FORALL`-command binder, de Bruijn style (0 = innermost).
    Bound(usize),
}

/// Array-like reference targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexedRef {
    /// Indexed register.
    Var(usize),
    /// Indexed input.
    Input(usize),
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `=` (scalars or sets)
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `IN` (scalar ∈ set)
    In,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// `NOT`
    Not,
    /// unary `-`
    Neg,
}

/// Quantifier kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quant {
    /// `EXISTS x IN S: body`
    Exists,
    /// `FORALL x IN S: body`
    Forall,
}

/// Built-in functions ("functions allowed in premise and conclusion
/// expressions", §4.2). Each maps to a specific FCFB kind in the hardware
/// cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Builtin {
    /// `min(a, b)` of two integers.
    Min,
    /// `max(a, b)` of two integers.
    Max,
    /// `absdiff(a, b)` = |a - b| — the "mesh distance computation" unit.
    AbsDiff,
    /// `xor(a, b)` bitwise on non-negative integers (hypercube dimension
    /// arithmetic).
    Xor,
    /// `popcount(a)` number of set bits (Hamming distance).
    Popcount,
    /// `bit(a, i)` — bit `i` of `a` as a boolean.
    Bit,
    /// `latmax(a, b)` — join in the finite lattice given by symbol order.
    LatMax,
    /// `card(s)` — cardinality of a set.
    Card,
    /// `union(a, b)` of two sets.
    Union,
    /// `isect(a, b)` of two sets.
    Isect,
    /// `diff(a, b)` set difference.
    Diff,
    /// `include(s, e)` — set with element `e` added (set-union unit).
    Include,
    /// `exclude(s, e)` — set with element `e` removed (set-subtraction
    /// unit).
    Exclude,
    /// `argmin(input, s)` — index (within the indexed input's single index
    /// domain) of the minimal element among members of set `s`; ties break
    /// to the lowest ordinal; errors on an empty set. The paper's
    /// "minimum selection" FCFB. First argument resolved to the input id.
    ArgMin(usize),
    /// `argmax(input, s)` — dual of `argmin`.
    ArgMax(usize),
}

/// A typed expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Scalar read of a resolved name.
    Ref(Ref),
    /// Read of an indexed register or input: `name(i, j)`.
    Indexed {
        /// What is being indexed.
        target: IndexedRef,
        /// One expression per declared index domain.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Quantified boolean: `q x IN set: body`; the binder has domain `dom`
    /// (the element domain of `set`) and is referenced as `Bound(0)` inside
    /// `body`.
    Quant {
        /// Exists or Forall.
        q: Quant,
        /// Element domain of the quantified set.
        dom: Domain,
        /// The set ranged over (evaluated at runtime).
        set: Box<Expr>,
        /// Quantified body.
        body: Box<Expr>,
    },
    /// Built-in function call.
    Call {
        /// Which builtin.
        builtin: Builtin,
        /// Arguments (for `argmin`/`argmax` only the set argument remains
        /// here; the input is inside the builtin).
        args: Vec<Expr>,
    },
}

/// A conclusion command.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// `name(indices) <- value`
    Assign {
        /// Target register.
        var: usize,
        /// Index expressions (empty for plain registers).
        indices: Vec<Expr>,
        /// Right-hand side (evaluated against the pre-state: all commands
        /// of a conclusion execute in parallel, §4.2).
        value: Expr,
    },
    /// `RETURN(expr)`
    Return(Expr),
    /// `!event(args)` — generate an event.
    Emit {
        /// Event name (matched against rule-base names by the event
        /// manager; unknown names are delivered to the host).
        event: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `FORALL x IN set: command` — the command quantor of Figure 4.
    ForAll {
        /// Element domain of the set.
        dom: Domain,
        /// Set ranged over.
        set: Expr,
        /// Body commands, binder = `Bound(0)`.
        body: Vec<Command>,
    },
}

/// One `IF premise THEN commands;` rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Boolean premise.
    pub premise: Expr,
    /// Parallel conclusion commands.
    pub conclusion: Vec<Command>,
    /// Source position of the rule's `IF` keyword.
    pub pos: Pos,
}

/// An event-triggered rule base (`ON name(params) ... END name;`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuleBase {
    /// Name == the event that triggers it.
    pub name: String,
    /// Event parameters.
    pub params: Vec<Param>,
    /// Declared return type, if the base returns a value.
    pub returns: Option<Type>,
    /// True if this base is needed even by the non-fault-tolerant variant
    /// of the algorithm (the `nft` column of Tables 1 and 2).
    pub nft: bool,
    /// The rules, in source order (order resolves conflicts).
    pub rules: Vec<Rule>,
    /// Source position of the `ON` keyword.
    pub pos: Pos,
}

/// A complete rule program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Declared symbol types.
    pub sym_types: Vec<SymType>,
    /// Named constants (includes the full-set constant of each symbol type
    /// and each named integer domain).
    pub consts: Vec<ConstDecl>,
    /// Registers.
    pub vars: Vec<VarDecl>,
    /// External inputs.
    pub inputs: Vec<InputDecl>,
    /// Rule bases.
    pub rulebases: Vec<RuleBase>,
}

impl Program {
    /// Number of symbols in symbol type `t` (shape used by `Domain` methods).
    pub fn sym_size(&self, t: usize) -> usize {
        self.sym_types[t].symbols.len()
    }

    /// Closure form of [`Program::sym_size`] for passing to `Domain`.
    pub fn sym_sizes(&self) -> impl Fn(usize) -> usize + '_ {
        move |t| self.sym_size(t)
    }

    /// Looks up a rule base by name.
    pub fn rulebase(&self, name: &str) -> Option<(usize, &RuleBase)> {
        self.rulebases.iter().enumerate().find(|(_, rb)| rb.name == name)
    }

    /// Resolves a symbol name to its value, searching all symbol types.
    pub fn symbol_value(&self, name: &str) -> Option<Value> {
        for (t, st) in self.sym_types.iter().enumerate() {
            if let Some(i) = st.symbols.iter().position(|s| s == name) {
                return Some(Value::Sym { ty: t, idx: i as u32 });
            }
        }
        None
    }

    /// Human-readable form of a value (symbol names spelled out).
    pub fn display_value(&self, v: &Value) -> String {
        match v {
            Value::Sym { ty, idx } => self.sym_types[*ty].symbols[*idx as usize].clone(),
            Value::Set { dom, mask } => {
                let ss = self.sym_sizes();
                let n = dom.size(&ss);
                let mut parts = Vec::new();
                for k in 0..n {
                    if mask & (1 << k) != 0 {
                        parts.push(self.display_value(&dom.value_at(k)));
                    }
                }
                format!("{{{}}}", parts.join(","))
            }
            other => other.to_string(),
        }
    }
}
