//! Rule-base fusion cost model (experiment E5).
//!
//! The paper notes that consecutive interpretation steps can be merged into
//! one, "but this would result in very large rule bases with many complex
//! FCFBs. For instance the combination of the two rule bases of ROUTE_C
//! decide_dir and decide_vc requires a rule interpreter configuration with
//! 1024·2^d × (d+1+a) bits rule table" (§5). This module models exactly
//! that trade-off: the fused table indexes over the union of both feature
//! sets (deduplicated — shared features are wired once) and stores both
//! conclusions side by side.

use crate::compile::{compile_rulebase, CompileOptions, Feature, FeatureKind};
use crate::error::{Result, RuleError};
use crate::Program;
use serde::{Deserialize, Serialize};

/// Cost of fusing a chain of rule bases into a single interpretation step.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FusedCost {
    /// Names of the fused bases, in chain order.
    pub names: Vec<String>,
    /// Feature count after deduplication.
    pub num_features: usize,
    /// Table entries (product of deduplicated feature radices).
    pub entries: u64,
    /// Entry width (sum of the member widths — both conclusions stored).
    pub width_bits: u32,
    /// `entries × width`.
    pub table_bits: u64,
    /// Sum of the members' separate table bits, for comparison.
    pub separate_table_bits: u64,
}

impl FusedCost {
    /// Blow-up factor of fusing versus keeping the steps separate.
    pub fn blowup(&self) -> f64 {
        self.table_bits as f64 / self.separate_table_bits.max(1) as f64
    }
}

fn same_feature(a: &Feature, b: &Feature) -> bool {
    match (&a.kind, &b.kind) {
        (FeatureKind::Direct { subject: s1, .. }, FeatureKind::Direct { subject: s2, .. }) => {
            s1 == s2
        }
        (FeatureKind::Predicate { expr: e1 }, FeatureKind::Predicate { expr: e2 }) => e1 == e2,
        _ => false,
    }
}

/// Computes the fused cost of the named rule bases.
///
/// Features appearing in several members are counted once (they can be
/// wired to one index digit); parameters of the individual bases become
/// extra index digits of the fused base, since the fused interpretation
/// must dispatch on them too.
pub fn fuse(prog: &Program, names: &[&str], opts: &CompileOptions) -> Result<FusedCost> {
    if names.len() < 2 {
        return Err(RuleError::resolve("fusion needs at least two rule bases".to_string()));
    }
    let mut features: Vec<Feature> = Vec::new();
    let mut width_bits = 0u32;
    let mut separate = 0u64;
    let mut params: Vec<(String, crate::value::Domain)> = Vec::new();
    let ss = prog.sym_sizes();

    for name in names {
        let (idx, rb) = prog
            .rulebase(name)
            .ok_or_else(|| RuleError::resolve(format!("no rule base `{name}`")))?;
        let compiled = compile_rulebase(prog, idx, opts)?;
        separate += compiled.table_bits();
        width_bits += compiled.width_bits;
        for f in &compiled.features {
            if !features.iter().any(|g| same_feature(g, f)) {
                features.push(f.clone());
            }
        }
        // identically named parameters over the same domain share one wire
        for p in &rb.params {
            if !params.iter().any(|(n, d)| *n == p.name && *d == p.dom) {
                params.push((p.name.clone(), p.dom));
            }
        }
    }
    let param_radix = params.iter().fold(1u64, |a, (_, d)| a.saturating_mul(d.size(&ss)));

    let entries =
        features.iter().map(|f| f.size).try_fold(param_radix, |a, b| a.checked_mul(b)).ok_or_else(
            || RuleError::Compile {
                rulebase: names.join("+"),
                msg: "fused feature space overflows u64".into(),
            },
        )?;

    Ok(FusedCost {
        names: names.iter().map(|s| s.to_string()).collect(),
        num_features: features.len(),
        entries,
        width_bits,
        table_bits: entries * width_bits as u64,
        separate_table_bits: separate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "
CONSTANT st = {safe, faulty}
CONSTANT dirs = 0 TO 3
VARIABLE state IN st INIT safe
VARIABLE hops IN 0 TO 15 INIT 0
INPUT busy[dirs] IN bool

ON stage1(d IN dirs) RETURNS 0 TO 3
  IF state = safe AND busy(d) THEN RETURN(0);
  IF state = faulty THEN RETURN(1);
END stage1;

ON stage2(d IN dirs) RETURNS 0 TO 1
  IF state = safe AND hops > 4 THEN RETURN(1);
  IF TRUE THEN RETURN(0);
END stage2;
";

    #[test]
    fn fusion_dedupes_shared_features() {
        let p = parse(SRC).unwrap();
        let f = fuse(&p, &["stage1", "stage2"], &CompileOptions::default()).unwrap();
        // stage1 features: state (2), busy(d) (2); stage2: state (shared), hops>4 (2)
        assert_eq!(f.num_features, 3);
        // entries include the shared param d (4): 4 * 2 * 2 * 2 = 32
        assert_eq!(f.entries, 32);
        assert!(f.table_bits > 0);
    }

    #[test]
    fn fusion_blows_up_relative_to_separate() {
        let p = parse(SRC).unwrap();
        let f = fuse(&p, &["stage1", "stage2"], &CompileOptions::default()).unwrap();
        assert!(f.blowup() > 1.0, "fused {} vs separate {}", f.table_bits, f.separate_table_bits);
    }

    #[test]
    fn fusion_needs_two_bases() {
        let p = parse(SRC).unwrap();
        assert!(fuse(&p, &["stage1"], &CompileOptions::default()).is_err());
        assert!(fuse(&p, &["stage1", "nope"], &CompileOptions::default()).is_err());
    }
}
