//! Hand-written lexer for the rule language.

use crate::error::{Pos, Result, RuleError};
use crate::token::{Keyword, Spanned, Tok};

/// Tokenizes `src` into a vector ending with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $pos:expr) => {
            out.push(Spanned { tok: $tok, pos: $pos })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen, pos);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Tok::RParen, pos);
                i += 1;
                col += 1;
            }
            '{' => {
                push!(Tok::LBrace, pos);
                i += 1;
                col += 1;
            }
            '}' => {
                push!(Tok::RBrace, pos);
                i += 1;
                col += 1;
            }
            '[' => {
                push!(Tok::LBracket, pos);
                i += 1;
                col += 1;
            }
            ']' => {
                push!(Tok::RBracket, pos);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma, pos);
                i += 1;
                col += 1;
            }
            ':' => {
                push!(Tok::Colon, pos);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(Tok::Semi, pos);
                i += 1;
                col += 1;
            }
            '!' => {
                push!(Tok::Bang, pos);
                i += 1;
                col += 1;
            }
            '=' => {
                push!(Tok::Eq, pos);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(Tok::Plus, pos);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Tok::Star, pos);
                i += 1;
                col += 1;
            }
            '/' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ne, pos);
                    i += 2;
                    col += 2;
                } else {
                    return Err(RuleError::Lex {
                        pos,
                        msg: "expected `/=` (lone `/` is not an operator)".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    push!(Tok::Assign, pos);
                    i += 2;
                    col += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le, pos);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, pos);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge, pos);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, pos);
                    i += 1;
                    col += 1;
                }
            }
            '-' => {
                push!(Tok::Minus, pos);
                i += 1;
                col += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                let v: i64 = text.parse().map_err(|_| RuleError::Lex {
                    pos,
                    msg: format!("integer literal `{text}` out of range"),
                })?;
                push!(Tok::Int(v), pos);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                match Keyword::from_str(text) {
                    Some(kw) => push!(Tok::Kw(kw), pos),
                    None => push!(Tok::Ident(text.to_string()), pos),
                }
            }
            other => {
                return Err(RuleError::Lex { pos, msg: format!("unexpected character `{other}`") })
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_paper_style_rule() {
        let t = toks("IF xpos<xdes AND ypos=ydes THEN RETURN(east);");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Keyword::If),
                Tok::Ident("xpos".into()),
                Tok::Lt,
                Tok::Ident("xdes".into()),
                Tok::Kw(Keyword::And),
                Tok::Ident("ypos".into()),
                Tok::Eq,
                Tok::Ident("ydes".into()),
                Tok::Kw(Keyword::Then),
                Tok::Kw(Keyword::Return),
                Tok::LParen,
                Tok::Ident("east".into()),
                Tok::RParen,
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("-- a comment\nx <- 1 -- trailing\n");
        assert_eq!(t, vec![Tok::Ident("x".into()), Tok::Assign, Tok::Int(1), Tok::Eof]);
    }

    #[test]
    fn multi_char_operators() {
        let t = toks("a /= b <= c >= d <- e");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Ne,
                Tok::Ident("b".into()),
                Tok::Le,
                Tok::Ident("c".into()),
                Tok::Ge,
                Tok::Ident("d".into()),
                Tok::Assign,
                Tok::Ident("e".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn set_literal_and_bang() {
        let t = toks("{safe, faulty} !send(i)");
        assert_eq!(
            t,
            vec![
                Tok::LBrace,
                Tok::Ident("safe".into()),
                Tok::Comma,
                Tok::Ident("faulty".into()),
                Tok::RBrace,
                Tok::Bang,
                Tok::Ident("send".into()),
                Tok::LParen,
                Tok::Ident("i".into()),
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_sensitive() {
        // lowercase `if` is an identifier, matching the paper's uppercase style
        let t = toks("if IF");
        assert_eq!(t, vec![Tok::Ident("if".into()), Tok::Kw(Keyword::If), Tok::Eof]);
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("x\ny").unwrap();
        assert_eq!(spanned[0].pos.line, 1);
        assert_eq!(spanned[1].pos.line, 2);
        assert_eq!(spanned[1].pos.col, 1);
    }

    #[test]
    fn bad_character_errors() {
        assert!(matches!(lex("a ? b"), Err(RuleError::Lex { .. })));
        assert!(matches!(lex("a / b"), Err(RuleError::Lex { .. })));
    }
}
