//! The compiled rule interpreter — software model of Figures 5 and 6.
//!
//! One invocation performs the three hardware steps:
//!
//! 1. **premise processing** — the FCFBs evaluate the extracted features
//!    against the current inputs/registers ([`CompiledRuleBase::feature_vector`]);
//! 2. **RBR-kernel** — a single lookup in the completely filled rule table
//!    selects the applicable rule;
//! 3. **conclusion processing** — the selected rule's commands execute
//!    (shared with the reference evaluator, so compiled and reference
//!    semantics cannot drift).
//!
//! The paper's delay model — "the sum of the delays in the configurable
//! wiring (negligible), two times the FCFBs and one memory access" — is
//! captured by [`CompiledRuleBase::DECISION_DELAY_UNITS`], which the
//! simulator converts into routing-decision cycles.

use crate::ast::Program;
use crate::compile::{CompileWarning, Feature, FeatureKind};
use crate::env::{InputProvider, RegFile};
use crate::error::{Result, RuleError};
use crate::eval::{apply_rule, eval_expr, EvalCtx, FireOutcome};
use crate::probe::{InterpProbe, Stage};
use crate::value::Value;
use std::num::NonZeroU16;
use std::time::Instant;

/// One rule base compiled to a filled table.
#[derive(Clone, Debug)]
pub struct CompiledRuleBase {
    /// Index into [`Program::rulebases`].
    pub rb: usize,
    /// Extracted features, in index-digit order (first = least significant).
    pub features: Vec<Feature>,
    /// Radix of each digit.
    pub radices: Vec<u64>,
    /// The filled table: `Some(e)` encodes rule `e - 1`, `None` is a gap
    /// (no applicable rule). The sentinel lives in the type — a raw `0`
    /// can no longer be confused with a rule index, and
    /// [`CompiledRuleBase::decode_entry`] rejects out-of-range entries so
    /// a corrupt or stale table surfaces as an error instead of silently
    /// firing an arbitrary rule.
    pub table: Vec<Option<NonZeroU16>>,
    /// Number of table entries (product of radices).
    pub entries: u64,
    /// Modelled entry width in bits (conclusion selector + return field).
    pub width_bits: u32,
    /// Conflict/gap resolutions performed while filling the table (§4.3
    /// resolves both silently; they are collected here for analysis).
    pub warnings: Vec<CompileWarning>,
    /// Per rule: at how many feature-space entries its premise holds.
    /// `0` means the premise is unsatisfiable over the abstract feature
    /// space; a non-zero count with no table entry selecting the rule
    /// means it is shadowed by earlier rules.
    pub rule_applicable: Vec<u64>,
    /// Per rule: the guard IR the table was filled from — the premise
    /// with quantifiers expanded, `/=` normalised and constants folded.
    /// This is the exact formula semantic analyses (`ftr_analyze::absint`)
    /// should reason over; the surface premise in
    /// [`Program::rulebases`] may still contain quantifiers.
    pub premises: Vec<crate::ast::Expr>,
}

impl CompiledRuleBase {
    /// Abstract delay of one interpretation in FCFB units: wiring
    /// (negligible) + 2 × FCFB + 1 memory access (§4.3).
    pub const DECISION_DELAY_UNITS: u32 = 3;

    /// Total table size in bits (the paper's `entries × width` figure).
    pub fn table_bits(&self) -> u64 {
        self.entries * self.width_bits as u64
    }

    /// Renders the interpreter configuration in the style of the paper's
    /// Figure 7: which inputs wire directly into the table index, which
    /// FCFB-computed predicates feed the remaining index bits, and the
    /// table geometry.
    pub fn describe(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let rb = &prog.rulebases[self.rb];
        let mut s = String::new();
        let _ = writeln!(s, "rule interpreter configuration for `{}`", rb.name);
        let _ = writeln!(s, "  index digits (least significant first):");
        for (i, f) in self.features.iter().enumerate() {
            match &f.kind {
                crate::compile::FeatureKind::Direct { subject, dom } => {
                    let _ = writeln!(
                        s,
                        "    [{i}] direct wire   radix {:<3} <- {}",
                        f.size,
                        crate::pretty::describe_expr(prog, rb, subject)
                    );
                    let _ = dom;
                }
                crate::compile::FeatureKind::Predicate { expr } => {
                    let _ = writeln!(
                        s,
                        "    [{i}] FCFB predicate radix 2   <- {}",
                        crate::pretty::describe_expr(prog, rb, expr)
                    );
                }
            }
        }
        let _ = writeln!(
            s,
            "  RBR kernel: {} entries x {} bits = {} bits of rule table",
            self.entries,
            self.width_bits,
            self.table_bits()
        );
        let _ = writeln!(
            s,
            "  conclusion processing: {} rules, shared FCFB pool: {}",
            rb.rules.len(),
            crate::fcfb::inventory(prog, rb)
                .iter()
                .map(|(k, n)| if *n > 1 { format!("{n} x {k}") } else { k.to_string() })
                .collect::<Vec<_>>()
                .join(", ")
        );
        s
    }

    /// Step 1: computes the feature digits from live inputs/registers.
    pub fn feature_vector(
        &self,
        prog: &Program,
        params: &[Value],
        regs: &RegFile,
        inputs: &dyn InputProvider,
    ) -> Result<Vec<u64>> {
        let ss = prog.sym_sizes();
        let mut ctx = EvalCtx::new(prog, regs, inputs, params);
        self.features
            .iter()
            .map(|f| match &f.kind {
                FeatureKind::Direct { subject, dom } => {
                    let v = eval_expr(&mut ctx, subject)?;
                    dom.ordinal(&v, &ss).ok_or_else(|| {
                        RuleError::eval(format!("direct feature value {v} outside {dom:?}"))
                    })
                }
                FeatureKind::Predicate { expr } => {
                    Ok(u64::from(eval_expr(&mut ctx, expr)?.as_bool()?))
                }
            })
            .collect()
    }

    /// Step 2: mixed-radix index from the feature digits.
    pub fn index(&self, digits: &[u64]) -> u64 {
        let mut idx = 0u64;
        let mut stride = 1u64;
        for (d, r) in digits.iter().zip(&self.radices) {
            idx += d * stride;
            stride *= r;
        }
        idx
    }

    /// Decodes a raw table entry into a rule index. Entries indexing past
    /// the rule list are an error: the table is supposed to be filled by
    /// [`crate::compile::compile_rulebase`], so anything out of range is
    /// corruption (stale table, bad deserialisation, buggy rewrite).
    pub fn decode_entry(&self, e: Option<NonZeroU16>) -> Result<Option<usize>> {
        match e {
            None => Ok(None),
            Some(nz) => {
                let rule = nz.get() as usize - 1;
                if rule < self.premises.len() {
                    Ok(Some(rule))
                } else {
                    Err(RuleError::eval(format!(
                        "corrupt rule table: entry {} indexes rule {rule}, but base has only {} rules",
                        nz.get(),
                        self.premises.len()
                    )))
                }
            }
        }
    }

    /// Checked kernel lookup: table entry at mixed-radix index `idx`,
    /// decoded to a rule index (`None` = gap).
    pub fn entry(&self, idx: u64) -> Result<Option<usize>> {
        let e = *self.table.get(idx as usize).ok_or_else(|| {
            RuleError::eval(format!(
                "corrupt rule table: index {idx} outside {} entries",
                self.table.len()
            ))
        })?;
        self.decode_entry(e)
    }

    /// Steps 1+2: which rule applies (None = gap entry / no rule).
    pub fn select(
        &self,
        prog: &Program,
        params: &[Value],
        regs: &RegFile,
        inputs: &dyn InputProvider,
    ) -> Result<Option<usize>> {
        let digits = self.feature_vector(prog, params, regs, inputs)?;
        self.entry(self.index(&digits))
    }

    /// Full interpretation: premise processing, kernel lookup, conclusion
    /// processing.
    pub fn fire(
        &self,
        prog: &Program,
        params: &[Value],
        regs: &mut RegFile,
        inputs: &dyn InputProvider,
    ) -> Result<FireOutcome> {
        match self.select(prog, params, regs, inputs)? {
            None => Ok(FireOutcome::default()),
            Some(rule) => apply_rule(prog, self.rb, rule, params, regs, inputs),
        }
    }

    /// Like [`CompiledRuleBase::fire`], but reports the wall-clock cost of
    /// each of the three interpretation stages to `probe`. The unprobed
    /// path pays nothing for this — [`CompiledRuleBase::fire`] is
    /// untouched.
    pub fn fire_probed(
        &self,
        prog: &Program,
        params: &[Value],
        regs: &mut RegFile,
        inputs: &dyn InputProvider,
        probe: &dyn InterpProbe,
    ) -> Result<FireOutcome> {
        let t0 = Instant::now();
        let digits = self.feature_vector(prog, params, regs, inputs)?;
        let t1 = Instant::now();
        probe.record_stage(self.rb, Stage::Premise, (t1 - t0).as_nanos() as u64);
        let rule = self.entry(self.index(&digits))?;
        let t2 = Instant::now();
        probe.record_stage(self.rb, Stage::Kernel, (t2 - t1).as_nanos() as u64);
        let out = match rule {
            None => Ok(FireOutcome::default()),
            Some(r) => apply_rule(prog, self.rb, r, params, regs, inputs),
        };
        probe.record_stage(self.rb, Stage::Conclusion, t2.elapsed().as_nanos() as u64);
        out
    }
}

/// A fully compiled program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The source program (owned so the compiled artefact is self-contained).
    pub prog: Program,
    /// One compiled base per rule base, same order.
    pub bases: Vec<CompiledRuleBase>,
}

impl CompiledProgram {
    /// Finds a compiled rule base by name.
    pub fn base(&self, name: &str) -> Option<&CompiledRuleBase> {
        let (i, _) = self.prog.rulebase(name)?;
        Some(&self.bases[i])
    }

    /// Fires the named rule base once.
    pub fn fire(
        &self,
        name: &str,
        params: &[Value],
        regs: &mut RegFile,
        inputs: &dyn InputProvider,
    ) -> Result<FireOutcome> {
        let base =
            self.base(name).ok_or_else(|| RuleError::eval(format!("no rule base `{name}`")))?;
        base.fire(&self.prog, params, regs, inputs)
    }

    /// Total rule-table bits across all bases.
    pub fn total_table_bits(&self) -> u64 {
        self.bases.iter().map(|b| b.table_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::env::InputMap;
    use crate::eval::fire_reference;
    use crate::parser::parse;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    const SRC: &str = "
CONSTANT st = {safe, warn, faulty}
CONSTANT dirs = 0 TO 3
VARIABLE state IN st INIT safe
VARIABLE hits IN 0 TO 15 INIT 0
INPUT level[dirs] IN 0 TO 9
ON classify(d IN dirs) RETURNS 0 TO 2
  IF state = faulty THEN RETURN(2);
  IF level(d) > 6 AND state = safe THEN state <- warn, hits <- hits + 1, RETURN(1);
  IF level(d) > 8 THEN state <- faulty, RETURN(2);
  IF TRUE THEN RETURN(0);
END classify;
";

    #[test]
    fn compiled_matches_reference_exhaustively() {
        let p = parse(SRC).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        // exhaust states × levels × params
        for state_idx in 0..3u32 {
            for level in 0..10i64 {
                for d in 0..4i64 {
                    let mut regs_a = RegFile::new(&p);
                    regs_a.write(&p, 0, &[], Value::Sym { ty: 0, idx: state_idx }).unwrap();
                    let mut regs_b = regs_a.clone();
                    let mut inp = InputMap::new();
                    inp.set_default(&p, "level", int(0)).unwrap();
                    inp.set(&p, "level", &[int(d)], int(level)).unwrap();

                    let r = fire_reference(&p, 0, &[int(d)], &mut regs_a, &inp).unwrap();
                    let k = c.fire("classify", &[int(d)], &mut regs_b, &inp).unwrap();
                    assert_eq!(r, k, "state={state_idx} level={level} d={d}");
                    assert_eq!(regs_a, regs_b, "post-state diverged");
                }
            }
        }
    }

    #[test]
    fn table_geometry() {
        let p = parse(SRC).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let b = &c.bases[0];
        // features: state (direct, 3) + level(d)>6 + level(d)>8 (2 bits)
        assert_eq!(b.entries, 12);
        // selector ceil(log2(5)) = 3 bits + 2-bit return
        assert_eq!(b.width_bits, 5);
        assert_eq!(b.table_bits(), 60);
    }

    #[test]
    fn gap_entries_are_noops() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 5\n\
             ON f() RETURNS 0 TO 1\n\
               IF n = 0 THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let mut regs = RegFile::new(&p);
        let out = c.fire("f", &[], &mut regs, &InputMap::new()).unwrap();
        assert_eq!(out.rule, None);
        assert_eq!(out.returned, None);
    }

    #[test]
    fn probed_fire_matches_unprobed_and_sees_all_stages() {
        use crate::probe::{InterpProbe, Stage};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<(usize, Stage)>>);
        impl InterpProbe for Recorder {
            fn record_stage(&self, base: usize, stage: Stage, _nanos: u64) {
                self.0.lock().unwrap().push((base, stage));
            }
        }

        let p = parse(SRC).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let rec = Recorder::default();
        let mut regs_a = RegFile::new(&p);
        let mut regs_b = regs_a.clone();
        let mut inp = InputMap::new();
        inp.set_default(&p, "level", int(7)).unwrap();

        let plain = c.bases[0].fire(&p, &[int(1)], &mut regs_a, &inp).unwrap();
        let probed = c.bases[0].fire_probed(&p, &[int(1)], &mut regs_b, &inp, &rec).unwrap();
        assert_eq!(plain, probed, "probing must not change semantics");
        assert_eq!(regs_a, regs_b);
        let seen = rec.0.lock().unwrap().clone();
        assert_eq!(seen, vec![(0, Stage::Premise), (0, Stage::Kernel), (0, Stage::Conclusion)]);
    }

    #[test]
    fn corrupt_table_entries_error_instead_of_firing_arbitrary_rules() {
        let p = parse(SRC).unwrap();
        let mut inp = InputMap::new();
        inp.set_default(&p, "level", int(0)).unwrap();

        // garbage entry: points past the rule list
        let mut c = compile(&p, &CompileOptions::default()).unwrap();
        for e in c.bases[0].table.iter_mut() {
            *e = NonZeroU16::new(200);
        }
        let mut regs = RegFile::new(&p);
        let err = c.fire("classify", &[int(0)], &mut regs, &inp).unwrap_err();
        assert!(err.to_string().contains("corrupt rule table"), "{err}");

        // truncated table: the kernel lookup itself must fail, not panic
        let mut c = compile(&p, &CompileOptions::default()).unwrap();
        c.bases[0].table.truncate(1);
        let mut regs = RegFile::new(&p);
        regs.write(&p, 0, &[], Value::Sym { ty: 0, idx: 2 }).unwrap();
        let err = c.fire("classify", &[int(0)], &mut regs, &inp).unwrap_err();
        assert!(err.to_string().contains("corrupt rule table"), "{err}");

        // the probed path takes the same checked decode
        struct Null;
        impl crate::probe::InterpProbe for Null {
            fn record_stage(&self, _: usize, _: crate::probe::Stage, _: u64) {}
        }
        let mut c = compile(&p, &CompileOptions::default()).unwrap();
        for e in c.bases[0].table.iter_mut() {
            *e = NonZeroU16::new(77);
        }
        let mut regs = RegFile::new(&p);
        assert!(c.bases[0].fire_probed(&p, &[int(0)], &mut regs, &inp, &Null).is_err());
    }

    #[test]
    fn index_is_mixed_radix() {
        let p = parse(SRC).unwrap();
        let c = compile(&p, &CompileOptions::default()).unwrap();
        let b = &c.bases[0];
        assert_eq!(b.index(&[0, 0, 0]), 0);
        let last: Vec<u64> = b.radices.iter().map(|r| r - 1).collect();
        assert_eq!(b.index(&last), b.entries - 1);
    }
}
