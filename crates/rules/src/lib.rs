//! # ftr-rules — rule-based routing language
//!
//! Implementation of the paper's primary contribution (§4): a declarative
//! rule language for routing algorithms, the ARON compilation scheme that
//! turns rule bases into completely-filled lookup tables, a three-stage
//! hardware-model interpreter (premise processing → RBR-kernel lookup →
//! conclusion processing), an event manager, and the hardware cost model
//! (table bits, FCFB inventory, register bits) behind Tables 1 and 2.
//!
//! Pipeline: [`parser::parse`] → [`ast::Program`] → [`compile::compile`] →
//! [`interp::CompiledProgram`] driven by [`event::Machine`]. The reference
//! semantics live in [`eval`]; the compiled interpreter is differentially
//! tested against them.

pub mod ast;
pub mod compile;
pub mod cost;
pub mod env;
pub mod error;
pub mod eval;
pub mod event;
pub mod fcfb;
pub mod fuse;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod probe;
pub mod token;
pub mod value;
pub mod vm;

pub use ast::Program;
pub use compile::{compile, compile_rulebase, CompileOptions, CompileWarning, ConflictKind};
pub use cost::{ProgramCost, RegisterCost, RuleBaseCost};
pub use env::{InputMap, InputProvider, RegFile};
pub use error::{Result, RuleError};
pub use eval::{fire_reference, EventInstance, FireOutcome};
pub use event::{Machine, StepWeights};
pub use fcfb::FcfbKind;
pub use interp::{CompiledProgram, CompiledRuleBase};
pub use parser::parse;
pub use probe::{InterpProbe, Stage};
pub use value::{Domain, Type, Value};
pub use vm::{Backend, VmProgram};
