//! Free Configurable Function Block (FCFB) inventory.
//!
//! The hardware interpreter of Figure 6 implements "predicates and
//! functions (e.g. subtraction, addition, priority detection etc.)" as
//! configurable blocks shared between premise and conclusion processing.
//! This module walks a rule base and derives the set of FCFBs it needs —
//! the "FCFBs" column of Tables 1 and 2. Direct features (symbol values
//! wired straight into the table index) need no block; everything computed
//! does.

use crate::ast::*;
use crate::value::{Domain, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Kinds of configurable function blocks, mirroring the units named in the
/// paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FcfbKind {
    /// Integer comparison between two computed values.
    MagnitudeComparator,
    /// Integer comparison against a constant.
    CompareConst,
    /// Equality with zero / empty-set test.
    ZeroCheck,
    /// General addition.
    Adder,
    /// General subtraction.
    Subtractor,
    /// `x <- x + 1` in a conclusion (the paper's "conditional increment").
    ConditionalIncrement,
    /// `x <- x - 1` in a conclusion.
    Decrementor,
    /// Minimum/maximum selection (`min`, `max`, `argmin`, `argmax`).
    MinSelection,
    /// Membership test against a runtime set.
    MembershipTest,
    /// Set union.
    SetUnion,
    /// Set difference.
    SetSubtraction,
    /// Set intersection.
    SetIntersection,
    /// Computation in a finite lattice (`latmax` on ordered symbols).
    LatticeCompute,
    /// Bit-level logic (xor, popcount, bit extract, set equality,
    /// cardinality — the "logical unit, d bits wide" of Table 2).
    LogicalUnit,
    /// Mesh distance computation (`absdiff`).
    MeshDistance,
    /// Multiplier (rare; flagged so its cost stands out).
    Multiplier,
}

impl fmt::Display for FcfbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FcfbKind::MagnitudeComparator => "magnitude comparator",
            FcfbKind::CompareConst => "compare with constant",
            FcfbKind::ZeroCheck => "zero check",
            FcfbKind::Adder => "adder",
            FcfbKind::Subtractor => "subtractor",
            FcfbKind::ConditionalIncrement => "conditional increment",
            FcfbKind::Decrementor => "decrementor",
            FcfbKind::MinSelection => "minimum selection",
            FcfbKind::MembershipTest => "membership testing",
            FcfbKind::SetUnion => "set union",
            FcfbKind::SetSubtraction => "set subtraction",
            FcfbKind::SetIntersection => "set intersection",
            FcfbKind::LatticeCompute => "computation in a finite lattice",
            FcfbKind::LogicalUnit => "logical unit",
            FcfbKind::MeshDistance => "mesh distance computation",
            FcfbKind::Multiplier => "multiplier",
        };
        f.write_str(s)
    }
}

/// FCFB requirements of one rule base: kind → number of distinct
/// (structurally different) uses.
pub type FcfbInventory = BTreeMap<FcfbKind, usize>;

/// Collects the FCFB inventory of a rule base (premises + conclusions).
/// Structurally identical expressions share a block, mirroring the paper's
/// "common pool of resources".
pub fn inventory(prog: &Program, rb: &RuleBase) -> FcfbInventory {
    let mut seen: Vec<(FcfbKind, Expr)> = Vec::new();
    for rule in &rb.rules {
        walk_expr(prog, rb, &rule.premise, &mut seen);
        for cmd in &rule.conclusion {
            walk_command(prog, rb, cmd, &mut seen);
        }
    }
    let mut inv = FcfbInventory::new();
    for (kind, _) in seen {
        *inv.entry(kind).or_insert(0) += 1;
    }
    inv
}

fn note(kind: FcfbKind, e: &Expr, seen: &mut Vec<(FcfbKind, Expr)>) {
    if !seen.iter().any(|(k, x)| *k == kind && x == e) {
        seen.push((kind, e.clone()));
    }
}

fn is_int_lit(e: &Expr) -> bool {
    matches!(e, Expr::Lit(Value::Int(_)))
}

fn is_zero_lit(e: &Expr) -> bool {
    matches!(e, Expr::Lit(Value::Int(0)))
}

fn is_sym_or_bool_subject(prog: &Program, rb: &RuleBase, e: &Expr) -> bool {
    scalar_domain(prog, rb, e).map(|d| matches!(d, Domain::Sym(_) | Domain::Bool)).unwrap_or(false)
}

fn scalar_domain(prog: &Program, rb: &RuleBase, e: &Expr) -> Option<Domain> {
    match e {
        Expr::Ref(Ref::Var(i)) => match prog.vars[*i].elem {
            crate::value::Type::Scalar(d) => Some(d),
            _ => None,
        },
        Expr::Ref(Ref::Input(i)) => match prog.inputs[*i].elem {
            crate::value::Type::Scalar(d) => Some(d),
            _ => None,
        },
        Expr::Ref(Ref::Param(i)) => rb.params.get(*i).map(|p| p.dom),
        Expr::Indexed { target, .. } => match target {
            IndexedRef::Var(i) => match prog.vars[*i].elem {
                crate::value::Type::Scalar(d) => Some(d),
                _ => None,
            },
            IndexedRef::Input(i) => match prog.inputs[*i].elem {
                crate::value::Type::Scalar(d) => Some(d),
                _ => None,
            },
        },
        _ => None,
    }
}

fn walk_expr(prog: &Program, rb: &RuleBase, e: &Expr, seen: &mut Vec<(FcfbKind, Expr)>) {
    match e {
        Expr::Lit(_) | Expr::Ref(_) => {}
        Expr::Indexed { indices, .. } => {
            for i in indices {
                walk_expr(prog, rb, i, seen);
            }
        }
        Expr::Un(_, inner) => walk_expr(prog, rb, inner, seen),
        Expr::Bin(op, l, r) => {
            walk_expr(prog, rb, l, seen);
            walk_expr(prog, rb, r, seen);
            match op {
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if is_int_lit(l) || is_int_lit(r) {
                        note(FcfbKind::CompareConst, e, seen);
                    } else {
                        note(FcfbKind::MagnitudeComparator, e, seen);
                    }
                }
                BinOp::Eq | BinOp::Ne => {
                    // symbol/bool vs literal wires directly into the index
                    let sym_direct = (matches!(&**r, Expr::Lit(_))
                        && is_sym_or_bool_subject(prog, rb, l))
                        || (matches!(&**l, Expr::Lit(_)) && is_sym_or_bool_subject(prog, rb, r));
                    if sym_direct {
                        // no FCFB needed
                    } else if is_zero_lit(l) || is_zero_lit(r) {
                        note(FcfbKind::ZeroCheck, e, seen);
                    } else if is_int_lit(l) || is_int_lit(r) {
                        note(FcfbKind::CompareConst, e, seen);
                    } else {
                        note(FcfbKind::MagnitudeComparator, e, seen);
                    }
                }
                BinOp::In => {
                    // membership against a literal set of symbols is direct;
                    // runtime sets need a membership-test unit
                    let direct = matches!(&**r, Expr::Lit(Value::Set { .. }))
                        && is_sym_or_bool_subject(prog, rb, l);
                    if !direct {
                        note(FcfbKind::MembershipTest, e, seen);
                    }
                }
                BinOp::Add => note(FcfbKind::Adder, e, seen),
                BinOp::Sub => note(FcfbKind::Subtractor, e, seen),
                BinOp::Mul => note(FcfbKind::Multiplier, e, seen),
                BinOp::And | BinOp::Or => {}
            }
        }
        Expr::Quant { set, body, .. } => {
            walk_expr(prog, rb, set, seen);
            walk_expr(prog, rb, body, seen);
        }
        Expr::Call { builtin, args } => {
            for a in args {
                walk_expr(prog, rb, a, seen);
            }
            let kind = match builtin {
                Builtin::Min | Builtin::Max | Builtin::ArgMin(_) | Builtin::ArgMax(_) => {
                    FcfbKind::MinSelection
                }
                Builtin::AbsDiff => FcfbKind::MeshDistance,
                Builtin::Xor | Builtin::Popcount | Builtin::Bit | Builtin::Card => {
                    FcfbKind::LogicalUnit
                }
                Builtin::LatMax => FcfbKind::LatticeCompute,
                Builtin::Union | Builtin::Include => FcfbKind::SetUnion,
                Builtin::Isect => FcfbKind::SetIntersection,
                Builtin::Diff | Builtin::Exclude => FcfbKind::SetSubtraction,
            };
            note(kind, e, seen);
        }
    }
}

fn walk_command(prog: &Program, rb: &RuleBase, c: &Command, seen: &mut Vec<(FcfbKind, Expr)>) {
    match c {
        Command::Assign { var, indices, value } => {
            for i in indices {
                walk_expr(prog, rb, i, seen);
            }
            // conditional increment/decrement pattern: x <- x ± 1
            let self_ref = if indices.is_empty() {
                Expr::Ref(Ref::Var(*var))
            } else {
                Expr::Indexed { target: IndexedRef::Var(*var), indices: indices.clone() }
            };
            match value {
                Expr::Bin(BinOp::Add, l, r)
                    if **l == self_ref && matches!(**r, Expr::Lit(Value::Int(1))) =>
                {
                    note(FcfbKind::ConditionalIncrement, value, seen);
                }
                Expr::Bin(BinOp::Sub, l, r)
                    if **l == self_ref && matches!(**r, Expr::Lit(Value::Int(1))) =>
                {
                    note(FcfbKind::Decrementor, value, seen);
                }
                other => walk_expr(prog, rb, other, seen),
            }
        }
        Command::Return(e) => walk_expr(prog, rb, e, seen),
        Command::Emit { args, .. } => {
            for a in args {
                walk_expr(prog, rb, a, seen);
            }
        }
        Command::ForAll { set, body, .. } => {
            walk_expr(prog, rb, set, seen);
            for b in body {
                walk_command(prog, rb, b, seen);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn inv_of(src: &str) -> FcfbInventory {
        let p = parse(src).unwrap();
        inventory(&p, &p.rulebases[0])
    }

    #[test]
    fn symbol_equality_needs_no_fcfb() {
        let inv = inv_of(
            "CONSTANT st = {a, b}\nVARIABLE s IN st\n\
             ON f() IF s = a THEN s <- b; END f;",
        );
        assert!(inv.is_empty(), "{inv:?}");
    }

    #[test]
    fn zero_check_and_const_compare() {
        let inv = inv_of(
            "VARIABLE n IN 0 TO 7\n\
             ON f() IF n = 0 OR n > 2 THEN n <- 1; END f;",
        );
        assert_eq!(inv.get(&FcfbKind::ZeroCheck), Some(&1));
        assert_eq!(inv.get(&FcfbKind::CompareConst), Some(&1));
    }

    #[test]
    fn conditional_increment_detected() {
        let inv = inv_of(
            "VARIABLE n IN 0 TO 7\nVARIABLE m IN 0 TO 7\n\
             ON f() IF n = 0 THEN n <- n + 1, m <- m - 1; END f;",
        );
        assert_eq!(inv.get(&FcfbKind::ConditionalIncrement), Some(&1));
        assert_eq!(inv.get(&FcfbKind::Decrementor), Some(&1));
        assert_eq!(inv.get(&FcfbKind::Adder), None, "x<-x+1 is an increment, not an adder");
    }

    #[test]
    fn decrementor_detected() {
        let inv = inv_of(
            "VARIABLE n IN 0 TO 7\n\
             ON f() IF n > 0 THEN n <- n - 1; END f;",
        );
        assert_eq!(inv.get(&FcfbKind::Decrementor), Some(&1));
    }

    #[test]
    fn min_selection_and_membership() {
        let inv = inv_of(
            "CONSTANT dirs = 0 TO 3\n\
             INPUT q[dirs] IN 0 TO 9\n\
             VARIABLE s IN SETOF dirs\n\
             ON f(i IN dirs) RETURNS dirs\n\
               IF i IN s THEN RETURN(argmin(q, s));\n\
             END f;",
        );
        assert_eq!(inv.get(&FcfbKind::MinSelection), Some(&1));
        assert_eq!(inv.get(&FcfbKind::MembershipTest), Some(&1));
    }

    #[test]
    fn shared_expressions_counted_once() {
        let inv = inv_of(
            "VARIABLE n IN 0 TO 7\n\
             ON f() RETURNS 0 TO 1\n\
               IF n > 2 THEN RETURN(0);\n\
               IF n > 2 OR n = 0 THEN RETURN(1);\n\
             END f;",
        );
        // `n > 2` appears twice but is one block
        assert_eq!(inv.get(&FcfbKind::CompareConst), Some(&1));
        assert_eq!(inv.get(&FcfbKind::ZeroCheck), Some(&1));
    }

    #[test]
    fn lattice_and_set_ops() {
        let inv = inv_of(
            "CONSTANT st = {lo, mid, hi}\n\
             VARIABLE a IN st\nVARIABLE s IN SETOF st\n\
             ON f(x IN st)\n\
               IF TRUE THEN a <- latmax(a, x), s <- union(s, {mid}), s <- diff(s, {lo});\n\
             END f;",
        );
        assert_eq!(inv.get(&FcfbKind::LatticeCompute), Some(&1));
        assert_eq!(inv.get(&FcfbKind::SetUnion), Some(&1));
        assert_eq!(inv.get(&FcfbKind::SetSubtraction), Some(&1));
    }
}
