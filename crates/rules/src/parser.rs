//! Recursive-descent parser producing the resolved, typed AST.
//!
//! Resolution and type checking happen during the single parse pass:
//! declarations precede use (as in the paper's examples), so every
//! identifier can be resolved against the symbol table built so far, and
//! every expression is typed bottom-up as it is constructed.

use crate::ast::*;
use crate::error::{Pos, Result, RuleError};
use crate::lexer::lex;
use crate::token::{Keyword as Kw, Spanned, Tok};
use crate::value::{Domain, Type, Value};
use std::collections::HashMap;

/// Parses a complete rule program.
pub fn parse(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        prog: Program::default(),
        domains: HashMap::new(),
        params: Vec::new(),
        bounds: Vec::new(),
    };
    p.program()?;
    Ok(p.prog)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    prog: Program,
    /// Named domains: symbol types and `CONSTANT d = lo TO hi` ranges.
    domains: HashMap<String, Domain>,
    /// Parameters of the rule base currently being parsed.
    params: Vec<Param>,
    /// Stack of quantifier binders, innermost last.
    bounds: Vec<(String, Domain)>,
}

impl Parser {
    // ------------------------------------------------------------- helpers

    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<()> {
        self.expect(&Tok::Kw(k))
    }

    fn err(&self, msg: String) -> RuleError {
        RuleError::Parse { pos: self.pos(), msg }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn int_lit(&mut self) -> Result<i64> {
        let neg = self.eat(&Tok::Minus);
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    fn dom_size(&self, d: Domain) -> u64 {
        d.size(&|t| self.prog.sym_size(t))
    }

    fn full_set(&self, d: Domain) -> Result<Value> {
        Value::full_set(d, &|t| self.prog.sym_size(t)).map_err(|e| match e {
            RuleError::Eval { msg } => RuleError::Resolve { msg },
            other => other,
        })
    }

    fn check_fresh(&self, name: &str) -> Result<()> {
        let clash = self.domains.contains_key(name)
            || self.prog.consts.iter().any(|c| c.name == name)
            || self.prog.vars.iter().any(|v| v.name == name)
            || self.prog.inputs.iter().any(|v| v.name == name)
            || self.prog.symbol_value(name).is_some();
        if clash {
            Err(RuleError::resolve(format!("name `{name}` already declared")))
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------- program

    fn program(&mut self) -> Result<()> {
        loop {
            match self.peek().clone() {
                Tok::Eof => return Ok(()),
                Tok::Kw(Kw::Constant) => self.constant_decl()?,
                Tok::Kw(Kw::Variable) => self.var_decl()?,
                Tok::Kw(Kw::Input) => self.input_decl()?,
                Tok::Kw(Kw::On) => self.rulebase()?,
                other => return Err(self.err(format!("expected declaration, found {other}"))),
            }
        }
    }

    /// `CONSTANT name = {a, b, c}` — symbol type + full-set constant
    /// `CONSTANT name = lo TO hi`  — named integer domain + full-set constant
    /// `CONSTANT name = <int>`     — plain integer constant
    fn constant_decl(&mut self) -> Result<()> {
        self.expect_kw(Kw::Constant)?;
        let name = self.ident()?;
        self.check_fresh(&name)?;
        self.expect(&Tok::Eq)?;
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let mut symbols = Vec::new();
                if !self.eat(&Tok::RBrace) {
                    loop {
                        let s = self.ident()?;
                        if self.prog.symbol_value(&s).is_some() {
                            return Err(RuleError::resolve(format!(
                                "symbol `{s}` already declared in another type"
                            )));
                        }
                        if symbols.contains(&s) {
                            return Err(RuleError::resolve(format!(
                                "duplicate symbol `{s}` in type `{name}`"
                            )));
                        }
                        symbols.push(s);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RBrace)?;
                }
                if symbols.is_empty() {
                    return Err(RuleError::resolve(format!("symbol type `{name}` is empty")));
                }
                let t = self.prog.sym_types.len();
                self.prog.sym_types.push(SymType { name: name.clone(), symbols });
                let dom = Domain::Sym(t);
                self.domains.insert(name.clone(), dom);
                let full = self.full_set(dom)?;
                self.prog.consts.push(ConstDecl { name, value: full, ty: Type::Set(dom) });
            }
            _ => {
                let lo = self.const_int_bound()?;
                if self.eat(&Tok::Kw(Kw::To)) {
                    let hi = self.const_int_bound()?;
                    if hi < lo {
                        return Err(RuleError::resolve(format!(
                            "empty range {lo} TO {hi} for `{name}`"
                        )));
                    }
                    let dom = Domain::Int { lo, hi };
                    self.domains.insert(name.clone(), dom);
                    let full = self.full_set(dom)?;
                    self.prog.consts.push(ConstDecl { name, value: full, ty: Type::Set(dom) });
                } else {
                    self.prog.consts.push(ConstDecl {
                        name,
                        value: Value::Int(lo),
                        ty: Type::Scalar(Domain::Int { lo, hi: lo }),
                    });
                }
            }
        }
        Ok(())
    }

    /// An integer bound: literal or previously declared integer constant.
    fn const_int_bound(&mut self) -> Result<i64> {
        match self.peek().clone() {
            Tok::Int(_) | Tok::Minus => self.int_lit(),
            Tok::Ident(name) => {
                self.bump();
                match self.prog.consts.iter().find(|c| c.name == name) {
                    Some(c) => c.value.as_int().map_err(|_| {
                        RuleError::resolve(format!("`{name}` is not an integer constant"))
                    }),
                    None => Err(RuleError::resolve(format!("unknown integer constant `{name}`"))),
                }
            }
            other => Err(self.err(format!("expected integer bound, found {other}"))),
        }
    }

    /// A domain expression: `lo TO hi`, a named domain, or `bool`.
    fn domain(&mut self) -> Result<Domain> {
        match self.peek().clone() {
            Tok::Int(_) | Tok::Minus => {
                let lo = self.int_lit()?;
                self.expect_kw(Kw::To)?;
                let hi = self.const_int_bound()?;
                if hi < lo {
                    return Err(RuleError::resolve(format!("empty range {lo} TO {hi}")));
                }
                Ok(Domain::Int { lo, hi })
            }
            Tok::Ident(name) => {
                self.bump();
                if name == "bool" {
                    return Ok(Domain::Bool);
                }
                // Could be `name TO hi` where name is an int constant.
                if self.peek() == &Tok::Kw(Kw::To) {
                    let lo = self
                        .prog
                        .consts
                        .iter()
                        .find(|c| c.name == name)
                        .and_then(|c| c.value.as_int().ok())
                        .ok_or_else(|| {
                            RuleError::resolve(format!("unknown integer constant `{name}`"))
                        })?;
                    self.bump();
                    let hi = self.const_int_bound()?;
                    if hi < lo {
                        return Err(RuleError::resolve(format!("empty range {lo} TO {hi}")));
                    }
                    return Ok(Domain::Int { lo, hi });
                }
                self.domains
                    .get(&name)
                    .copied()
                    .ok_or_else(|| RuleError::resolve(format!("unknown domain `{name}`")))
            }
            other => Err(self.err(format!("expected domain, found {other}"))),
        }
    }

    /// A type expression: domain or `SETOF domain`.
    fn type_expr(&mut self) -> Result<Type> {
        if self.eat(&Tok::Kw(Kw::SetOf)) {
            let d = self.domain()?;
            if self.dom_size(d) > 64 {
                return Err(RuleError::resolve("set domain larger than 64 elements".to_string()));
            }
            Ok(Type::Set(d))
        } else {
            Ok(Type::Scalar(self.domain()?))
        }
    }

    /// `VARIABLE name[doms] IN type [INIT expr]`
    fn var_decl(&mut self) -> Result<()> {
        let pos = self.pos();
        self.expect_kw(Kw::Variable)?;
        let name = self.ident()?;
        self.check_fresh(&name)?;
        let index_domains = self.index_domains()?;
        self.expect_kw(Kw::In)?;
        let elem = self.type_expr()?;
        let init = if self.eat(&Tok::Kw(Kw::Init)) {
            let (e, t) = self.expr()?;
            self.check_assignable(elem, t)?;
            self.const_eval(&e)?
        } else {
            self.default_value(elem)?
        };
        self.prog.vars.push(VarDecl { name, index_domains, elem, init, pos });
        Ok(())
    }

    /// `INPUT name[doms] IN type`
    fn input_decl(&mut self) -> Result<()> {
        let pos = self.pos();
        self.expect_kw(Kw::Input)?;
        let name = self.ident()?;
        self.check_fresh(&name)?;
        let index_domains = self.index_domains()?;
        self.expect_kw(Kw::In)?;
        let elem = self.type_expr()?;
        self.prog.inputs.push(InputDecl { name, index_domains, elem, pos });
        Ok(())
    }

    fn index_domains(&mut self) -> Result<Vec<Domain>> {
        let mut out = Vec::new();
        if self.eat(&Tok::LBracket) {
            loop {
                out.push(self.domain()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBracket)?;
        }
        Ok(out)
    }

    fn default_value(&self, t: Type) -> Result<Value> {
        Ok(match t {
            Type::Scalar(d) => d.value_at(0),
            Type::Set(d) => Value::empty_set(d),
        })
    }

    // ----------------------------------------------------------- rule base

    /// `ON name(params) [RETURNS type] [NFT] rules END [name] [;]`
    fn rulebase(&mut self) -> Result<()> {
        let pos = self.pos();
        self.expect_kw(Kw::On)?;
        let name = self.ident()?;
        if self.prog.rulebase(&name).is_some() {
            return Err(RuleError::resolve(format!("rule base `{name}` already defined")));
        }
        self.params.clear();
        self.expect(&Tok::LParen)?;
        if !self.eat(&Tok::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect_kw(Kw::In)?;
                let dom = self.domain()?;
                if self.params.iter().any(|p| p.name == pname) {
                    return Err(RuleError::resolve(format!("duplicate parameter `{pname}`")));
                }
                self.params.push(Param { name: pname, dom });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let returns = if self.eat(&Tok::Kw(Kw::Returns)) { Some(self.type_expr()?) } else { None };
        let nft = self.eat(&Tok::Kw(Kw::Nft));

        let mut rules = Vec::new();
        while self.peek() == &Tok::Kw(Kw::If) {
            rules.push(self.rule(returns)?);
        }
        self.expect_kw(Kw::End)?;
        if let Tok::Ident(end_name) = self.peek().clone() {
            self.bump();
            if end_name != name {
                return Err(RuleError::resolve(format!(
                    "END `{end_name}` does not match ON `{name}`"
                )));
            }
        }
        self.eat(&Tok::Semi);
        let params = std::mem::take(&mut self.params);
        self.prog.rulebases.push(RuleBase { name, params, returns, nft, rules, pos });
        Ok(())
    }

    fn rule(&mut self, returns: Option<Type>) -> Result<Rule> {
        let pos = self.pos();
        self.expect_kw(Kw::If)?;
        let (premise, pt) = self.expr()?;
        if pt != Type::Scalar(Domain::Bool) {
            return Err(RuleError::resolve("rule premise must be boolean".to_string()));
        }
        self.expect_kw(Kw::Then)?;
        let mut conclusion = vec![self.command(returns)?];
        while self.eat(&Tok::Comma) {
            conclusion.push(self.command(returns)?);
        }
        self.expect(&Tok::Semi)?;
        Ok(Rule { premise, conclusion, pos })
    }

    fn command(&mut self, returns: Option<Type>) -> Result<Command> {
        match self.peek().clone() {
            Tok::Kw(Kw::Return) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let (e, t) = self.expr()?;
                self.expect(&Tok::RParen)?;
                let rt = returns.ok_or_else(|| {
                    RuleError::resolve("RETURN in a rule base without RETURNS".to_string())
                })?;
                self.check_assignable(rt, t)?;
                Ok(Command::Return(e))
            }
            Tok::Bang => {
                self.bump();
                let event = self.ident()?;
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        let (e, _t) = self.expr()?;
                        args.push(e);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                Ok(Command::Emit { event, args })
            }
            Tok::Kw(Kw::Forall) => {
                self.bump();
                let binder = self.ident()?;
                self.expect_kw(Kw::In)?;
                let (set, st) = self.expr()?;
                let dom = match st {
                    Type::Set(d) => d,
                    _ => {
                        return Err(RuleError::resolve(
                            "FORALL command must range over a set".to_string(),
                        ))
                    }
                };
                self.expect(&Tok::Colon)?;
                self.bounds.push((binder, dom));
                let body = vec![self.command(returns)?];
                self.bounds.pop();
                Ok(Command::ForAll { dom, set, body })
            }
            Tok::Ident(_) => {
                // assignment: lvalue <- expr
                let name = self.ident()?;
                let var = self.prog.vars.iter().position(|v| v.name == name).ok_or_else(|| {
                    RuleError::resolve(format!("assignment to non-register `{name}`"))
                })?;
                let decl = self.prog.vars[var].clone();
                let mut indices = Vec::new();
                if self.eat(&Tok::LParen) {
                    loop {
                        let (e, t) = self.expr()?;
                        indices.push((e, t));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                if indices.len() != decl.index_domains.len() {
                    return Err(RuleError::resolve(format!(
                        "`{name}` expects {} indices, got {}",
                        decl.index_domains.len(),
                        indices.len()
                    )));
                }
                for ((_, t), d) in indices.iter().zip(&decl.index_domains) {
                    self.check_assignable(Type::Scalar(*d), *t)?;
                }
                self.expect(&Tok::Assign)?;
                let (value, vt) = self.expr()?;
                self.check_assignable(decl.elem, vt)?;
                Ok(Command::Assign {
                    var,
                    indices: indices.into_iter().map(|(e, _)| e).collect(),
                    value,
                })
            }
            other => Err(self.err(format!("expected command, found {other}"))),
        }
    }

    /// Kind-level assignability: Int ranges unify (runtime range check),
    /// symbol types and set domains must match exactly.
    fn check_assignable(&self, target: Type, value: Type) -> Result<()> {
        let ok = match (target, value) {
            (Type::Scalar(a), Type::Scalar(b)) => self.same_kind(a, b),
            (Type::Set(a), Type::Set(b)) => self.same_kind(a, b),
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(RuleError::resolve(format!(
                "type mismatch: cannot use {value:?} where {target:?} is expected"
            )))
        }
    }

    fn same_kind(&self, a: Domain, b: Domain) -> bool {
        matches!((a, b), (Domain::Int { .. }, Domain::Int { .. }) | (Domain::Bool, Domain::Bool))
            || matches!((a, b), (Domain::Sym(x), Domain::Sym(y)) if x == y)
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<(Expr, Type)> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<(Expr, Type)> {
        let (mut e, mut t) = self.and_expr()?;
        while self.eat(&Tok::Kw(Kw::Or)) {
            let (r, rt) = self.and_expr()?;
            self.require_bool(t)?;
            self.require_bool(rt)?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
            t = Type::Scalar(Domain::Bool);
        }
        Ok((e, t))
    }

    fn and_expr(&mut self) -> Result<(Expr, Type)> {
        let (mut e, mut t) = self.not_expr()?;
        while self.eat(&Tok::Kw(Kw::And)) {
            let (r, rt) = self.not_expr()?;
            self.require_bool(t)?;
            self.require_bool(rt)?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
            t = Type::Scalar(Domain::Bool);
        }
        Ok((e, t))
    }

    fn not_expr(&mut self) -> Result<(Expr, Type)> {
        if self.eat(&Tok::Kw(Kw::Not)) {
            let (e, t) = self.not_expr()?;
            self.require_bool(t)?;
            Ok((Expr::Un(UnOp::Not, Box::new(e)), Type::Scalar(Domain::Bool)))
        } else {
            self.cmp_expr()
        }
    }

    fn require_bool(&self, t: Type) -> Result<()> {
        if t == Type::Scalar(Domain::Bool) {
            Ok(())
        } else {
            Err(RuleError::resolve(format!("expected boolean, got {t:?}")))
        }
    }

    fn cmp_expr(&mut self) -> Result<(Expr, Type)> {
        let (l, lt) = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::Kw(Kw::In) => BinOp::In,
            _ => return Ok((l, lt)),
        };
        self.bump();
        let (r, rt) = self.add_expr()?;
        let bool_t = Type::Scalar(Domain::Bool);
        match op {
            BinOp::Eq | BinOp::Ne => {
                let ok = match (lt, rt) {
                    (Type::Scalar(a), Type::Scalar(b)) => self.same_kind(a, b),
                    (Type::Set(a), Type::Set(b)) => self.same_kind(a, b),
                    _ => false,
                };
                if !ok {
                    return Err(RuleError::resolve(format!("cannot compare {lt:?} with {rt:?}")));
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                self.require_int(lt)?;
                self.require_int(rt)?;
            }
            BinOp::In => {
                let (elem, dom) = match (lt, rt) {
                    (Type::Scalar(a), Type::Set(b)) => (a, b),
                    _ => {
                        return Err(RuleError::resolve(format!(
                            "IN expects scalar IN set, got {lt:?} IN {rt:?}"
                        )))
                    }
                };
                if !self.same_kind(elem, dom) {
                    return Err(RuleError::resolve(format!(
                        "IN over mismatched kinds: {elem:?} vs {dom:?}"
                    )));
                }
            }
            _ => unreachable!(),
        }
        Ok((Expr::Bin(op, Box::new(l), Box::new(r)), bool_t))
    }

    fn require_int(&self, t: Type) -> Result<(i64, i64)> {
        match t {
            Type::Scalar(Domain::Int { lo, hi }) => Ok((lo, hi)),
            _ => Err(RuleError::resolve(format!("expected integer, got {t:?}"))),
        }
    }

    fn add_expr(&mut self) -> Result<(Expr, Type)> {
        let (mut e, mut t) = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let (r, rt) = self.mul_expr()?;
            let (llo, lhi) = self.require_int(t)?;
            let (rlo, rhi) = self.require_int(rt)?;
            let dom = match op {
                BinOp::Add => Domain::Int { lo: llo + rlo, hi: lhi + rhi },
                BinOp::Sub => Domain::Int { lo: llo - rhi, hi: lhi - rlo },
                _ => unreachable!(),
            };
            e = Expr::Bin(op, Box::new(e), Box::new(r));
            t = Type::Scalar(dom);
        }
        Ok((e, t))
    }

    fn mul_expr(&mut self) -> Result<(Expr, Type)> {
        let (mut e, mut t) = self.unary_expr()?;
        while self.eat(&Tok::Star) {
            let (r, rt) = self.unary_expr()?;
            let (llo, lhi) = self.require_int(t)?;
            let (rlo, rhi) = self.require_int(rt)?;
            let cands = [llo * rlo, llo * rhi, lhi * rlo, lhi * rhi];
            let dom =
                Domain::Int { lo: *cands.iter().min().unwrap(), hi: *cands.iter().max().unwrap() };
            e = Expr::Bin(BinOp::Mul, Box::new(e), Box::new(r));
            t = Type::Scalar(dom);
        }
        Ok((e, t))
    }

    fn unary_expr(&mut self) -> Result<(Expr, Type)> {
        if self.eat(&Tok::Minus) {
            let (e, t) = self.unary_expr()?;
            let (lo, hi) = self.require_int(t)?;
            Ok((Expr::Un(UnOp::Neg, Box::new(e)), Type::Scalar(Domain::Int { lo: -hi, hi: -lo })))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<(Expr, Type)> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok((Expr::Lit(Value::Int(v)), Type::Scalar(Domain::Int { lo: v, hi: v })))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok((Expr::Lit(Value::Bool(true)), Type::Scalar(Domain::Bool)))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok((Expr::Lit(Value::Bool(false)), Type::Scalar(Domain::Bool)))
            }
            Tok::LParen => {
                self.bump();
                let et = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(et)
            }
            Tok::LBrace => self.set_literal(),
            Tok::Kw(Kw::Exists) => self.quantifier(Quant::Exists),
            Tok::Kw(Kw::Forall) => self.quantifier(Quant::Forall),
            Tok::Ident(name) => {
                self.bump();
                self.name_expr(name)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    /// `{e1, e2, ...}` — constant set literal.
    fn set_literal(&mut self) -> Result<(Expr, Type)> {
        self.expect(&Tok::LBrace)?;
        let mut vals = Vec::new();
        if !self.eat(&Tok::RBrace) {
            loop {
                let (e, _t) = self.expr()?;
                vals.push(self.const_eval(&e)?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
        }
        if vals.is_empty() {
            return Err(RuleError::resolve(
                "empty set literal needs a context; use a typed constant".to_string(),
            ));
        }
        // derive the element domain
        let dom = match vals[0] {
            Value::Int(_) => {
                let ints: Result<Vec<i64>> = vals.iter().map(|v| v.as_int()).collect();
                let ints =
                    ints.map_err(|_| RuleError::resolve("mixed kinds in set literal".to_string()))?;
                Domain::Int { lo: *ints.iter().min().unwrap(), hi: *ints.iter().max().unwrap() }
            }
            Value::Sym { ty, .. } => {
                if !vals.iter().all(|v| matches!(v, Value::Sym { ty: t2, .. } if *t2 == ty)) {
                    return Err(RuleError::resolve(
                        "mixed symbol types in set literal".to_string(),
                    ));
                }
                Domain::Sym(ty)
            }
            Value::Bool(_) => Domain::Bool,
            Value::Set { .. } => {
                return Err(RuleError::resolve("sets of sets are not supported".to_string()))
            }
        };
        if self.dom_size(dom) > 64 {
            return Err(RuleError::resolve("set literal domain exceeds 64 elements".to_string()));
        }
        let ss = |t: usize| self.prog.sym_size(t);
        let mut mask = 0u64;
        for v in &vals {
            let k = dom.ordinal(v, &ss).expect("element in derived domain");
            mask |= 1 << k;
        }
        Ok((Expr::Lit(Value::Set { dom, mask }), Type::Set(dom)))
    }

    fn quantifier(&mut self, q: Quant) -> Result<(Expr, Type)> {
        self.bump(); // EXISTS / FORALL
        let binder = self.ident()?;
        self.expect_kw(Kw::In)?;
        let (set, st) = self.expr()?;
        let dom = match st {
            Type::Set(d) => d,
            _ => return Err(RuleError::resolve("quantifier must range over a set".to_string())),
        };
        self.expect(&Tok::Colon)?;
        self.bounds.push((binder, dom));
        let (body, bt) = self.or_expr()?;
        self.bounds.pop();
        self.require_bool(bt)?;
        Ok((
            Expr::Quant { q, dom, set: Box::new(set), body: Box::new(body) },
            Type::Scalar(Domain::Bool),
        ))
    }

    /// Resolve a bare or applied identifier.
    fn name_expr(&mut self, name: String) -> Result<(Expr, Type)> {
        // applied form: name(args)
        if self.peek() == &Tok::LParen {
            // builtins first
            if let Some(bt) = builtin_by_name(&name) {
                return self.builtin_call(name, bt);
            }
            if let Some(vi) = self.prog.vars.iter().position(|v| v.name == name) {
                return self.indexed_read(IndexedRef::Var(vi));
            }
            if let Some(ii) = self.prog.inputs.iter().position(|v| v.name == name) {
                return self.indexed_read(IndexedRef::Input(ii));
            }
            return Err(RuleError::resolve(format!("`{name}` is not an array, input or builtin")));
        }
        // bound binders, innermost first
        for (depth, (bname, dom)) in self.bounds.iter().rev().enumerate() {
            if *bname == name {
                return Ok((Expr::Ref(Ref::Bound(depth)), Type::Scalar(*dom)));
            }
        }
        if let Some(pi) = self.params.iter().position(|p| p.name == name) {
            let dom = self.params[pi].dom;
            return Ok((Expr::Ref(Ref::Param(pi)), Type::Scalar(dom)));
        }
        if let Some(ci) = self.prog.consts.iter().position(|c| c.name == name) {
            let ty = self.prog.consts[ci].ty;
            return Ok((Expr::Ref(Ref::Const(ci)), ty));
        }
        if let Some(vi) = self.prog.vars.iter().position(|v| v.name == name) {
            let d = &self.prog.vars[vi];
            if !d.index_domains.is_empty() {
                return Err(RuleError::resolve(format!("array `{name}` used without indices")));
            }
            return Ok((Expr::Ref(Ref::Var(vi)), d.elem));
        }
        if let Some(ii) = self.prog.inputs.iter().position(|v| v.name == name) {
            let d = &self.prog.inputs[ii];
            if !d.index_domains.is_empty() {
                return Err(RuleError::resolve(format!(
                    "input array `{name}` used without indices"
                )));
            }
            return Ok((Expr::Ref(Ref::Input(ii)), d.elem));
        }
        if let Some(v) = self.prog.symbol_value(&name) {
            let ty = match v {
                Value::Sym { ty, .. } => Type::Scalar(Domain::Sym(ty)),
                _ => unreachable!(),
            };
            return Ok((Expr::Lit(v), ty));
        }
        Err(RuleError::resolve(format!("unknown name `{name}`")))
    }

    fn indexed_read(&mut self, target: IndexedRef) -> Result<(Expr, Type)> {
        let (doms, elem, name) = match target {
            IndexedRef::Var(i) => {
                let d = &self.prog.vars[i];
                (d.index_domains.clone(), d.elem, d.name.clone())
            }
            IndexedRef::Input(i) => {
                let d = &self.prog.inputs[i];
                (d.index_domains.clone(), d.elem, d.name.clone())
            }
        };
        self.expect(&Tok::LParen)?;
        let mut indices = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let (e, t) = self.expr()?;
                indices.push((e, t));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        if indices.len() != doms.len() {
            return Err(RuleError::resolve(format!(
                "`{name}` expects {} indices, got {}",
                doms.len(),
                indices.len()
            )));
        }
        for ((_, t), d) in indices.iter().zip(&doms) {
            self.check_assignable(Type::Scalar(*d), *t)?;
        }
        Ok((Expr::Indexed { target, indices: indices.into_iter().map(|(e, _)| e).collect() }, elem))
    }

    fn builtin_call(&mut self, name: String, b: Builtin) -> Result<(Expr, Type)> {
        self.expect(&Tok::LParen)?;
        // argmin/argmax take the input name as first argument
        if matches!(b, Builtin::ArgMin(_) | Builtin::ArgMax(_)) {
            let iname = self.ident()?;
            let ii = self.prog.inputs.iter().position(|i| i.name == iname).ok_or_else(|| {
                RuleError::resolve(format!("`{iname}` is not an input (argmin/argmax)"))
            })?;
            let decl = self.prog.inputs[ii].clone();
            if decl.index_domains.len() != 1 {
                return Err(RuleError::resolve(format!(
                    "argmin/argmax input `{iname}` must have exactly one index domain"
                )));
            }
            if !matches!(decl.elem, Type::Scalar(Domain::Int { .. })) {
                return Err(RuleError::resolve(
                    "argmin/argmax input must hold integers".to_string(),
                ));
            }
            self.expect(&Tok::Comma)?;
            let (set, st) = self.expr()?;
            self.expect(&Tok::RParen)?;
            let idx_dom = decl.index_domains[0];
            match st {
                Type::Set(d) if self.same_kind(d, idx_dom) => {}
                _ => {
                    return Err(RuleError::resolve(
                        "argmin/argmax set must range over the input's index domain".to_string(),
                    ))
                }
            }
            let bt = match b {
                Builtin::ArgMin(_) => Builtin::ArgMin(ii),
                _ => Builtin::ArgMax(ii),
            };
            return Ok((Expr::Call { builtin: bt, args: vec![set] }, Type::Scalar(idx_dom)));
        }

        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let arity = match b {
            Builtin::Popcount | Builtin::Card => 1,
            _ => 2,
        };
        if args.len() != arity {
            return Err(RuleError::resolve(format!(
                "`{name}` expects {arity} arguments, got {}",
                args.len()
            )));
        }
        let ty = match b {
            Builtin::Min | Builtin::Max => {
                let (alo, ahi) = self.require_int(args[0].1)?;
                let (blo, bhi) = self.require_int(args[1].1)?;
                Type::Scalar(Domain::Int { lo: alo.min(blo), hi: ahi.max(bhi) })
            }
            Builtin::AbsDiff => {
                let (alo, ahi) = self.require_int(args[0].1)?;
                let (blo, bhi) = self.require_int(args[1].1)?;
                let hi = (ahi - blo).max(bhi - alo).max(0);
                Type::Scalar(Domain::Int { lo: 0, hi })
            }
            Builtin::Xor => {
                let (alo, ahi) = self.require_int(args[0].1)?;
                let (blo, bhi) = self.require_int(args[1].1)?;
                if alo < 0 || blo < 0 {
                    return Err(RuleError::resolve("xor needs non-negative ranges".to_string()));
                }
                let bits = 64 - (ahi.max(bhi).max(1) as u64).leading_zeros();
                Type::Scalar(Domain::Int { lo: 0, hi: (1i64 << bits) - 1 })
            }
            Builtin::Popcount => {
                let (alo, _ahi) = self.require_int(args[0].1)?;
                if alo < 0 {
                    return Err(RuleError::resolve(
                        "popcount needs non-negative range".to_string(),
                    ));
                }
                Type::Scalar(Domain::Int { lo: 0, hi: 64 })
            }
            Builtin::Bit => {
                self.require_int(args[0].1)?;
                self.require_int(args[1].1)?;
                Type::Scalar(Domain::Bool)
            }
            Builtin::LatMax => {
                let (a, b) = (args[0].1, args[1].1);
                match (a, b) {
                    (Type::Scalar(Domain::Sym(x)), Type::Scalar(Domain::Sym(y))) if x == y => a,
                    _ => {
                        return Err(RuleError::resolve(
                            "latmax expects two symbols of the same type".to_string(),
                        ))
                    }
                }
            }
            Builtin::Card => match args[0].1 {
                Type::Set(d) => {
                    let n = self.dom_size(d) as i64;
                    Type::Scalar(Domain::Int { lo: 0, hi: n })
                }
                _ => return Err(RuleError::resolve("card expects a set".to_string())),
            },
            Builtin::Union | Builtin::Isect | Builtin::Diff => {
                let (a, b) = (args[0].1, args[1].1);
                match (a, b) {
                    (Type::Set(x), Type::Set(y)) if self.same_kind(x, y) => a,
                    _ => {
                        return Err(RuleError::resolve(
                            "set operation expects two sets over the same domain".to_string(),
                        ))
                    }
                }
            }
            Builtin::Include | Builtin::Exclude => {
                let (a, b) = (args[0].1, args[1].1);
                match (a, b) {
                    (Type::Set(x), Type::Scalar(y)) if self.same_kind(x, y) => a,
                    _ => {
                        return Err(RuleError::resolve(
                            "include/exclude expect (set, element of its domain)".to_string(),
                        ))
                    }
                }
            }
            Builtin::ArgMin(_) | Builtin::ArgMax(_) => unreachable!("handled above"),
        };
        Ok((Expr::Call { builtin: b, args: args.into_iter().map(|(e, _)| e).collect() }, ty))
    }

    /// Constant folding for INIT values and set literals.
    fn const_eval(&self, e: &Expr) -> Result<Value> {
        match e {
            Expr::Lit(v) => Ok(*v),
            Expr::Ref(Ref::Const(i)) => Ok(self.prog.consts[*i].value),
            Expr::Un(UnOp::Neg, inner) => Ok(Value::Int(-self.const_eval(inner)?.as_int()?)),
            Expr::Bin(op, l, r) => {
                let lv = self.const_eval(l)?.as_int()?;
                let rv = self.const_eval(r)?.as_int()?;
                let v = match op {
                    BinOp::Add => lv + rv,
                    BinOp::Sub => lv - rv,
                    BinOp::Mul => lv * rv,
                    _ => {
                        return Err(RuleError::resolve(
                            "non-arithmetic operator in constant expression".to_string(),
                        ))
                    }
                };
                Ok(Value::Int(v))
            }
            _ => Err(RuleError::resolve("expression is not constant".to_string())),
        }
    }
}

fn builtin_by_name(name: &str) -> Option<Builtin> {
    Some(match name {
        "min" => Builtin::Min,
        "max" => Builtin::Max,
        "absdiff" => Builtin::AbsDiff,
        "xor" => Builtin::Xor,
        "popcount" => Builtin::Popcount,
        "bit" => Builtin::Bit,
        "latmax" => Builtin::LatMax,
        "card" => Builtin::Card,
        "union" => Builtin::Union,
        "isect" => Builtin::Isect,
        "diff" => Builtin::Diff,
        "include" => Builtin::Include,
        "exclude" => Builtin::Exclude,
        "argmin" => Builtin::ArgMin(usize::MAX),
        "argmax" => Builtin::ArgMax(usize::MAX),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse(
            "CONSTANT dirs = 0 TO 3\n\
             VARIABLE count IN 0 TO 7 INIT 0\n\
             INPUT load[dirs] IN 0 TO 15\n\
             ON tick(d IN dirs) RETURNS 0 TO 3\n\
               IF load(d) > 7 THEN RETURN(0);\n\
               IF TRUE THEN count <- count + 1, RETURN(1);\n\
             END tick;",
        )
        .unwrap();
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.vars.len(), 1);
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.rulebases.len(), 1);
        assert_eq!(p.rulebases[0].rules.len(), 2);
        assert!(!p.rulebases[0].nft);
    }

    #[test]
    fn parses_symbol_types_and_sets() {
        let p = parse(
            "CONSTANT states = {safe, faulty, unsafe_o}\n\
             VARIABLE st IN states INIT safe\n\
             ON upd(s IN states)\n\
               IF s IN {faulty, unsafe_o} AND st = safe THEN st <- s;\n\
             END upd;",
        )
        .unwrap();
        assert_eq!(p.sym_types[0].symbols.len(), 3);
        assert_eq!(p.vars[0].init, Value::Sym { ty: 0, idx: 0 });
    }

    #[test]
    fn parses_figure4_style_rules() {
        // Slightly adapted excerpt of the paper's Figure 4 (ROUTE_C update).
        let src = "
-- fault states of ROUTE_C
CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}
CONSTANT dirs = 0 TO 5
CONSTANT ndirs = 6
VARIABLE number_unsafe IN 0 TO 6 INIT 0
VARIABLE number_faulty IN 0 TO 6 INIT 0
VARIABLE neighb_state[dirs] IN fault_states INIT safe
VARIABLE state IN fault_states INIT safe
INPUT new_state[dirs] IN fault_states

ON update_state(dir IN dirs)
  IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0
  THEN neighb_state(dir) <- new_state(dir),
       number_faulty <- number_faulty + 1,
       number_unsafe <- number_unsafe + 1;
  IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe AND number_unsafe = 2
  THEN state <- ounsafe,
       number_unsafe <- number_unsafe + 1,
       FORALL i IN dirs: !send_newmessage(i, ounsafe),
       neighb_state(dir) <- new_state(dir);
END update_state;
";
        let p = parse(src).unwrap();
        let rb = &p.rulebases[0];
        assert_eq!(rb.name, "update_state");
        assert_eq!(rb.rules.len(), 2);
        // second rule: 4 commands, one of which is a FORALL emit
        assert_eq!(rb.rules[1].conclusion.len(), 4);
        assert!(rb.rules[1].conclusion.iter().any(|c| matches!(c, Command::ForAll { .. })));
    }

    #[test]
    fn parses_quantified_premise() {
        let src = "
CONSTANT dirs = 0 TO 3
INPUT free[dirs] IN bool
INPUT queue[dirs] IN 0 TO 255
ON pick() RETURNS dirs
  IF EXISTS i IN dirs: free(i) AND (FORALL j IN dirs: queue(i) <= queue(j))
  THEN RETURN(argmin(queue, dirs));
END pick;
";
        let p = parse(src).unwrap();
        let rb = &p.rulebases[0];
        assert!(matches!(rb.rules[0].premise, Expr::Quant { q: Quant::Exists, .. }));
        assert!(matches!(
            rb.rules[0].conclusion[0],
            Command::Return(Expr::Call { builtin: Builtin::ArgMin(1), .. })
        ));
    }

    #[test]
    fn nft_marker_and_returns() {
        let p = parse("ON f() RETURNS 0 TO 1 NFT IF TRUE THEN RETURN(0); END f;").unwrap();
        assert!(p.rulebases[0].nft);
        assert!(p.rulebases[0].returns.is_some());
    }

    #[test]
    fn rejects_unknown_name() {
        let e = parse("ON f() IF nope = 1 THEN RETURN(1); END f;");
        assert!(matches!(e, Err(RuleError::Resolve { .. })));
    }

    #[test]
    fn rejects_type_mismatch() {
        let e = parse("CONSTANT s = {a, b}\nON f(x IN s) IF x = 3 THEN x; END f;");
        assert!(e.is_err());
    }

    #[test]
    fn rejects_return_without_returns() {
        let e = parse("ON f() IF TRUE THEN RETURN(1); END f;");
        assert!(matches!(e, Err(RuleError::Resolve { .. })));
    }

    #[test]
    fn rejects_duplicate_rulebase() {
        let e = parse("ON f() END f; ON f() END f;");
        assert!(matches!(e, Err(RuleError::Resolve { .. })));
    }

    #[test]
    fn rejects_mismatched_end_name() {
        let e = parse("ON f() END g;");
        assert!(matches!(e, Err(RuleError::Resolve { .. })));
    }

    #[test]
    fn rejects_symbol_sharing_between_types() {
        let e = parse("CONSTANT a = {x, y}\nCONSTANT b = {y, z}\n");
        assert!(matches!(e, Err(RuleError::Resolve { .. })));
    }

    #[test]
    fn set_literal_of_ints() {
        let p = parse("VARIABLE x IN 0 TO 9 INIT 0\nON f() IF x IN {1, 3, 5} THEN x <- 0; END f;")
            .unwrap();
        match &p.rulebases[0].rules[0].premise {
            Expr::Bin(BinOp::In, _, rhs) => match **rhs {
                Expr::Lit(Value::Set { dom: Domain::Int { lo: 1, hi: 5 }, mask }) => {
                    assert_eq!(mask, 0b10101);
                }
                ref other => panic!("unexpected rhs {other:?}"),
            },
            other => panic!("unexpected premise {other:?}"),
        }
    }

    #[test]
    fn index_arity_checked() {
        let e = parse(
            "CONSTANT dirs = 0 TO 3\nINPUT q[dirs, dirs] IN 0 TO 3\n\
             ON f() IF q(1) = 0 THEN q; END f;",
        );
        assert!(e.is_err());
    }

    #[test]
    fn int_const_in_ranges() {
        let p = parse("CONSTANT n = 8\nVARIABLE x IN 0 TO n INIT 3\n").unwrap();
        assert_eq!(p.vars[0].elem, Type::Scalar(Domain::Int { lo: 0, hi: 8 }));
        assert_eq!(p.vars[0].init, Value::Int(3));
    }

    #[test]
    fn setof_type() {
        let p = parse("CONSTANT dirs = 0 TO 3\nVARIABLE avail IN SETOF dirs\n").unwrap();
        assert_eq!(p.vars[0].elem, Type::Set(Domain::Int { lo: 0, hi: 3 }));
        assert_eq!(p.vars[0].init, Value::empty_set(Domain::Int { lo: 0, hi: 3 }));
    }
}
