//! Runtime values and finite domains.
//!
//! The paper restricts data types to "integers within finite ranges,
//! discrete symbols, the union of these two, and subsets of these" (§4.2) so
//! that every declaration maps to a fixed number of hardware bits. A
//! [`Domain`] is such a finite scalar carrier; a [`Value`] is either a
//! scalar drawn from a domain or a subset of one (bitmask, domains ≤ 64
//! elements).

use crate::error::{Result, RuleError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finite scalar carrier set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Integers `lo..=hi`.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Values of the symbol type with this index in the program.
    Sym(usize),
    /// Booleans.
    Bool,
}

impl Domain {
    /// Number of elements, given the symbol-type table (needed for
    /// [`Domain::Sym`]).
    pub fn size(&self, sym_sizes: &dyn Fn(usize) -> usize) -> u64 {
        match *self {
            Domain::Int { lo, hi } => (hi - lo + 1) as u64,
            Domain::Sym(t) => sym_sizes(t) as u64,
            Domain::Bool => 2,
        }
    }

    /// Bits needed to store one element (`ceil(log2(size))`, min 1).
    pub fn width_bits(&self, sym_sizes: &dyn Fn(usize) -> usize) -> u32 {
        let n = self.size(sym_sizes);
        ceil_log2(n).max(1)
    }

    /// The `k`-th element of the domain in canonical order.
    pub fn value_at(&self, k: u64) -> Value {
        match *self {
            Domain::Int { lo, .. } => Value::Int(lo + k as i64),
            Domain::Sym(t) => Value::Sym { ty: t, idx: k as u32 },
            Domain::Bool => Value::Bool(k != 0),
        }
    }

    /// Canonical ordinal of a value, or `None` if it is outside the domain
    /// or of the wrong kind.
    pub fn ordinal(&self, v: &Value, sym_sizes: &dyn Fn(usize) -> usize) -> Option<u64> {
        match (*self, v) {
            (Domain::Int { lo, hi }, Value::Int(x)) if (lo..=hi).contains(x) => {
                Some((x - lo) as u64)
            }
            (Domain::Sym(t), Value::Sym { ty, idx }) if *ty == t => {
                ((*idx as usize) < sym_sizes(t)).then_some(*idx as u64)
            }
            (Domain::Bool, Value::Bool(b)) => Some(u64::from(*b)),
            _ => None,
        }
    }

    /// True if `v` is an element.
    pub fn contains(&self, v: &Value, sym_sizes: &dyn Fn(usize) -> usize) -> bool {
        self.ordinal(v, sym_sizes).is_some()
    }
}

/// `ceil(log2(n))` for table/width accounting; 0 for n <= 1.
pub fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// The type of an expression: a scalar from a domain, or a subset of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// A single element of the domain.
    Scalar(Domain),
    /// A subset of the domain (bitmask representation, size ≤ 64).
    Set(Domain),
}

impl Type {
    /// The underlying element domain.
    pub fn domain(&self) -> Domain {
        match *self {
            Type::Scalar(d) | Type::Set(d) => d,
        }
    }

    /// Storage width in bits: scalar = element width, set = one bit per
    /// element (the paper's hardware mapping).
    pub fn width_bits(&self, sym_sizes: &dyn Fn(usize) -> usize) -> u32 {
        match *self {
            Type::Scalar(d) => d.width_bits(sym_sizes),
            Type::Set(d) => d.size(sym_sizes) as u32,
        }
    }
}

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Integer (held as `i64`; the declared domain bounds it).
    Int(i64),
    /// Symbol `idx` of symbol type `ty`.
    Sym {
        /// Symbol-type index in the program.
        ty: usize,
        /// Symbol index within the type.
        idx: u32,
    },
    /// Boolean.
    Bool(bool),
    /// Subset of `dom` as a bitmask over canonical ordinals.
    Set {
        /// Element domain.
        dom: Domain,
        /// Bit `k` set ⇔ `dom.value_at(k)` is a member.
        mask: u64,
    },
}

impl Value {
    /// Extracts an integer or errors.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(RuleError::eval(format!("expected integer, got {other:?}"))),
        }
    }

    /// Extracts a boolean or errors.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(RuleError::eval(format!("expected boolean, got {other:?}"))),
        }
    }

    /// Extracts a set or errors.
    pub fn as_set(&self) -> Result<(Domain, u64)> {
        match self {
            Value::Set { dom, mask } => Ok((*dom, *mask)),
            other => Err(RuleError::eval(format!("expected set, got {other:?}"))),
        }
    }

    /// The full set over a domain.
    pub fn full_set(dom: Domain, sym_sizes: &dyn Fn(usize) -> usize) -> Result<Value> {
        let n = dom.size(sym_sizes);
        if n > 64 {
            return Err(RuleError::eval(format!("set domain too large ({n} > 64 elements)")));
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        Ok(Value::Set { dom, mask })
    }

    /// The empty set over a domain.
    pub fn empty_set(dom: Domain) -> Value {
        Value::Set { dom, mask: 0 }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym { ty, idx } => write!(f, "sym{ty}.{idx}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Set { mask, .. } => write!(f, "set({mask:#b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_syms(_: usize) -> usize {
        panic!("no symbol types in this test")
    }

    fn syms(t: usize) -> usize {
        [5, 3][t]
    }

    #[test]
    fn int_domain_ordinals_roundtrip() {
        let d = Domain::Int { lo: -2, hi: 5 };
        assert_eq!(d.size(&no_syms), 8);
        assert_eq!(d.width_bits(&no_syms), 3);
        for k in 0..8 {
            let v = d.value_at(k);
            assert_eq!(d.ordinal(&v, &no_syms), Some(k));
        }
        assert_eq!(d.ordinal(&Value::Int(6), &no_syms), None);
        assert_eq!(d.ordinal(&Value::Bool(true), &no_syms), None);
    }

    #[test]
    fn sym_domain_checks_type() {
        let d = Domain::Sym(0);
        assert_eq!(d.size(&syms), 5);
        assert_eq!(d.width_bits(&syms), 3);
        assert_eq!(d.ordinal(&Value::Sym { ty: 0, idx: 4 }, &syms), Some(4));
        assert_eq!(d.ordinal(&Value::Sym { ty: 1, idx: 0 }, &syms), None);
        assert_eq!(d.ordinal(&Value::Sym { ty: 0, idx: 5 }, &syms), None);
    }

    #[test]
    fn bool_domain() {
        let d = Domain::Bool;
        assert_eq!(d.size(&no_syms), 2);
        assert_eq!(d.width_bits(&no_syms), 1);
        assert_eq!(d.value_at(1), Value::Bool(true));
    }

    #[test]
    fn ceil_log2_table() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn set_width_is_one_bit_per_element() {
        let t = Type::Set(Domain::Int { lo: 0, hi: 6 });
        assert_eq!(t.width_bits(&no_syms), 7);
        let s = Type::Scalar(Domain::Int { lo: 0, hi: 6 });
        assert_eq!(s.width_bits(&no_syms), 3);
    }

    #[test]
    fn full_and_empty_sets() {
        let d = Domain::Int { lo: 0, hi: 3 };
        let full = Value::full_set(d, &no_syms).unwrap();
        assert_eq!(full.as_set().unwrap().1, 0b1111);
        assert_eq!(Value::empty_set(d).as_set().unwrap().1, 0);
        let too_big = Domain::Int { lo: 0, hi: 80 };
        assert!(Value::full_set(too_big, &no_syms).is_err());
    }
}
