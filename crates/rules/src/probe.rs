//! Interpreter instrumentation hooks.
//!
//! The hardware model of §4.3 splits one rule interpretation into three
//! stages — premise processing (FCFB evaluation), the RBR-kernel table
//! lookup, and conclusion processing (command execution). An
//! [`InterpProbe`] observes the wall-clock cost of each stage per rule
//! base, letting a host profile where interpretation time goes without
//! the interpreter knowing anything about the profiler (the `ftr-obs`
//! crate provides the standard implementation).
//!
//! The hooks are zero-cost when unused: the probed fire path is only
//! taken when a probe is installed, and the unprobed path is unchanged.

/// One of the three interpretation stages of Figure 5/6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Feature extraction: FCFBs and direct wires compute the index digits.
    Premise,
    /// RBR kernel: the mixed-radix lookup in the filled rule table.
    Kernel,
    /// Conclusion processing: the selected rule's commands execute.
    Conclusion,
}

impl Stage {
    /// Stable lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Premise => "premise",
            Stage::Kernel => "kernel",
            Stage::Conclusion => "conclusion",
        }
    }

    /// All stages in pipeline order.
    pub const ALL: [Stage; 3] = [Stage::Premise, Stage::Kernel, Stage::Conclusion];
}

/// Observer of per-stage interpretation timing.
///
/// `base` is the index into [`crate::ast::Program::rulebases`] of the rule
/// base being interpreted; `nanos` is the measured wall-clock duration of
/// the stage. Implementations must be cheap and non-blocking — they run
/// inside every probed routing decision.
pub trait InterpProbe: Send + Sync {
    /// Records one stage execution.
    fn record_stage(&self, base: usize, stage: Stage, nanos: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Premise.name(), "premise");
        assert_eq!(Stage::Kernel.name(), "kernel");
        assert_eq!(Stage::Conclusion.name(), "conclusion");
        assert_eq!(Stage::ALL.len(), 3);
    }
}
