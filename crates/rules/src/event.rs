//! Event manager — "all actions are controlled and synchronized by an
//! event manager" (§4).
//!
//! A [`Machine`] owns a compiled program and its register file. The host
//! (the router) fires external events (message arrival, link-state change,
//! flit completion); rule conclusions may generate further events
//! (`!event(args)`), which the manager queues and processes until quiescent.
//! Events whose name matches no rule base are *host events* (e.g.
//! `send_newmessage` telling the router to emit a control message to a
//! neighbour) and are handed back to the caller.
//!
//! Every rule-base interpretation counts as one **step** — the quantity the
//! paper's §5 reports as "number of consecutive rule interpretations"
//! (NAFTA: 1 fault-free to 3 worst case; ROUTE_C: always 2).

use crate::ast::Program;
use crate::compile::{compile, CompileOptions};
use crate::env::{InputProvider, RegFile};
use crate::error::{Result, RuleError};
use crate::eval::{EventInstance, FireOutcome};
use crate::interp::CompiledProgram;
use crate::probe::InterpProbe;
use crate::value::Value;
use crate::vm::{Backend, Scratch, VmProgram};
use std::collections::VecDeque;
use std::sync::Arc;

/// Execution statistics of a machine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineStats {
    /// Total rule-base interpretations performed.
    pub total_steps: u64,
    /// Interpretations performed by the most recent [`Machine::fire`] call
    /// (the paper's per-decision step count).
    pub last_fire_steps: u32,
    /// Per-rule-base interpretation counts (indexed like
    /// `Program::rulebases`).
    pub per_base: Vec<u64>,
}

/// Modeled per-rule step weights for an optimized program.
///
/// Fusing a decision chain (e.g. NAFTA's `incoming_message` →
/// `in_message_ft` → `test_exception`) collapses two or three physical
/// interpretations into one, but the *modeled* step count — the quantity
/// §5 reports and the simulator converts into decision-cycle delay —
/// must stay exactly what the unoptimized program would have counted.
/// `StepWeights` records how many original interpretations each rule of
/// the rewritten program stands for; the machine's dispatch loop adds
/// the weight instead of 1, so `MachineStats::last_fire_steps` and
/// [`CascadeOutcome::steps`] remain bit-identical to the original while
/// `MachineStats::per_base` keeps counting *physical* interpretations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepWeights {
    /// Per base (indexed like `Program::rulebases`): per-rule weights,
    /// with one extra trailing slot for the gap (no-applicable-rule)
    /// outcome. Missing bases/slots default to weight 1.
    pub per_base: Vec<Vec<u32>>,
}

impl StepWeights {
    /// Uniform weight 1 for every rule of every base — the identity model.
    pub fn identity(prog: &Program) -> Self {
        StepWeights {
            per_base: prog.rulebases.iter().map(|rb| vec![1; rb.rules.len() + 1]).collect(),
        }
    }

    /// Weight of firing `rule` (`None` = gap entry) in `base`.
    pub fn weight(&self, base: usize, rule: Option<usize>) -> u32 {
        let Some(ws) = self.per_base.get(base) else { return 1 };
        let slot = match rule {
            Some(r) => r,
            None => ws.len().saturating_sub(1),
        };
        ws.get(slot).copied().unwrap_or(1)
    }
}

/// Everything a cascaded fire produced.
#[derive(Clone, Debug, Default)]
pub struct CascadeOutcome {
    /// Per-base outcomes, in firing order.
    pub outcomes: Vec<FireOutcome>,
    /// Events that escaped to the host.
    pub host_events: Vec<EventInstance>,
    /// Total rule interpretations of the cascade.
    pub steps: u32,
}

impl CascadeOutcome {
    /// The value of the last `RETURN` executed anywhere in the cascade.
    pub fn last_return(&self) -> Option<Value> {
        self.outcomes.iter().rev().find_map(|o| o.returned)
    }
}

/// A running rule machine: compiled program + registers + event queue.
pub struct Machine {
    compiled: CompiledProgram,
    regs: RegFile,
    queue: VecDeque<EventInstance>,
    probe: Option<Arc<dyn InterpProbe>>,
    step_weights: Option<Arc<StepWeights>>,
    /// When set, rule bases execute on the bytecode VM instead of the
    /// table interpreter; the scratch frame is reused across fires.
    vm: Option<(Arc<VmProgram>, Scratch)>,
    /// Safety budget per external fire: livelock guard for cyclic event
    /// generation.
    pub max_internal_events: u32,
    /// Statistics.
    pub stats: MachineStats,
}

impl Machine {
    /// Compiles `prog` and builds a machine with freshly initialised
    /// registers.
    pub fn new(prog: Program, opts: &CompileOptions) -> Result<Self> {
        let n = prog.rulebases.len();
        let compiled = compile(&prog, opts)?;
        let regs = RegFile::new(&compiled.prog);
        Ok(Machine {
            compiled,
            regs,
            queue: VecDeque::new(),
            probe: None,
            step_weights: None,
            vm: None,
            max_internal_events: 10_000,
            stats: MachineStats { per_base: vec![0; n], ..Default::default() },
        })
    }

    /// Wraps an already compiled program.
    pub fn from_compiled(compiled: CompiledProgram) -> Self {
        let n = compiled.prog.rulebases.len();
        let regs = RegFile::new(&compiled.prog);
        Machine {
            compiled,
            regs,
            queue: VecDeque::new(),
            probe: None,
            step_weights: None,
            vm: None,
            max_internal_events: 10_000,
            stats: MachineStats { per_base: vec![0; n], ..Default::default() },
        }
    }

    /// Selects the rule-execution backend. `Backend::Bytecode` lowers the
    /// compiled program on the spot; use [`Machine::set_bytecode`] to share
    /// one lowered program across machines.
    pub fn set_backend(&mut self, backend: Backend) -> Result<()> {
        match backend {
            Backend::Table => {
                self.vm = None;
                Ok(())
            }
            Backend::Bytecode => {
                let vm = VmProgram::lower(&self.compiled)?;
                self.set_bytecode(Arc::new(vm))
            }
        }
    }

    /// Installs a pre-lowered bytecode program (validated against this
    /// machine's compiled program before it is accepted).
    pub fn set_bytecode(&mut self, vm: Arc<VmProgram>) -> Result<()> {
        vm.validate(&self.compiled)?;
        self.vm = Some((vm, Scratch::new()));
        Ok(())
    }

    /// The backend this machine currently executes on.
    pub fn backend(&self) -> Backend {
        if self.vm.is_some() {
            Backend::Bytecode
        } else {
            Backend::Table
        }
    }

    /// Installs modeled step weights (see [`StepWeights`]); used when
    /// running an optimized program whose fused rules stand for several
    /// original interpretations.
    pub fn set_step_weights(&mut self, weights: Arc<StepWeights>) {
        self.step_weights = Some(weights);
    }

    /// Installs an interpretation probe: every subsequent rule-base fire
    /// reports per-stage timing to it (see [`crate::probe`]).
    pub fn set_probe(&mut self, probe: Arc<dyn InterpProbe>) {
        self.probe = Some(probe);
    }

    /// Removes the probe.
    pub fn clear_probe(&mut self) {
        self.probe = None;
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.compiled.prog
    }

    /// The compiled artefact.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Register file (read access for the host/information units).
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Register file (host-side initialisation, e.g. loading the node's own
    /// coordinates).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// Fires external event `event(args)`, then drains all internally
    /// generated events. Returns the outcome of the *directly fired* base
    /// plus every event that escaped to the host.
    pub fn fire(
        &mut self,
        event: &str,
        args: &[Value],
        inputs: &dyn InputProvider,
    ) -> Result<(FireOutcome, Vec<EventInstance>)> {
        let casc = self.fire_cascade(event, args, inputs)?;
        let direct = casc.outcomes.into_iter().next().unwrap_or_default();
        Ok((direct, casc.host_events))
    }

    /// Like [`Machine::fire`], but returns every rule-base outcome of the
    /// cascade in firing order — a multi-step routing decision (e.g.
    /// NAFTA's `incoming_message` → `in_message_ft` → `test_exception`)
    /// delivers its verdict from the *last* base that returned a value.
    pub fn fire_cascade(
        &mut self,
        event: &str,
        args: &[Value],
        inputs: &dyn InputProvider,
    ) -> Result<CascadeOutcome> {
        self.stats.last_fire_steps = 0;
        let mut host_events = Vec::new();
        let mut outcomes = Vec::new();

        // an event without a rule base becomes a host event inside dispatch
        if let Some(out) = self.dispatch(event, args, inputs, &mut host_events)? {
            outcomes.push(out);
        }

        let mut processed = 0u32;
        while let Some(ev) = self.queue.pop_front() {
            processed += 1;
            if processed > self.max_internal_events {
                return Err(RuleError::eval(format!(
                    "event livelock: more than {} internal events from one fire",
                    self.max_internal_events
                )));
            }
            if let Some(out) = self.dispatch(&ev.event, &ev.args, inputs, &mut host_events)? {
                outcomes.push(out);
            }
        }
        let steps = self.stats.last_fire_steps;
        Ok(CascadeOutcome { outcomes, host_events, steps })
    }

    /// Interprets one event: if a rule base matches, fire it (counting one
    /// step) and queue its internal events; otherwise report a host event.
    fn dispatch(
        &mut self,
        event: &str,
        args: &[Value],
        inputs: &dyn InputProvider,
        host_events: &mut Vec<EventInstance>,
    ) -> Result<Option<FireOutcome>> {
        let Some((idx, _)) = self.compiled.prog.rulebase(event) else {
            host_events.push(EventInstance { event: event.to_string(), args: args.to_vec() });
            return Ok(None);
        };
        self.stats.per_base[idx] += 1;
        let prog = &self.compiled.prog;
        let out = match (&mut self.vm, &self.probe) {
            (Some((vm, sc)), Some(p)) => {
                vm.bases[idx].fire_probed(prog, args, &mut self.regs, inputs, sc, p.as_ref())?
            }
            (Some((vm, sc)), None) => vm.bases[idx].fire(prog, args, &mut self.regs, inputs, sc)?,
            (None, Some(p)) => self.compiled.bases[idx].fire_probed(
                prog,
                args,
                &mut self.regs,
                inputs,
                p.as_ref(),
            )?,
            (None, None) => self.compiled.bases[idx].fire(prog, args, &mut self.regs, inputs)?,
        };
        // modeled steps: a fused rule counts as every interpretation it
        // replaced, so step-derived quantities match the original program
        let w = self.step_weights.as_ref().map_or(1, |sw| sw.weight(idx, out.rule));
        self.stats.total_steps += u64::from(w);
        self.stats.last_fire_steps += w;
        for ev in &out.emitted {
            if self.compiled.prog.rulebase(&ev.event).is_some() {
                self.queue.push_back(ev.clone());
            } else {
                host_events.push(ev.clone());
            }
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::InputMap;
    use crate::parser::parse;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn cascading_internal_events() {
        // a fires b; b increments a counter and emits a host event
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON a()\n IF TRUE THEN !b(3);\nEND a;\n\
             ON b(x IN 0 TO 7)\n IF TRUE THEN n <- x, !notify_host(x);\nEND b;",
        )
        .unwrap();
        let mut m = Machine::new(p, &CompileOptions::default()).unwrap();
        let (out, host) = m.fire("a", &[], &InputMap::new()).unwrap();
        assert_eq!(out.rule, Some(0));
        assert_eq!(m.regs().read(m.program(), 0, &[]).unwrap(), int(3));
        assert_eq!(host.len(), 1);
        assert_eq!(host[0].event, "notify_host");
        assert_eq!(m.stats.last_fire_steps, 2, "a + b = two interpretations");
    }

    #[test]
    fn unknown_event_goes_to_host() {
        let p = parse("VARIABLE n IN 0 TO 1\nON a() IF TRUE THEN n <- 1; END a;").unwrap();
        let mut m = Machine::new(p, &CompileOptions::default()).unwrap();
        let (out, host) = m.fire("nothere", &[int(1)], &InputMap::new()).unwrap();
        assert_eq!(out.rule, None);
        assert_eq!(host.len(), 1);
        assert_eq!(host[0].event, "nothere");
        assert_eq!(m.stats.last_fire_steps, 0);
    }

    #[test]
    fn livelock_guard_trips() {
        let p = parse("ON a() IF TRUE THEN !a(); END a;").unwrap();
        let mut m = Machine::new(p, &CompileOptions::default()).unwrap();
        m.max_internal_events = 50;
        let e = m.fire("a", &[], &InputMap::new());
        assert!(e.is_err());
    }

    #[test]
    fn per_base_step_counts() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON a()\n IF n < 3 THEN n <- n + 1, !a();\nEND a;",
        )
        .unwrap();
        let mut m = Machine::new(p, &CompileOptions::default()).unwrap();
        let (_, _) = m.fire("a", &[], &InputMap::new()).unwrap();
        // fires at n=0,1,2 re-emitting, at n=3 premise fails (no emission)
        assert_eq!(m.stats.per_base[0], 4);
        assert_eq!(m.stats.total_steps, 4);
        assert_eq!(m.regs().read(m.program(), 0, &[]).unwrap(), int(3));
    }

    #[test]
    fn step_weights_scale_modeled_steps_only() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON a() RETURNS 0 TO 7\n\
               IF n = 0 THEN RETURN(0);\n\
               IF TRUE THEN RETURN(1);\n\
             END a;",
        )
        .unwrap();
        let mut m = Machine::new(p, &CompileOptions::default()).unwrap();
        let mut w = StepWeights::identity(m.program());
        w.per_base[0] = vec![3, 1, 2]; // rule0→3, rule1→1, gap→2
        m.set_step_weights(Arc::new(w));
        let casc = m.fire_cascade("a", &[], &InputMap::new()).unwrap();
        assert_eq!(casc.steps, 3, "rule 0 fired with weight 3");
        assert_eq!(m.stats.total_steps, 3);
        assert_eq!(m.stats.per_base[0], 1, "physical count unscaled");
    }

    #[test]
    fn host_initialises_registers() {
        let p = parse(
            "VARIABLE xpos IN 0 TO 15\n\
             ON q() RETURNS 0 TO 15\n IF TRUE THEN RETURN(xpos);\nEND q;",
        )
        .unwrap();
        let mut m = Machine::new(p.clone(), &CompileOptions::default()).unwrap();
        m.regs_mut().write(&p, 0, &[], int(7)).unwrap();
        let (out, _) = m.fire("q", &[], &InputMap::new()).unwrap();
        assert_eq!(out.returned, Some(int(7)));
    }
}
