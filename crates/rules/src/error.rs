//! Error types for the rule language pipeline.

use std::fmt;

/// Source position (1-based line/column) attached to diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error raised while lexing, parsing, resolving, compiling or executing
/// a rule program.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleError {
    /// Lexical error (bad character, unterminated token).
    Lex { pos: Pos, msg: String },
    /// Syntax error.
    Parse { pos: Pos, msg: String },
    /// Name-resolution or type error.
    Resolve { msg: String },
    /// ARON compilation failure (e.g. feature space too large).
    Compile { rulebase: String, msg: String },
    /// Runtime evaluation error (conflicting parallel writes, missing
    /// input, domain violation).
    Eval { msg: String },
}

impl RuleError {
    /// Convenience constructor for evaluation errors.
    pub fn eval(msg: impl Into<String>) -> Self {
        RuleError::Eval { msg: msg.into() }
    }

    /// Convenience constructor for resolution errors.
    pub fn resolve(msg: impl Into<String>) -> Self {
        RuleError::Resolve { msg: msg.into() }
    }
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            RuleError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            RuleError::Resolve { msg } => write!(f, "resolve error: {msg}"),
            RuleError::Compile { rulebase, msg } => {
                write!(f, "compile error in rule base `{rulebase}`: {msg}")
            }
            RuleError::Eval { msg } => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, RuleError>;
