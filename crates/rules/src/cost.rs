//! Hardware cost model — the machinery behind Tables 1 and 2.
//!
//! For every rule base the model reports the compiled table geometry
//! (`entries × width` bits, the paper's "Size (Bit)" column), the FCFB
//! inventory, and the `nft` marker; for every register its bit width and
//! which rule bases write it. Totals separate the fault-tolerance-only
//! share, reproducing the paper's §5 statements like "159 bits are
//! organized in 8 registers ... only 47 bits account for fault-tolerance".
//!
//! **Width convention.** The paper does not spell out how entry widths were
//! derived. We use: `width = ceil(log2(#rules + 1)) + width(RETURNS type)`
//! — a conclusion selector (including the no-rule gap value) plus the
//! immediate return field. EXPERIMENTS.md compares these against the
//! paper's numbers per rule base.

use crate::ast::{Command, Expr, Program, Ref, RuleBase};
use crate::compile::{compile_rulebase, CompileOptions};
use crate::error::Result;
use crate::fcfb::{inventory, FcfbInventory};
use serde::{Deserialize, Serialize};

/// Cost of one compiled rule base.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuleBaseCost {
    /// Rule base / event name.
    pub name: String,
    /// Table entries (feature-space size).
    pub entries: u64,
    /// Entry width in bits.
    pub width_bits: u32,
    /// `entries × width`.
    pub table_bits: u64,
    /// Number of rules.
    pub num_rules: usize,
    /// FCFB kinds and distinct-use counts.
    pub fcfbs: Vec<(String, usize)>,
    /// Needed by the non-fault-tolerant variant?
    pub nft: bool,
}

/// Cost of one register.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegisterCost {
    /// Register name.
    pub name: String,
    /// Bits per cell.
    pub cell_bits: u32,
    /// Number of cells (product of index-domain sizes).
    pub cells: u64,
    /// Total bits.
    pub total_bits: u64,
    /// Rule bases that write this register.
    pub writers: Vec<String>,
    /// Rule bases that read this register.
    pub readers: Vec<String>,
    /// True if no nft rule base touches it — i.e. the register exists only
    /// for fault tolerance.
    pub ft_only: bool,
}

/// Aggregate cost report for a program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProgramCost {
    /// Per rule base.
    pub rulebases: Vec<RuleBaseCost>,
    /// Per register.
    pub registers: Vec<RegisterCost>,
}

impl ProgramCost {
    /// Total rule-table bits.
    pub fn total_table_bits(&self) -> u64 {
        self.rulebases.iter().map(|r| r.table_bits).sum()
    }

    /// Table bits of the non-fault-tolerant subset.
    pub fn nft_table_bits(&self) -> u64 {
        self.rulebases.iter().filter(|r| r.nft).map(|r| r.table_bits).sum()
    }

    /// Total register bits.
    pub fn total_register_bits(&self) -> u64 {
        self.registers.iter().map(|r| r.total_bits).sum()
    }

    /// Register bits that exist only for fault tolerance.
    pub fn ft_only_register_bits(&self) -> u64 {
        self.registers.iter().filter(|r| r.ft_only).map(|r| r.total_bits).sum()
    }

    /// Number of registers (paper counts declarations, not cells).
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Renders the rule-base table in the paper's Table 1/2 layout.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| Name | Size (Bit) | FCFBs | nft |\n");
        out.push_str("|------|-----------:|-------|:---:|\n");
        for rb in &self.rulebases {
            let fcfbs = if rb.fcfbs.is_empty() {
                "no FCFB needed".to_string()
            } else {
                rb.fcfbs
                    .iter()
                    .map(|(k, n)| if *n > 1 { format!("{n} x {k}") } else { k.clone() })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "| {} | {} x {} = {} | {} | {} |\n",
                rb.name,
                rb.entries,
                rb.width_bits,
                rb.table_bits,
                fcfbs,
                if rb.nft { "*" } else { "" }
            ));
        }
        out.push_str(&format!(
            "\nTotal table bits: {} (nft subset: {})\n",
            self.total_table_bits(),
            self.nft_table_bits()
        ));
        out.push_str(&format!(
            "Registers: {} bits in {} registers ({} bits fault-tolerance-only)\n",
            self.total_register_bits(),
            self.num_registers(),
            self.ft_only_register_bits()
        ));
        out
    }
}

fn expr_reads_var(e: &Expr, var: usize) -> bool {
    match e {
        Expr::Ref(Ref::Var(i)) => *i == var,
        Expr::Indexed { target, indices } => {
            matches!(target, crate::ast::IndexedRef::Var(i) if *i == var)
                || indices.iter().any(|x| expr_reads_var(x, var))
        }
        Expr::Lit(_) | Expr::Ref(_) => false,
        Expr::Un(_, inner) => expr_reads_var(inner, var),
        Expr::Bin(_, l, r) => expr_reads_var(l, var) || expr_reads_var(r, var),
        Expr::Quant { set, body, .. } => expr_reads_var(set, var) || expr_reads_var(body, var),
        Expr::Call { args, .. } => args.iter().any(|a| expr_reads_var(a, var)),
    }
}

fn command_touches_var(c: &Command, var: usize) -> (bool, bool) {
    // (reads, writes)
    match c {
        Command::Assign { var: v, indices, value } => {
            let reads =
                indices.iter().any(|i| expr_reads_var(i, var)) || expr_reads_var(value, var);
            (reads, *v == var)
        }
        Command::Return(e) => (expr_reads_var(e, var), false),
        Command::Emit { args, .. } => (args.iter().any(|a| expr_reads_var(a, var)), false),
        Command::ForAll { set, body, .. } => {
            let mut reads = expr_reads_var(set, var);
            let mut writes = false;
            for b in body {
                let (r, w) = command_touches_var(b, var);
                reads |= r;
                writes |= w;
            }
            (reads, writes)
        }
    }
}

fn rulebase_touches_var(rb: &RuleBase, var: usize) -> (bool, bool) {
    let mut reads = false;
    let mut writes = false;
    for rule in &rb.rules {
        reads |= expr_reads_var(&rule.premise, var);
        for c in &rule.conclusion {
            let (r, w) = command_touches_var(c, var);
            reads |= r;
            writes |= w;
        }
    }
    (reads, writes)
}

/// Analyses a program: compiles every rule base and derives the full cost
/// report.
pub fn analyze(prog: &Program, opts: &CompileOptions) -> Result<ProgramCost> {
    let ss = prog.sym_sizes();
    let mut rulebases = Vec::new();
    for (i, rb) in prog.rulebases.iter().enumerate() {
        let compiled = compile_rulebase(prog, i, opts)?;
        let inv: FcfbInventory = inventory(prog, rb);
        rulebases.push(RuleBaseCost {
            name: rb.name.clone(),
            entries: compiled.entries,
            width_bits: compiled.width_bits,
            table_bits: compiled.table_bits(),
            num_rules: rb.rules.len(),
            fcfbs: inv.into_iter().map(|(k, n)| (k.to_string(), n)).collect(),
            nft: rb.nft,
        });
    }

    let mut registers = Vec::new();
    for (vi, v) in prog.vars.iter().enumerate() {
        let cell_bits = v.elem.width_bits(&ss);
        let cells: u64 = v.index_domains.iter().map(|d| d.size(&ss)).product::<u64>().max(1);
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        let mut nft_touch = false;
        for rb in &prog.rulebases {
            let (r, w) = rulebase_touches_var(rb, vi);
            if w {
                writers.push(rb.name.clone());
            }
            if r {
                readers.push(rb.name.clone());
            }
            if rb.nft && (r || w) {
                nft_touch = true;
            }
        }
        registers.push(RegisterCost {
            name: v.name.clone(),
            cell_bits,
            cells,
            total_bits: cell_bits as u64 * cells,
            writers,
            readers,
            ft_only: !nft_touch,
        });
    }

    Ok(ProgramCost { rulebases, registers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "
CONSTANT st = {safe, faulty}
CONSTANT dirs = 0 TO 3
VARIABLE state IN st INIT safe           -- 1 bit, FT only
VARIABLE count IN 0 TO 15 INIT 0         -- 4 bits, used by nft base
VARIABLE marks[dirs] IN bool             -- 4 x 1 bits, FT only

ON route(d IN dirs) RETURNS dirs NFT
  IF count < 15 THEN count <- count + 1, RETURN(d);
END route;

ON fault(d IN dirs)
  IF state = safe THEN state <- faulty, marks(d) <- TRUE;
END fault;
";

    #[test]
    fn register_accounting() {
        let p = parse(SRC).unwrap();
        let c = analyze(&p, &CompileOptions::default()).unwrap();
        assert_eq!(c.num_registers(), 3);
        let state = c.registers.iter().find(|r| r.name == "state").unwrap();
        assert_eq!(state.total_bits, 1);
        assert!(state.ft_only);
        let count = c.registers.iter().find(|r| r.name == "count").unwrap();
        assert_eq!(count.total_bits, 4);
        assert!(!count.ft_only);
        let marks = c.registers.iter().find(|r| r.name == "marks").unwrap();
        assert_eq!(marks.cells, 4);
        assert_eq!(marks.total_bits, 4);
        assert!(marks.ft_only);
        assert_eq!(c.total_register_bits(), 9);
        assert_eq!(c.ft_only_register_bits(), 5);
    }

    #[test]
    fn writers_and_readers_tracked() {
        let p = parse(SRC).unwrap();
        let c = analyze(&p, &CompileOptions::default()).unwrap();
        let count = c.registers.iter().find(|r| r.name == "count").unwrap();
        assert_eq!(count.writers, vec!["route"]);
        assert_eq!(count.readers, vec!["route"]);
        let state = c.registers.iter().find(|r| r.name == "state").unwrap();
        assert_eq!(state.writers, vec!["fault"]);
    }

    #[test]
    fn nft_split_of_table_bits() {
        let p = parse(SRC).unwrap();
        let c = analyze(&p, &CompileOptions::default()).unwrap();
        assert!(c.nft_table_bits() > 0);
        assert!(c.nft_table_bits() < c.total_table_bits());
        let route = c.rulebases.iter().find(|r| r.name == "route").unwrap();
        assert!(route.nft);
        let fault = c.rulebases.iter().find(|r| r.name == "fault").unwrap();
        assert!(!fault.nft);
    }

    #[test]
    fn markdown_has_table_shape() {
        let p = parse(SRC).unwrap();
        let c = analyze(&p, &CompileOptions::default()).unwrap();
        let md = c.to_markdown();
        assert!(md.contains("| Name | Size (Bit) | FCFBs | nft |"));
        assert!(md.contains("| route |"));
        assert!(md.contains("Total table bits:"));
    }
}
