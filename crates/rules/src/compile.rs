//! ARON compilation: rule base → completely filled lookup table.
//!
//! "Its main concept is the generation of an unique index to a table in
//! which the conclusions of the rules are stored. This index is computed
//! from the input values and has a much smaller range than the input space.
//! The rule base itself is compiled off-line to a completely filled rule
//! table where conflicts are resolved and gaps are eliminated." (§4.3)
//!
//! The compiler extracts *features* from the premises:
//!
//! * a **direct** feature uses the raw value of a symbol/boolean subject as
//!   part of the table index (the paper: "since for `state` and
//!   `new_state(dir)` all individual values occur in the premises of the
//!   rules, no comparison is needed and their current values are used as
//!   part of the table index directly");
//! * a **predicate** feature is one bit computed by an FCFB (comparators on
//!   integer counters, membership tests on runtime sets, …).
//!
//! Quantifiers are expanded over their (finite, ≤ 64 element) domains before
//! extraction, and `/=` is normalised to `NOT =` so equality atoms have one
//! shape. The table is then filled by enumerating the whole feature space;
//! conflicts resolve to the first applicable rule in source order, gaps
//! (combinations where no premise holds, including physically unsatisfiable
//! ones) map to a no-op entry.

use crate::ast::*;
use crate::error::{Result, RuleError};
use crate::interp::{CompiledProgram, CompiledRuleBase};
use crate::value::{ceil_log2, Domain, Value};
use std::collections::HashMap;
use std::num::NonZeroU16;

/// Compilation parameters.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Maximum number of table entries per rule base (feature-space size).
    pub max_entries: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { max_entries: 1 << 20 }
    }
}

/// The first kind of output two conflicting conclusions disagree on.
///
/// A rule pair can conflict on several outputs at once (a RETURN *and* a
/// register write, say); warnings are deduplicated by
/// `(winner, loser, kind)` where `kind` is the first disagreement in
/// command order, so each pair produces exactly one `Conflict`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// The conclusions return different values.
    Return,
    /// The conclusions write a register differently.
    Register,
    /// The conclusions emit different events.
    Emit,
}

/// Classifies the first command-order disagreement between two
/// conclusions (which are known to differ).
pub fn conflict_kind(a: &[Command], b: &[Command]) -> ConflictKind {
    fn kind_of(c: &Command) -> ConflictKind {
        match c {
            Command::Return(_) => ConflictKind::Return,
            Command::Assign { .. } | Command::ForAll { .. } => ConflictKind::Register,
            Command::Emit { .. } => ConflictKind::Emit,
        }
    }
    for (ca, cb) in a.iter().zip(b.iter()) {
        if ca != cb {
            return kind_of(cb);
        }
    }
    // one conclusion is a strict prefix of the other: the extra command
    // is the disagreement
    if a.len() > b.len() {
        kind_of(&a[b.len()])
    } else if b.len() > a.len() {
        kind_of(&b[a.len()])
    } else {
        // equal lists never reach here (identical conclusions are not
        // conflicts); keep a deterministic fallback anyway
        ConflictKind::Return
    }
}

/// A resolution the ARON compiler performed silently while filling the
/// table (§4.3: "conflicts are resolved and gaps are eliminated").
/// Collected — not printed — so `ftr-analyze` can turn them into
/// diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileWarning {
    /// At `entries` feature-space entries both rules applied with
    /// *different* conclusions; source order picked `winner` (rule
    /// indices within the rule base, 0-based, `winner < loser`).
    Conflict {
        /// Rule that fires (earlier in source order).
        winner: usize,
        /// Rule whose conclusion is discarded there.
        loser: usize,
        /// First output kind the conclusions disagree on.
        kind: ConflictKind,
        /// Number of feature-space entries where both applied.
        entries: u64,
    },
    /// `entries` of `total` feature-space entries had no applicable rule
    /// and were mapped to the no-op entry 0.
    Gaps {
        /// Entries with no applicable rule.
        entries: u64,
        /// Total feature-space entries.
        total: u64,
    },
}

/// How one feature contributes to the table index.
#[derive(Clone, Debug, PartialEq)]
pub enum FeatureKind {
    /// The subject's raw value is an index digit (radix = domain size).
    Direct {
        /// The wired subject expression.
        subject: Expr,
        /// Its domain.
        dom: Domain,
    },
    /// One bit computed from an arbitrary boolean expression.
    Predicate {
        /// The expression an FCFB evaluates.
        expr: Expr,
    },
}

/// One extracted feature.
#[derive(Clone, Debug, PartialEq)]
pub struct Feature {
    /// Direct or predicate.
    pub kind: FeatureKind,
    /// Radix of this index digit.
    pub size: u64,
}

/// How an atom's truth is recovered from feature values.
#[derive(Clone, Debug)]
enum AtomTest {
    /// Predicate feature bit is the truth value.
    Bit,
    /// Direct feature equals this literal.
    EqLit(Value),
    /// Direct feature is a member of this literal set.
    InLit(Domain, u64),
    /// Direct boolean feature used bare.
    BoolDirect,
}

#[derive(Default)]
struct FeatureSet {
    features: Vec<Feature>,
    /// atom expression → (feature index, test)
    atoms: HashMap<Expr, (usize, AtomTest)>,
}

impl FeatureSet {
    fn direct(&mut self, prog: &Program, subject: Expr, dom: Domain) -> usize {
        for (i, f) in self.features.iter().enumerate() {
            if let FeatureKind::Direct { subject: s, .. } = &f.kind {
                if *s == subject {
                    return i;
                }
            }
        }
        let size = dom.size(&prog.sym_sizes());
        self.features.push(Feature { kind: FeatureKind::Direct { subject, dom }, size });
        self.features.len() - 1
    }

    fn predicate(&mut self, expr: Expr) -> usize {
        for (i, f) in self.features.iter().enumerate() {
            if let FeatureKind::Predicate { expr: e } = &f.kind {
                if *e == expr {
                    return i;
                }
            }
        }
        self.features.push(Feature { kind: FeatureKind::Predicate { expr }, size: 2 });
        self.features.len() - 1
    }
}

/// Substitutes `Bound(depth)` with a literal and shifts deeper binders.
pub fn subst_bound(e: &Expr, depth: usize, v: Value) -> Expr {
    match e {
        Expr::Lit(x) => Expr::Lit(*x),
        Expr::Ref(Ref::Bound(d)) => {
            use std::cmp::Ordering::*;
            match d.cmp(&depth) {
                Equal => Expr::Lit(v),
                Greater => Expr::Ref(Ref::Bound(d - 1)),
                Less => Expr::Ref(Ref::Bound(*d)),
            }
        }
        Expr::Ref(r) => Expr::Ref(*r),
        Expr::Indexed { target, indices } => Expr::Indexed {
            target: *target,
            indices: indices.iter().map(|i| subst_bound(i, depth, v)).collect(),
        },
        Expr::Un(op, inner) => Expr::Un(*op, Box::new(subst_bound(inner, depth, v))),
        Expr::Bin(op, l, r) => {
            Expr::Bin(*op, Box::new(subst_bound(l, depth, v)), Box::new(subst_bound(r, depth, v)))
        }
        Expr::Quant { q, dom, set, body } => Expr::Quant {
            q: *q,
            dom: *dom,
            set: Box::new(subst_bound(set, depth, v)),
            body: Box::new(subst_bound(body, depth + 1, v)),
        },
        Expr::Call { builtin, args } => Expr::Call {
            builtin: *builtin,
            args: args.iter().map(|a| subst_bound(a, depth, v)).collect(),
        },
    }
}

/// Expands all quantifiers over their finite domains and normalises `/=`.
pub fn expand_quantifiers(prog: &Program, e: &Expr) -> Result<Expr> {
    Ok(match e {
        Expr::Quant { q, dom, set, body } => {
            let set_e = expand_quantifiers(prog, set)?;
            let body_e = expand_quantifiers(prog, body)?;
            let n = dom.size(&prog.sym_sizes());
            if n > 64 {
                return Err(RuleError::resolve(
                    "quantifier domain exceeds 64 elements".to_string(),
                ));
            }
            let mut acc: Option<Expr> = None;
            for k in 0..n {
                let v = dom.value_at(k);
                let guard = Expr::Bin(BinOp::In, Box::new(Expr::Lit(v)), Box::new(set_e.clone()));
                let inst = subst_bound(&body_e, 0, v);
                let term = match q {
                    Quant::Exists => Expr::Bin(BinOp::And, Box::new(guard), Box::new(inst)),
                    Quant::Forall => Expr::Bin(
                        BinOp::Or,
                        Box::new(Expr::Un(UnOp::Not, Box::new(guard))),
                        Box::new(inst),
                    ),
                };
                acc = Some(match acc {
                    None => term,
                    Some(prev) => {
                        let op = match q {
                            Quant::Exists => BinOp::Or,
                            Quant::Forall => BinOp::And,
                        };
                        Expr::Bin(op, Box::new(prev), Box::new(term))
                    }
                });
            }
            acc.unwrap_or(Expr::Lit(Value::Bool(matches!(q, Quant::Forall))))
        }
        Expr::Bin(BinOp::Ne, l, r) => {
            let l = expand_quantifiers(prog, l)?;
            let r = expand_quantifiers(prog, r)?;
            Expr::Un(UnOp::Not, Box::new(Expr::Bin(BinOp::Eq, Box::new(l), Box::new(r))))
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(expand_quantifiers(prog, l)?),
            Box::new(expand_quantifiers(prog, r)?),
        ),
        Expr::Un(op, inner) => Expr::Un(*op, Box::new(expand_quantifiers(prog, inner)?)),
        Expr::Indexed { target, indices } => {
            let idx: Result<Vec<Expr>> =
                indices.iter().map(|i| expand_quantifiers(prog, i)).collect();
            Expr::Indexed { target: *target, indices: idx? }
        }
        Expr::Call { builtin, args } => {
            let a: Result<Vec<Expr>> = args.iter().map(|x| expand_quantifiers(prog, x)).collect();
            Expr::Call { builtin: *builtin, args: a? }
        }
        other => other.clone(),
    })
}

/// True if the expression reads anything dynamic (register, input,
/// parameter, binder) — such expressions cannot be folded at compile time.
fn contains_dynamic_ref(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) => false,
        Expr::Ref(Ref::Const(_)) => false,
        Expr::Ref(_) => true,
        Expr::Indexed { .. } => true,
        Expr::Un(_, inner) => contains_dynamic_ref(inner),
        Expr::Bin(_, l, r) => contains_dynamic_ref(l) || contains_dynamic_ref(r),
        Expr::Quant { set, body, .. } => contains_dynamic_ref(set) || contains_dynamic_ref(body),
        Expr::Call { builtin, args } => {
            matches!(builtin, Builtin::ArgMin(_) | Builtin::ArgMax(_))
                || args.iter().any(contains_dynamic_ref)
        }
    }
}

/// Folds constant subexpressions (quantifier expansion leaves many
/// `Lit IN Lit-set` guards behind; without folding each would become a
/// spurious predicate feature and double the table).
pub fn fold_consts(prog: &Program, e: &Expr) -> Result<Expr> {
    // fold children first
    let folded = match e {
        Expr::Un(op, inner) => Expr::Un(*op, Box::new(fold_consts(prog, inner)?)),
        Expr::Bin(op, l, r) => {
            Expr::Bin(*op, Box::new(fold_consts(prog, l)?), Box::new(fold_consts(prog, r)?))
        }
        Expr::Indexed { target, indices } => {
            let idx: Result<Vec<Expr>> = indices.iter().map(|i| fold_consts(prog, i)).collect();
            Expr::Indexed { target: *target, indices: idx? }
        }
        Expr::Call { builtin, args } => {
            let a: Result<Vec<Expr>> = args.iter().map(|x| fold_consts(prog, x)).collect();
            Expr::Call { builtin: *builtin, args: a? }
        }
        other => other.clone(),
    };
    if contains_dynamic_ref(&folded) {
        // boolean simplifications with constant halves
        if let Expr::Bin(op @ (BinOp::And | BinOp::Or), l, r) = &folded {
            let (konst, dynamic) = match (&**l, &**r) {
                (Expr::Lit(Value::Bool(b)), d) => (Some(*b), d),
                (d, Expr::Lit(Value::Bool(b))) => (Some(*b), d),
                _ => (None, &**l),
            };
            if let Some(b) = konst {
                return Ok(match (op, b) {
                    (BinOp::And, true) | (BinOp::Or, false) => dynamic.clone(),
                    (BinOp::And, false) => Expr::Lit(Value::Bool(false)),
                    (BinOp::Or, true) => Expr::Lit(Value::Bool(true)),
                    _ => unreachable!(),
                });
            }
        }
        return Ok(folded);
    }
    // fully constant: evaluate with an empty environment
    let regs = crate::env::RegFile::new(prog);
    struct NoInputs;
    impl crate::env::InputProvider for NoInputs {
        fn read_input(&self, _: &Program, _: usize, _: &[Value]) -> Result<Value> {
            Err(RuleError::eval("input read in constant expression".to_string()))
        }
    }
    let mut ctx = crate::eval::EvalCtx::new(prog, &regs, &NoInputs, &[]);
    let v = crate::eval::eval_expr(&mut ctx, &folded)?;
    Ok(Expr::Lit(v))
}

/// Domain of a scalar subject expression, when it is simple enough to wire
/// directly into the table index (references and indexed reads).
fn subject_domain(prog: &Program, rb: &RuleBase, e: &Expr) -> Option<Domain> {
    match e {
        Expr::Ref(Ref::Var(i)) => match prog.vars[*i].elem {
            crate::value::Type::Scalar(d) => Some(d),
            _ => None,
        },
        Expr::Ref(Ref::Input(i)) => match prog.inputs[*i].elem {
            crate::value::Type::Scalar(d) => Some(d),
            _ => None,
        },
        Expr::Ref(Ref::Param(i)) => Some(rb.params[*i].dom),
        Expr::Indexed { target, .. } => match target {
            IndexedRef::Var(i) => match prog.vars[*i].elem {
                crate::value::Type::Scalar(d) => Some(d),
                _ => None,
            },
            IndexedRef::Input(i) => match prog.inputs[*i].elem {
                crate::value::Type::Scalar(d) => Some(d),
                _ => None,
            },
        },
        _ => None,
    }
}

fn is_directable(d: Domain) -> bool {
    matches!(d, Domain::Sym(_) | Domain::Bool)
}

/// Collects atoms of an expanded premise into the feature set.
fn collect_atoms(prog: &Program, rb: &RuleBase, e: &Expr, fs: &mut FeatureSet) -> Result<()> {
    match e {
        Expr::Lit(Value::Bool(_)) => Ok(()),
        Expr::Bin(BinOp::And | BinOp::Or, l, r) => {
            collect_atoms(prog, rb, l, fs)?;
            collect_atoms(prog, rb, r, fs)
        }
        Expr::Un(UnOp::Not, inner) => collect_atoms(prog, rb, inner, fs),
        atom => {
            if fs.atoms.contains_key(atom) {
                return Ok(());
            }
            let entry = classify_atom(prog, rb, atom, fs);
            fs.atoms.insert(atom.clone(), entry);
            Ok(())
        }
    }
}

fn classify_atom(
    prog: &Program,
    rb: &RuleBase,
    atom: &Expr,
    fs: &mut FeatureSet,
) -> (usize, AtomTest) {
    match atom {
        // subject = literal  (either side)
        Expr::Bin(BinOp::Eq, l, r) => {
            let (subj, lit) = match (&**l, &**r) {
                (Expr::Lit(v), s) => (s, Some(*v)),
                (s, Expr::Lit(v)) => (s, Some(*v)),
                _ => (&**l, None),
            };
            if let Some(lit) = lit {
                if let Some(d) = subject_domain(prog, rb, subj) {
                    if is_directable(d) {
                        let f = fs.direct(prog, subj.clone(), d);
                        return (f, AtomTest::EqLit(lit));
                    }
                }
            }
            (fs.predicate(atom.clone()), AtomTest::Bit)
        }
        // subject IN literal-set
        Expr::Bin(BinOp::In, l, r) => {
            if let Expr::Lit(Value::Set { dom, mask }) = &**r {
                if let Some(d) = subject_domain(prog, rb, l) {
                    if is_directable(d) {
                        let f = fs.direct(prog, (**l).clone(), d);
                        return (f, AtomTest::InLit(*dom, *mask));
                    }
                }
            }
            (fs.predicate(atom.clone()), AtomTest::Bit)
        }
        // bare boolean subject
        other => {
            if let Some(d) = subject_domain(prog, rb, other) {
                if d == Domain::Bool {
                    let f = fs.direct(prog, other.clone(), d);
                    return (f, AtomTest::BoolDirect);
                }
            }
            (fs.predicate(other.clone()), AtomTest::Bit)
        }
    }
}

/// Evaluates an expanded premise under an abstract feature assignment.
fn abstract_eval(prog: &Program, fs: &FeatureSet, assignment: &[u64], e: &Expr) -> Result<bool> {
    match e {
        Expr::Lit(Value::Bool(b)) => Ok(*b),
        Expr::Bin(BinOp::And, l, r) => {
            Ok(abstract_eval(prog, fs, assignment, l)? && abstract_eval(prog, fs, assignment, r)?)
        }
        Expr::Bin(BinOp::Or, l, r) => {
            Ok(abstract_eval(prog, fs, assignment, l)? || abstract_eval(prog, fs, assignment, r)?)
        }
        Expr::Un(UnOp::Not, inner) => Ok(!abstract_eval(prog, fs, assignment, inner)?),
        atom => {
            let (fi, test) = fs
                .atoms
                .get(atom)
                .ok_or_else(|| RuleError::eval(format!("unmapped atom {atom:?}")))?;
            let digit = assignment[*fi];
            let ss = prog.sym_sizes();
            Ok(match test {
                AtomTest::Bit => digit != 0,
                AtomTest::BoolDirect => digit != 0,
                AtomTest::EqLit(lit) => {
                    let dom = match &fs.features[*fi].kind {
                        FeatureKind::Direct { dom, .. } => *dom,
                        _ => unreachable!("EqLit on predicate feature"),
                    };
                    dom.value_at(digit) == *lit
                }
                AtomTest::InLit(set_dom, mask) => {
                    let dom = match &fs.features[*fi].kind {
                        FeatureKind::Direct { dom, .. } => *dom,
                        _ => unreachable!("InLit on predicate feature"),
                    };
                    let v = dom.value_at(digit);
                    set_dom.ordinal(&v, &ss).is_some_and(|k| mask & (1 << k) != 0)
                }
            })
        }
    }
}

/// Compiles one rule base to its filled table.
pub fn compile_rulebase(
    prog: &Program,
    rb_idx: usize,
    opts: &CompileOptions,
) -> Result<CompiledRuleBase> {
    let rb = &prog.rulebases[rb_idx];
    let mut fs = FeatureSet::default();
    let expanded: Result<Vec<Expr>> = rb
        .rules
        .iter()
        .map(|r| {
            let e = expand_quantifiers(prog, &r.premise)?;
            fold_consts(prog, &e)
        })
        .collect();
    let expanded = expanded?;
    for p in &expanded {
        collect_atoms(prog, rb, p, &mut fs)?;
    }

    let entries: u64 =
        fs.features.iter().map(|f| f.size).try_fold(1u64, |a, b| a.checked_mul(b)).ok_or_else(
            || RuleError::Compile {
                rulebase: rb.name.clone(),
                msg: "feature space overflows u64".to_string(),
            },
        )?;
    if entries > opts.max_entries {
        return Err(RuleError::Compile {
            rulebase: rb.name.clone(),
            msg: format!(
                "feature space has {entries} entries (> {} limit); restructure the rules",
                opts.max_entries
            ),
        });
    }
    if rb.rules.len() > u16::MAX as usize - 1 {
        return Err(RuleError::Compile {
            rulebase: rb.name.clone(),
            msg: "too many rules".to_string(),
        });
    }

    // fill the table by mixed-radix enumeration of the feature space;
    // while doing so, record which resolutions §4.3 performs silently
    let radices: Vec<u64> = fs.features.iter().map(|f| f.size).collect();
    let mut table: Vec<Option<NonZeroU16>> = vec![None; entries as usize];
    let mut assignment = vec![0u64; radices.len()];
    let mut rule_applicable = vec![0u64; rb.rules.len()];
    let mut conflicts: HashMap<(usize, usize), u64> = HashMap::new();
    let mut gaps = 0u64;
    for entry in table.iter_mut() {
        let mut winner: Option<usize> = None;
        for (ri, prem) in expanded.iter().enumerate() {
            if abstract_eval(prog, &fs, &assignment, prem)? {
                rule_applicable[ri] += 1;
                match winner {
                    None => winner = Some(ri),
                    // identical conclusions are not a conflict: whichever
                    // fires, the effect is the same
                    Some(w) if rb.rules[w].conclusion != rb.rules[ri].conclusion => {
                        *conflicts.entry((w, ri)).or_insert(0) += 1;
                    }
                    Some(_) => {}
                }
            }
        }
        match winner {
            Some(w) => *entry = NonZeroU16::new((w + 1) as u16),
            None => gaps += 1,
        }
        // increment mixed-radix counter (first feature = least significant)
        for (a, r) in assignment.iter_mut().zip(&radices) {
            *a += 1;
            if *a < *r {
                break;
            }
            *a = 0;
        }
    }
    // each (winner, loser) pair collapses to one warning even when the
    // pair disagrees on several outputs: `kind` is the pair's first
    // disagreement, so keying by (winner, loser, kind) is a per-pair dedupe
    let mut dedup: HashMap<(usize, usize, ConflictKind), u64> = HashMap::new();
    for ((winner, loser), n) in conflicts {
        let kind = conflict_kind(&rb.rules[winner].conclusion, &rb.rules[loser].conclusion);
        *dedup.entry((winner, loser, kind)).or_insert(0) += n;
    }
    let mut warnings: Vec<CompileWarning> = dedup
        .into_iter()
        .map(|((winner, loser, kind), n)| CompileWarning::Conflict {
            winner,
            loser,
            kind,
            entries: n,
        })
        .collect();
    warnings.sort_unstable_by_key(|w| match *w {
        CompileWarning::Conflict { winner, loser, .. } => (winner, loser),
        CompileWarning::Gaps { .. } => (usize::MAX, usize::MAX),
    });
    if gaps > 0 {
        warnings.push(CompileWarning::Gaps { entries: gaps, total: entries });
    }

    // width: conclusion selector plus declared return field (documented
    // convention of the cost model — see cost.rs)
    let ss = prog.sym_sizes();
    let sel_bits = ceil_log2(rb.rules.len() as u64 + 1).max(1);
    let ret_bits = rb.returns.map_or(0, |t| t.width_bits(&ss));
    let width_bits = sel_bits + ret_bits;

    Ok(CompiledRuleBase {
        rb: rb_idx,
        features: fs.features,
        radices,
        table,
        entries,
        width_bits,
        warnings,
        rule_applicable,
        premises: expanded,
    })
}

/// Compiles every rule base of a program.
pub fn compile(prog: &Program, opts: &CompileOptions) -> Result<CompiledProgram> {
    let bases: Result<Vec<CompiledRuleBase>> =
        (0..prog.rulebases.len()).map(|i| compile_rulebase(prog, i, opts)).collect();
    Ok(CompiledProgram { prog: prog.clone(), bases: bases? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Raw table entry for rule `r` (1-based encoding); `nz(0)` is a gap.
    fn nz(e: u16) -> Option<NonZeroU16> {
        NonZeroU16::new(e)
    }

    #[test]
    fn direct_features_for_symbols() {
        let p = parse(
            "CONSTANT st = {safe, faulty}\n\
             VARIABLE state IN st INIT safe\n\
             ON f() RETURNS 0 TO 1\n\
               IF state = safe THEN RETURN(0);\n\
               IF state = faulty THEN RETURN(1);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        // one direct feature of size 2 → 2 entries
        assert_eq!(c.features.len(), 1);
        assert!(matches!(c.features[0].kind, FeatureKind::Direct { .. }));
        assert_eq!(c.entries, 2);
        assert_eq!(c.table, vec![nz(1), nz(2)]); // safe→rule0, faulty→rule1
    }

    #[test]
    fn predicate_features_for_int_comparisons() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON f() RETURNS 0 TO 1\n\
               IF n = 0 THEN RETURN(0);\n\
               IF n > 2 THEN RETURN(1);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        // two predicate bits → 4 entries
        assert_eq!(c.features.len(), 2);
        assert!(c.features.iter().all(|f| matches!(f.kind, FeatureKind::Predicate { .. })));
        assert_eq!(c.entries, 4);
    }

    #[test]
    fn first_rule_wins_conflicts() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON f() RETURNS 0 TO 1\n\
               IF n > 0 THEN RETURN(0);\n\
               IF n > 1 THEN RETURN(1);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        // whenever both predicates hold, rule 0 is stored
        for (i, &e) in c.table.iter().enumerate() {
            let bits = (i & 1 != 0, i & 2 != 0); // (n>0, n>1)
            match bits {
                (true, _) => assert_eq!(e, nz(1)),
                (false, true) => assert_eq!(e, nz(2)), // unsatisfiable combo, filled anyway
                (false, false) => assert_eq!(e, None),
            }
        }
    }

    #[test]
    fn quantifier_expansion_over_bool_inputs() {
        let p = parse(
            "CONSTANT dirs = 0 TO 2\n\
             INPUT free[dirs] IN bool\n\
             ON f() RETURNS 0 TO 1\n\
               IF EXISTS i IN dirs: free(i) THEN RETURN(1);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        // three direct boolean features (free(0..2)) → 8 entries
        assert_eq!(c.features.len(), 3);
        assert_eq!(c.entries, 8);
        assert_eq!(c.table[0], nz(2)); // no free link → rule 1
        for e in &c.table[1..] {
            assert_eq!(*e, nz(1));
        }
    }

    #[test]
    fn entry_limit_enforced() {
        let p = parse(
            "CONSTANT dirs = 0 TO 15\n\
             INPUT free[dirs] IN bool\n\
             ON f() RETURNS 0 TO 1\n\
               IF EXISTS i IN dirs: free(i) THEN RETURN(1);\n\
             END f;",
        )
        .unwrap();
        let e = compile_rulebase(&p, 0, &CompileOptions { max_entries: 1 << 10 });
        assert!(matches!(e, Err(RuleError::Compile { .. })));
    }

    #[test]
    fn width_accounts_selector_and_return() {
        let p = parse(
            "VARIABLE n IN 0 TO 7\n\
             ON f() RETURNS 0 TO 7\n\
               IF n = 0 THEN RETURN(1);\n\
               IF n = 1 THEN RETURN(2);\n\
               IF n = 2 THEN RETURN(3);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        // selector: ceil(log2(4)) = 2, return: 3 bits
        assert_eq!(c.width_bits, 5);
    }

    #[test]
    fn subst_bound_shifts_outer_binders() {
        // EXISTS i IN s: EXISTS j IN s: i = j — after substituting i the
        // inner occurrence Bound(1) must become the literal.
        let p = parse(
            "CONSTANT dirs = 0 TO 1\n\
             ON f() RETURNS 0 TO 1\n\
               IF EXISTS i IN dirs: EXISTS j IN dirs: i = j THEN RETURN(1);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        // i = j over literal pairs is constant-folded into the premises, so
        // no features at all → single always-true entry
        assert_eq!(c.entries, 1);
        assert_eq!(c.table, vec![nz(1)]);
    }

    #[test]
    fn conflicts_and_gaps_are_collected() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON f() RETURNS 0 TO 3\n\
               IF n < 4 THEN RETURN(0);\n\
               IF n < 6 THEN RETURN(1);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        // features: n<4 and n<6 → 4 abstract entries; both true at one of
        // them (conflict, resolved to rule 0), neither true at one (gap)
        assert!(c.warnings.contains(&CompileWarning::Conflict {
            winner: 0,
            loser: 1,
            kind: ConflictKind::Return,
            entries: 1
        }));
        assert!(c.warnings.iter().any(|w| matches!(w, CompileWarning::Gaps { entries: 1, .. })));
        // both rules are applicable somewhere, and both actually win somewhere
        assert!(c.rule_applicable.iter().all(|&n| n > 0));
        for r in [1u16, 2] {
            assert!(c.table.contains(&nz(r)));
        }
    }

    #[test]
    fn multi_output_conflict_yields_single_warning() {
        // the pair disagrees on BOTH a register write and the return
        // value; dedupe by (winner, loser, kind) must leave exactly one
        // Conflict, classified by the first disagreement in command order
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             VARIABLE m IN 0 TO 7 INIT 0\n\
             ON f() RETURNS 0 TO 3\n\
               IF n < 4 THEN m <- 1, RETURN(0);\n\
               IF n < 6 THEN m <- 2, RETURN(1);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        let conflicts: Vec<_> =
            c.warnings.iter().filter(|w| matches!(w, CompileWarning::Conflict { .. })).collect();
        assert_eq!(conflicts.len(), 1, "one warning per conflicting pair: {conflicts:?}");
        assert!(matches!(
            conflicts[0],
            CompileWarning::Conflict { winner: 0, loser: 1, kind: ConflictKind::Register, .. }
        ));
    }

    #[test]
    fn expanded_premises_are_exposed() {
        let p = parse(
            "CONSTANT dirs = 0 TO 2\n\
             INPUT free[dirs] IN bool\n\
             ON f() RETURNS 0 TO 1\n\
               IF EXISTS i IN dirs: free(i) THEN RETURN(1);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        assert_eq!(c.premises.len(), 2);
        // the quantifier is gone from the exposed guard IR
        fn has_quant(e: &Expr) -> bool {
            match e {
                Expr::Quant { .. } => true,
                Expr::Un(_, i) => has_quant(i),
                Expr::Bin(_, l, r) => has_quant(l) || has_quant(r),
                _ => false,
            }
        }
        assert!(!has_quant(&c.premises[0]));
        assert_eq!(c.premises[1], Expr::Lit(Value::Bool(true)));
    }

    #[test]
    fn identical_conclusions_are_not_conflicts() {
        let p = parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON f() RETURNS 0 TO 3\n\
               IF n < 4 THEN RETURN(0);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let c = compile_rulebase(&p, 0, &CompileOptions::default()).unwrap();
        assert!(c.warnings.iter().all(|w| !matches!(w, CompileWarning::Conflict { .. })));
        // the catch-all also eliminates gaps
        assert!(c.warnings.is_empty());
    }
}
