//! Property-based tests of the topology substrate.

use ftr_topo::spanning::SpanningTree;
use ftr_topo::{graph, FaultSet, Hypercube, Mesh2D, NodeId, Topology, Torus2D};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = Mesh2D> {
    (1u32..=8, 1u32..=8).prop_map(|(w, h)| Mesh2D::new(w, h))
}

fn arb_torus() -> impl Strategy<Value = Torus2D> {
    (3u32..=7, 3u32..=7).prop_map(|(w, h)| Torus2D::new(w, h))
}

fn arb_cube() -> impl Strategy<Value = Hypercube> {
    (1u32..=6).prop_map(Hypercube::new)
}

proptest! {
    /// Adjacency is symmetric: some port leads back from every neighbour.
    #[test]
    fn mesh_adjacency_symmetric(m in arb_mesh(), n in 0u32..64) {
        let n = NodeId(n % m.num_nodes() as u32);
        for (p, nb) in m.neighbors(n) {
            prop_assert_eq!(m.port_towards(nb, n).is_some(), true);
            prop_assert_eq!(m.neighbor(n, p), Some(nb));
        }
    }

    /// min_distance is a metric: symmetry + triangle inequality + identity.
    #[test]
    fn mesh_distance_is_metric(m in arb_mesh(), a in 0u32..64, b in 0u32..64, c in 0u32..64) {
        let n = m.num_nodes() as u32;
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        prop_assert_eq!(m.min_distance(a, a), 0);
        prop_assert_eq!(m.min_distance(a, b), m.min_distance(b, a));
        prop_assert!(m.min_distance(a, c) <= m.min_distance(a, b) + m.min_distance(b, c));
    }

    /// BFS over a fault-free network equals the closed-form distance, on
    /// every topology kind.
    #[test]
    fn bfs_matches_min_distance(m in arb_mesh(), t in arb_torus(), h in arb_cube()) {
        let f = FaultSet::new();
        for topo in [&m as &dyn Topology, &t, &h] {
            let src = NodeId(0);
            let d = graph::bfs_distances(topo, &f, src);
            for n in topo.nodes() {
                prop_assert_eq!(d[n.idx()], topo.min_distance(src, n));
            }
        }
    }

    /// keep_connected fault injection preserves connectivity, and shortest
    /// paths through the faulty network are valid walks of the right length.
    #[test]
    fn faulty_paths_are_valid(seed in 0u64..500, nfaults in 0usize..8) {
        let m = Mesh2D::new(6, 6);
        let mut f = FaultSet::new();
        f.inject_random_links(&m, nfaults, true, seed);
        prop_assert!(graph::is_connected(&m, &f));
        let a = NodeId(0);
        let b = NodeId(35);
        let path = graph::shortest_path(&m, &f, a, b).expect("connected");
        prop_assert_eq!(path[0], a);
        prop_assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            let p = m.port_towards(w[0], w[1]).expect("adjacent steps");
            prop_assert!(f.link_usable(&m, w[0], p));
        }
        prop_assert_eq!(
            path.len() as u32 - 1,
            graph::distance(&m, &f, a, b).expect("connected")
        );
    }

    /// Spanning trees span every reachable node with exactly one parentage
    /// and no fault edges.
    #[test]
    fn spanning_tree_invariants(seed in 0u64..500, nfaults in 0usize..6) {
        let m = Mesh2D::new(5, 5);
        let mut f = FaultSet::new();
        f.inject_random_links(&m, nfaults, true, seed);
        let t = SpanningTree::build(&m, &f, NodeId(0));
        let mut in_tree = 0;
        for n in m.nodes() {
            if t.contains(n) {
                in_tree += 1;
                if n != t.root() {
                    let p = t.parent(n).expect("non-root has parent");
                    let port = m.port_towards(n, p).expect("parent adjacent");
                    prop_assert!(f.link_usable(&m, n, port));
                    prop_assert_eq!(t.depth(n).unwrap(), t.depth(p).unwrap() + 1);
                }
            }
        }
        prop_assert_eq!(t.tree_links(&m).len(), in_tree - 1);
    }

    /// Minimal-path counting agrees with a brute-force DFS enumeration on
    /// small meshes.
    #[test]
    fn minimal_path_count_matches_bruteforce(
        w in 2u32..=4, hgt in 2u32..=4, seed in 0u64..100, nf in 0usize..4
    ) {
        let m = Mesh2D::new(w, hgt);
        let mut f = FaultSet::new();
        f.inject_random_links(&m, nf, false, seed);
        let a = NodeId(0);
        let b = NodeId(w * hgt - 1);

        fn dfs(m: &Mesh2D, f: &FaultSet, cur: NodeId, dst: NodeId, budget: u32) -> u64 {
            if cur == dst {
                return 1;
            }
            if budget == 0 {
                return 0;
            }
            let mut total = 0;
            for (p, nb) in m.neighbors(cur) {
                if f.link_usable(m, cur, p) && m.min_distance(nb, dst) + 1 == m.min_distance(cur, dst) {
                    total += dfs(m, f, nb, dst, budget - 1);
                }
            }
            total
        }

        let expected = if f.node_faulty(a) || f.node_faulty(b) {
            0
        } else {
            dfs(&m, &f, a, b, m.min_distance(a, b))
        };
        prop_assert_eq!(graph::count_minimal_paths(&m, &f, a, b), expected);
    }

    /// Canonical links partition the edge set: every (node, port) pair with
    /// a neighbour maps to exactly one canonical link.
    #[test]
    fn canonical_links_partition(h in arb_cube()) {
        let links = h.links();
        let mut count = 0;
        for n in h.nodes() {
            for p in h.ports() {
                if h.neighbor(n, p).is_some() {
                    count += 1;
                    let l = h.link(n, p).unwrap();
                    prop_assert!(links.contains(&l));
                }
            }
        }
        prop_assert_eq!(count, links.len() * 2, "each link seen from both ends");
    }

    /// Component labels are consistent with pairwise reachability.
    #[test]
    fn components_match_reachability(seed in 0u64..200) {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        f.inject_random_links(&m, 6, false, seed); // may disconnect
        let comp = graph::components(&m, &f);
        for a in m.nodes() {
            for b in m.nodes() {
                if f.node_faulty(a) || f.node_faulty(b) {
                    continue;
                }
                let connected = graph::distance(&m, &f, a, b).is_some();
                prop_assert_eq!(connected, comp[a.idx()] == comp[b.idx()]);
            }
        }
    }
}
