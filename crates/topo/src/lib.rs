//! # ftr-topo — network topology substrate
//!
//! Topologies, fault sets and graph analyses used by the flexible
//! fault-tolerant router (Döring et al., IPPS 1998).
//!
//! The paper designs routing algorithms *for a specific topology* ("the
//! topology is a property of the routing algorithm and not an input to it",
//! §2.1 footnote), so this crate provides the concrete regular topologies the
//! evaluated algorithms need — 2-D meshes and tori for NARA/NAFTA, hypercubes
//! for ROUTE_C — plus:
//!
//! * [`FaultSet`]: the paper's fault model (bidirectional link faults, node
//!   faults, multiple faults allowed),
//! * connectivity and shortest-path analyses over the faulty network
//!   ([`graph`]),
//! * the spanning-tree strawman router of §2.1 ([`spanning`]),
//! * a channel-dependency-graph deadlock checker ([`cdg`]) used to validate
//!   that the virtual-channel schemes of the implemented algorithms are
//!   deadlock-free (Dally/Seitz condition).

pub mod cdg;
pub mod faults;
pub mod graph;
pub mod hypercube;
pub mod ids;
pub mod karyncube;
pub mod mesh;
pub mod spanning;
pub mod torus;

pub use cdg::{Channel, ChannelDependencyGraph};
pub use faults::{FaultSet, SimpleRng};
pub use hypercube::Hypercube;
pub use ids::{LinkId, NodeId, PortId, VcId};
pub use karyncube::KAryNCube;
pub use mesh::{Mesh2D, EAST, NORTH, SOUTH, WEST};
pub use torus::Torus2D;

/// A regular interconnection topology.
///
/// Ports are numbered `0..degree()`; on irregular boundaries (e.g. a mesh
/// edge) a port may be unconnected, in which case [`Topology::neighbor`]
/// returns `None`. All topologies here are undirected: if `neighbor(a, p) ==
/// Some(b)` there is a port `q` with `neighbor(b, q) == Some(a)`.
pub trait Topology: Send + Sync {
    /// Human-readable name, e.g. `"mesh 8x8"`.
    fn name(&self) -> String;

    /// Total number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of ports per node (upper bound on the node degree).
    fn degree(&self) -> usize;

    /// The node reached through port `p` of node `n`, if that port is wired.
    fn neighbor(&self, n: NodeId, p: PortId) -> Option<NodeId>;

    /// Minimal path length (hops) between two nodes in the fault-free
    /// topology.
    fn min_distance(&self, a: NodeId, b: NodeId) -> u32;

    /// Iterator over all node ids.
    fn nodes(&self) -> IdRange<NodeId> {
        IdRange { next: 0, end: self.num_nodes() as u32, mk: NodeId }
    }

    /// Iterator over all port ids.
    fn ports(&self) -> IdRange<PortId> {
        IdRange { next: 0, end: self.degree() as u32, mk: |i| PortId(i as u8) }
    }

    /// The port of `from` that leads directly to `to`, if they are adjacent.
    fn port_towards(&self, from: NodeId, to: NodeId) -> Option<PortId> {
        self.ports().find(|&p| self.neighbor(from, p) == Some(to))
    }

    /// The port at the far end of `(n, p)` that leads back to `n`.
    fn reverse_port(&self, n: NodeId, p: PortId) -> Option<PortId> {
        let other = self.neighbor(n, p)?;
        self.port_towards(other, n)
    }

    /// Canonical (direction-independent) link id for the link leaving `n`
    /// through `p`.
    fn link(&self, n: NodeId, p: PortId) -> Option<LinkId> {
        let other = self.neighbor(n, p)?;
        if n <= other {
            Some(LinkId { node: n, port: p })
        } else {
            Some(LinkId { node: other, port: self.port_towards(other, n)? })
        }
    }

    /// All canonical links of the topology.
    fn links(&self) -> Vec<LinkId> {
        let mut out = Vec::new();
        for n in self.nodes() {
            for p in self.ports() {
                if let Some(l) = self.link(n, p) {
                    if l.node == n && l.port == p {
                        out.push(l);
                    }
                }
            }
        }
        out
    }

    /// Neighbours of `n` as `(port, node)` pairs.
    fn neighbors(&self, n: NodeId) -> Vec<(PortId, NodeId)> {
        self.ports().filter_map(|p| self.neighbor(n, p).map(|m| (p, m))).collect()
    }
}

/// Concrete iterator over consecutively-numbered ids, used by the provided
/// methods of [`Topology`] so the trait stays object-safe.
#[derive(Clone)]
pub struct IdRange<T> {
    next: u32,
    end: u32,
    mk: fn(u32) -> T,
}

impl<T> Iterator for IdRange<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.next < self.end {
            let v = (self.mk)(self.next);
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl<T> ExactSizeIterator for IdRange<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_provided_methods_on_mesh() {
        let m = Mesh2D::new(3, 3);
        assert_eq!(m.nodes().count(), 9);
        assert_eq!(m.ports().count(), 4);
        // links of a 3x3 mesh: 3 rows * 2 + 3 cols * 2 = 12 total
        assert_eq!(m.links().len(), 12);
        for n in m.nodes() {
            for (p, other) in m.neighbors(n) {
                assert_eq!(m.port_towards(n, other), Some(p));
                let q = m.reverse_port(n, p).unwrap();
                assert_eq!(m.neighbor(other, q), Some(n));
            }
        }
    }

    #[test]
    fn canonical_links_are_direction_independent() {
        let m = Mesh2D::new(4, 2);
        for n in m.nodes() {
            for (p, other) in m.neighbors(n) {
                let q = m.port_towards(other, n).unwrap();
                assert_eq!(m.link(n, p), m.link(other, q));
            }
        }
    }
}
