//! General k-ary n-cube: `n` dimensions of radix `k`, optionally with
//! wrap-around links (torus) — the family "k-ary n cubes" the paper cites
//! for the planar adaptive router.
//!
//! Ports follow the workspace convention `2·dim + sign`: port `2d` moves
//! +1 in dimension `d`, port `2d+1` moves −1. [`Mesh2D`]/[`Torus2D`] are
//! the ergonomic 2-D specialisations; this type covers higher dimensions
//! (3-D meshes, rings, hyper-tori).
//!
//! [`Mesh2D`]: crate::mesh::Mesh2D
//! [`Torus2D`]: crate::torus::Torus2D

use crate::ids::{NodeId, PortId};
use crate::Topology;
use serde::{Deserialize, Serialize};

/// A k-ary n-cube.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KAryNCube {
    radix: u32,
    dims: u32,
    wrap: bool,
}

impl KAryNCube {
    /// Creates a mesh-like (no wrap) k-ary n-cube.
    pub fn mesh(radix: u32, dims: u32) -> Self {
        Self::new(radix, dims, false)
    }

    /// Creates a torus-like (wrap-around) k-ary n-cube. Radix must be ≥ 3
    /// so links stay simple (no double edges between a node pair).
    pub fn torus(radix: u32, dims: u32) -> Self {
        assert!(radix >= 3, "wrap-around needs radix >= 3");
        Self::new(radix, dims, true)
    }

    fn new(radix: u32, dims: u32, wrap: bool) -> Self {
        assert!(radix >= 2, "radix must be >= 2");
        assert!((1..=8).contains(&dims), "1..=8 dimensions supported");
        let nodes = (radix as u64).checked_pow(dims).expect("size overflows");
        assert!(nodes <= u32::MAX as u64, "network too large");
        KAryNCube { radix, dims, wrap }
    }

    /// The radix `k`.
    pub fn radix(&self) -> u32 {
        self.radix
    }

    /// The dimension count `n`.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// True for the torus variant.
    pub fn wraps(&self) -> bool {
        self.wrap
    }

    /// Mixed-radix coordinates of a node (dimension 0 least significant).
    pub fn coords(&self, n: NodeId) -> Vec<u32> {
        let mut rest = n.0;
        (0..self.dims)
            .map(|_| {
                let c = rest % self.radix;
                rest /= self.radix;
                c
            })
            .collect()
    }

    /// Node at the given coordinates.
    pub fn node_at(&self, coords: &[u32]) -> NodeId {
        assert_eq!(coords.len(), self.dims as usize);
        let mut id = 0u32;
        for &c in coords.iter().rev() {
            debug_assert!(c < self.radix);
            id = id * self.radix + c;
        }
        NodeId(id)
    }

    /// Per-dimension distance with optional wrap.
    fn dim_dist(&self, a: u32, b: u32) -> u32 {
        let d = a.abs_diff(b);
        if self.wrap {
            d.min(self.radix - d)
        } else {
            d
        }
    }
}

impl Topology for KAryNCube {
    fn name(&self) -> String {
        format!("{}-ary {}-{}", self.radix, self.dims, if self.wrap { "torus" } else { "mesh" })
    }

    fn num_nodes(&self) -> usize {
        (self.radix as u64).pow(self.dims) as usize
    }

    fn degree(&self) -> usize {
        2 * self.dims as usize
    }

    fn neighbor(&self, n: NodeId, p: PortId) -> Option<NodeId> {
        let d = (p.idx() / 2) as u32;
        if d >= self.dims {
            return None;
        }
        let plus = p.idx().is_multiple_of(2);
        let mut coords = self.coords(n);
        let c = coords[d as usize];
        let next = if plus {
            if c + 1 < self.radix {
                c + 1
            } else if self.wrap {
                0
            } else {
                return None;
            }
        } else if c > 0 {
            c - 1
        } else if self.wrap {
            self.radix - 1
        } else {
            return None;
        };
        coords[d as usize] = next;
        Some(self.node_at(&coords))
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        ca.iter().zip(&cb).map(|(&x, &y)| self.dim_dist(x, y)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh2D;
    use crate::torus::Torus2D;

    #[test]
    fn matches_mesh2d_structure() {
        let k = KAryNCube::mesh(4, 2);
        let m = Mesh2D::new(4, 4);
        assert_eq!(k.num_nodes(), m.num_nodes());
        assert_eq!(k.links().len(), m.links().len());
        for a in k.nodes() {
            for b in k.nodes() {
                assert_eq!(k.min_distance(a, b), m.min_distance(a, b));
            }
        }
    }

    #[test]
    fn matches_torus2d_structure() {
        let k = KAryNCube::torus(4, 2);
        let t = Torus2D::new(4, 4);
        assert_eq!(k.links().len(), t.links().len());
        for a in k.nodes() {
            for b in k.nodes() {
                assert_eq!(k.min_distance(a, b), t.min_distance(a, b));
            }
        }
    }

    #[test]
    fn three_dimensional_mesh() {
        let k = KAryNCube::mesh(3, 3);
        assert_eq!(k.num_nodes(), 27);
        assert_eq!(k.degree(), 6);
        // center node has all 6 neighbours
        let center = k.node_at(&[1, 1, 1]);
        assert_eq!(k.neighbors(center).len(), 6);
        // corner has 3
        let corner = k.node_at(&[0, 0, 0]);
        assert_eq!(k.neighbors(corner).len(), 3);
        assert_eq!(k.min_distance(corner, k.node_at(&[2, 2, 2])), 6);
    }

    #[test]
    fn coords_roundtrip() {
        let k = KAryNCube::torus(5, 3);
        for n in k.nodes() {
            assert_eq!(k.node_at(&k.coords(n)), n);
        }
    }

    #[test]
    fn adjacency_symmetric() {
        let k = KAryNCube::torus(3, 3);
        for n in k.nodes() {
            for (p, nb) in k.neighbors(n) {
                assert!(k.port_towards(nb, n).is_some());
                assert_eq!(k.neighbor(n, p), Some(nb));
            }
        }
    }

    #[test]
    fn ring_is_1d_torus() {
        let k = KAryNCube::torus(6, 1);
        assert_eq!(k.num_nodes(), 6);
        assert_eq!(k.degree(), 2);
        assert_eq!(k.min_distance(NodeId(0), NodeId(5)), 1, "wraps");
        assert_eq!(k.min_distance(NodeId(0), NodeId(3)), 3);
    }

    #[test]
    #[should_panic(expected = "radix >= 3")]
    fn small_wrap_radix_rejected() {
        KAryNCube::torus(2, 2);
    }
}
