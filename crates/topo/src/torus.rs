//! Two-dimensional torus (2-ary wrap-around mesh).
//!
//! Shares the port convention of [`crate::mesh`]: `0`=east, `1`=west,
//! `2`=north, `3`=south — but every port is wired thanks to the wrap links.

use crate::ids::{NodeId, PortId};
use crate::mesh::{EAST, NORTH, SOUTH, WEST};
use crate::Topology;
use serde::{Deserialize, Serialize};

/// A `width × height` torus.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus2D {
    width: u32,
    height: u32,
}

impl Torus2D {
    /// Creates a torus. Panics if either dimension is smaller than 3
    /// (smaller radixes create double links between the same node pair,
    /// which the canonical [`crate::ids::LinkId`] cannot distinguish).
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width >= 3 && height >= 3, "torus dimensions must be >= 3");
        Torus2D { width, height }
    }

    /// Torus width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Torus height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Coordinates `(x, y)` of a node.
    pub fn coords(&self, n: NodeId) -> (u32, u32) {
        (n.0 % self.width, n.0 / self.width)
    }

    /// Node at coordinates `(x, y)`.
    pub fn node_at(&self, x: u32, y: u32) -> NodeId {
        debug_assert!(x < self.width && y < self.height);
        NodeId(y * self.width + x)
    }

    fn wrap_dist(d: u32, size: u32) -> u32 {
        d.min(size - d)
    }
}

impl Topology for Torus2D {
    fn name(&self) -> String {
        format!("torus {}x{}", self.width, self.height)
    }

    fn num_nodes(&self) -> usize {
        (self.width * self.height) as usize
    }

    fn degree(&self) -> usize {
        4
    }

    fn neighbor(&self, n: NodeId, p: PortId) -> Option<NodeId> {
        let (x, y) = self.coords(n);
        let (w, h) = (self.width, self.height);
        let m = match p {
            EAST => self.node_at((x + 1) % w, y),
            WEST => self.node_at((x + w - 1) % w, y),
            NORTH => self.node_at(x, (y + 1) % h),
            SOUTH => self.node_at(x, (y + h - 1) % h),
            _ => return None,
        };
        Some(m)
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        Self::wrap_dist(ax.abs_diff(bx), self.width) + Self::wrap_dist(ay.abs_diff(by), self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ports_wired() {
        let t = Torus2D::new(4, 4);
        for n in t.nodes() {
            assert_eq!(t.neighbors(n).len(), 4);
        }
    }

    #[test]
    fn wraparound_neighbors() {
        let t = Torus2D::new(4, 3);
        let corner = t.node_at(0, 0);
        assert_eq!(t.neighbor(corner, WEST), Some(t.node_at(3, 0)));
        assert_eq!(t.neighbor(corner, SOUTH), Some(t.node_at(0, 2)));
    }

    #[test]
    fn wrap_distance_shorter() {
        let t = Torus2D::new(8, 8);
        // straight distance 7, wrap distance 1
        assert_eq!(t.min_distance(t.node_at(0, 0), t.node_at(7, 0)), 1);
        assert_eq!(t.min_distance(t.node_at(0, 0), t.node_at(4, 4)), 8);
    }

    #[test]
    fn link_count_is_2n() {
        let t = Torus2D::new(5, 4);
        assert_eq!(t.links().len(), 2 * t.num_nodes());
    }

    #[test]
    #[should_panic(expected = ">= 3")]
    fn small_radix_rejected() {
        Torus2D::new(2, 4);
    }
}
