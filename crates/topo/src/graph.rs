//! Graph analyses over the healthy part of a faulty network.
//!
//! Everything here treats `(Topology, FaultSet)` as an undirected graph whose
//! vertices are the alive nodes and whose edges are the usable links. These
//! analyses back the paper's conditions 1–3 checks (§2.1): whether minimal
//! paths survive, and whether a path exists at all.

use crate::faults::FaultSet;
use crate::ids::NodeId;
use crate::Topology;
use std::collections::VecDeque;

/// Distance label meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src` over usable links, `UNREACHABLE` where no path
/// exists. Entry for `src` itself is 0 unless `src` is faulty.
pub fn bfs_distances(topo: &dyn Topology, faults: &FaultSet, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; topo.num_nodes()];
    if faults.node_faulty(src) {
        return dist;
    }
    dist[src.idx()] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(n) = q.pop_front() {
        let d = dist[n.idx()];
        for p in topo.ports() {
            if !faults.link_usable(topo, n, p) {
                continue;
            }
            let m = topo.neighbor(n, p).expect("usable link has endpoint");
            if dist[m.idx()] == UNREACHABLE {
                dist[m.idx()] = d + 1;
                q.push_back(m);
            }
        }
    }
    dist
}

/// Shortest-path distance between two nodes over usable links, or `None` if
/// disconnected.
pub fn distance(topo: &dyn Topology, faults: &FaultSet, a: NodeId, b: NodeId) -> Option<u32> {
    let d = bfs_distances(topo, faults, a)[b.idx()];
    (d != UNREACHABLE).then_some(d)
}

/// One shortest path (inclusive of endpoints) over usable links, or `None`.
pub fn shortest_path(
    topo: &dyn Topology,
    faults: &FaultSet,
    a: NodeId,
    b: NodeId,
) -> Option<Vec<NodeId>> {
    let dist = bfs_distances(topo, faults, b);
    if faults.node_faulty(a) || dist[a.idx()] == UNREACHABLE {
        return None;
    }
    let mut path = vec![a];
    let mut cur = a;
    while cur != b {
        let d = dist[cur.idx()];
        let next = topo
            .ports()
            .filter(|&p| faults.link_usable(topo, cur, p))
            .filter_map(|p| topo.neighbor(cur, p))
            .find(|m| dist[m.idx()] + 1 == d)
            .expect("gradient step exists on shortest path");
        path.push(next);
        cur = next;
    }
    Some(path)
}

/// True if all alive nodes form a single connected component.
/// A network with zero alive nodes counts as connected (vacuously).
pub fn is_connected(topo: &dyn Topology, faults: &FaultSet) -> bool {
    let start = match topo.nodes().find(|&n| !faults.node_faulty(n)) {
        Some(n) => n,
        None => return true,
    };
    let dist = bfs_distances(topo, faults, start);
    topo.nodes().filter(|&n| !faults.node_faulty(n)).all(|n| dist[n.idx()] != UNREACHABLE)
}

/// Component label for every node: faulty nodes get `None`, alive nodes get
/// `Some(component_index)` with indices dense from 0.
pub fn components(topo: &dyn Topology, faults: &FaultSet) -> Vec<Option<u32>> {
    let mut label = vec![None; topo.num_nodes()];
    let mut next = 0u32;
    for n in topo.nodes() {
        if faults.node_faulty(n) || label[n.idx()].is_some() {
            continue;
        }
        let dist = bfs_distances(topo, faults, n);
        for m in topo.nodes() {
            if dist[m.idx()] != UNREACHABLE {
                label[m.idx()] = Some(next);
            }
        }
        next += 1;
    }
    label
}

/// True if at least one *minimal* (in the fault-free topology) path between
/// `a` and `b` survives the faults — the premise of condition 2 (§2.1).
pub fn minimal_path_survives(topo: &dyn Topology, faults: &FaultSet, a: NodeId, b: NodeId) -> bool {
    distance(topo, faults, a, b) == Some(topo.min_distance(a, b))
}

/// True if *every* minimal path between `a` and `b` is intact — the premise
/// of condition 1 (§2.1). Checked by counting minimal paths with and without
/// faults via dynamic programming over the BFS layering; counts saturate so
/// huge path counts cannot overflow.
pub fn all_minimal_paths_intact(
    topo: &dyn Topology,
    faults: &FaultSet,
    a: NodeId,
    b: NodeId,
) -> bool {
    count_minimal_paths(topo, &FaultSet::new(), a, b) == count_minimal_paths(topo, faults, a, b)
}

/// Number of minimal-length (w.r.t. the fault-free topology) paths from `a`
/// to `b` that only use usable links, saturating at `u64::MAX`.
pub fn count_minimal_paths(topo: &dyn Topology, faults: &FaultSet, a: NodeId, b: NodeId) -> u64 {
    if faults.node_faulty(a) || faults.node_faulty(b) {
        return 0;
    }
    if a == b {
        return 1;
    }
    let target = topo.min_distance(a, b);
    // DP over nodes ordered by remaining distance: ways[n] = number of
    // minimal continuations from n. Process by decreasing distance-to-b.
    let mut order: Vec<NodeId> = topo
        .nodes()
        .filter(|&n| {
            !faults.node_faulty(n) && topo.min_distance(a, n) + topo.min_distance(n, b) == target
        })
        .collect();
    order.sort_by_key(|&n| std::cmp::Reverse(topo.min_distance(a, n)));
    let mut ways = vec![0u64; topo.num_nodes()];
    ways[b.idx()] = 1;
    for &n in &order {
        if n == b {
            continue;
        }
        let dn = topo.min_distance(n, b);
        let mut acc: u64 = 0;
        for p in topo.ports() {
            if !faults.link_usable(topo, n, p) {
                continue;
            }
            let m = topo.neighbor(n, p).expect("usable link has endpoint");
            if topo.min_distance(a, m) + topo.min_distance(m, b) == target
                && topo.min_distance(m, b) + 1 == dn
            {
                acc = acc.saturating_add(ways[m.idx()]);
            }
        }
        ways[n.idx()] = acc;
    }
    ways[a.idx()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;
    use crate::mesh::{Mesh2D, EAST, NORTH};

    #[test]
    fn bfs_matches_manhattan_when_fault_free() {
        let m = Mesh2D::new(5, 5);
        let f = FaultSet::new();
        let src = m.node_at(2, 2);
        let d = bfs_distances(&m, &f, src);
        for n in m.nodes() {
            assert_eq!(d[n.idx()], m.min_distance(src, n));
        }
    }

    #[test]
    fn fault_lengthens_path() {
        let m = Mesh2D::new(3, 1);
        let mut f = FaultSet::new();
        f.fail_link(&m, m.node_at(0, 0), EAST);
        // 1-row mesh: breaking the only link disconnects
        assert_eq!(distance(&m, &f, m.node_at(0, 0), m.node_at(2, 0)), None);
        assert!(!is_connected(&m, &f));
    }

    #[test]
    fn detour_distance() {
        let m = Mesh2D::new(3, 2);
        let mut f = FaultSet::new();
        f.fail_link(&m, m.node_at(0, 0), EAST);
        // route 0,0 -> 2,0 must detour north: length 4 instead of 2
        assert_eq!(distance(&m, &f, m.node_at(0, 0), m.node_at(2, 0)), Some(4));
        assert!(is_connected(&m, &f));
    }

    #[test]
    fn shortest_path_is_valid_walk() {
        let m = Mesh2D::new(5, 5);
        let mut f = FaultSet::new();
        f.inject_random_links(&m, 6, true, 3);
        let a = m.node_at(0, 0);
        let b = m.node_at(4, 4);
        let path = shortest_path(&m, &f, a, b).expect("connected");
        assert_eq!(path.first(), Some(&a));
        assert_eq!(path.last(), Some(&b));
        for w in path.windows(2) {
            let p = m.port_towards(w[0], w[1]).expect("adjacent");
            assert!(f.link_usable(&m, w[0], p));
        }
        assert_eq!(path.len() as u32 - 1, distance(&m, &f, a, b).unwrap());
    }

    #[test]
    fn components_partition() {
        let m = Mesh2D::new(2, 2);
        let mut f = FaultSet::new();
        // cut the square into two halves
        f.fail_link(&m, m.node_at(0, 0), EAST);
        f.fail_link(&m, m.node_at(0, 1), EAST);
        let c = components(&m, &f);
        assert_eq!(c[m.node_at(0, 0).idx()], c[m.node_at(0, 1).idx()]);
        assert_eq!(c[m.node_at(1, 0).idx()], c[m.node_at(1, 1).idx()]);
        assert_ne!(c[m.node_at(0, 0).idx()], c[m.node_at(1, 0).idx()]);
    }

    #[test]
    fn faulty_node_has_no_component() {
        let m = Mesh2D::new(3, 3);
        let mut f = FaultSet::new();
        f.fail_node(m.node_at(1, 1));
        let c = components(&m, &f);
        assert_eq!(c[m.node_at(1, 1).idx()], None);
        // ring around the dead center is still one component
        assert!(is_connected(&m, &f));
    }

    #[test]
    fn minimal_path_count_mesh() {
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        // (0,0) -> (2,2): C(4,2) = 6 minimal paths
        assert_eq!(count_minimal_paths(&m, &f, m.node_at(0, 0), m.node_at(2, 2)), 6);
        assert_eq!(count_minimal_paths(&m, &f, m.node_at(0, 0), m.node_at(3, 0)), 1);
        assert_eq!(count_minimal_paths(&m, &f, m.node_at(1, 1), m.node_at(1, 1)), 1);
    }

    #[test]
    fn minimal_path_count_hypercube() {
        let h = Hypercube::new(3);
        let f = FaultSet::new();
        // distance-3 pair: 3! = 6 minimal orders
        assert_eq!(count_minimal_paths(&h, &f, NodeId(0), NodeId(7)), 6);
        assert_eq!(count_minimal_paths(&h, &f, NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn condition_premises() {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        let a = m.node_at(0, 0);
        let b = m.node_at(2, 2);
        assert!(all_minimal_paths_intact(&m, &f, a, b));
        f.fail_link(&m, m.node_at(1, 1), EAST);
        assert!(!all_minimal_paths_intact(&m, &f, a, b));
        assert!(minimal_path_survives(&m, &f, a, b));
        // destroy every minimal path by cutting the whole middle
        f.fail_link(&m, m.node_at(0, 0), EAST);
        f.fail_link(&m, m.node_at(0, 1), EAST);
        f.fail_link(&m, m.node_at(0, 2), EAST);
        f.fail_link(&m, m.node_at(1, 0), NORTH);
        f.fail_link(&m, m.node_at(1, 1), NORTH);
        f.fail_link(&m, m.node_at(1, 2), EAST);
        if distance(&m, &f, a, b) != Some(m.min_distance(a, b)) {
            assert!(!minimal_path_survives(&m, &f, a, b));
        }
    }
}
