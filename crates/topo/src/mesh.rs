//! Two-dimensional mesh — the topology of NARA/NAFTA.
//!
//! Ports follow the `2*dim + sign` convention used throughout the workspace:
//! port `0` = +x (east), `1` = -x (west), `2` = +y (north), `3` = -y (south).
//! Node `(x, y)` has id `y * width + x`; `(0, 0)` is the south-west corner.

use crate::ids::{NodeId, PortId};
use crate::Topology;
use serde::{Deserialize, Serialize};

/// Port leading in +x direction.
pub const EAST: PortId = PortId(0);
/// Port leading in -x direction.
pub const WEST: PortId = PortId(1);
/// Port leading in +y direction.
pub const NORTH: PortId = PortId(2);
/// Port leading in -y direction.
pub const SOUTH: PortId = PortId(3);

/// All four mesh directions in port order.
pub const MESH_PORTS: [PortId; 4] = [EAST, WEST, NORTH, SOUTH];

/// Returns the opposite mesh direction (`EAST` ↔ `WEST`, `NORTH` ↔ `SOUTH`).
pub fn opposite(p: PortId) -> PortId {
    PortId(p.0 ^ 1)
}

/// A `width × height` two-dimensional mesh.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh2D {
    width: u32,
    height: u32,
}

impl Mesh2D {
    /// Creates a mesh. Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!((width as u64) * (height as u64) <= u32::MAX as u64, "mesh too large");
        Mesh2D { width, height }
    }

    /// Mesh width (number of columns).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height (number of rows).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Coordinates `(x, y)` of a node.
    pub fn coords(&self, n: NodeId) -> (u32, u32) {
        debug_assert!(n.idx() < self.num_nodes());
        (n.0 % self.width, n.0 / self.width)
    }

    /// Node at coordinates `(x, y)`.
    pub fn node_at(&self, x: u32, y: u32) -> NodeId {
        debug_assert!(x < self.width && y < self.height);
        NodeId(y * self.width + x)
    }

    /// The displacement `(dx, dy)` from `from` to `to`.
    pub fn offset(&self, from: NodeId, to: NodeId) -> (i32, i32) {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        (tx as i32 - fx as i32, ty as i32 - fy as i32)
    }

    /// The set of mesh directions along minimal paths from `from` to `to`
    /// (the `minimal(dx, dy)` function used in the paper's NARA excerpt).
    /// Empty iff `from == to`.
    pub fn minimal_directions(&self, from: NodeId, to: NodeId) -> Vec<PortId> {
        let (dx, dy) = self.offset(from, to);
        let mut dirs = Vec::with_capacity(2);
        if dx > 0 {
            dirs.push(EAST);
        } else if dx < 0 {
            dirs.push(WEST);
        }
        if dy > 0 {
            dirs.push(NORTH);
        } else if dy < 0 {
            dirs.push(SOUTH);
        }
        dirs
    }
}

impl Topology for Mesh2D {
    fn name(&self) -> String {
        format!("mesh {}x{}", self.width, self.height)
    }

    fn num_nodes(&self) -> usize {
        (self.width * self.height) as usize
    }

    fn degree(&self) -> usize {
        4
    }

    fn neighbor(&self, n: NodeId, p: PortId) -> Option<NodeId> {
        let (x, y) = self.coords(n);
        match p {
            EAST if x + 1 < self.width => Some(self.node_at(x + 1, y)),
            WEST if x > 0 => Some(self.node_at(x - 1, y)),
            NORTH if y + 1 < self.height => Some(self.node_at(x, y + 1)),
            SOUTH if y > 0 => Some(self.node_at(x, y - 1)),
            _ => None,
        }
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (dx, dy) = self.offset(a, b);
        dx.unsigned_abs() + dy.unsigned_abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2D::new(5, 3);
        for n in m.nodes() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn neighbor_geometry() {
        let m = Mesh2D::new(4, 4);
        let c = m.node_at(1, 1);
        assert_eq!(m.neighbor(c, EAST), Some(m.node_at(2, 1)));
        assert_eq!(m.neighbor(c, WEST), Some(m.node_at(0, 1)));
        assert_eq!(m.neighbor(c, NORTH), Some(m.node_at(1, 2)));
        assert_eq!(m.neighbor(c, SOUTH), Some(m.node_at(1, 0)));
    }

    #[test]
    fn boundary_ports_unconnected() {
        let m = Mesh2D::new(4, 4);
        let sw = m.node_at(0, 0);
        assert_eq!(m.neighbor(sw, WEST), None);
        assert_eq!(m.neighbor(sw, SOUTH), None);
        let ne = m.node_at(3, 3);
        assert_eq!(m.neighbor(ne, EAST), None);
        assert_eq!(m.neighbor(ne, NORTH), None);
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh2D::new(8, 8);
        assert_eq!(m.min_distance(m.node_at(0, 0), m.node_at(7, 7)), 14);
        assert_eq!(m.min_distance(m.node_at(3, 4), m.node_at(3, 4)), 0);
        assert_eq!(m.min_distance(m.node_at(5, 2), m.node_at(2, 6)), 7);
    }

    #[test]
    fn minimal_directions_cover_quadrants() {
        let m = Mesh2D::new(8, 8);
        let c = m.node_at(4, 4);
        assert_eq!(m.minimal_directions(c, m.node_at(6, 6)), vec![EAST, NORTH]);
        assert_eq!(m.minimal_directions(c, m.node_at(2, 2)), vec![WEST, SOUTH]);
        assert_eq!(m.minimal_directions(c, m.node_at(4, 7)), vec![NORTH]);
        assert_eq!(m.minimal_directions(c, c), Vec::<PortId>::new());
    }

    #[test]
    fn opposite_direction_is_involution() {
        for p in MESH_PORTS {
            assert_ne!(opposite(p), p);
            assert_eq!(opposite(opposite(p)), p);
        }
        assert_eq!(opposite(EAST), WEST);
        assert_eq!(opposite(NORTH), SOUTH);
    }

    #[test]
    fn single_row_mesh() {
        let m = Mesh2D::new(6, 1);
        assert_eq!(m.num_nodes(), 6);
        for n in m.nodes() {
            assert_eq!(m.neighbor(n, NORTH), None);
            assert_eq!(m.neighbor(n, SOUTH), None);
        }
        assert_eq!(m.links().len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        Mesh2D::new(0, 4);
    }
}
