//! Strongly-typed identifiers for network entities.
//!
//! Using newtypes instead of bare integers prevents the classic simulator bug
//! of indexing a per-port array with a node id. All ids are small `Copy`
//! types so they can be passed by value everywhere.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (router + attached processing element).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a router port (one per attached link, plus the local
/// injection/ejection port which is handled separately by the simulator).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u8);

impl PortId {
    /// The port id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a virtual channel multiplexed onto a physical link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VcId(pub u8);

impl VcId {
    /// The virtual-channel id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Canonical identifier of a *bidirectional* physical link.
///
/// The paper's fault model (assumption i) treats a link as one unit: "links
/// are bi-directional and both directions fail together". A link is named by
/// its lower-numbered endpoint and the port leaving that endpoint, so the two
/// directed views of the same wire compare equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct LinkId {
    /// The lower-numbered endpoint of the link.
    pub node: NodeId,
    /// The port at `node` through which the link leaves.
    pub port: PortId,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l({},{})", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(42);
        assert_eq!(n.idx(), 42);
        assert_eq!(format!("{n}"), "n42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(PortId(0) < PortId(3));
        assert!(VcId(0) < VcId(1));
    }

    #[test]
    fn link_id_is_canonical_value() {
        let a = LinkId { node: NodeId(3), port: PortId(1) };
        let b = LinkId { node: NodeId(3), port: PortId(1) };
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), "l(n3,p1)");
    }
}
