//! The spanning-tree strawman router of §2.1.
//!
//! "1. Compute a spanning tree for the network graph every time new faults
//! occur. 2. Route messages by only using edges of the tree." The paper uses
//! it to motivate why real fault-tolerant routing algorithms are needed: the
//! tree "uses only a small fraction of the network links in most cases" and
//! "the shortest ways (minimal paths) between two nodes are nearly never
//! taken". [`SpanningTree::link_fraction`] and
//! [`SpanningTree::minimal_fraction`] quantify exactly that for experiment
//! E11.

use crate::faults::FaultSet;
use crate::graph;
use crate::ids::{LinkId, NodeId};
use crate::Topology;
use std::collections::VecDeque;

/// A BFS spanning tree over the healthy part of the network, rooted at the
/// lowest-numbered alive node of the root's component.
#[derive(Clone, Debug)]
pub struct SpanningTree {
    root: NodeId,
    /// Parent of each node, `None` for the root and for unreachable/faulty
    /// nodes.
    parent: Vec<Option<NodeId>>,
    /// Depth of each node, `u32::MAX` if not in the tree.
    depth: Vec<u32>,
}

impl SpanningTree {
    /// Builds the tree by BFS from `root` over usable links.
    pub fn build(topo: &dyn Topology, faults: &FaultSet, root: NodeId) -> Self {
        let n = topo.num_nodes();
        let mut parent = vec![None; n];
        let mut depth = vec![u32::MAX; n];
        if !faults.node_faulty(root) {
            depth[root.idx()] = 0;
            let mut q = VecDeque::new();
            q.push_back(root);
            while let Some(u) = q.pop_front() {
                for p in topo.ports() {
                    if !faults.link_usable(topo, u, p) {
                        continue;
                    }
                    let v = topo.neighbor(u, p).expect("usable link has endpoint");
                    if depth[v.idx()] == u32::MAX {
                        depth[v.idx()] = depth[u.idx()] + 1;
                        parent[v.idx()] = Some(u);
                        q.push_back(v);
                    }
                }
            }
        }
        SpanningTree { root, parent, depth }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// True if `n` is part of the tree.
    pub fn contains(&self, n: NodeId) -> bool {
        self.depth[n.idx()] != u32::MAX
    }

    /// Parent of `n`, if any.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.parent[n.idx()]
    }

    /// Depth of `n` in the tree (`None` if not contained).
    pub fn depth(&self, n: NodeId) -> Option<u32> {
        let d = self.depth[n.idx()];
        (d != u32::MAX).then_some(d)
    }

    /// Path from `n` up to the root.
    fn path_to_root(&self, n: NodeId) -> Vec<NodeId> {
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.parent[cur.idx()] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The unique tree path between two nodes (via their lowest common
    /// ancestor), or `None` if either is outside the tree.
    pub fn tree_path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(a) || !self.contains(b) {
            return None;
        }
        let up_a = self.path_to_root(a);
        let up_b = self.path_to_root(b);
        // find LCA: deepest common suffix element
        let mut i = up_a.len();
        let mut j = up_b.len();
        while i > 0 && j > 0 && up_a[i - 1] == up_b[j - 1] {
            i -= 1;
            j -= 1;
        }
        // up_a[..=i] is a -> lca, up_b[..j] reversed is lca-child -> b
        let mut path = up_a[..=i.min(up_a.len() - 1)].to_vec();
        // ensure lca present exactly once
        if i == up_a.len() {
            // a is the lca itself; path currently a..a
            path = vec![a];
        }
        for k in (0..j).rev() {
            path.push(up_b[k]);
        }
        Some(path)
    }

    /// Next hop from `cur` towards `dst` along the tree, or `None` if
    /// `cur == dst` or either is outside the tree.
    pub fn next_hop(&self, cur: NodeId, dst: NodeId) -> Option<NodeId> {
        if cur == dst {
            return None;
        }
        let path = self.tree_path(cur, dst)?;
        path.get(1).copied()
    }

    /// Tree edges as canonical link ids.
    pub fn tree_links(&self, topo: &dyn Topology) -> Vec<LinkId> {
        let mut out = Vec::new();
        for n in topo.nodes() {
            if let Some(p) = self.parent[n.idx()] {
                let port = topo.port_towards(n, p).expect("parent is adjacent");
                out.push(topo.link(n, port).expect("parent link exists"));
            }
        }
        out
    }

    /// Fraction of *healthy* links that the tree uses (§2.1: "only a small
    /// fraction of the network links").
    pub fn link_fraction(&self, topo: &dyn Topology, faults: &FaultSet) -> f64 {
        let healthy =
            topo.links().iter().filter(|l| faults.link_usable(topo, l.node, l.port)).count();
        if healthy == 0 {
            return 0.0;
        }
        self.tree_links(topo).len() as f64 / healthy as f64
    }

    /// Fraction of ordered alive node pairs whose tree path is minimal in
    /// the *faulty* network ("the shortest ways ... are nearly never taken").
    pub fn minimal_fraction(&self, topo: &dyn Topology, faults: &FaultSet) -> f64 {
        let mut total = 0u64;
        let mut minimal = 0u64;
        for a in topo.nodes() {
            if !self.contains(a) {
                continue;
            }
            let dist = graph::bfs_distances(topo, faults, a);
            for b in topo.nodes() {
                if a == b || !self.contains(b) {
                    continue;
                }
                total += 1;
                let tree_len = self.tree_path(a, b).expect("both in tree").len() as u32 - 1;
                if tree_len == dist[b.idx()] {
                    minimal += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            minimal as f64 / total as f64
        }
    }

    /// Average tree-path dilation over alive pairs: tree length / shortest
    /// length in the faulty network.
    pub fn average_dilation(&self, topo: &dyn Topology, faults: &FaultSet) -> f64 {
        let mut total = 0u64;
        let mut sum = 0.0f64;
        for a in topo.nodes() {
            if !self.contains(a) {
                continue;
            }
            let dist = graph::bfs_distances(topo, faults, a);
            for b in topo.nodes() {
                if a == b || !self.contains(b) || dist[b.idx()] == graph::UNREACHABLE {
                    continue;
                }
                let tree_len = self.tree_path(a, b).expect("both in tree").len() as u32 - 1;
                sum += tree_len as f64 / dist[b.idx()].max(1) as f64;
                total += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            sum / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh2D;

    #[test]
    fn tree_spans_connected_mesh() {
        let m = Mesh2D::new(4, 4);
        let t = SpanningTree::build(&m, &FaultSet::new(), NodeId(0));
        for n in m.nodes() {
            assert!(t.contains(n));
        }
        assert_eq!(t.tree_links(&m).len(), m.num_nodes() - 1);
    }

    #[test]
    fn tree_path_endpoints_and_adjacency() {
        let m = Mesh2D::new(5, 5);
        let t = SpanningTree::build(&m, &FaultSet::new(), NodeId(0));
        let a = m.node_at(4, 0);
        let b = m.node_at(0, 4);
        let path = t.tree_path(a, b).unwrap();
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            assert!(m.port_towards(w[0], w[1]).is_some(), "path steps adjacent");
        }
        // no repeated nodes on a tree path
        let mut sorted: Vec<_> = path.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), path.len());
    }

    #[test]
    fn next_hop_walks_to_destination() {
        let m = Mesh2D::new(4, 4);
        let t = SpanningTree::build(&m, &FaultSet::new(), NodeId(0));
        let dst = m.node_at(3, 3);
        let mut cur = m.node_at(0, 3);
        let mut hops = 0;
        while cur != dst {
            cur = t.next_hop(cur, dst).expect("progress");
            hops += 1;
            assert!(hops <= 32, "next_hop loops");
        }
    }

    #[test]
    fn tree_avoids_faults() {
        let m = Mesh2D::new(5, 5);
        let mut f = FaultSet::new();
        f.inject_random_links(&m, 6, true, 11);
        let t = SpanningTree::build(&m, &f, NodeId(0));
        for l in t.tree_links(&m) {
            assert!(f.link_usable(&m, l.node, l.port));
        }
    }

    #[test]
    fn tree_uses_small_link_fraction() {
        let m = Mesh2D::new(8, 8);
        let f = FaultSet::new();
        let t = SpanningTree::build(&m, &f, NodeId(0));
        // 63 tree links out of 112 mesh links
        let frac = t.link_fraction(&m, &f);
        assert!((frac - 63.0 / 112.0).abs() < 1e-9);
        // and most pairs are NOT routed minimally
        let minimal = t.minimal_fraction(&m, &f);
        assert!(minimal < 0.8, "tree should miss many minimal paths: {minimal}");
        assert!(t.average_dilation(&m, &f) > 1.0);
    }

    #[test]
    fn unreachable_node_not_in_tree() {
        let m = Mesh2D::new(3, 1);
        let mut f = FaultSet::new();
        f.fail_link(&m, m.node_at(1, 0), crate::mesh::EAST);
        let t = SpanningTree::build(&m, &f, NodeId(0));
        assert!(t.contains(m.node_at(1, 0)));
        assert!(!t.contains(m.node_at(2, 0)));
        assert_eq!(t.tree_path(NodeId(0), m.node_at(2, 0)), None);
    }
}
