//! Binary hypercube — the topology of ROUTE_C (Chiu/Wu).
//!
//! Port `i` flips address bit `i`, so the node degree equals the dimension
//! `n` and the network has `2^n` nodes. Minimal paths correspond to
//! resolving the differing address bits in any order, which is the freedom
//! ROUTE_C exploits ("for every message that has to be transmitted two hops
//! two alternative paths are available", §2.2).

use crate::ids::{NodeId, PortId};
use crate::Topology;
use serde::{Deserialize, Serialize};

/// An `n`-dimensional binary hypercube.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Creates an `n`-cube. Panics unless `1 <= dim <= 20` (a million nodes
    /// is more than any simulation here needs).
    pub fn new(dim: u32) -> Self {
        assert!((1..=20).contains(&dim), "hypercube dimension out of range");
        Hypercube { dim }
    }

    /// The dimension `n`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Bitwise difference between two node addresses; each set bit is a
    /// dimension that still has to be crossed.
    pub fn diff(&self, a: NodeId, b: NodeId) -> u32 {
        a.0 ^ b.0
    }

    /// The dimensions (as ports) along minimal paths from `a` to `b`.
    pub fn minimal_dimensions(&self, a: NodeId, b: NodeId) -> Vec<PortId> {
        let d = self.diff(a, b);
        (0..self.dim).filter(|i| d & (1 << i) != 0).map(|i| PortId(i as u8)).collect()
    }
}

impl Topology for Hypercube {
    fn name(&self) -> String {
        format!("hypercube dim={}", self.dim)
    }

    fn num_nodes(&self) -> usize {
        1usize << self.dim
    }

    fn degree(&self) -> usize {
        self.dim as usize
    }

    fn neighbor(&self, n: NodeId, p: PortId) -> Option<NodeId> {
        if (p.0 as u32) < self.dim {
            Some(NodeId(n.0 ^ (1 << p.0)))
        } else {
            None
        }
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.diff(a, b).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_degree() {
        let h = Hypercube::new(6);
        assert_eq!(h.num_nodes(), 64);
        assert_eq!(h.degree(), 6);
        assert_eq!(h.links().len(), 6 * 64 / 2);
    }

    #[test]
    fn neighbor_flips_one_bit() {
        let h = Hypercube::new(4);
        let n = NodeId(0b1010);
        assert_eq!(h.neighbor(n, PortId(0)), Some(NodeId(0b1011)));
        assert_eq!(h.neighbor(n, PortId(3)), Some(NodeId(0b0010)));
        assert_eq!(h.neighbor(n, PortId(4)), None);
    }

    #[test]
    fn hamming_distance() {
        let h = Hypercube::new(5);
        assert_eq!(h.min_distance(NodeId(0), NodeId(0b11111)), 5);
        assert_eq!(h.min_distance(NodeId(0b101), NodeId(0b110)), 2);
    }

    #[test]
    fn minimal_dimensions_match_diff() {
        let h = Hypercube::new(4);
        let dims = h.minimal_dimensions(NodeId(0b0000), NodeId(0b1010));
        assert_eq!(dims, vec![PortId(1), PortId(3)]);
        // two-hop messages always have exactly two minimal orders
        assert_eq!(dims.len(), 2);
    }

    #[test]
    fn symmetric_adjacency() {
        let h = Hypercube::new(3);
        for n in h.nodes() {
            for (p, m) in h.neighbors(n) {
                assert_eq!(h.neighbor(m, p), Some(n), "same port leads back");
            }
        }
    }
}
