//! The paper's fault model (§2.1 assumptions i–v).
//!
//! * i) a link is either faulty-and-known or transmits without destruction;
//!   links are bidirectional and both directions fail together — hence faults
//!   are stored per canonical [`LinkId`];
//! * ii) a node either works or fails with adjacent nodes aware of it;
//! * v) multiple faults are allowed.
//!
//! A faulty node implicitly disables all its links (a message can never
//! traverse a dead router), which [`FaultSet::link_usable`] accounts for.

use crate::ids::{LinkId, NodeId, PortId};
use crate::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A set of known link and node faults.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    links: BTreeSet<LinkId>,
    nodes: BTreeSet<NodeId>,
}

impl FaultSet {
    /// An empty (fault-free) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the link leaving `n` through `p` as faulty (both directions,
    /// per assumption i). No-op if the port is unconnected.
    pub fn fail_link(&mut self, topo: &dyn Topology, n: NodeId, p: PortId) {
        if let Some(l) = topo.link(n, p) {
            self.links.insert(l);
        }
    }

    /// Marks a canonical link as faulty.
    pub fn fail_link_id(&mut self, l: LinkId) {
        self.links.insert(l);
    }

    /// Marks a node as faulty.
    pub fn fail_node(&mut self, n: NodeId) {
        self.nodes.insert(n);
    }

    /// Repairs a link (used by reconfiguration experiments).
    pub fn repair_link(&mut self, l: LinkId) {
        self.links.remove(&l);
    }

    /// Repairs a node.
    pub fn repair_node(&mut self, n: NodeId) {
        self.nodes.remove(&n);
    }

    /// True if the node itself is faulty.
    pub fn node_faulty(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// True if the link itself (not counting endpoint nodes) is faulty.
    pub fn link_faulty(&self, topo: &dyn Topology, n: NodeId, p: PortId) -> bool {
        topo.link(n, p).is_some_and(|l| self.links.contains(&l))
    }

    /// True if a message may traverse the link leaving `n` through `p`:
    /// the port is wired, the link is healthy and both endpoints are alive.
    pub fn link_usable(&self, topo: &dyn Topology, n: NodeId, p: PortId) -> bool {
        match topo.neighbor(n, p) {
            None => false,
            Some(m) => {
                !self.node_faulty(n) && !self.node_faulty(m) && !self.link_faulty(topo, n, p)
            }
        }
    }

    /// Faulty links (canonical).
    pub fn faulty_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().copied()
    }

    /// Faulty nodes.
    pub fn faulty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of faulty links.
    pub fn num_link_faults(&self) -> usize {
        self.links.len()
    }

    /// Number of faulty nodes.
    pub fn num_node_faults(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing is faulty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty()
    }

    /// Number of healthy links incident to `n` (its residual degree).
    pub fn healthy_degree(&self, topo: &dyn Topology, n: NodeId) -> usize {
        topo.ports().filter(|&p| self.link_usable(topo, n, p)).count()
    }

    /// Draws `count` distinct random link faults, optionally rejecting draws
    /// that disconnect the healthy part of the network. Returns the number
    /// of faults actually placed (placement can fall short if the connected
    /// constraint rejects too many candidates).
    pub fn inject_random_links(
        &mut self,
        topo: &dyn Topology,
        count: usize,
        keep_connected: bool,
        seed: u64,
    ) -> usize {
        let mut rng = SimpleRng::new(seed);
        let all = topo.links();
        let mut placed = 0;
        let mut attempts = 0;
        while placed < count && attempts < count * 64 + 256 {
            attempts += 1;
            let l = all[rng.below(all.len())];
            if self.links.contains(&l) {
                continue;
            }
            self.links.insert(l);
            if keep_connected && !crate::graph::is_connected(topo, self) {
                self.links.remove(&l);
            } else {
                placed += 1;
            }
        }
        placed
    }

    /// Draws `count` distinct random node faults, optionally keeping the
    /// healthy remainder connected. Returns the number placed.
    pub fn inject_random_nodes(
        &mut self,
        topo: &dyn Topology,
        count: usize,
        keep_connected: bool,
        seed: u64,
    ) -> usize {
        let mut rng = SimpleRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let n = topo.num_nodes();
        let mut placed = 0;
        let mut attempts = 0;
        while placed < count && attempts < count * 64 + 256 {
            attempts += 1;
            let cand = NodeId(rng.below(n) as u32);
            if self.nodes.contains(&cand) {
                continue;
            }
            self.nodes.insert(cand);
            if keep_connected && !crate::graph::is_connected(topo, self) {
                self.nodes.remove(&cand);
            } else {
                placed += 1;
            }
        }
        placed
    }
}

/// Minimal xorshift RNG so `ftr-topo` does not need to depend on `rand`
/// (the simulator uses `rand` proper; fault placement only needs cheap,
/// reproducible draws).
mod rand_like {
    /// SplitMix64-based generator; deterministic for a given seed.
    pub struct SimpleRng {
        state: u64,
    }

    impl SimpleRng {
        pub fn new(seed: u64) -> Self {
            SimpleRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..bound` (bound > 0).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub use rand_like::SimpleRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh2D, EAST, NORTH, WEST};
    use crate::Topology;

    #[test]
    fn link_fault_is_bidirectional() {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        let a = m.node_at(1, 1);
        let b = m.node_at(2, 1);
        f.fail_link(&m, a, EAST);
        assert!(f.link_faulty(&m, a, EAST));
        assert!(f.link_faulty(&m, b, WEST), "reverse direction also faulty");
        assert!(!f.link_usable(&m, a, EAST));
        assert!(!f.link_usable(&m, b, WEST));
        assert_eq!(f.num_link_faults(), 1);
    }

    #[test]
    fn node_fault_disables_incident_links() {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        let dead = m.node_at(2, 2);
        f.fail_node(dead);
        for (p, nb) in m.neighbors(dead) {
            assert!(!f.link_usable(&m, dead, p));
            let q = m.port_towards(nb, dead).unwrap();
            assert!(!f.link_usable(&m, nb, q));
            // but the raw link is not itself faulty
            assert!(!f.link_faulty(&m, nb, q));
        }
    }

    #[test]
    fn repair_restores_usability() {
        let m = Mesh2D::new(3, 3);
        let mut f = FaultSet::new();
        let n = m.node_at(0, 0);
        f.fail_link(&m, n, NORTH);
        let l = m.link(n, NORTH).unwrap();
        f.repair_link(l);
        assert!(f.link_usable(&m, n, NORTH));
        assert!(f.is_empty());
    }

    #[test]
    fn healthy_degree_counts() {
        let m = Mesh2D::new(3, 3);
        let mut f = FaultSet::new();
        let center = m.node_at(1, 1);
        assert_eq!(f.healthy_degree(&m, center), 4);
        f.fail_link(&m, center, EAST);
        f.fail_node(m.node_at(1, 2)); // north neighbour dies
        assert_eq!(f.healthy_degree(&m, center), 2);
        assert_eq!(f.healthy_degree(&m, m.node_at(0, 0)), 2);
    }

    #[test]
    fn random_injection_is_deterministic_and_connected() {
        let m = Mesh2D::new(8, 8);
        let mut f1 = FaultSet::new();
        let mut f2 = FaultSet::new();
        let p1 = f1.inject_random_links(&m, 10, true, 7);
        let _p2 = f2.inject_random_links(&m, 10, true, 7);
        assert_eq!(p1, 10);
        assert_eq!(f1, f2, "same seed, same faults");
        assert!(crate::graph::is_connected(&m, &f1));
    }

    #[test]
    fn node_injection_keeps_connectivity() {
        let m = Mesh2D::new(6, 6);
        let mut f = FaultSet::new();
        let placed = f.inject_random_nodes(&m, 5, true, 99);
        assert_eq!(placed, 5);
        assert!(crate::graph::is_connected(&m, &f));
    }
}
