//! Channel-dependency-graph deadlock analysis (Dally & Seitz \[DaS87\]).
//!
//! The paper's §3 "Deadlock Avoidance" discussion builds on the classic
//! result that a wormhole routing algorithm is deadlock-free if the directed
//! graph whose vertices are virtual channels and whose edges are the
//! "message holds c1 and requests c2" dependencies is acyclic. This module
//! constructs that graph for an arbitrary routing relation and fault set and
//! looks for cycles, which lets the test-suite *prove* (by exhaustion over
//! destinations) that the turn-model virtual networks of NARA/NAFTA and the
//! phase scheme of ROUTE_C are deadlock-free, and that naive fully-adaptive
//! routing on a single channel is not.

use crate::faults::FaultSet;
use crate::ids::{NodeId, PortId, VcId};
use crate::Topology;
use std::collections::{BTreeSet, VecDeque};

/// A directed virtual channel: the channel leaving `node` through `port` on
/// virtual lane `vc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Upstream endpoint.
    pub node: NodeId,
    /// Port at `node` through which the channel leaves.
    pub port: PortId,
    /// Virtual lane index.
    pub vc: VcId,
}

/// The routing relation handed to [`ChannelDependencyGraph::build`].
///
/// Arguments: current node, the channel the (head) flit occupies on arrival
/// (`None` for freshly injected messages; the `PortId` is the *input* port at
/// the current node), and the destination. Returns every output channel the
/// algorithm may select in *some* network state — supply the full relation,
/// not one choice, otherwise the acyclicity check proves nothing.
pub type RoutingRelation<'a> =
    dyn Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + 'a;

/// The channel dependency graph of a routing relation on a faulty network.
pub struct ChannelDependencyGraph {
    num_vcs: usize,
    degree: usize,
    /// Adjacency: edges[c] = set of channels that c may wait on.
    edges: Vec<BTreeSet<u32>>,
    /// Channels actually reachable by some message.
    used: Vec<bool>,
}

impl ChannelDependencyGraph {
    fn chan_index(&self, c: Channel) -> usize {
        (c.node.idx() * self.degree + c.port.idx()) * self.num_vcs + c.vc.idx()
    }

    fn chan_from_index(&self, i: usize) -> Channel {
        let vc = i % self.num_vcs;
        let rest = i / self.num_vcs;
        Channel {
            node: NodeId((rest / self.degree) as u32),
            port: PortId((rest % self.degree) as u8),
            vc: VcId(vc as u8),
        }
    }

    /// Builds the dependency graph by walking every (source, destination)
    /// message through the routing relation, recording which channel each
    /// held channel can wait for.
    pub fn build(
        topo: &dyn Topology,
        faults: &FaultSet,
        num_vcs: usize,
        routing: &RoutingRelation<'_>,
    ) -> Self {
        let degree = topo.degree();
        let n_chan = topo.num_nodes() * degree * num_vcs;
        let mut g = ChannelDependencyGraph {
            num_vcs,
            degree,
            edges: vec![BTreeSet::new(); n_chan],
            used: vec![false; n_chan],
        };

        for dst in topo.nodes() {
            if faults.node_faulty(dst) {
                continue;
            }
            // BFS over "channel states" for this destination. A state is a
            // held channel; successors are the channels requested next.
            let mut seen = vec![false; n_chan];
            let mut queue: VecDeque<Channel> = VecDeque::new();

            // Injection: any alive source may request its first channel.
            for src in topo.nodes() {
                if src == dst || faults.node_faulty(src) {
                    continue;
                }
                for (p, vc) in routing(src, None, dst) {
                    if !faults.link_usable(topo, src, p) {
                        continue;
                    }
                    let c = Channel { node: src, port: p, vc };
                    let ci = g.chan_index(c);
                    g.used[ci] = true;
                    if !seen[ci] {
                        seen[ci] = true;
                        queue.push_back(c);
                    }
                }
            }

            while let Some(c) = queue.pop_front() {
                let here = match topo.neighbor(c.node, c.port) {
                    Some(m) => m,
                    None => continue,
                };
                if here == dst {
                    continue; // message drains, no further dependency
                }
                let in_port = topo
                    .port_towards(here, c.node)
                    .expect("channel endpoint is adjacent");
                let ci = g.chan_index(c);
                for (p, vc) in routing(here, Some((in_port, c.vc)), dst) {
                    if !faults.link_usable(topo, here, p) {
                        continue;
                    }
                    let next = Channel { node: here, port: p, vc };
                    let ni = g.chan_index(next);
                    g.edges[ci].insert(ni as u32);
                    g.used[ni] = true;
                    if !seen[ni] {
                        seen[ni] = true;
                        queue.push_back(next);
                    }
                }
            }
        }
        g
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(|s| s.len()).sum()
    }

    /// Number of channels any message can occupy.
    pub fn num_used_channels(&self) -> usize {
        self.used.iter().filter(|&&u| u).count()
    }

    /// True if the dependency graph contains a cycle (⇒ deadlock possible).
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Returns one dependency cycle for diagnostics, or `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.edges.len();
        let mut color = vec![WHITE; n];
        let mut parent: Vec<u32> = vec![u32::MAX; n];

        for start in 0..n {
            if color[start] != WHITE || !self.used[start] {
                continue;
            }
            // Iterative DFS with explicit stack of (node, neighbour iterator
            // position); BTreeSet iteration is restarted via skipping.
            let mut stack: Vec<(usize, Vec<u32>, usize)> = Vec::new();
            let neigh: Vec<u32> = self.edges[start].iter().copied().collect();
            color[start] = GRAY;
            stack.push((start, neigh, 0));
            while let Some((u, neigh, pos)) = stack.last_mut() {
                if *pos < neigh.len() {
                    let v = neigh[*pos] as usize;
                    *pos += 1;
                    match color[v] {
                        WHITE => {
                            parent[v] = *u as u32;
                            color[v] = GRAY;
                            let nn: Vec<u32> = self.edges[v].iter().copied().collect();
                            stack.push((v, nn, 0));
                        }
                        GRAY => {
                            // found a back edge u -> v: reconstruct cycle
                            let mut cyc = vec![self.chan_from_index(v)];
                            let mut cur = *u;
                            while cur != v {
                                cyc.push(self.chan_from_index(cur));
                                cur = parent[cur] as usize;
                            }
                            cyc.reverse();
                            return Some(cyc);
                        }
                        _ => {}
                    }
                } else {
                    color[*u] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // test relation closures spell out the full signature
mod tests {
    use super::*;
    use crate::mesh::{Mesh2D, EAST, NORTH, SOUTH, WEST};
    

    /// XY dimension-order routing on one VC: provably deadlock-free.
    fn xy(m: &Mesh2D) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + '_ {
        move |cur, _in, dst| {
            let (dx, dy) = m.offset(cur, dst);
            let p = if dx > 0 {
                EAST
            } else if dx < 0 {
                WEST
            } else if dy > 0 {
                NORTH
            } else if dy < 0 {
                SOUTH
            } else {
                return vec![];
            };
            vec![(p, VcId(0))]
        }
    }

    /// Fully adaptive minimal on one VC: has cyclic dependencies.
    fn fully_adaptive(
        m: &Mesh2D,
    ) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + '_ {
        move |cur, _in, dst| {
            m.minimal_directions(cur, dst)
                .into_iter()
                .map(|p| (p, VcId(0)))
                .collect()
        }
    }

    #[test]
    fn xy_routing_is_acyclic() {
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&m, &f, 1, &xy(&m));
        assert!(!g.has_cycle(), "XY routing must be deadlock-free");
        assert!(g.num_used_channels() > 0);
    }

    #[test]
    fn unrestricted_adaptive_has_cycle() {
        let m = Mesh2D::new(3, 3);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&m, &f, 1, &fully_adaptive(&m));
        let cyc = g.find_cycle().expect("minimal adaptive on 1 VC deadlocks");
        assert!(cyc.len() >= 4, "mesh cycles have length >= 4, got {cyc:?}");
    }

    #[test]
    fn west_first_turn_model_is_acyclic() {
        // West-first: go west first (all the way), afterwards never turn west.
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let wf = |cur: NodeId, _in: Option<(PortId, VcId)>, dst: NodeId| {
            let (dx, dy) = m.offset(cur, dst);
            if dx < 0 {
                return vec![(WEST, VcId(0))];
            }
            let mut out = vec![];
            if dx > 0 {
                out.push((EAST, VcId(0)));
            }
            if dy > 0 {
                out.push((NORTH, VcId(0)));
            }
            if dy < 0 {
                out.push((SOUTH, VcId(0)));
            }
            out
        };
        let g = ChannelDependencyGraph::build(&m, &f, 1, &wf);
        assert!(!g.has_cycle(), "west-first turn model is deadlock-free");
    }

    #[test]
    fn faults_remove_channels() {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        let g0 = ChannelDependencyGraph::build(&m, &f, 1, &xy(&m));
        f.fail_link(&m, m.node_at(1, 1), EAST);
        let g1 = ChannelDependencyGraph::build(&m, &f, 1, &xy(&m));
        assert!(g1.num_used_channels() < g0.num_used_channels());
    }

    #[test]
    fn cycle_report_is_a_real_cycle() {
        let m = Mesh2D::new(3, 3);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&m, &f, 1, &fully_adaptive(&m));
        let cyc = g.find_cycle().unwrap();
        // every consecutive pair (and the wrap pair) must be an edge
        for i in 0..cyc.len() {
            let a = cyc[i];
            let b = cyc[(i + 1) % cyc.len()];
            let ai = g.chan_index(a);
            let bi = g.chan_index(b);
            assert!(g.edges[ai].contains(&(bi as u32)), "{a:?} -> {b:?} missing");
        }
    }
}
