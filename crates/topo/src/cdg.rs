//! Channel-dependency-graph deadlock analysis (Dally & Seitz \[DaS87\]).
//!
//! The paper's §3 "Deadlock Avoidance" discussion builds on the classic
//! result that a wormhole routing algorithm is deadlock-free if the directed
//! graph whose vertices are virtual channels and whose edges are the
//! "message holds c1 and requests c2" dependencies is acyclic. This module
//! constructs that graph for an arbitrary routing relation and fault set and
//! looks for cycles, which lets the test-suite *prove* (by exhaustion over
//! destinations) that the turn-model virtual networks of NARA/NAFTA and the
//! phase scheme of ROUTE_C are deadlock-free, and that naive fully-adaptive
//! routing on a single channel is not.

use crate::faults::FaultSet;
use crate::ids::{NodeId, PortId, VcId};
use crate::Topology;
use std::collections::{BTreeSet, VecDeque};

/// A directed virtual channel: the channel leaving `node` through `port` on
/// virtual lane `vc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Upstream endpoint.
    pub node: NodeId,
    /// Port at `node` through which the channel leaves.
    pub port: PortId,
    /// Virtual lane index.
    pub vc: VcId,
}

/// The routing relation handed to [`ChannelDependencyGraph::build`].
///
/// Arguments: current node, the channel the (head) flit occupies on arrival
/// (`None` for freshly injected messages; the `PortId` is the *input* port at
/// the current node), and the destination. Returns every output channel the
/// algorithm may select in *some* network state — supply the full relation,
/// not one choice, otherwise the acyclicity check proves nothing.
pub type RoutingRelation<'a> =
    dyn Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + 'a;

/// The channel dependency graph of a routing relation on a faulty network.
pub struct ChannelDependencyGraph {
    num_vcs: usize,
    degree: usize,
    /// Adjacency: edges[c] = set of channels that c may wait on.
    edges: Vec<BTreeSet<u32>>,
    /// Channels actually reachable by some message.
    used: Vec<bool>,
}

impl ChannelDependencyGraph {
    fn chan_index(&self, c: Channel) -> usize {
        (c.node.idx() * self.degree + c.port.idx()) * self.num_vcs + c.vc.idx()
    }

    fn chan_from_index(&self, i: usize) -> Channel {
        let vc = i % self.num_vcs;
        let rest = i / self.num_vcs;
        Channel {
            node: NodeId((rest / self.degree) as u32),
            port: PortId((rest % self.degree) as u8),
            vc: VcId(vc as u8),
        }
    }

    /// Builds the dependency graph by walking every (source, destination)
    /// message through the routing relation, recording which channel each
    /// held channel can wait for.
    pub fn build(
        topo: &dyn Topology,
        faults: &FaultSet,
        num_vcs: usize,
        routing: &RoutingRelation<'_>,
    ) -> Self {
        let degree = topo.degree();
        let n_chan = topo.num_nodes() * degree * num_vcs;
        let mut g = ChannelDependencyGraph {
            num_vcs,
            degree,
            edges: vec![BTreeSet::new(); n_chan],
            used: vec![false; n_chan],
        };

        for dst in topo.nodes() {
            if faults.node_faulty(dst) {
                continue;
            }
            // BFS over "channel states" for this destination. A state is a
            // held channel; successors are the channels requested next.
            let mut seen = vec![false; n_chan];
            let mut queue: VecDeque<Channel> = VecDeque::new();

            // Injection: any alive source may request its first channel.
            for src in topo.nodes() {
                if src == dst || faults.node_faulty(src) {
                    continue;
                }
                for (p, vc) in routing(src, None, dst) {
                    if !faults.link_usable(topo, src, p) {
                        continue;
                    }
                    let c = Channel { node: src, port: p, vc };
                    let ci = g.chan_index(c);
                    g.used[ci] = true;
                    if !seen[ci] {
                        seen[ci] = true;
                        queue.push_back(c);
                    }
                }
            }

            while let Some(c) = queue.pop_front() {
                let here = match topo.neighbor(c.node, c.port) {
                    Some(m) => m,
                    None => continue,
                };
                if here == dst {
                    continue; // message drains, no further dependency
                }
                let in_port =
                    topo.port_towards(here, c.node).expect("channel endpoint is adjacent");
                let ci = g.chan_index(c);
                for (p, vc) in routing(here, Some((in_port, c.vc)), dst) {
                    if !faults.link_usable(topo, here, p) {
                        continue;
                    }
                    let next = Channel { node: here, port: p, vc };
                    let ni = g.chan_index(next);
                    g.edges[ci].insert(ni as u32);
                    g.used[ni] = true;
                    if !seen[ni] {
                        seen[ni] = true;
                        queue.push_back(next);
                    }
                }
            }
        }
        g
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(|s| s.len()).sum()
    }

    /// Number of channels any message can occupy.
    pub fn num_used_channels(&self) -> usize {
        self.used.iter().filter(|&&u| u).count()
    }

    /// True if the dependency graph contains a cycle (⇒ deadlock possible).
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Returns one dependency cycle for diagnostics, or `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.edges.len();
        let mut color = vec![WHITE; n];
        let mut parent: Vec<u32> = vec![u32::MAX; n];

        for start in 0..n {
            if color[start] != WHITE || !self.used[start] {
                continue;
            }
            // Iterative DFS with explicit stack of (node, neighbour iterator
            // position); BTreeSet iteration is restarted via skipping.
            let mut stack: Vec<(usize, Vec<u32>, usize)> = Vec::new();
            let neigh: Vec<u32> = self.edges[start].iter().copied().collect();
            color[start] = GRAY;
            stack.push((start, neigh, 0));
            while let Some((u, neigh, pos)) = stack.last_mut() {
                if *pos < neigh.len() {
                    let v = neigh[*pos] as usize;
                    *pos += 1;
                    match color[v] {
                        WHITE => {
                            parent[v] = *u as u32;
                            color[v] = GRAY;
                            let nn: Vec<u32> = self.edges[v].iter().copied().collect();
                            stack.push((v, nn, 0));
                        }
                        GRAY => {
                            // found a back edge u -> v: reconstruct cycle
                            let mut cyc = vec![self.chan_from_index(v)];
                            let mut cur = *u;
                            while cur != v {
                                cyc.push(self.chan_from_index(cur));
                                cur = parent[cur] as usize;
                            }
                            cyc.reverse();
                            return Some(cyc);
                        }
                        _ => {}
                    }
                } else {
                    color[*u] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // test relation closures spell out the full signature
mod tests {
    use super::*;
    use crate::mesh::{Mesh2D, EAST, NORTH, SOUTH, WEST};

    /// XY dimension-order routing on one VC: provably deadlock-free.
    fn xy(
        m: &Mesh2D,
    ) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + '_ {
        move |cur, _in, dst| {
            let (dx, dy) = m.offset(cur, dst);
            let p = if dx > 0 {
                EAST
            } else if dx < 0 {
                WEST
            } else if dy > 0 {
                NORTH
            } else if dy < 0 {
                SOUTH
            } else {
                return vec![];
            };
            vec![(p, VcId(0))]
        }
    }

    /// Fully adaptive minimal on one VC: has cyclic dependencies.
    fn fully_adaptive(
        m: &Mesh2D,
    ) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + '_ {
        move |cur, _in, dst| {
            m.minimal_directions(cur, dst).into_iter().map(|p| (p, VcId(0))).collect()
        }
    }

    #[test]
    fn xy_routing_is_acyclic() {
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&m, &f, 1, &xy(&m));
        assert!(!g.has_cycle(), "XY routing must be deadlock-free");
        assert!(g.num_used_channels() > 0);
    }

    #[test]
    fn unrestricted_adaptive_has_cycle() {
        let m = Mesh2D::new(3, 3);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&m, &f, 1, &fully_adaptive(&m));
        let cyc = g.find_cycle().expect("minimal adaptive on 1 VC deadlocks");
        assert!(cyc.len() >= 4, "mesh cycles have length >= 4, got {cyc:?}");
    }

    #[test]
    fn west_first_turn_model_is_acyclic() {
        // West-first: go west first (all the way), afterwards never turn west.
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let wf = |cur: NodeId, _in: Option<(PortId, VcId)>, dst: NodeId| {
            let (dx, dy) = m.offset(cur, dst);
            if dx < 0 {
                return vec![(WEST, VcId(0))];
            }
            let mut out = vec![];
            if dx > 0 {
                out.push((EAST, VcId(0)));
            }
            if dy > 0 {
                out.push((NORTH, VcId(0)));
            }
            if dy < 0 {
                out.push((SOUTH, VcId(0)));
            }
            out
        };
        let g = ChannelDependencyGraph::build(&m, &f, 1, &wf);
        assert!(!g.has_cycle(), "west-first turn model is deadlock-free");
    }

    #[test]
    fn faults_remove_channels() {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        let g0 = ChannelDependencyGraph::build(&m, &f, 1, &xy(&m));
        f.fail_link(&m, m.node_at(1, 1), EAST);
        let g1 = ChannelDependencyGraph::build(&m, &f, 1, &xy(&m));
        assert!(g1.num_used_channels() < g0.num_used_channels());
    }

    #[test]
    fn cycle_report_is_a_real_cycle() {
        let m = Mesh2D::new(3, 3);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&m, &f, 1, &fully_adaptive(&m));
        let cyc = g.find_cycle().unwrap();
        // every consecutive pair (and the wrap pair) must be an edge
        for i in 0..cyc.len() {
            let a = cyc[i];
            let b = cyc[(i + 1) % cyc.len()];
            let ai = g.chan_index(a);
            let bi = g.chan_index(b);
            assert!(g.edges[ai].contains(&(bi as u32)), "{a:?} -> {b:?} missing");
        }
    }

    /// The NARA/NAFTA two-virtual-network turn-model discipline (§2.2):
    /// network 0 routes E/W/N, network 1 routes E/W/S plus a committed
    /// north climb in the destination column, switching 0 → 1 is one-way,
    /// and 180° turns are banned.
    fn nara_pair(
        m: &Mesh2D,
    ) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + '_ {
        move |cur, inc, dst| {
            let (dx, dy) = m.offset(cur, dst);
            if dx == 0 && dy == 0 {
                return vec![];
            }
            if let Some((ip, iv)) = inc {
                if iv == VcId(1) && ip == SOUTH {
                    // committed climb: keep going north in network 1
                    return vec![(NORTH, VcId(1))];
                }
            }
            let vnets: Vec<u8> = match inc {
                Some((_, iv)) => {
                    // one-way switch into the no-north network on overshoot
                    vec![if iv == VcId(0) && dy < 0 { 1 } else { iv.idx() as u8 }]
                }
                None if dy > 0 => vec![0],
                None if dy < 0 => vec![1],
                None => vec![0, 1],
            };
            let in_port = inc.map(|(p, _)| p);
            let mut out = vec![];
            for v in vnets {
                let mut dirs = vec![];
                if dx > 0 {
                    dirs.push(EAST);
                }
                if dx < 0 {
                    dirs.push(WEST);
                }
                if v == 0 {
                    if dy > 0 {
                        dirs.push(NORTH);
                    }
                } else {
                    if dy < 0 {
                        dirs.push(SOUTH);
                    }
                    if dx == 0 && dy > 0 {
                        dirs.push(NORTH); // terminal climb entry
                    }
                }
                dirs.retain(|&d| Some(d) != in_port);
                out.extend(dirs.into_iter().map(|d| (d, VcId(v))));
            }
            out
        }
    }

    #[test]
    fn nara_virtual_network_pair_is_acyclic() {
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&m, &f, 2, &nara_pair(&m));
        assert!(!g.has_cycle(), "the two-virtual-network turn model is deadlock-free");
        assert!(g.num_used_channels() > 0);
    }

    #[test]
    fn nara_virtual_network_pair_stays_acyclic_under_faults() {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        f.fail_link(&m, m.node_at(1, 1), EAST);
        f.fail_link(&m, m.node_at(2, 2), NORTH);
        let g = ChannelDependencyGraph::build(&m, &f, 2, &nara_pair(&m));
        assert!(!g.has_cycle());
    }

    /// Deterministic shortest-way dimension-order routing on a torus; with
    /// `vcs = 1` the wrap links close dependency rings, with `vcs = 2` a
    /// dateline upgrade (VC 1 after crossing the wrap link) breaks them.
    fn torus_dor(
        t: &crate::Torus2D,
        vcs: usize,
    ) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + '_ {
        move |cur, inc, dst| {
            if cur == dst {
                return vec![];
            }
            let (cx, cy) = t.coords(cur);
            let (dx, dy) = t.coords(dst);
            let (w, h) = (t.width(), t.height());
            let ring = |off: u32, size: u32, pos: u32, fwd: PortId, bwd: PortId| {
                let forward = off <= size / 2;
                let port = if forward { fwd } else { bwd };
                let wraps = (forward && pos == size - 1) || (!forward && pos == 0);
                (port, wraps)
            };
            let ox = (dx + w - cx) % w;
            let (port, wraps, same_dim) = if ox != 0 {
                let (p, wr) = ring(ox, w, cx, EAST, WEST);
                (p, wr, [EAST, WEST])
            } else {
                let oy = (dy + h - cy) % h;
                let (p, wr) = ring(oy, h, cy, NORTH, SOUTH);
                (p, wr, [NORTH, SOUTH])
            };
            let carried = match inc {
                Some((ip, iv)) if same_dim.contains(&ip) => iv.idx() as u8,
                _ => 0,
            };
            let vc = if vcs > 1 && wraps { 1 } else { carried };
            vec![(port, VcId(vc))]
        }
    }

    #[test]
    fn torus_wraparound_closes_a_ring_on_one_vc() {
        let t = crate::Torus2D::new(4, 4);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&t, &f, 1, &torus_dor(&t, 1));
        let cyc = g.find_cycle().expect("torus DOR without datelines deadlocks");
        // the witness is a full unidirectional ring of one dimension
        assert_eq!(cyc.len(), 4, "expected a wrap ring, got {cyc:?}");
        let port = cyc[0].port;
        assert!(cyc.iter().all(|c| c.port == port), "mixed-port witness {cyc:?}");
    }

    #[test]
    fn torus_dateline_virtual_channels_are_acyclic() {
        let t = crate::Torus2D::new(4, 4);
        let f = FaultSet::new();
        let g = ChannelDependencyGraph::build(&t, &f, 2, &torus_dor(&t, 2));
        assert!(!g.has_cycle(), "dateline VCs break torus wrap cycles");
        assert!(g.num_used_channels() > 0);
    }
}
