//! Simulator throughput: cycles/second for the native algorithms and the
//! rule-driven router — quantifies the cost of full rule interpretation in
//! the control path of every simulated router.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_algos::{Nafta, Nara, XyRouting};
use ftr_core::{registry, RuleRouter};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Network, Pattern, TrafficSource};
use ftr_topo::Mesh2D;
use std::hint::black_box;
use std::sync::Arc;

fn run_sim(mesh: &Mesh2D, algo: &dyn RoutingAlgorithm, cycles: u64) -> u64 {
    let mut net = Network::builder(Arc::new(mesh.clone())).build(algo).expect("valid config");
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, 1);
    for _ in 0..cycles {
        for (s, d, l) in tf.tick(mesh, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
    }
    net.stats.delivered_msgs
}

fn bench_sim(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 8);
    let mut g = c.benchmark_group("sim_500_cycles_8x8");
    g.sample_size(20);

    let xy = XyRouting::new(mesh.clone());
    g.bench_function("native_xy", |b| b.iter(|| black_box(run_sim(&mesh, &xy, 500))));

    let nara = Nara::new(mesh.clone());
    g.bench_function("native_nara", |b| b.iter(|| black_box(run_sim(&mesh, &nara, 500))));

    let nafta = Nafta::new(mesh.clone());
    g.bench_function("native_nafta", |b| b.iter(|| black_box(run_sim(&mesh, &nafta, 500))));

    let cfg = registry::configuration("xy").unwrap();
    let rule_xy = RuleRouter::new(cfg, mesh.clone(), 1);
    g.bench_function("rule_driven_xy", |b| b.iter(|| black_box(run_sim(&mesh, &rule_xy, 500))));

    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
