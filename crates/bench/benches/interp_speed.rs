//! Experiment E9 — rule-interpretation speed (the §4.3 performance claim).
//!
//! "It is possible to transform the rule base and apply a fast hardware
//! interpreter which is able to outperform software solutions and offers
//! more complex realizations than table-based methods." In software the
//! analogous comparison is: compiled-table interpretation (premise
//! features + one lookup) vs naive sequential rule scanning (the
//! "software solution"), with a native Rust implementation and a raw
//! precomputed table lookup as the two bounds.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftr_algos::rules_src;
use ftr_rules::{compile, fire_reference, parse, CompileOptions, InputMap, RegFile, Value};
use ftr_topo::{Mesh2D, NodeId};
use std::hint::black_box;

fn setup() -> (ftr_rules::Program, ftr_rules::CompiledProgram, RegFile, Vec<InputMap>) {
    let prog = parse(rules_src::XY).unwrap();
    let compiled = compile(&prog, &CompileOptions::default()).unwrap();
    let mut regs = RegFile::new(&prog);
    // node (2, 3)
    regs.write(&prog, 0, &[], Value::Int(2)).unwrap();
    regs.write(&prog, 1, &[], Value::Int(3)).unwrap();
    // a spread of destinations / link states
    let mut inputs = Vec::new();
    for i in 0..16u8 {
        let mut im = InputMap::new();
        im.set(&prog, "xdes", &[], Value::Int((i % 8) as i64)).unwrap();
        im.set(&prog, "ydes", &[], Value::Int((i / 2 % 8) as i64)).unwrap();
        for d in 0..4 {
            im.set(&prog, "free", &[Value::Int(d)], Value::Bool((i >> (d as u8 % 4)) & 1 == 0))
                .unwrap();
            im.set(&prog, "linkok", &[Value::Int(d)], Value::Bool(true)).unwrap();
        }
        inputs.push(im);
    }
    (prog, compiled, regs, inputs)
}

fn bench_decision(c: &mut Criterion) {
    let (prog, compiled, regs, inputs) = setup();
    let base = &compiled.bases[0];
    let mut g = c.benchmark_group("routing_decision");

    g.bench_function("compiled_table_interpreter", |b| {
        let mut i = 0usize;
        b.iter_batched(
            || regs.clone(),
            |mut r| {
                i = (i + 1) % inputs.len();
                black_box(base.fire(&prog, &[], &mut r, &inputs[i]).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("direct_threaded_bytecode", |b| {
        let vm = ftr_rules::VmProgram::lower(&compiled).unwrap();
        let mut sc = ftr_rules::vm::Scratch::new();
        let mut i = 0usize;
        b.iter_batched(
            || regs.clone(),
            |mut r| {
                i = (i + 1) % inputs.len();
                black_box(vm.bases[0].fire(&prog, &[], &mut r, &inputs[i], &mut sc).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("sequential_rule_scan", |b| {
        let mut i = 0usize;
        b.iter_batched(
            || regs.clone(),
            |mut r| {
                i = (i + 1) % inputs.len();
                black_box(fire_reference(&prog, 0, &[], &mut r, &inputs[i]).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("raw_table_lookup", |b| {
        // the hardware bound: index precomputed, one memory access
        let idx = 42usize % base.table.len();
        b.iter(|| black_box(base.table[black_box(idx)]))
    });

    g.bench_function("native_rust_xy", |b| {
        let mesh = Mesh2D::new(8, 8);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let dst = NodeId(i % 64);
            black_box(ftr_algos::XyRouting::next_port(&mesh, NodeId(19), dst))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
