//! Rule-compiler speed: parsing + ARON table generation for the shipped
//! programs. The paper compiles rule bases "off-line"; this bench shows
//! reconfiguration cost is negligible (microseconds to milliseconds), so a
//! network could realistically be re-programmed between application runs.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_algos::rules_src;
use ftr_rules::{compile, parse, CompileOptions};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("rule_compiler");
    for (name, src) in rules_src::all() {
        g.bench_function(format!("parse_{name}"), |b| {
            b.iter(|| black_box(parse(black_box(src)).unwrap()))
        });
        let prog = parse(src).unwrap();
        g.bench_function(format!("compile_{name}"), |b| {
            b.iter(|| black_box(compile(black_box(&prog), &CompileOptions::default()).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
