//! Sim-level acceptance of the certified optimizer: on the E15 campaign
//! configuration (6x6 NAFTA mesh, transient link faults with repair,
//! source retransmission, live uniform traffic) the optimized program
//! must leave `SimStats` bit-identical to the program compiled straight
//! from source — same deliveries, kills, retries, latencies, and (via
//! the installed `StepWeights`) the same modeled `decision_steps`.

use ftr_analyze::{opt, TopoFacts};
use ftr_core::{configure, RouterConfiguration, RuleRouter};
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, SimStats, TrafficSource};
use ftr_topo::Mesh2D;
use std::sync::Arc;

const SIDE: u32 = 6;
const WARM_CYCLES: u64 = 600;
const MSG_LEN: u32 = 16;
const LOAD: f64 = 0.15;

fn campaign_run(mesh: &Mesh2D, algo: &RuleRouter, faults: usize, seed: u64) -> SimStats {
    let plan = FaultPlan::random_transient_links(mesh, faults, 100..450, 120, seed);
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .fault_plan(plan)
        .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 })
        .build(algo)
        .expect("valid config");
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, LOAD, MSG_LEN, seed ^ 0x5ca1e);
    for _ in 0..WARM_CYCLES {
        for (s, d, l) in tf.tick(mesh, net.faults()) {
            let _ = net.send(s, d, l);
        }
        net.step();
    }
    net.drain(60_000);
    net.stats
}

#[test]
fn optimized_nafta_is_bit_identical_on_the_campaign_config() {
    let mesh = Mesh2D::new(SIDE, SIDE);
    let baseline = configure("nafta", ftr_algos::rules_src::NAFTA).unwrap();
    let oopts = opt::OptOptions { topo: TopoFacts::mesh(SIDE, SIDE), ..opt::OptOptions::default() };
    let optimized = opt::optimize_rulebase("nafta", &baseline.compiled.prog, &oopts).unwrap();
    assert!(!optimized.cert.rewrites.is_empty(), "NAFTA must actually get rewritten");
    let opt_cfg = RouterConfiguration::from_compiled("nafta", optimized.compiled.clone())
        .unwrap()
        .with_step_weights(optimized.step_weights.clone());
    assert!(opt_cfg.optimized);

    for (faults, seed) in [(0usize, 1u64), (6, 7919), (10, 15838)] {
        let base_algo = RuleRouter::new(baseline.clone(), mesh.clone(), 1);
        let opt_algo = RuleRouter::new(opt_cfg.clone(), mesh.clone(), 1);
        let a = campaign_run(&mesh, &base_algo, faults, seed);
        let b = campaign_run(&mesh, &opt_algo, faults, seed);
        assert!(a.injected_msgs > 0, "campaign must inject traffic");
        assert_eq!(a, b, "faults={faults} seed={seed}: optimized campaign stats diverged");
    }
}
