//! Differential test: the FTB binary codec against the JSONL reference
//! over the full E15 campaign matrix.
//!
//! Every cell of the dynamic-fault campaign (retry off/on × each fault
//! count) runs once with a `TeeSink` feeding the *same* live event
//! stream to a `JsonlSink` file, a `BinSink` file and the online
//! diagnoser. The two captures must then agree event for event after
//! decoding — not just in aggregate — and both must fold into identical
//! `JourneyBook`s through the format-transparent `EventReader`. The
//! diagnoser must stay silent on every cell (these runs are
//! deadlock-free by construction).

use ftr_algos::Nafta;
use ftr_obs::ftb::{BinSink, FtbHeader, FtbReader};
use ftr_obs::{JsonlSink, TeeSink, TraceEvent, TraceSink};
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, TrafficSource};
use ftr_topo::Mesh2D;
use ftr_trace::{DiagnoserSink, EventReader, JourneyBook, TraceFormat};
use std::io::BufReader;
use std::sync::Arc;

const SIDE: u32 = 6;
const REPAIR_AFTER: u64 = 200;
const FAULT_WINDOW: std::ops::Range<u64> = 200..1_400;
const WARM_CYCLES: u64 = 1_800;
const DRAIN_BUDGET: u64 = 60_000;
const LOAD: f64 = 0.15;
const MSG_LEN: u32 = 16;

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ftr-ftb-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one E15 cell with both captures attached; returns the two
/// capture paths and whether the diagnoser stayed silent.
fn run_cell(retry: bool, faults: usize, seed: u64) -> (std::path::PathBuf, std::path::PathBuf) {
    let dir = tmp_dir();
    let tag = format!("{}_f{faults}_s{seed}", if retry { "retry" } else { "base" });
    let jsonl_path = dir.join(format!("{tag}.jsonl"));
    let ftb_path = dir.join(format!("{tag}.ftb"));

    let mesh = Mesh2D::new(SIDE, SIDE);
    let plan = FaultPlan::random_transient_links(&mesh, faults, FAULT_WINDOW, REPAIR_AFTER, seed);
    let jsonl = Arc::new(JsonlSink::create(&jsonl_path).unwrap());
    let ftb = Arc::new(
        BinSink::create(&ftb_path, FtbHeader::new().with("seed", seed).with("label", &tag))
            .unwrap(),
    );
    let diag = Arc::new(DiagnoserSink::default());
    let mut b = Network::builder(Arc::new(mesh.clone()))
        .fault_plan(plan)
        .trace(Arc::new(TeeSink::new(vec![jsonl.clone(), ftb.clone(), diag.clone()])));
    if retry {
        b = b.retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 });
    }
    let mut net = b.build(&Nafta::new(mesh.clone())).expect("valid config");
    net.set_measuring(true);

    let mut tf = TrafficSource::new(Pattern::Uniform, LOAD, MSG_LEN, seed ^ 0x5ca1e);
    for _ in 0..WARM_CYCLES {
        for (src, dst, len) in tf.tick(net.topo(), net.faults()) {
            let _ = net.send(src, dst, len);
        }
        net.step();
    }
    assert!(net.drain(DRAIN_BUDGET), "cell {tag} failed to drain");
    diag.scan_now();
    assert!(net.stats.accounting_balanced(), "cell {tag} out of balance");
    assert!(!net.stats.deadlock, "cell {tag}: watchdog deadlock");
    assert!(diag.deadlock().is_none(), "cell {tag}: diagnoser deadlock");

    jsonl.flush();
    assert_eq!(jsonl.write_errors(), 0);
    ftb.finalize().unwrap();
    assert_eq!(ftb.write_errors(), 0);
    assert_eq!(jsonl.written(), ftb.written(), "cell {tag}: sinks saw different event counts");
    (jsonl_path, ftb_path)
}

fn read_jsonl(path: &std::path::Path) -> Vec<TraceEvent> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| TraceEvent::from_json(l).unwrap())
        .collect()
}

fn read_ftb(path: &std::path::Path) -> Vec<TraceEvent> {
    let f = BufReader::new(std::fs::File::open(path).unwrap());
    let r = FtbReader::from_reader(f).unwrap();
    r.map(|e| e.unwrap()).collect()
}

#[test]
fn ftb_equals_jsonl_event_for_event_across_the_campaign_matrix() {
    let mut total_events = 0usize;
    for (cell, &(retry, faults)) in [false, true]
        .iter()
        .flat_map(|&r| [0usize, 4, 8, 12, 16].iter().map(move |&f| (r, f)))
        .collect::<Vec<_>>()
        .iter()
        .enumerate()
    {
        let seed = 1 + cell as u64 * 7919;
        let (jsonl_path, ftb_path) = run_cell(retry, faults, seed);

        let a = read_jsonl(&jsonl_path);
        let b = read_ftb(&ftb_path);
        assert!(!a.is_empty(), "cell (retry={retry}, |F|={faults}) captured nothing");
        assert_eq!(a.len(), b.len(), "cell (retry={retry}, |F|={faults}): event counts differ");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x, y, "cell (retry={retry}, |F|={faults}): event {i} differs");
        }
        total_events += a.len();

        // the format-transparent reader folds both into the same book
        let mut book_a = JourneyBook::new();
        let ra = EventReader::open(&jsonl_path).unwrap();
        assert_eq!(ra.format(), TraceFormat::Jsonl);
        let na = ftr_trace::replay(ra, &mut book_a, None).unwrap();

        let mut book_b = JourneyBook::new();
        let rb = EventReader::open(&ftb_path).unwrap();
        assert_eq!(rb.format(), TraceFormat::Ftb);
        assert_eq!(rb.header().unwrap().seed(), Some(seed));
        let nb = ftr_trace::replay(rb, &mut book_b, None).unwrap();

        assert_eq!(na, nb);
        assert_eq!(
            book_a.summary(),
            book_b.summary(),
            "cell (retry={retry}, |F|={faults}): journey books diverge"
        );
    }
    assert!(total_events > 10_000, "matrix too small to be meaningful ({total_events} events)");
}
