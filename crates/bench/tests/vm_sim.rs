//! Sim-level acceptance of the bytecode VM backend: on live traffic the
//! bytecode arm must be observationally indistinguishable from the table
//! interpreter — bit-identical `SimStats` (deliveries, kills, retries,
//! latencies, and the modeled `decision_steps`) *and* bit-identical trace
//! streams — across the rule-program algo suite:
//!
//! * NAFTA on the full E15 campaign matrix (6x6 mesh, transient link
//!   faults with repair, source retransmission), traced;
//! * NAFTA through the E18 optimizer with its `StepWeights` installed,
//!   so weight scaling composes with the bytecode backend;
//! * the mesh suite (xy, west_first, nafta, naive_adaptive) on a replayed
//!   injection schedule;
//! * rule-driven ROUTE_C on a hypercube with a node fault.
//!
//! Plus the `FTR_BACKEND` selector: the env var picks the backend at
//! configuration time (serialized through the workspace env lock).

use ftr_analyze::{opt, TopoFacts};
use ftr_core::{configure, CubeRuleRouter, RouterConfiguration, RuleRouter};
use ftr_obs::{TraceEvent, TraceSink};
use ftr_rules::Backend;
use ftr_sim::{
    FaultPlan, Network, Pattern, RetryPolicy, RoutingAlgorithm, SimStats, TrafficSource,
};
use ftr_topo::{Hypercube, Mesh2D, NodeId};
use std::sync::{Arc, Mutex};

const SIDE: u32 = 6;
const WARM_CYCLES: u64 = 600;
const MSG_LEN: u32 = 16;
const LOAD: f64 = 0.15;

/// Order-sensitive digest of the trace stream: every event folds its
/// debug rendering into an FNV-1a accumulator, so two runs compare whole
/// streams without buffering them (a campaign run emits far too many
/// events to retain).
struct DigestSink(Mutex<(u64, u64)>); // (fnv-1a hash, event count)

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink(Mutex::new((0xcbf2_9ce4_8422_2325, 0)))
    }
}

impl DigestSink {
    fn digest(&self) -> (u64, u64) {
        *self.0.lock().unwrap()
    }
}

impl TraceSink for DigestSink {
    fn record(&self, ev: &TraceEvent) {
        let line = format!("{ev:?}");
        let mut g = self.0.lock().unwrap();
        for b in line.as_bytes() {
            g.0 = (g.0 ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        g.1 += 1;
    }
}

fn table_and_bytecode(name: &str, src: &str) -> (RouterConfiguration, RouterConfiguration) {
    // pin both backends explicitly so an ambient FTR_BACKEND cannot skew
    // the comparison
    let table = configure(name, src).unwrap().with_backend(Backend::Table).unwrap();
    let bytecode = configure(name, src).unwrap().with_backend(Backend::Bytecode).unwrap();
    assert!(bytecode.bytecode.is_some(), "{name}: bytecode must be lowered once per config");
    (table, bytecode)
}

/// One E15 campaign cell, traced; returns the final stats and the trace
/// digest.
fn campaign_run(
    mesh: &Mesh2D,
    algo: &dyn RoutingAlgorithm,
    faults: usize,
    seed: u64,
) -> (SimStats, (u64, u64)) {
    let sink = Arc::new(DigestSink::default());
    let plan = FaultPlan::random_transient_links(mesh, faults, 100..450, 120, seed);
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .fault_plan(plan)
        .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 })
        .trace(sink.clone())
        .build(algo)
        .expect("valid config");
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, LOAD, MSG_LEN, seed ^ 0x5ca1e);
    for _ in 0..WARM_CYCLES {
        for (s, d, l) in tf.tick(mesh, net.faults()) {
            let _ = net.send(s, d, l);
        }
        net.step();
    }
    net.drain(60_000);
    (net.stats, sink.digest())
}

#[test]
fn bytecode_nafta_is_bit_identical_on_the_campaign_matrix() {
    let mesh = Mesh2D::new(SIDE, SIDE);
    let (table_cfg, byte_cfg) = table_and_bytecode("nafta", ftr_algos::rules_src::NAFTA);
    for (faults, seed) in [(0usize, 1u64), (6, 7919), (10, 15838)] {
        let t_algo = RuleRouter::new(table_cfg.clone(), mesh.clone(), 1);
        let b_algo = RuleRouter::new(byte_cfg.clone(), mesh.clone(), 1);
        let (t_stats, t_trace) = campaign_run(&mesh, &t_algo, faults, seed);
        let (b_stats, b_trace) = campaign_run(&mesh, &b_algo, faults, seed);
        assert!(t_stats.injected_msgs > 0, "campaign must inject traffic");
        assert_eq!(
            t_stats, b_stats,
            "faults={faults} seed={seed}: bytecode campaign stats diverged"
        );
        assert!(t_trace.1 > 0, "campaign must emit trace events");
        assert_eq!(t_trace, b_trace, "faults={faults} seed={seed}: bytecode trace stream diverged");
    }
}

#[test]
fn bytecode_composes_with_the_optimizer_and_step_weights() {
    // three arms on one campaign cell: plain table, optimized table with
    // StepWeights, optimized *bytecode* with the same StepWeights — the
    // modeled decision_steps must survive both rewritings at once
    let mesh = Mesh2D::new(SIDE, SIDE);
    let baseline = configure("nafta", ftr_algos::rules_src::NAFTA)
        .unwrap()
        .with_backend(Backend::Table)
        .unwrap();
    let oopts = opt::OptOptions { topo: TopoFacts::mesh(SIDE, SIDE), ..opt::OptOptions::default() };
    let optimized = opt::optimize_rulebase("nafta", &baseline.compiled.prog, &oopts).unwrap();
    let opt_table = RouterConfiguration::from_compiled("nafta", optimized.compiled.clone())
        .unwrap()
        .with_step_weights(optimized.step_weights.clone())
        .with_backend(Backend::Table)
        .unwrap();
    let opt_byte = RouterConfiguration::from_compiled("nafta", optimized.compiled)
        .unwrap()
        .with_step_weights(optimized.step_weights)
        .with_backend(Backend::Bytecode)
        .unwrap();

    let (faults, seed) = (6usize, 7919u64);
    let (a, ta) = campaign_run(&mesh, &RuleRouter::new(baseline, mesh.clone(), 1), faults, seed);
    let (b, tb) = campaign_run(&mesh, &RuleRouter::new(opt_table, mesh.clone(), 1), faults, seed);
    let (c, tc) = campaign_run(&mesh, &RuleRouter::new(opt_byte, mesh.clone(), 1), faults, seed);
    assert_eq!(a, b, "optimized table diverged from baseline");
    assert_eq!(a, c, "optimized bytecode diverged from baseline");
    assert_eq!(ta, tb, "optimized table trace diverged");
    assert_eq!(ta, tc, "optimized bytecode trace diverged");
}

#[test]
fn bytecode_matches_table_across_the_mesh_algo_suite() {
    // pre-drawn injection schedule replayed against both backends; the
    // suite includes the naive-adaptive negative exemplar, whose
    // (deterministic) pathologies must also reproduce bit-identically
    const CYCLES: u64 = 300;
    let mesh = Mesh2D::new(4, 4);
    let faults = ftr_topo::FaultSet::new();
    for (name, src) in [
        ("xy", ftr_algos::rules_src::XY),
        ("west_first", ftr_algos::rules_src::WEST_FIRST),
        ("nafta", ftr_algos::rules_src::NAFTA),
        ("naive_adaptive", ftr_algos::rules_src::NAIVE_ADAPTIVE),
    ] {
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 8, 0xa160 ^ name.len() as u64);
        let sched: Vec<Vec<_>> = (0..CYCLES).map(|_| tf.tick(&mesh, &faults)).collect();
        let (table_cfg, byte_cfg) = table_and_bytecode(name, src);
        let run = |cfg: RouterConfiguration| {
            let algo = RuleRouter::new(cfg, mesh.clone(), 1);
            let sink = Arc::new(DigestSink::default());
            let mut net = Network::builder(Arc::new(mesh.clone()))
                .trace(sink.clone())
                .build(&algo)
                .expect("valid config");
            net.set_measuring(true);
            for cycle in &sched {
                for &(s, d, l) in cycle {
                    let _ = net.send(s, d, l);
                }
                net.step();
            }
            let _ = net.drain(30_000);
            (net.stats, sink.digest())
        };
        let t = run(table_cfg);
        let b = run(byte_cfg);
        assert!(t.0.injected_msgs > 0, "{name}: schedule must inject traffic");
        assert_eq!(t, b, "{name}: bytecode run diverged from table");
    }
}

#[test]
fn bytecode_matches_table_on_route_c_hypercube() {
    let dim = 4u32;
    let cube = Hypercube::new(dim);
    let src = ftr_algos::rules_src::route_c_source(dim);
    let (table_cfg, byte_cfg) = table_and_bytecode("route_c", &src);
    let run = |cfg: RouterConfiguration| {
        let algo = CubeRuleRouter::new(cfg, cube.clone());
        let sink = Arc::new(DigestSink::default());
        let mut net = Network::builder(Arc::new(cube.clone()))
            .trace(sink.clone())
            .build(&algo)
            .expect("valid config");
        net.inject_node_fault(NodeId(5));
        net.settle_control(10_000).expect("control settles");
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, 9);
        for _ in 0..400 {
            for (s, d, l) in tf.tick(&cube, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(50_000), "cube campaign drains");
        (net.stats, sink.digest())
    };
    let t = run(table_cfg);
    let b = run(byte_cfg);
    assert!(t.0.delivered_msgs > 0, "cube campaign delivers");
    assert_eq!(t, b, "route_c: bytecode run diverged from table");
}

#[test]
fn ftr_backend_env_var_selects_the_backend_at_configuration_time() {
    let mut env = ftr_sim::envlock::EnvGuard::new();
    env.set("FTR_BACKEND", "bytecode");
    let cfg = configure("xy", ftr_algos::rules_src::XY).unwrap();
    assert_eq!(cfg.backend, Backend::Bytecode);
    assert!(cfg.bytecode.is_some(), "selector must lower the program");
    env.set("FTR_BACKEND", "table");
    let cfg = configure("xy", ftr_algos::rules_src::XY).unwrap();
    assert_eq!(cfg.backend, Backend::Table);
    assert!(cfg.bytecode.is_none());
    env.set("FTR_BACKEND", "quantum");
    let cfg = configure("xy", ftr_algos::rules_src::XY).unwrap();
    assert_eq!(cfg.backend, Backend::Table, "unknown values fall back to the table");
    env.remove("FTR_BACKEND");
    let cfg = configure("xy", ftr_algos::rules_src::XY).unwrap();
    assert_eq!(cfg.backend, Backend::Table, "unset defaults to the table");
}
