//! # ftr-bench — benchmark harness
//!
//! Regenerates every table and quantitative claim of the paper's
//! evaluation. Each experiment is a binary under `src/bin/` (see
//! `DESIGN.md` §3 for the experiment index); Criterion micro-benchmarks
//! live under `benches/`.
//!
//! Shared helpers for the binaries live here.

use ftr_obs::TraceSink;
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Network, Pattern, SimConfig, TrafficSource};
use ftr_topo::Topology;
use std::sync::Arc;

pub mod fleetjob;
pub mod harness;
pub mod regress;
pub mod results;

/// One point of a latency/throughput curve.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Offered load (flits/node/cycle).
    pub offered: f64,
    /// Mean measured latency (cycles).
    pub latency: f64,
    /// Accepted throughput (flits/node/cycle).
    pub throughput: f64,
    /// Delivered / terminated ratio.
    pub delivery_ratio: f64,
    /// True if the deadlock watchdog fired.
    pub deadlock: bool,
}

/// Runs one open-loop measurement: warmup, measured window, drain.
#[allow(clippy::too_many_arguments)] // an experiment config, spelled out
pub fn measure_load<T: Topology + Clone + 'static>(
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &ftr_topo::FaultSet,
    pattern: Pattern,
    offered: f64,
    msg_len: u32,
    warmup: u64,
    window: u64,
    seed: u64,
    cfg: SimConfig,
) -> LoadPoint {
    let mut b = Network::builder(Arc::new(topo.clone())).config(cfg);
    // with FTR_TRACE_DIR set every measured run leaves a JSONL capture
    // behind, replayable through `ftr-trace`
    let trace = results::trace_sink(&format!("sweep_{}_l{offered:.3}_s{seed}", algo.name()));
    if let Some(sink) = &trace {
        b = b.trace(sink.clone());
    }
    let mut net = b.build(algo).expect("valid config");
    net.apply_fault_set(faults);
    net.settle_control(1_000_000).expect("control settles");
    let mut tf = TrafficSource::new(pattern, offered, msg_len, seed);

    for _ in 0..warmup {
        for (s, d, l) in tf.tick(topo, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
    }
    net.set_measuring(true);
    net.add_measured_cycles(window);
    for _ in 0..window {
        if net.stats.deadlock {
            break;
        }
        for (s, d, l) in tf.tick(topo, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
    }
    net.set_measuring(false);
    net.drain(20 * window);
    if let Some(sink) = &trace {
        sink.flush();
        assert_eq!(sink.write_errors(), 0, "trace capture lost events");
    }

    LoadPoint {
        offered,
        latency: net.stats.latency.mean(),
        throughput: net.stats.throughput(),
        delivery_ratio: net.stats.delivery_ratio(),
        deadlock: net.stats.deadlock,
    }
}

/// Formats a table of load points as aligned text.
pub fn format_curve(name: &str, points: &[LoadPoint]) -> String {
    let mut s = format!("# {name}\n# offered  latency  throughput  delivered  deadlock\n");
    for p in points {
        s.push_str(&format!(
            "{:8.3} {:8.1} {:11.4} {:10.3} {:>9}\n",
            p.offered,
            p.latency,
            p.throughput,
            p.delivery_ratio,
            if p.deadlock { "DEADLOCK" } else { "-" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_algos::XyRouting;
    use ftr_topo::{FaultSet, Mesh2D};

    #[test]
    fn measure_load_produces_sane_point() {
        let mesh = Mesh2D::new(4, 4);
        let algo = XyRouting::new(mesh.clone());
        let p = measure_load(
            &mesh,
            &algo,
            &FaultSet::new(),
            Pattern::Uniform,
            0.1,
            4,
            200,
            400,
            1,
            SimConfig::default(),
        );
        assert!(p.latency > 5.0 && p.latency < 100.0, "{p:?}");
        assert!(p.throughput > 0.05 && p.throughput <= 0.2, "{p:?}");
        assert!((p.delivery_ratio - 1.0).abs() < 1e-9);
        assert!(!p.deadlock);
    }

    #[test]
    fn format_curve_layout() {
        let pts = vec![LoadPoint {
            offered: 0.1,
            latency: 12.5,
            throughput: 0.099,
            delivery_ratio: 1.0,
            deadlock: false,
        }];
        let s = format_curve("test", &pts);
        assert!(s.contains("# test"));
        assert!(s.contains("0.100"));
    }
}
