//! Shared harness for the bench binaries.
//!
//! Every `crates/bench/src/bin/*.rs` used to open with the same dozen
//! lines: hand-rolled `std::env::args` parsing, an ad-hoc `--smoke`
//! check, an `available_parallelism` lookup and a `write_json` +
//! `"wrote …"` tail. This module owns those pieces once, so an
//! E-experiment definition stays a one-screen description of *what* is
//! measured: parse [`Args`], size the run with [`Args::smoke`] /
//! [`threads`], offer load with [`drive`], and finish with [`export`].

use ftr_sim::{SimEngine, TrafficSource};
use std::path::PathBuf;
use std::str::FromStr;

/// Parsed command line: the `--smoke` flag plus typed positional
/// arguments, in the order they appeared.
pub struct Args {
    smoke: bool,
    positional: Vec<String>,
}

impl Args {
    /// Parses the process arguments. `--smoke` may appear anywhere;
    /// everything else is positional.
    pub fn parse() -> Self {
        let mut smoke = false;
        let mut positional = Vec::new();
        for a in std::env::args().skip(1) {
            if a == "--smoke" {
                smoke = true;
            } else {
                positional.push(a);
            }
        }
        Args { smoke, positional }
    }

    /// True when `--smoke` was passed: CI-sized runs.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// The `idx`-th positional argument parsed as `T`, or `default` when
    /// absent. A present-but-malformed argument aborts with a message
    /// naming the argument instead of silently running the default
    /// configuration (`what` names the parameter in that message).
    pub fn pos<T: FromStr>(&self, idx: usize, what: &str, default: T) -> T {
        match self.positional.get(idx) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| panic!("argument {} ({what}): cannot parse {raw:?}", idx + 1)),
        }
    }
}

/// Worker parallelism for sweeps and the sharded engine: the
/// `FTR_THREADS` override when set, else the machine's logical CPU
/// count (see [`ftr_sim::worker_count`]).
pub fn threads() -> usize {
    ftr_sim::worker_count()
}

/// Offers load for `cycles` cycles: ticks `tf` against the engine's own
/// topology and fault view, injects every generated message, and steps.
///
/// Rejected sends are dropped, not fatal: sources race scripted faults,
/// and an injection the network refuses is simply load not offered (the
/// engine counts it in `rejected_sends`). Drivers that need a drain run
/// it themselves — budgets differ per experiment.
pub fn drive(net: &mut dyn SimEngine, tf: &mut TrafficSource, cycles: u64) {
    for _ in 0..cycles {
        for (src, dst, len) in tf.tick(net.topo(), net.faults()) {
            let _ = net.send(src, dst, len);
        }
        net.step();
    }
}

/// Validates and writes `payload` to `<results-dir>/<name>.json` (see
/// [`crate::results::write_json`]) and prints the canonical
/// `wrote <path>` line every bin used to hand-format.
pub fn export(name: &str, payload: &str) -> PathBuf {
    let path = crate::results::write_json(name, payload).expect("write results");
    println!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_algos::XyRouting;
    use ftr_sim::{Network, Pattern};
    use ftr_topo::Mesh2D;
    use std::sync::Arc;

    #[test]
    fn pos_defaults_and_parses() {
        let args = Args { smoke: true, positional: vec!["42".into(), "0.25".into()] };
        assert!(args.smoke());
        assert_eq!(args.pos::<u64>(0, "seed", 7), 42);
        assert_eq!(args.pos::<f64>(1, "load", 0.1), 0.25);
        assert_eq!(args.pos::<usize>(2, "missing", 9), 9);
    }

    #[test]
    #[should_panic(expected = "argument 1 (seed)")]
    fn pos_rejects_malformed() {
        let args = Args { smoke: false, positional: vec!["not-a-number".into()] };
        args.pos::<u64>(0, "seed", 7);
    }

    #[test]
    fn drive_offers_load_through_the_engine_facade() {
        let mesh = Mesh2D::new(4, 4);
        let mut net = Network::builder(Arc::new(mesh.clone()))
            .build(&XyRouting::new(mesh))
            .expect("valid config");
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.3, 4, 5);
        drive(&mut net, &mut tf, 200);
        assert!(net.drain(10_000));
        assert!(net.stats.injected_msgs > 0, "traffic flowed");
        assert!(net.stats.accounting_balanced());
    }
}
