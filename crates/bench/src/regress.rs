//! Statistical regression detection over committed benchmark baselines.
//!
//! CI used to gate performance with per-experiment python one-liners:
//! load `ci_results/BENCH_*.json`, compare one headline number against
//! the committed `results/` baseline, assert. Four copies of that
//! pattern drifted independently and none of them knew anything about
//! noise. This module centralises the gate:
//!
//! - **Robust summaries.** A metric may be a scalar or an array of
//!   per-rep samples; either way it is reduced with estimators that a
//!   single outlier cannot drag: the [`median`], the [`mad`] (median
//!   absolute deviation) as the noise scale, and min-of-k for
//!   lower-is-better timing metrics (the classic estimator for "the
//!   machine's best case is the honest number").
//! - **Noise bands, not point gates.** A banded metric regresses only
//!   when the fresh estimate falls outside
//!   `baseline ± (rel_tol · baseline + 3 · MAD)` on the losing side —
//!   a deviation a rounding wobble cannot trip, but a real 2x loss
//!   always does.
//! - **Invariants.** Boolean claims (bit-identity, accounting held,
//!   structural shape) are checked on *both* files, exactly — there is
//!   no noise band on correctness.
//!
//! The [`gates`] table declares one [`Gate`] per `BENCH_*.json`
//! artifact; the `regress` binary walks it and exits non-zero on any
//! deviation, which is the entire CI perf gate.

use ftr_obs::json::Value;

/// Robust summary of a sample set.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// The median (even `n`: mean of the middle pair).
    pub median: f64,
    /// Median absolute deviation from the median — a robust noise
    /// scale (0 for a single sample).
    pub mad: f64,
    /// Smallest sample (min-of-k).
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Median of `xs` (not required sorted). `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 { v[mid] } else { (v[mid - 1] + v[mid]) / 2.0 })
}

/// Median absolute deviation of `xs` from its median.
pub fn mad(xs: &[f64]) -> Option<f64> {
    let m = median(xs)?;
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Summarizes a sample set; `None` when empty.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    let med = median(xs)?;
    Some(Summary {
        n: xs.len(),
        median: med,
        mad: mad(xs).unwrap_or(0.0),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    })
}

/// Which direction is good for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Better {
    /// Bigger is better (speedups, ratios, throughput).
    Higher,
    /// Smaller is better (latencies, ns/op) — estimated min-of-k.
    Lower,
}

/// One gated metric inside a benchmark artifact.
pub struct MetricSpec {
    /// Dotted path into the JSON document (`micro.speedup`). The value
    /// may be a number or an array of per-rep numbers.
    pub path: &'static str,
    /// Good direction; also selects the estimator (median for
    /// [`Better::Higher`], min-of-k for [`Better::Lower`]).
    pub better: Better,
    /// Absolute bar on the *fresh* estimate: a minimum for
    /// [`Better::Higher`], a maximum for [`Better::Lower`]. Applied
    /// regardless of the baseline.
    pub bar: Option<f64>,
    /// Relative noise band vs the *baseline* estimate; the band is
    /// additionally widened by 3 baseline MADs.
    pub rel_tol: Option<f64>,
}

/// One benchmark artifact and everything gated on it.
pub struct Gate {
    /// Artifact stem: `BENCH_step` → `<dir>/BENCH_step.json`.
    pub file: &'static str,
    /// Experiment tag the artifact must carry.
    pub experiment: &'static str,
    /// Exact (noise-free) checks, run on baseline and fresh alike.
    pub invariants: fn(&Value, &mut Vec<String>),
    /// Noise-banded numeric checks.
    pub metrics: &'static [MetricSpec],
}

/// Extracts the sample set at dotted `path`: a number becomes a
/// singleton, an array of numbers becomes the per-rep samples.
pub fn extract(v: &Value, path: &str) -> Result<Vec<f64>, String> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg).ok_or_else(|| format!("missing field `{path}`"))?;
    }
    if let Some(x) = cur.as_f64() {
        return Ok(vec![x]);
    }
    if let Some(arr) = cur.as_arr() {
        let xs: Vec<f64> = arr.iter().filter_map(|x| x.as_f64()).collect();
        if xs.len() == arr.len() && !xs.is_empty() {
            return Ok(xs);
        }
    }
    Err(format!("field `{path}` is not a number or a non-empty numeric array"))
}

/// The gated estimate for a metric: median when higher is better,
/// min-of-k when lower is better.
pub fn estimate(spec: &MetricSpec, s: &Summary) -> f64 {
    match spec.better {
        Better::Higher => s.median,
        Better::Lower => s.min,
    }
}

/// Checks one metric of one artifact; pushes human-readable deviations.
pub fn check_metric(
    gate: &Gate,
    spec: &MetricSpec,
    fresh: &Value,
    base: &Value,
    out: &mut Vec<String>,
) {
    let tag = |which: &str, e: &str| format!("{} ({which}): {e}", gate.file);
    let f_sum = match extract(fresh, spec.path)
        .and_then(|xs| summarize(&xs).ok_or_else(|| format!("`{}` has no samples", spec.path)))
    {
        Ok(s) => s,
        Err(e) => {
            out.push(tag("fresh", &e));
            return;
        }
    };
    let b_sum = match extract(base, spec.path)
        .and_then(|xs| summarize(&xs).ok_or_else(|| format!("`{}` has no samples", spec.path)))
    {
        Ok(s) => s,
        Err(e) => {
            out.push(tag("baseline", &e));
            return;
        }
    };
    let f_est = estimate(spec, &f_sum);
    let b_est = estimate(spec, &b_sum);

    if let Some(bar) = spec.bar {
        let ok = match spec.better {
            Better::Higher => f_est >= bar,
            Better::Lower => f_est <= bar,
        };
        if !ok {
            out.push(format!(
                "{}: `{}` = {f_est:.4} misses the absolute bar {bar} \
                 ({} of {} samples)",
                gate.file,
                spec.path,
                if spec.better == Better::Higher { "median" } else { "min" },
                f_sum.n,
            ));
        }
    }
    if let Some(tol) = spec.rel_tol {
        let slack = tol * b_est.abs() + 3.0 * b_sum.mad;
        let ok = match spec.better {
            Better::Higher => f_est >= b_est - slack,
            Better::Lower => f_est <= b_est + slack,
        };
        if !ok {
            out.push(format!(
                "{}: `{}` regressed: fresh {f_est:.4} vs baseline {b_est:.4} \
                 (band ±{slack:.4} = {tol}·baseline + 3·MAD {:.4})",
                gate.file, spec.path, b_sum.mad,
            ));
        }
    }
}

/// Runs a gate's invariants against one document, prefixing deviations
/// with the artifact and side they came from.
pub fn check_invariants(gate: &Gate, which: &str, v: &Value, out: &mut Vec<String>) {
    let mut local = Vec::new();
    // long-form tags ("E21 resumable …") match on the leading token
    match v.get("experiment").and_then(|x| x.as_str()) {
        Some(tag) if tag.split_whitespace().next() == Some(gate.experiment) => {}
        other => local.push(format!("experiment tag {other:?} is not {}", gate.experiment)),
    }
    (gate.invariants)(v, &mut local);
    out.extend(local.into_iter().map(|e| format!("{} ({which}): {e}", gate.file)));
}

fn num(v: &Value, path: &str) -> Option<f64> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    cur.as_f64()
}

fn require_positive(v: &Value, path: &str, out: &mut Vec<String>) {
    if num(v, path).is_none_or(|x| x <= 0.0) {
        out.push(format!("`{path}` must be positive"));
    }
}

fn require_true(v: &Value, path: &str, out: &mut Vec<String>) {
    let mut cur = v;
    for seg in path.split('.') {
        match cur.get(seg) {
            Some(x) => cur = x,
            None => {
                out.push(format!("`{path}` is missing"));
                return;
            }
        }
    }
    if cur.as_bool() != Some(true) {
        out.push(format!("`{path}` must be true"));
    }
}

fn inv_step(v: &Value, out: &mut Vec<String>) {
    for fabric in ["mesh6x6_nafta", "hypercube4_route_c"] {
        match v.get(fabric).and_then(|a| a.as_arr()) {
            Some(pts) if pts.len() == 3 => {
                for (i, p) in pts.iter().enumerate() {
                    for k in ["dense_cycles_per_sec", "active_cycles_per_sec"] {
                        if p.get(k).and_then(|x| x.as_f64()).is_none_or(|x| x <= 0.0) {
                            out.push(format!("`{fabric}[{i}].{k}` must be positive"));
                        }
                    }
                }
            }
            _ => out.push(format!("`{fabric}` must be an array of 3 points")),
        }
    }
}

fn inv_opt(v: &Value, out: &mut Vec<String>) {
    match v.get("programs").and_then(|a| a.as_arr()) {
        Some(progs) if !progs.is_empty() => {
            let mut saw_nafta = false;
            for p in progs {
                let name = p.get("program").and_then(|x| x.as_str()).unwrap_or("?");
                if p.get("bit_identical").and_then(|x| x.as_bool()) != Some(true) {
                    out.push(format!("program `{name}` is not bit-identical"));
                }
                if name == "nafta" {
                    saw_nafta = true;
                    if p.get("rewrites").and_then(|x| x.as_u64()).is_none_or(|r| r == 0) {
                        out.push("nafta must have rewrites > 0".to_string());
                    }
                }
            }
            if !saw_nafta {
                out.push("`programs` lacks the nafta entry".to_string());
            }
        }
        _ => out.push("`programs` must be a non-empty array".to_string()),
    }
}

fn inv_par(v: &Value, out: &mut Vec<String>) {
    require_true(v, "bit_identical", out);
    require_positive(v, "host_parallelism", out);
    match v.get("points").and_then(|a| a.as_arr()) {
        Some(pts) if pts.len() >= 3 => {
            if pts[0].get("threads").and_then(|x| x.as_u64()) != Some(1) {
                out.push("`points[0].threads` must be 1".to_string());
            }
            for (i, p) in pts.iter().enumerate() {
                if p.get("cycles_per_sec").and_then(|x| x.as_f64()).is_none_or(|x| x <= 0.0) {
                    out.push(format!("`points[{i}].cycles_per_sec` must be positive"));
                }
            }
        }
        _ => out.push("`points` must be an array of >= 3 thread counts".to_string()),
    }
    // the parallel speedup bar only applies where the binary itself
    // asserted it (real cores were available) — see E19's notes
    if v.get("speedup_asserted").and_then(|x| x.as_bool()) == Some(true)
        && num(v, "best_speedup").is_none_or(|s| s < 2.0)
    {
        out.push("`best_speedup` below 2.0 despite speedup_asserted".to_string());
    }
}

fn inv_vm(v: &Value, out: &mut Vec<String>) {
    require_positive(v, "micro.fires", out);
    require_positive(v, "micro.table_ns_per_fire", out);
    require_positive(v, "micro.bytecode_ns_per_fire", out);
    if num(v, "micro.speedup").is_none_or(|s| s < 1.0) {
        out.push("`micro.speedup` must be >= 1.0".to_string());
    }
    match v.get("campaigns").and_then(|a| a.as_arr()) {
        Some(camps) => {
            let names: Vec<&str> =
                camps.iter().filter_map(|c| c.get("program").and_then(|x| x.as_str())).collect();
            for want in ["nafta", "route_c"] {
                if !names.contains(&want) {
                    out.push(format!("`campaigns` lacks the {want} entry"));
                }
            }
            for c in camps {
                let name = c.get("program").and_then(|x| x.as_str()).unwrap_or("?");
                if c.get("bit_identical").and_then(|x| x.as_bool()) != Some(true) {
                    out.push(format!("campaign `{name}` is not bit-identical"));
                }
                if c.get("delivered_msgs").and_then(|x| x.as_u64()).is_none_or(|d| d == 0) {
                    out.push(format!("campaign `{name}` delivered nothing"));
                }
                for arm in ["table", "bytecode", "table_opt", "bytecode_opt"] {
                    let k = format!("wall_ms_{arm}");
                    if c.get(&k).and_then(|x| x.as_f64()).is_none_or(|x| x <= 0.0) {
                        out.push(format!("campaign `{name}` `{k}` must be positive"));
                    }
                }
            }
        }
        None => out.push("`campaigns` must be an array".to_string()),
    }
}

fn inv_trace(v: &Value, out: &mut Vec<String>) {
    require_positive(v, "events", out);
    require_positive(v, "jsonl_bytes", out);
    require_positive(v, "ftb_bytes", out);
    require_positive(v, "host_parallelism", out);
    require_positive(v, "decode_events_per_sec", out);
}

fn inv_detect(v: &Value, out: &mut Vec<String>) {
    // correctness half of E22: zero false positives on fault-free runs
    // and a live recovery story in every campaign arm — exact claims,
    // no noise band
    require_true(v, "false_positive_free", out);
    require_positive(v, "detection_latency_cycles", out);
    match v.get("grid").and_then(|g| g.as_arr()) {
        Some(pts) if !pts.is_empty() => {
            for (i, p) in pts.iter().enumerate() {
                if p.get("fault_free_alarms").and_then(|x| x.as_f64()) != Some(0.0) {
                    out.push(format!("`grid[{i}].fault_free_alarms` must be 0"));
                }
            }
        }
        _ => out.push("`grid` must be a non-empty array".into()),
    }
    match v.get("campaign").and_then(|c| c.get("arms")).and_then(|a| a.as_arr()) {
        Some(arms) if !arms.is_empty() => {
            for (i, a) in arms.iter().enumerate() {
                let flag =
                    |k: &str| a.get(k).and_then(|x| x.get("deadlock")).and_then(Value::as_bool);
                if flag("silent_nodetect") != Some(true) {
                    out.push(format!("`campaign.arms[{i}].silent_nodetect.deadlock` must be true"));
                }
                if flag("silent_detect") != Some(false) {
                    out.push(format!("`campaign.arms[{i}].silent_detect.deadlock` must be false"));
                }
            }
        }
        _ => out.push("`campaign.arms` must be a non-empty array".into()),
    }
}

/// Every gated benchmark artifact. The `regress` binary walks this
/// table; adding a benchmark to CI means adding a row here.
pub fn gates() -> &'static [Gate] {
    const STEP_METRICS: &[MetricSpec] = &[
        MetricSpec {
            path: "low_load_speedup",
            better: Better::Higher,
            bar: None,
            rel_tol: Some(0.20),
        },
        MetricSpec {
            path: "saturation_ratio",
            better: Better::Higher,
            bar: Some(0.85),
            rel_tol: None,
        },
    ];
    const OPT_METRICS: &[MetricSpec] = &[MetricSpec {
        path: "nafta_reduction_pct",
        better: Better::Higher,
        bar: Some(10.0),
        rel_tol: None,
    }];
    // E19/E20 wall-clock numbers are machine-bound and noisy on shared
    // runners; their gates are invariant-only (bit-identity and shape)
    const TRACE_METRICS: &[MetricSpec] = &[
        MetricSpec { path: "size_ratio", better: Better::Higher, bar: Some(4.0), rel_tol: None },
        MetricSpec {
            path: "encode_speedup",
            better: Better::Higher,
            bar: Some(2.0),
            rel_tol: Some(0.5),
        },
    ];
    // E22 is cycle-deterministic (no wall clock in any gated number), so
    // the bars are tight: detection must beat the no-detection arm by a
    // wide margin, stay near the oracle, and alarm within the suspicion
    // window regardless of runner speed
    const DETECT_METRICS: &[MetricSpec] = &[
        MetricSpec {
            path: "campaign.worst_recovery_margin",
            better: Better::Higher,
            bar: Some(0.2),
            rel_tol: None,
        },
        MetricSpec {
            path: "campaign.worst_detect_delivery_ratio",
            better: Better::Higher,
            bar: Some(0.9),
            rel_tol: None,
        },
        MetricSpec {
            path: "detection_latency_cycles",
            better: Better::Lower,
            bar: Some(40.0),
            rel_tol: None,
        },
    ];
    &[
        Gate { file: "BENCH_step", experiment: "E17", invariants: inv_step, metrics: STEP_METRICS },
        Gate { file: "BENCH_opt", experiment: "E18", invariants: inv_opt, metrics: OPT_METRICS },
        Gate { file: "BENCH_par", experiment: "E19", invariants: inv_par, metrics: &[] },
        Gate { file: "BENCH_vm", experiment: "E20", invariants: inv_vm, metrics: &[] },
        Gate {
            file: "BENCH_trace",
            experiment: "E21",
            invariants: inv_trace,
            metrics: TRACE_METRICS,
        },
        Gate {
            file: "BENCH_detect",
            experiment: "E22",
            invariants: inv_detect,
            metrics: DETECT_METRICS,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_obs::json;

    #[test]
    fn median_and_mad_are_robust_to_one_outlier() {
        let xs = [10.0, 11.0, 9.0, 10.5, 1000.0];
        assert_eq!(median(&xs), Some(10.5));
        let m = mad(&xs).unwrap();
        assert!(m <= 1.0, "MAD {m} must ignore the outlier");
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5), "even n averages the middle pair");
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn summarize_tracks_min_and_max() {
        let s = summarize(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!((s.n, s.min, s.max, s.median), (3, 1.0, 3.0, 2.0));
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn extract_handles_scalars_paths_and_rep_arrays() {
        let v = json::parse(r#"{"a":{"b":2.5},"reps":[1,2,3],"s":"x","mixed":[1,"y"]}"#).unwrap();
        assert_eq!(extract(&v, "a.b").unwrap(), vec![2.5]);
        assert_eq!(extract(&v, "reps").unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(extract(&v, "missing").is_err());
        assert!(extract(&v, "s").is_err());
        assert!(extract(&v, "mixed").is_err(), "non-numeric arrays are rejected");
    }

    fn gate_for(file: &str) -> &'static Gate {
        gates().iter().find(|g| g.file == file).unwrap()
    }

    #[test]
    fn noise_band_passes_wobble_and_fails_collapse() {
        let gate = gate_for("BENCH_step");
        let spec = &gate.metrics[0]; // low_load_speedup, rel_tol 0.20
        let base = json::parse(r#"{"low_load_speedup":5.0}"#).unwrap();
        let wobble = json::parse(r#"{"low_load_speedup":4.2}"#).unwrap();
        let collapse = json::parse(r#"{"low_load_speedup":2.0}"#).unwrap();
        let mut out = Vec::new();
        check_metric(gate, spec, &wobble, &base, &mut out);
        assert!(out.is_empty(), "a 16% dip is inside the band: {out:?}");
        check_metric(gate, spec, &collapse, &base, &mut out);
        assert_eq!(out.len(), 1, "a 2.5x collapse must trip: {out:?}");
        assert!(out[0].contains("low_load_speedup"), "{out:?}");
    }

    #[test]
    fn rep_arrays_widen_the_band_by_mad() {
        let gate = gate_for("BENCH_trace");
        let spec = &gate.metrics[1]; // encode_speedup, bar 2.0, rel_tol 0.5
                                     // noisy baseline reps: median 6, MAD 1 → band 0.5·6 + 3·1 = 6
        let base = json::parse(r#"{"encode_speedup":[5.0,6.0,7.0]}"#).unwrap();
        let fresh_ok = json::parse(r#"{"encode_speedup":[2.5,3.0,2.8]}"#).unwrap();
        let mut out = Vec::new();
        check_metric(gate, spec, &fresh_ok, &base, &mut out);
        assert!(out.is_empty(), "inside the MAD-widened band: {out:?}");
        // below the absolute bar regardless of the band
        let fresh_bad = json::parse(r#"{"encode_speedup":[1.2,1.1,1.3]}"#).unwrap();
        check_metric(gate, spec, &fresh_bad, &base, &mut out);
        assert!(out.iter().any(|e| e.contains("absolute bar")), "{out:?}");
    }

    #[test]
    fn lower_is_better_uses_min_of_k() {
        let spec =
            MetricSpec { path: "ns", better: Better::Lower, bar: Some(100.0), rel_tol: None };
        let gate = gate_for("BENCH_vm"); // any gate works; only file name is used
        let fresh = json::parse(r#"{"ns":[250.0,90.0,300.0]}"#).unwrap();
        let base = json::parse(r#"{"ns":[95.0]}"#).unwrap();
        let mut out = Vec::new();
        check_metric(gate, &spec, &fresh, &base, &mut out);
        assert!(out.is_empty(), "min-of-k 90 meets the 100 ceiling: {out:?}");
    }

    #[test]
    fn invariants_catch_experiment_and_bit_identity() {
        let gate = gate_for("BENCH_opt");
        let good = json::parse(
            r#"{"experiment":"E18","programs":[
                {"program":"nafta","rewrites":3,"bit_identical":true}]}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        check_invariants(gate, "baseline", &good, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let bad = json::parse(
            r#"{"experiment":"E18","programs":[
                {"program":"nafta","rewrites":0,"bit_identical":false}]}"#,
        )
        .unwrap();
        check_invariants(gate, "fresh", &bad, &mut out);
        assert!(out.iter().any(|e| e.contains("bit-identical")), "{out:?}");
        assert!(out.iter().any(|e| e.contains("rewrites")), "{out:?}");

        let wrong = json::parse(r#"{"experiment":"E99"}"#).unwrap();
        out.clear();
        check_invariants(gate, "fresh", &wrong, &mut out);
        assert!(out.iter().any(|e| e.contains("E18")), "{out:?}");
    }

    #[test]
    fn committed_baselines_satisfy_their_own_invariants() {
        // the real results/ tree must stay green under the gate table
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for gate in gates() {
            let path = root.join("results").join(format!("{}.json", gate.file));
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue; // baseline not generated yet (fresh checkout stages)
            };
            let v = ftr_obs::json::parse(&text).unwrap();
            let mut out = Vec::new();
            check_invariants(gate, "baseline", &v, &mut out);
            assert!(out.is_empty(), "{}: {out:?}", path.display());
        }
    }
}
