//! Experiment E7 — network latency vs offered load as routing-decision
//! time and fault tolerance vary.
//!
//! Reproduces the effect the paper builds on (\[DLO97\]: "The Impact of
//! Routing Decision Time on Network Latency") and the FT overhead in time:
//! NAFTA pays for fault tolerance with up to three interpretation steps,
//! the stripped variants decide in one.
//!
//! Series produced:
//!   1. NARA vs NAFTA on an 8x8 mesh, fault-free (overhead ≈ 0 at equal
//!      decision time — NAFTA decides in 1 step when no fault interferes);
//!   2. decision time 1 vs 3 cycles/step for NARA (latency shift);
//!   3. NAFTA with 0 / 4 / 8 link faults (graceful degradation);
//!   4. ROUTE_C vs stripped ROUTE_C on a 5-cube (the always-2-steps cost).
//!
//! Tables print to stdout; the same curves land in
//! `results/latency_sweep.json`.

use ftr_algos::{Nafta, Nara, RouteC};
use ftr_bench::{format_curve, harness, measure_load, results, LoadPoint};
use ftr_obs::json;
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Pattern, SimConfig};
use ftr_topo::{FaultSet, Hypercube, Mesh2D, Topology};

const LOADS: &[f64] = &[0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35];
const WARMUP: u64 = 1_000;
const WINDOW: u64 = 3_000;

fn curve<T: Topology + Clone + Sync + 'static>(
    topo: &T,
    algo: &(dyn RoutingAlgorithm + Sync),
    faults: &FaultSet,
    cfg: SimConfig,
) -> Vec<LoadPoint> {
    let inputs: Vec<f64> = LOADS.to_vec();
    ftr_sim::run_sweep(inputs, harness::threads(), |&load| {
        measure_load(topo, algo, faults, Pattern::Uniform, load, 4, WARMUP, WINDOW, 42, cfg)
    })
}

fn main() {
    let mesh = Mesh2D::new(8, 8);
    let cfg = SimConfig::default();

    let nara = Nara::new(mesh.clone());
    let nafta = Nafta::new(mesh.clone());

    let mut series: Vec<(String, Vec<LoadPoint>)> = Vec::new();

    series.push(("NARA, 8x8 mesh, fault-free".into(), curve(&mesh, &nara, &FaultSet::new(), cfg)));
    series
        .push(("NAFTA, 8x8 mesh, fault-free".into(), curve(&mesh, &nafta, &FaultSet::new(), cfg)));

    let slow = SimConfig { decision_cycles_per_step: 3, ..cfg };
    series.push((
        "NARA, decision time 3 cycles/step ([DLO97] effect)".into(),
        curve(&mesh, &nara, &FaultSet::new(), slow),
    ));

    for n in [4usize, 8] {
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, n, true, 5);
        series.push((
            format!("NAFTA, 8x8 mesh, {n} link faults"),
            curve(&mesh, &nafta, &faults, cfg),
        ));
    }

    let cube = Hypercube::new(5);
    let rc = RouteC::new(cube.clone());
    let rc_nft = RouteC::stripped(cube.clone());
    series.push(("ROUTE_C, 5-cube, fault-free".into(), curve(&cube, &rc, &FaultSet::new(), cfg)));
    series.push((
        "stripped ROUTE_C (nft), 5-cube".into(),
        curve(&cube, &rc_nft, &FaultSet::new(), cfg),
    ));

    for (name, pts) in &series {
        println!("{}", format_curve(name, pts));
    }

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E7 latency vs offered load");
        root.field(
            "series",
            json::array(series.iter().map(|(name, pts)| {
                let mut o = json::Obj::new();
                o.str("name", name);
                o.field("points", json::array(pts.iter().map(results::load_point_json)));
                o.finish()
            })),
        );
        root.finish()
    };
    harness::export("latency_sweep", &payload);
}
