//! Experiment E7 — network latency vs offered load as routing-decision
//! time and fault tolerance vary.
//!
//! Reproduces the effect the paper builds on (\[DLO97\]: "The Impact of
//! Routing Decision Time on Network Latency") and the FT overhead in time:
//! NAFTA pays for fault tolerance with up to three interpretation steps,
//! the stripped variants decide in one.
//!
//! Series produced:
//!   1. NARA vs NAFTA on an 8x8 mesh, fault-free (overhead ≈ 0 at equal
//!      decision time — NAFTA decides in 1 step when no fault interferes);
//!   2. decision time 1 vs 3 cycles/step for NARA (latency shift);
//!   3. NAFTA with 0 / 4 / 8 link faults (graceful degradation);
//!   4. ROUTE_C vs stripped ROUTE_C on a 5-cube (the always-2-steps cost).

use ftr_algos::{Nafta, Nara, RouteC};
use ftr_bench::{format_curve, measure_load, LoadPoint};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Pattern, SimConfig};
use ftr_topo::{FaultSet, Hypercube, Mesh2D, Topology};

const LOADS: &[f64] = &[0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35];
const WARMUP: u64 = 1_000;
const WINDOW: u64 = 3_000;

fn curve<T: Topology + Clone + Sync + 'static>(
    topo: &T,
    algo: &(dyn RoutingAlgorithm + Sync),
    faults: &FaultSet,
    cfg: SimConfig,
) -> Vec<LoadPoint> {
    let inputs: Vec<f64> = LOADS.to_vec();
    ftr_sim::run_sweep(inputs, ftr_sim::sweep::default_threads(), |&load| {
        measure_load(topo, algo, faults, Pattern::Uniform, load, 4, WARMUP, WINDOW, 42, cfg)
    })
}

fn main() {
    let mesh = Mesh2D::new(8, 8);
    let cfg = SimConfig::default();

    let nara = Nara::new(mesh.clone());
    let nafta = Nafta::new(mesh.clone());

    println!(
        "{}",
        format_curve("NARA, 8x8 mesh, fault-free", &curve(&mesh, &nara, &FaultSet::new(), cfg))
    );
    println!(
        "{}",
        format_curve("NAFTA, 8x8 mesh, fault-free", &curve(&mesh, &nafta, &FaultSet::new(), cfg))
    );

    let slow = SimConfig { decision_cycles_per_step: 3, ..cfg };
    println!(
        "{}",
        format_curve(
            "NARA, decision time 3 cycles/step ([DLO97] effect)",
            &curve(&mesh, &nara, &FaultSet::new(), slow)
        )
    );

    for n in [4usize, 8] {
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, n, true, 5);
        println!(
            "{}",
            format_curve(
                &format!("NAFTA, 8x8 mesh, {n} link faults"),
                &curve(&mesh, &nafta, &faults, cfg)
            )
        );
    }

    let cube = Hypercube::new(5);
    let rc = RouteC::new(cube.clone());
    let rc_nft = RouteC::stripped(cube.clone());
    println!(
        "{}",
        format_curve("ROUTE_C, 5-cube, fault-free", &curve(&cube, &rc, &FaultSet::new(), cfg))
    );
    println!(
        "{}",
        format_curve(
            "stripped ROUTE_C (nft), 5-cube",
            &curve(&cube, &rc_nft, &FaultSet::new(), cfg)
        )
    );
}
