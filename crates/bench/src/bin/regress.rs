//! `regress` — the statistical CI perf gate.
//!
//! ```text
//! regress [--baseline <dir>] [--fresh <dir>] [--baseline-only]
//! ```
//!
//! Walks the gate table of [`ftr_bench::regress`]: for every
//! `BENCH_*.json` artifact it checks exact invariants (experiment tag,
//! bit-identity flags, structural shape) on both the committed baseline
//! (`--baseline`, default `results`) and the freshly measured smoke run
//! (`--fresh`, default `ci_results`), then compares the noise-banded
//! metrics — median/MAD robust summaries, min-of-k for lower-is-better
//! — of fresh against baseline. Replaces the per-experiment python
//! gates that used to live inline in the CI workflow.
//!
//! A missing fresh artifact is a failure (a silently skipped benchmark
//! is how perf gates rot); `--baseline-only` validates just the
//! committed tree, for use before the smoke runs exist. Exits 1 on any
//! deviation, listing every one.

use ftr_bench::regress::{check_invariants, check_metric, gates};
use ftr_obs::json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(dir: &Path, file: &str) -> Result<json::Value, String> {
    let path = dir.join(format!("{file}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{file}: cannot read {}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{file}: {} is not valid JSON: {e}", path.display()))
}

fn main() -> ExitCode {
    let mut baseline = PathBuf::from("results");
    let mut fresh = PathBuf::from("ci_results");
    let mut baseline_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().expect("--baseline needs a dir").into(),
            "--fresh" => fresh = it.next().expect("--fresh needs a dir").into(),
            "--baseline-only" => baseline_only = true,
            other => {
                eprintln!(
                    "unknown argument `{other}`\n\
                     usage: regress [--baseline <dir>] [--fresh <dir>] [--baseline-only]"
                );
                return ExitCode::from(1);
            }
        }
    }

    let mut deviations: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for gate in gates() {
        let base = match load(&baseline, gate.file) {
            Ok(v) => v,
            Err(e) => {
                deviations.push(format!("baseline {e}"));
                continue;
            }
        };
        check_invariants(gate, "baseline", &base, &mut deviations);
        checked += 1;
        if baseline_only {
            continue;
        }
        let fresh_v = match load(&fresh, gate.file) {
            Ok(v) => v,
            Err(e) => {
                deviations.push(format!("fresh {e}"));
                continue;
            }
        };
        check_invariants(gate, "fresh", &fresh_v, &mut deviations);
        for spec in gate.metrics {
            check_metric(gate, spec, &fresh_v, &base, &mut deviations);
        }
    }

    if deviations.is_empty() {
        println!(
            "regress: {checked} artifacts clean ({} mode)",
            if baseline_only { "baseline-only" } else { "baseline vs fresh" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("regress: {} deviation(s):", deviations.len());
        for d in &deviations {
            eprintln!("  - {d}");
        }
        ExitCode::from(1)
    }
}
