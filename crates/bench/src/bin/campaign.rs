//! Experiment E15 — dynamic-fault campaigns: transient faults, repair,
//! and source retransmission.
//!
//! The paper's fault model (§2) allows faults to "occur at any time"; this
//! campaign exercises the full dynamic lifecycle the simulator now
//! supports: scripted transient link faults (fail, then repair after a
//! fixed delay) hit a 6x6 NAFTA mesh under live uniform traffic, with and
//! without a source-retransmission policy. Hundreds of (retry arm x fault
//! count x seed) runs are fanned over the thread pool; every run must keep
//! the message-accounting invariant and finish without a deadlock
//! verdict. The headline result: with retries the delivery ratio recovers
//! to ~1.0 at every fault rate, while the no-retry baseline visibly loses
//! the worms the transient faults rip.
//!
//! Campaign size, traffic load and fault counts are tunable from the
//! command line (`campaign [runs-per-cell] [load]`) so CI can run a small
//! smoke campaign while the full sweep stays the default. Aggregates go
//! to stdout and `results/campaign.json`.

use ftr_algos::Nafta;
use ftr_bench::{harness, results};
use ftr_obs::{json, TeeSink, TraceSink};
use ftr_sim::sweep::run_sweep;
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, TrafficSource};
use ftr_topo::Mesh2D;
use ftr_trace::DiagnoserSink;
use std::sync::Arc;

const SIDE: u32 = 6;
const REPAIR_AFTER: u64 = 200;
const FAULT_WINDOW: std::ops::Range<u64> = 200..1_400;
const WARM_CYCLES: u64 = 1_800;
const DRAIN_BUDGET: u64 = 60_000;
const MSG_LEN: u32 = 16;

#[derive(Clone, Copy)]
struct RunSpec {
    retry: bool,
    faults: usize,
    seed: u64,
    load: f64,
}

struct RunOut {
    injected: u64,
    delivered: u64,
    killed: u64,
    unroutable: u64,
    retried: u64,
    abandoned: u64,
    rejected: u64,
    latency_mean: f64,
    delivery_ratio: f64,
    deadlock: bool,
    drained: bool,
    balanced: bool,
    /// The online diagnoser's verdict: a fault-tolerant campaign run
    /// must never look deadlocked to the wait-for-graph scan either.
    diag_clean: bool,
}

fn run_one(spec: &RunSpec) -> RunOut {
    let mesh = Mesh2D::new(SIDE, SIDE);
    let plan = FaultPlan::random_transient_links(
        &mesh,
        spec.faults,
        FAULT_WINDOW,
        REPAIR_AFTER,
        spec.seed,
    );
    let mut b = Network::builder(Arc::new(mesh.clone())).fault_plan(plan);
    if spec.retry {
        b = b.retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 });
    }
    // every run carries the online deadlock diagnoser; with
    // FTR_TRACE_DIR set the same stream is also captured as JSONL
    let diag = Arc::new(DiagnoserSink::default());
    let label = format!(
        "campaign_{}_f{}_s{}",
        if spec.retry { "retry" } else { "base" },
        spec.faults,
        spec.seed
    );
    let jsonl = results::trace_sink(&label);
    b = match &jsonl {
        Some(j) => b.trace(Arc::new(TeeSink::new(vec![j.clone(), diag.clone()]))),
        None => b.trace(diag.clone()),
    };
    let mut net = b.build(&Nafta::new(mesh.clone())).expect("valid config");
    net.set_measuring(true);

    let mut tf = TrafficSource::new(Pattern::Uniform, spec.load, MSG_LEN, spec.seed ^ 0x5ca1e);
    // link faults never kill endpoints here, but a rejected send must be
    // counted, not fatal — harness::drive has exactly those semantics
    harness::drive(&mut net, &mut tf, WARM_CYCLES);
    let drained = net.drain(DRAIN_BUDGET);
    diag.scan_now();
    if let Some(j) = &jsonl {
        j.flush();
        assert_eq!(j.write_errors(), 0, "trace capture lost events");
    }

    let s = &net.stats;
    RunOut {
        injected: s.injected_msgs,
        delivered: s.delivered_msgs,
        killed: s.killed_msgs,
        unroutable: s.unroutable_msgs,
        retried: s.retried_msgs,
        abandoned: s.abandoned_msgs,
        rejected: s.rejected_sends,
        latency_mean: s.latency.mean(),
        delivery_ratio: s.delivery_ratio(),
        deadlock: s.deadlock,
        drained,
        balanced: s.accounting_balanced(),
        diag_clean: diag.deadlock().is_none(),
    }
}

struct Cell {
    retry: bool,
    faults: usize,
    runs: usize,
    injected: u64,
    delivery_ratio: f64,
    latency_mean: f64,
    killed: u64,
    unroutable: u64,
    retried: u64,
    abandoned: u64,
    worst_ratio: f64,
}

fn main() {
    let args = harness::Args::parse();
    let runs_per_cell: usize = args.pos(0, "runs-per-cell", 25);
    let load: f64 = args.pos(1, "load", 0.15);

    let fault_counts = [0usize, 4, 8, 12, 16];
    let mut specs = Vec::new();
    for &retry in &[false, true] {
        for &faults in &fault_counts {
            for seed in 0..runs_per_cell as u64 {
                specs.push(RunSpec { retry, faults, seed: 1 + seed * 7919, load });
            }
        }
    }
    let total = specs.len();
    println!(
        "E15 dynamic-fault campaign: {SIDE}x{SIDE} NAFTA mesh, load {load}, \
         transient link faults repaired after {REPAIR_AFTER} cycles"
    );
    println!("{total} runs ({runs_per_cell} per cell) on {} threads\n", harness::threads());

    let outs = run_sweep(specs.clone(), harness::threads(), run_one);

    // hard invariants: every run, no exceptions
    let mut violations = 0usize;
    for (spec, out) in specs.iter().zip(&outs) {
        if !out.balanced || out.deadlock || !out.drained || !out.diag_clean {
            violations += 1;
            eprintln!(
                "INVARIANT VIOLATION: retry={} faults={} seed={} \
                 balanced={} deadlock={} drained={} diagnoser_clean={}",
                spec.retry,
                spec.faults,
                spec.seed,
                out.balanced,
                out.deadlock,
                out.drained,
                out.diag_clean
            );
        }
    }
    assert_eq!(
        violations, 0,
        "campaign runs must stay balanced, drained, and deadlock-free \
         (watchdog and online diagnoser)"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &retry in &[false, true] {
        for &faults in &fault_counts {
            let sel: Vec<&RunOut> = specs
                .iter()
                .zip(&outs)
                .filter(|(s, _)| s.retry == retry && s.faults == faults)
                .map(|(_, o)| o)
                .collect();
            let injected: u64 = sel.iter().map(|o| o.injected).sum();
            let delivered: u64 = sel.iter().map(|o| o.delivered).sum();
            let done: u64 = delivered
                + sel.iter().map(|o| o.killed).sum::<u64>()
                + sel.iter().map(|o| o.unroutable).sum::<u64>();
            let lat_n: f64 = sel.iter().filter(|o| o.delivered > 0).count() as f64;
            cells.push(Cell {
                retry,
                faults,
                runs: sel.len(),
                injected,
                delivery_ratio: if done == 0 { 0.0 } else { delivered as f64 / done as f64 },
                latency_mean: if lat_n == 0.0 {
                    0.0
                } else {
                    sel.iter().map(|o| o.latency_mean).sum::<f64>() / lat_n
                },
                killed: sel.iter().map(|o| o.killed).sum(),
                unroutable: sel.iter().map(|o| o.unroutable).sum(),
                retried: sel.iter().map(|o| o.retried).sum(),
                abandoned: sel.iter().map(|o| o.abandoned).sum(),
                worst_ratio: sel.iter().map(|o| o.delivery_ratio).fold(1.0, f64::min),
            });
        }
    }

    println!(
        "{:>6} {:>4} {:>10} {:>10} {:>8} {:>7} {:>8} {:>7} {:>10}",
        "retry", "|F|", "delivery", "worst", "killed", "unrte", "retried", "abdnd", "latency"
    );
    for c in &cells {
        println!(
            "{:>6} {:>4} {:>10.5} {:>10.5} {:>8} {:>7} {:>8} {:>7} {:>10.1}",
            if c.retry { "on" } else { "off" },
            c.faults,
            c.delivery_ratio,
            c.worst_ratio,
            c.killed,
            c.unroutable,
            c.retried,
            c.abandoned,
            c.latency_mean,
        );
    }

    // headline claims, enforced so CI catches regressions in the lifecycle
    for c in cells.iter().filter(|c| c.retry && c.faults > 0) {
        assert!(
            c.delivery_ratio >= 0.99,
            "retry arm must recover delivery >= 0.99 at |F|={} (got {})",
            c.faults,
            c.delivery_ratio
        );
    }
    let base_loss: u64 =
        cells.iter().filter(|c| !c.retry && c.faults > 0).map(|c| c.killed + c.unroutable).sum();
    if runs_per_cell >= 10 {
        assert!(base_loss > 0, "baseline must measurably lose messages to transient faults");
        let worst_base =
            cells.iter().filter(|c| !c.retry).map(|c| c.delivery_ratio).fold(1.0, f64::min);
        assert!(
            worst_base < 0.99,
            "no-retry baseline must measurably miss 0.99 at the highest fault rate (got {worst_base})"
        );
    }

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E15 dynamic-fault campaign");
        root.str("topology", &format!("mesh {SIDE}x{SIDE}"));
        root.str("algorithm", "nafta");
        root.float("load", load);
        root.num("repair_after", REPAIR_AFTER);
        root.num("runs", total as u64);
        root.num("runs_per_cell", runs_per_cell as u64);
        root.field(
            "cells",
            json::array(cells.iter().map(|c| {
                let mut o = json::Obj::new();
                o.bool("retry", c.retry)
                    .num("faults", c.faults as u64)
                    .num("runs", c.runs as u64)
                    .num("injected", c.injected)
                    .float("delivery_ratio", c.delivery_ratio)
                    .float("worst_run_ratio", c.worst_ratio)
                    .num("killed", c.killed)
                    .num("unroutable", c.unroutable)
                    .num("retried", c.retried)
                    .num("abandoned", c.abandoned)
                    .float("latency_mean", c.latency_mean);
                o.finish()
            })),
        );
        root.finish()
    };

    let rejected: u64 = outs.iter().map(|o| o.rejected).sum();
    println!("\nall {total} runs balanced, drained, deadlock-free ({rejected} rejected sends)");
    harness::export("campaign", &payload);
}
