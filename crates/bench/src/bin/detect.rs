//! Experiment E22 — distributed fault detection without the oracle.
//!
//! Every fault-handling experiment so far told the endpoint controllers
//! about faults through the simulator's oracle (`notify_fault`). The
//! detection layer (`ftr_sim::detect`) replaces that courtesy with
//! heartbeats: periodic pings per alive port, a per-neighbour suspicion
//! counter, and an alarm that feeds the *same* `on_fault` machinery the
//! oracle used. This experiment quantifies the two costs that design
//! trades against each other:
//!
//! 1. **Detection latency vs. false positives.** A sweep over heartbeat
//!    period x miss threshold measures (a) alarms on a fault-free
//!    loaded fabric — the false-positive count, which must be zero for
//!    any period >= `MIN_SAFE_TICK_PERIOD`; (b) cycles from a silent
//!    link fault to the first alarm; (c) alarms under link *flapping*
//!    shorter than the suspicion window — the transient-tolerance the
//!    threshold buys.
//! 2. **The no-oracle campaign.** The E21 campaign fabric (6x6 NAFTA,
//!    uniform load, scripted link faults, retransmission) run three
//!    ways: faults announced by the oracle; faults silent with no
//!    detection (delivery collapses — the watchdog eventually declares
//!    deadlock); faults silent with the detection layer (delivery
//!    recovers to the oracle baseline).
//!
//! ```text
//! detect [--smoke]
//! ```
//!
//! Exports `results/BENCH_detect.json`, gated in CI by `regress`.

use ftr_algos::Nafta;
use ftr_bench::{harness, regress, results};
use ftr_obs::{json, EventKind, RingSink, TeeSink, TraceSink};
use ftr_sim::detect::{DetectorConfig, WithDetection, MIN_SAFE_TICK_PERIOD};
use ftr_sim::{
    FaultAction, FaultPlan, Network, Pattern, RetryPolicy, RoutingAlgorithm, TrafficSource,
};
use ftr_topo::{Mesh2D, PortId, EAST, NORTH};
use ftr_trace::DiagnoserSink;
use std::sync::Arc;

const SIDE: u32 = 6;
const MSG_LEN: u32 = 8;
const LOAD: f64 = 0.10;
/// The configuration the rest of the repo treats as the default.
const DEFAULT_PERIOD: u64 = 8;
const DEFAULT_THRESHOLD: u32 = 3;
/// Campaign fault window; repairs are scheduled far beyond the run so
/// the scripted faults are effectively permanent — a silent fault that
/// heals by itself would mask the detection layer's contribution.
const FAULT_WINDOW: std::ops::Range<u64> = 100..400;
const NEVER: u64 = 10_000_000;
const WARM_CYCLES: u64 = 900;
const DRAIN_BUDGET: u64 = 30_000;

fn mesh() -> Mesh2D {
    Mesh2D::new(SIDE, SIDE)
}

fn detect_algo(threshold: u32) -> WithDetection<Nafta> {
    WithDetection::new(Nafta::new(mesh()), DetectorConfig { miss_threshold: threshold })
}

fn alarm_cycles(sink: &RingSink) -> Vec<u64> {
    sink.events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::Alarm { .. }))
        .map(|e| e.cycle)
        .collect()
}

/// Alarms on a fault-free fabric under load — every one is a false
/// positive.
fn false_positives(period: u64, threshold: u32, cycles: u64) -> u64 {
    let sink = Arc::new(RingSink::new(1 << 20));
    let mut net = Network::builder(Arc::new(mesh()))
        .tick_period(period)
        .trace(sink.clone())
        .build(&detect_algo(threshold))
        .expect("valid");
    let mut tf = TrafficSource::new(Pattern::Uniform, LOAD, MSG_LEN, 0xfae);
    harness::drive(&mut net, &mut tf, cycles);
    net.drain(DRAIN_BUDGET);
    alarm_cycles(&sink).len() as u64
}

/// Cycles from a silent permanent link fault to the first alarm.
fn detection_latency(period: u64, threshold: u32, site: (u32, u32, PortId)) -> u64 {
    let m = mesh();
    let at = 101;
    let plan =
        FaultPlan::new().at(at, FaultAction::FailLinkSilent(m.node_at(site.0, site.1), site.2));
    let sink = Arc::new(RingSink::new(1 << 18));
    let mut net = Network::builder(Arc::new(m))
        .tick_period(period)
        .trace(sink.clone())
        .fault_plan(plan)
        .build(&detect_algo(threshold))
        .expect("valid");
    net.run(at + period * (threshold as u64 + 3) + 20);
    let first = alarm_cycles(&sink).into_iter().min().unwrap_or_else(|| {
        panic!("no alarm for period {period} threshold {threshold} site {site:?}")
    });
    first - at
}

/// Alarms raised by a link outage of `flap_len` cycles. An outage of
/// length `L` costs up to `floor(L / period) + 1` missed rounds (the
/// `+ 1` is the in-flight pong lost when the fault lands between a
/// ping's send and its reply), so the longest outage a threshold `t`
/// detector is guaranteed to ride out is `(t - 1) * period - 1`.
fn flap_alarms(period: u64, threshold: u32, flap_len: u64) -> u64 {
    let m = mesh();
    let n = m.node_at(2, 3);
    let plan = FaultPlan::new()
        .at(101, FaultAction::FailLinkSilent(n, EAST))
        .at(101 + flap_len, FaultAction::RepairLinkSilent(n, EAST));
    let sink = Arc::new(RingSink::new(1 << 18));
    let mut net = Network::builder(Arc::new(m))
        .tick_period(period)
        .trace(sink.clone())
        .fault_plan(plan)
        .build(&detect_algo(threshold))
        .expect("valid");
    net.run(101 + flap_len + period * (threshold as u64 + 3) + 20);
    alarm_cycles(&sink).len() as u64
}

/// One campaign arm: the E21 fabric with `faults` scripted link faults.
struct Arm {
    injected: u64,
    delivered: u64,
    killed: u64,
    unroutable: u64,
    abandoned: u64,
    control_dropped: u64,
    deadlock: bool,
    drained: bool,
}

impl Arm {
    fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }

    fn to_json(&self) -> String {
        let mut o = json::Obj::new();
        o.num("injected", self.injected)
            .num("delivered", self.delivered)
            .num("killed", self.killed)
            .num("unroutable", self.unroutable)
            .num("abandoned", self.abandoned)
            .num("control_dropped", self.control_dropped)
            .bool("deadlock", self.deadlock)
            .bool("drained", self.drained)
            .float("delivery_ratio", self.delivery_ratio());
        o.finish()
    }
}

/// One campaign arm. `expect_live` arms attach the online deadlock
/// diagnoser and require it silent — the no-detection arm genuinely
/// wedges, so there it only records what the watchdog saw.
fn campaign_arm(
    label: &str,
    algo: &dyn RoutingAlgorithm,
    plan: FaultPlan,
    period: u64,
    seed: u64,
    expect_live: bool,
) -> Arm {
    let diag = Arc::new(DiagnoserSink::default());
    // with FTR_TRACE_DIR set the arm's full event stream (heartbeats,
    // suspicions, alarms, control drops) is captured for ftr-trace replay
    let jsonl = results::trace_sink(label);
    let sink: Arc<dyn TraceSink> = match &jsonl {
        Some(j) => Arc::new(TeeSink::new(vec![j.clone(), diag.clone()])),
        None => diag.clone(),
    };
    let mut b = Network::builder(Arc::new(mesh()))
        .fault_plan(plan)
        .trace(sink)
        .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 });
    if period != 0 {
        b = b.tick_period(period);
    }
    let mut net = b.build(algo).expect("valid");
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, LOAD, MSG_LEN, seed ^ 0x5ca1e);
    harness::drive(&mut net, &mut tf, WARM_CYCLES);
    let drained = net.drain(DRAIN_BUDGET);
    diag.scan_now();
    if expect_live {
        assert!(diag.deadlock().is_none(), "online diagnoser must stay silent on a live arm");
    }
    let s = &net.stats;
    Arm {
        injected: s.injected_msgs,
        delivered: s.delivered_msgs,
        killed: s.killed_msgs,
        unroutable: s.unroutable_msgs,
        abandoned: s.abandoned_msgs,
        control_dropped: s.control_dropped,
        deadlock: s.deadlock,
        drained,
    }
}

fn main() {
    let args = harness::Args::parse();
    let smoke = args.smoke();
    let periods: &[u64] = if smoke { &[4, 8] } else { &[4, 8, 16] };
    let thresholds: &[u32] = if smoke { &[1, 3] } else { &[1, 2, 3, 5] };
    let sites: &[(u32, u32, PortId)] =
        if smoke { &[(2, 3, EAST)] } else { &[(2, 3, EAST), (0, 0, EAST), (4, 1, NORTH)] };
    let fault_counts: &[usize] = if smoke { &[6] } else { &[4, 6, 8] };
    let fault_free_cycles: u64 = if smoke { 400 } else { 1_200 };

    println!("E22 fault detection: period x threshold sweep…");
    println!(
        "{:>7} {:>10} {:>13} {:>15} {:>12}",
        "period", "threshold", "false alarms", "latency (med)", "flap alarms"
    );
    let mut grid = Vec::new();
    let mut default_latency = 0.0f64;
    let mut default_false_alarms = u64::MAX;
    for &period in periods {
        assert!(period >= MIN_SAFE_TICK_PERIOD, "sweep must stay in the safe regime");
        for &threshold in thresholds {
            let fp = false_positives(period, threshold, fault_free_cycles);
            let lats: Vec<f64> =
                sites.iter().map(|&s| detection_latency(period, threshold, s) as f64).collect();
            let lat = regress::median(&lats).unwrap();
            // probe the exact tolerance boundary: the longest outage this
            // threshold must ride out, or (at threshold 1) one period,
            // which must alarm — threshold 1 has no transient tolerance
            let flap_len =
                if threshold >= 2 { (threshold as u64 - 1) * period - 1 } else { period };
            let flaps = flap_alarms(period, threshold, flap_len);
            println!("{period:>7} {threshold:>10} {fp:>13} {lat:>15.1} {flaps:>12}");
            assert_eq!(fp, 0, "false positive at period {period} threshold {threshold}");
            // the suspicion window in cycles bounds the latency up to one
            // period of phase slack each side: a fault landing just before
            // an expected pong burns a round almost for free (lower bound
            // window - period + 1), one landing just after a pong waits
            // out the extra round (upper bound window + 2 periods)
            let window = period * threshold as u64;
            let lo = (window - period) + 1;
            assert!(
                (lat as u64) >= lo && (lat as u64) <= window + 2 * period,
                "latency {lat} outside [{lo}, {}]",
                window + 2 * period
            );
            if threshold >= 2 {
                assert_eq!(
                    flaps, 0,
                    "a {flap_len}-cycle flap must not alarm at threshold {threshold}"
                );
            } else {
                assert!(flaps > 0, "threshold 1 must alarm on any full-period outage");
            }
            if period == DEFAULT_PERIOD && threshold == DEFAULT_THRESHOLD {
                default_latency = lat;
                default_false_alarms = fp;
            }
            let mut o = json::Obj::new();
            o.num("period", period)
                .num("threshold", threshold as u64)
                .num("fault_free_alarms", fp)
                .float("latency_median_cycles", lat)
                .num("flap_len", flap_len)
                .num("flap_alarms", flaps);
            grid.push(o.finish());
        }
    }
    assert_eq!(default_false_alarms, 0, "default config must appear in the sweep");

    println!("\nno-oracle campaign, {SIDE}x{SIDE} NAFTA, load {LOAD}, permanent link faults:");
    println!("{:>7} {:>16} {:>18} {:>16}", "faults", "oracle", "silent+nodetect", "silent+detect");
    let mut campaigns = Vec::new();
    let mut worst_margin = f64::INFINITY;
    let mut worst_detect = f64::INFINITY;
    let mut worst_oracle_gap = f64::NEG_INFINITY;
    for &faults in fault_counts {
        let seed = 11 + faults as u64;
        let plan = FaultPlan::random_transient_links(&mesh(), faults, FAULT_WINDOW, NEVER, seed);
        let oracle = campaign_arm(
            &format!("detect_oracle_f{faults}"),
            &Nafta::new(mesh()),
            plan.clone(),
            0,
            seed,
            true,
        );
        let nodetect = campaign_arm(
            &format!("detect_nodetect_f{faults}"),
            &Nafta::new(mesh()),
            plan.clone().silenced(),
            0,
            seed,
            false,
        );
        let detect = campaign_arm(
            &format!("detect_detect_f{faults}"),
            &detect_algo(DEFAULT_THRESHOLD),
            plan.silenced(),
            DEFAULT_PERIOD,
            seed,
            true,
        );
        println!(
            "{faults:>7} {:>16.3} {:>18.3} {:>16.3}{}",
            oracle.delivery_ratio(),
            nodetect.delivery_ratio(),
            detect.delivery_ratio(),
            if nodetect.deadlock { "   (nodetect deadlocked)" } else { "" }
        );
        assert!(nodetect.deadlock, "silent faults with nobody watching must deadlock");
        assert!(!detect.deadlock, "detection must keep the fabric live");
        assert!(detect.drained, "detection arm must terminate every message");
        worst_margin = worst_margin.min(detect.delivery_ratio() - nodetect.delivery_ratio());
        worst_detect = worst_detect.min(detect.delivery_ratio());
        worst_oracle_gap = worst_oracle_gap.max(oracle.delivery_ratio() - detect.delivery_ratio());
        let mut o = json::Obj::new();
        o.num("faults", faults as u64)
            .field("oracle", oracle.to_json())
            .field("silent_nodetect", nodetect.to_json())
            .field("silent_detect", detect.to_json())
            .float("recovery_margin", detect.delivery_ratio() - nodetect.delivery_ratio());
        campaigns.push(o.finish());
    }
    println!(
        "\nworst-case: detect-over-nodetect margin {worst_margin:.3}, \
         detect ratio {worst_detect:.3}, oracle-minus-detect gap {worst_oracle_gap:.3}"
    );
    assert!(worst_margin >= 0.2, "delivery must collapse without detection and recover with it");
    assert!(worst_oracle_gap <= 0.02, "detected recovery must match the oracle baseline");

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E22");
        root.str("binary", "detect");
        root.bool("smoke", smoke);
        root.num("default_period", DEFAULT_PERIOD);
        root.num("default_threshold", DEFAULT_THRESHOLD as u64);
        root.bool("false_positive_free", true); // asserted per grid point above
        root.float("detection_latency_cycles", default_latency);
        root.field("grid", json::array(grid));
        root.field("campaign", {
            let mut c = json::Obj::new();
            c.float("load", LOAD)
                .float("worst_recovery_margin", worst_margin)
                .float("worst_detect_delivery_ratio", worst_detect)
                .float("worst_oracle_gap", worst_oracle_gap)
                .field("arms", json::array(campaigns));
            c.finish()
        });
        root.finish()
    };
    harness::export("BENCH_detect", &payload);
}
