//! Experiment E19 — sharded-engine scaling curve: one fabric, growing
//! thread counts, bit-identical results.
//!
//! The sharded step (DESIGN.md §14) promises two things at once: the
//! *same* `SimStats` and trace stream at every thread count, and more
//! simulated cycles per second when real cores are available. This
//! harness pins both. Part one replays the E15 campaign configuration
//! (6x6 NAFTA mesh, transient link faults, repair, source retry) at 1, 2
//! and 8 threads and asserts the final statistics are bit-identical.
//! Part two replays one pre-drawn injection schedule on a large XY mesh
//! across thread counts and reports the scaling curve.
//!
//! Methodology follows E17 (`step_perf`): schedules are pre-generated
//! outside the timed region, every (threads) point runs one warmup pass
//! plus `reps` timed passes and reports the median, and every replay of
//! the same schedule must end in bit-identical `SimStats` — the perf
//! curve doubles as a determinism check at scale.
//!
//! Speedup is only *asserted* on a full run on a host with enough
//! cores: shared CI runners (often 1-2 vCPUs) cannot honestly show
//! parallel speedup, so the exported JSON records `host_parallelism`
//! and `speedup_asserted`, and CI gates on bit-identity alone.
//!
//! `par_perf [--smoke]` — smoke shrinks the fabric/cycles for CI and
//! forces the spawn threshold to zero so real OS threads are exercised
//! even when the active set is small. Results go to
//! `results/BENCH_par.json`.

use ftr_algos::{Nafta, XyRouting};
use ftr_bench::harness;
use ftr_obs::json;
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, SimEngine, SimStats, TrafficSource};
use ftr_topo::{Mesh2D, NodeId};
use std::sync::Arc;
use std::time::Instant;

const MSG_LEN: u32 = 8;
const SEED: u64 = 0x9a11e7;

/// One thread-count measurement: median simulated cycles per second.
struct Point {
    threads: usize,
    cps: f64,
}

type Schedule = Vec<Vec<(NodeId, NodeId, u32)>>;

/// Pre-draws the whole injection schedule for `cycles` cycles on a
/// healthy fabric (the Bernoulli draws would otherwise re-introduce an
/// O(nodes) term inside the timed region).
fn schedule(mesh: &Mesh2D, load: f64, cycles: u64) -> Schedule {
    let faults = ftr_topo::FaultSet::new();
    let mut tf = TrafficSource::new(Pattern::Uniform, load, MSG_LEN, SEED);
    (0..cycles).map(|_| tf.tick(mesh, &faults)).collect()
}

/// Replays `sched` once through the engine facade; returns (elapsed
/// seconds over the timed window, final stats).
fn replay(mesh: &Mesh2D, sched: &Schedule, threads: usize, spawn: usize) -> (f64, SimStats) {
    let mut net: Box<dyn SimEngine> = Network::builder(Arc::new(mesh.clone()))
        .threads(threads)
        .spawn_threshold(spawn)
        .build_engine(&XyRouting::new(mesh.clone()))
        .expect("valid config");
    let t0 = Instant::now();
    for cycle in sched {
        for &(s, d, l) in cycle {
            net.send(s, d, l).expect("healthy fabric accepts");
        }
        net.step();
    }
    let secs = t0.elapsed().as_secs_f64();
    net.drain(500_000);
    (secs, net.stats().clone())
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Part one: the E15 campaign configuration (transient faults, repair,
/// retry, live traffic) must end bit-identical at every thread count.
fn campaign_bit_identity(thread_counts: &[usize]) {
    let mesh = Mesh2D::new(6, 6);
    let mut finals: Vec<(usize, SimStats)> = Vec::new();
    for &t in thread_counts {
        let plan = FaultPlan::random_transient_links(&mesh, 8, 200..1_400, 200, 1);
        let mut net: Box<dyn SimEngine> = Network::builder(Arc::new(mesh.clone()))
            .threads(t)
            .spawn_threshold(0) // force real OS threads even on 36 nodes
            .fault_plan(plan)
            .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 })
            .build_engine(&Nafta::new(mesh.clone()))
            .expect("valid config");
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 16, 1 ^ 0x5ca1e);
        harness::drive(net.as_mut(), &mut tf, 1_800);
        assert!(net.drain(60_000), "campaign run must drain at {t} threads");
        finals.push((t, net.stats().clone()));
    }
    let (t0, ref base) = finals[0];
    assert!(base.injected_msgs > 100, "campaign must carry real load");
    for (t, stats) in &finals[1..] {
        assert_eq!(stats, base, "E15 campaign stats diverged: {t} threads vs {t0}");
    }
    println!(
        "# E15 campaign config bit-identical across {:?} threads ({} msgs)",
        thread_counts, base.injected_msgs
    );
}

fn main() {
    let smoke = harness::Args::parse().smoke();
    // full mode sizes the mesh so every shard has real work at 8 threads;
    // smoke keeps CI fast and forces spawning instead of relying on size.
    // load stays under the uniform-traffic bisection bound (load·n/2 flits
    // per cycle over `side` cross-links): 0.004·65536/2 ≈ 131 ≪ 256 on the
    // full mesh — saturating 65k nodes would make drains unboundedly slow
    // and measure congestion, not the step engine
    let (side, cycles, reps, spawn, load) =
        if smoke { (32u32, 400u64, 3usize, 0usize, 0.02) } else { (256, 1_000, 3, 2_048, 0.004) };
    let thread_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "# E19 par_perf: {side}x{side} mesh, {cycles} cycles/rep, median of {reps}, \
         host parallelism {host_parallelism} (smoke={smoke})"
    );

    campaign_bit_identity(thread_counts);

    let mesh = Mesh2D::new(side, side);
    let sched = schedule(&mesh, load, cycles);
    let (_, reference) = replay(&mesh, &sched, 1, spawn); // warmup + reference stats
    let mut points = Vec::new();
    for &t in thread_counts {
        let mut cps = Vec::new();
        for _ in 0..reps {
            let (secs, stats) = replay(&mesh, &sched, t, spawn);
            // every replay of one schedule must agree with the 1-thread
            // reference exactly — determinism at scale, asserted per rep
            assert_eq!(stats, reference, "stats diverged at {t} threads");
            cps.push(cycles as f64 / secs);
        }
        let p = Point { threads: t, cps: median(cps) };
        println!(
            "{:>10} thread(s)  {:>12.0} c/s  speedup {:>5.2}x",
            p.threads,
            p.cps,
            p.cps / points.first().map_or(p.cps, |f: &Point| f.cps)
        );
        points.push(p);
    }

    let base_cps = points[0].cps;
    let best = points.iter().map(|p| p.cps / base_cps).fold(0.0f64, f64::max);
    // the acceptance bar needs real cores: only a full run on a host with
    // at least as many cores as the widest point can honestly show 2x
    let speedup_asserted = !smoke && host_parallelism >= *thread_counts.last().unwrap();
    if speedup_asserted {
        assert!(best >= 2.0, "best parallel speedup {best:.2}x misses the 2x bar");
    } else {
        println!("# speedup not asserted (smoke={smoke}, host parallelism {host_parallelism})");
    }

    let objs: Vec<String> = points
        .iter()
        .map(|p| {
            let mut o = json::Obj::new();
            o.num("threads", p.threads as u64)
                .float("cycles_per_sec", p.cps)
                .float("speedup_vs_1", p.cps / base_cps);
            o.finish()
        })
        .collect();
    let mut root = json::Obj::new();
    root.str("experiment", "E19")
        .str("binary", "par_perf")
        .bool("smoke", smoke)
        .num("mesh_side", side as u64)
        .num("cycles_per_rep", cycles)
        .num("reps", reps as u64)
        .num("msg_len", MSG_LEN as u64)
        .float("load", load)
        .num("host_parallelism", host_parallelism as u64)
        .bool("bit_identical", true) // asserted per rep above
        .bool("speedup_asserted", speedup_asserted)
        .float("best_speedup", best)
        .field("points", json::array(&objs));
    harness::export("BENCH_par", &root.finish());
}
