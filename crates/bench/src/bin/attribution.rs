//! Experiment E16 — message-journey tracing and latency attribution.
//!
//! Runs one fully traced 6x6 NAFTA campaign-shaped simulation (transient
//! link faults, repair, source retransmission), folds the event stream
//! into per-message journeys with `ftr-trace`, and publishes the latency
//! attribution: how many cycles of end-to-end latency were spent in the
//! source queue, waiting out retry backoff, blocked on busy channels, and
//! in actual transit.
//!
//! The reconstruction is cross-validated against the engine inline — the
//! journey book's counts and tallies must equal `SimStats` *exactly*, and
//! the four attribution buckets must partition total latency with no
//! remainder. The online deadlock diagnoser rides along and must stay
//! silent; the report records its verdict either way.
//!
//! Usage: `attribution [seed] [load]` (defaults 977, 0.2). Output goes to
//! stdout and `results/attribution.json`; with `FTR_TRACE_DIR` set the
//! raw event stream is also kept as JSONL for `ftr-trace` replay.

use ftr_algos::Nafta;
use ftr_bench::{harness, results};
use ftr_obs::{json, RingSink, TeeSink, TraceSink};
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, TrafficSource};
use ftr_topo::Mesh2D;
use ftr_trace::{DiagnoserSink, JourneyBook, TraceReport};
use std::sync::Arc;

const SIDE: u32 = 6;
const FAULTS: usize = 10;
const FAULT_WINDOW: std::ops::Range<u64> = 200..900;
const REPAIR_AFTER: u64 = 150;
const CYCLES: u64 = 1_800;
const DRAIN_BUDGET: u64 = 60_000;
const MSG_LEN: u32 = 16;

fn main() {
    let args = harness::Args::parse();
    let seed: u64 = args.pos(0, "seed", 977);
    let load: f64 = args.pos(1, "load", 0.2);

    println!(
        "E16 latency attribution: {SIDE}x{SIDE} NAFTA mesh, load {load}, seed {seed}, \
         {FAULTS} transient link faults repaired after {REPAIR_AFTER} cycles\n"
    );

    let mesh = Mesh2D::new(SIDE, SIDE);
    let plan = FaultPlan::random_transient_links(&mesh, FAULTS, FAULT_WINDOW, REPAIR_AFTER, seed);
    let ring = Arc::new(RingSink::new(1 << 22));
    let diag = Arc::new(DiagnoserSink::default());
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![ring.clone(), diag.clone()];
    let jsonl = results::trace_sink(&format!("attribution_s{seed}"));
    if let Some(j) = &jsonl {
        sinks.push(j.clone());
    }
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .trace(Arc::new(TeeSink::new(sinks)))
        .fault_plan(plan)
        .retry(RetryPolicy { max_attempts: 2, backoff_cycles: 64 })
        .build(&Nafta::new(mesh.clone()))
        .expect("valid config");
    // measure from the first injection so the trace and the stats see the
    // same message population — the exactness check below depends on it
    net.set_measuring(true);

    let mut tf = TrafficSource::new(Pattern::Uniform, load, MSG_LEN, seed ^ 0xabcd);
    harness::drive(&mut net, &mut tf, CYCLES);
    assert!(net.drain(DRAIN_BUDGET), "run must drain");
    diag.scan_now();
    if let Some(j) = &jsonl {
        j.flush();
        assert_eq!(j.write_errors(), 0, "trace capture lost events");
    }
    assert_eq!(ring.dropped(), 0, "ring must hold the full trace");

    let mut book = JourneyBook::new();
    book.fold_all(&ring.events());

    // cross-validation: the reconstruction must agree with the engine
    // exactly, or the report below cannot be trusted
    let s = book.summary();
    let st = &net.stats;
    assert_eq!(book.orphans(), 0, "complete trace has no orphans");
    assert!(book.anomalies().is_empty(), "anomalies: {:?}", book.anomalies());
    assert_eq!(s.injected, st.injected_msgs, "injected");
    assert_eq!(s.delivered, st.delivered_msgs, "delivered");
    assert_eq!(s.killed, st.killed_msgs, "killed");
    assert_eq!(s.unroutable, st.unroutable_msgs, "unroutable");
    assert_eq!(s.retried, st.retried_msgs, "retried");
    assert_eq!(s.in_flight, 0, "drained run leaves nothing open");
    assert_eq!(
        (s.latency.count, s.latency.sum, s.latency.min, s.latency.max),
        (st.latency.count, st.latency.sum, st.latency.min, st.latency.max),
        "latency tally"
    );
    let a = &s.attribution;
    assert_eq!(a.total, st.latency.sum, "attributed cycles == total latency");
    assert_eq!(
        a.src_queue + a.retry_backoff + a.blocked + a.transit,
        a.total,
        "buckets partition the total"
    );
    assert!(diag.deadlock().is_none(), "NAFTA run flagged: {:?}", diag.deadlock());

    let report = TraceReport::build(&book, Some(&diag), 8);
    print!("{}", report.human_summary());

    if a.total > 0 {
        let pct = |v: u64| 100.0 * v as f64 / a.total as f64;
        println!("\n{:>14} {:>12} {:>8}", "bucket", "cycles", "share");
        for (name, v) in [
            ("transit", a.transit),
            ("blocked", a.blocked),
            ("src_queue", a.src_queue),
            ("retry_backoff", a.retry_backoff),
        ] {
            println!("{name:>14} {v:>12} {:>7.2}%", pct(v));
        }
        println!("{:>14} {:>12} {:>8}", "total", a.total, "100%");
    }

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E16 latency attribution");
        root.str("topology", &format!("mesh {SIDE}x{SIDE}"));
        root.str("algorithm", "nafta");
        root.float("load", load);
        root.num("seed", seed);
        root.num("faults", FAULTS as u64);
        root.num("repair_after", REPAIR_AFTER);
        root.bool("exact_match", true); // asserted above, recorded for CI
        root.field("report", report.to_json());
        root.finish()
    };
    println!("\nreconstruction matches engine stats exactly; diagnoser clean");
    harness::export("attribution", &payload);
}
