//! Experiment E6 — the Figure 2 purposiveness scenario.
//!
//! A chain of faults separates two regions near the mesh border. A router
//! at the head of the chain needs Ω(|F|) information to know on which
//! side a destination lies (§3); NAFTA's constant-memory approximation
//! instead deactivates nodes (convex completion) and misroutes, so some
//! healthy pairs become unroutable — condition-3 violations the paper
//! predicts. This binary builds growing fault chains and measures:
//! exact reachability, nodes NAFTA deactivates, and condition-3 compliance.

use ftr_algos::{check_conditions, ConditionsReport, Nafta};
use ftr_sim::Network;
use ftr_topo::{graph, FaultSet, Mesh2D, Topology, NORTH};
use std::sync::Arc;

/// Builds the Figure-2 pattern: a horizontal chain of broken vertical
/// links at row `row`, columns `0..len`, leaving a gap at the east end.
fn fault_chain(mesh: &Mesh2D, row: u32, len: u32) -> FaultSet {
    let mut f = FaultSet::new();
    for x in 0..len {
        f.fail_link(mesh, mesh.node_at(x, row), NORTH);
    }
    f
}

fn main() {
    let mesh = Mesh2D::new(10, 6);
    println!("Figure 2 scenario: fault chain of |F| broken row links\n");
    println!(
        "{:>4} {:>11} {:>12} {:>12} {:>10} {:>10}",
        "|F|", "connected", "deactivated", "cond3 pairs", "cond3 ok", "ratio"
    );

    for len in [2u32, 4, 6, 8] {
        let faults = fault_chain(&mesh, 2, len);
        let connected = graph::is_connected(&mesh, &faults);

        // count nodes NAFTA deactivates after propagation
        let algo = Nafta::new(mesh.clone());
        let mut net = Network::builder(Arc::new(mesh.clone())).build(&algo).expect("valid config");
        net.apply_fault_set(&faults);
        net.settle_control(100_000).expect("settles");
        let deact = mesh.nodes().filter(|&n| net.controller(n).state_word() & 1 == 1).count();

        let rep = check_conditions(&mesh, &algo, &faults, None);
        println!(
            "{:>4} {:>11} {:>12} {:>12} {:>10} {:>10.3}",
            len,
            connected,
            deact,
            rep.cond3_pairs,
            rep.cond3_ok,
            ConditionsReport::ratio(rep.cond3_ok, rep.cond3_pairs)
        );
    }

    println!(
        "\nInterpretation: the network stays connected (messages *could* cross \
         east of the chain), but NAFTA's constant-state approximation cannot \
         always find the crossing — exactly the paper's Ω(|F|) memory argument \
         for exact purposiveness."
    );
}
