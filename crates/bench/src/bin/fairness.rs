//! Experiment E14 (ablation) — scheduling and fairness (§3).
//!
//! "It may be desirable to favor messages misrouted due to faults to
//! compensate the double disadvantage of the longer path and higher loaded
//! links." The simulator's switch allocator supports exactly that policy;
//! this experiment measures the latency of detoured vs direct messages
//! with the policy off and on.

use ftr_algos::Nafta;
use ftr_sim::{Network, Pattern, SimConfig, TrafficSource};
use ftr_topo::{FaultSet, Mesh2D};
use std::sync::Arc;

fn run(prioritize: bool) -> (f64, f64, u64) {
    let mesh = Mesh2D::new(8, 8);
    let mut faults = FaultSet::new();
    faults.inject_random_links(&mesh, 8, true, 41);
    let cfg = SimConfig { prioritize_misrouted: prioritize, ..Default::default() };
    let algo = Nafta::new(mesh.clone());
    let mut net = Network::new(Arc::new(mesh.clone()), &algo, cfg);
    net.apply_fault_set(&faults);
    net.settle_control(100_000).unwrap();
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.12, 4, 55);
    for _ in 0..4_000 {
        for (s, d, l) in tf.tick(&mesh, net.faults()) {
            net.send(s, d, l);
        }
        net.step();
    }
    net.drain(100_000);
    (
        net.stats.latency_direct.mean(),
        net.stats.latency_detoured.mean(),
        net.stats.latency_detoured.count,
    )
}

fn main() {
    println!("Fairness ablation: favouring fault-misrouted messages in the switch");
    println!("(NAFTA, 8x8 mesh, 8 link faults, load 0.12)\n");
    println!(
        "{:<22} {:>14} {:>16} {:>10}",
        "policy", "direct latency", "detoured latency", "detoured#"
    );
    for (name, on) in [("round-robin", false), ("misrouted-first", true)] {
        let (direct, detoured, n) = run(on);
        println!("{:<22} {:>14.1} {:>16.1} {:>10}", name, direct, detoured, n);
    }
    println!(
        "\nExpected shape: the policy narrows the detoured-vs-direct latency\n\
         gap at a small cost to direct traffic — 'adaptivity in the small'."
    );
}
