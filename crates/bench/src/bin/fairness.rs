//! Experiment E14 (ablation) — scheduling and fairness (§3).
//!
//! "It may be desirable to favor messages misrouted due to faults to
//! compensate the double disadvantage of the longer path and higher loaded
//! links." The simulator's switch allocator supports exactly that policy;
//! this experiment measures the latency of detoured vs direct messages
//! with the policy off and on. The table prints to stdout and the rows
//! land in `results/fairness.json`.

use ftr_algos::Nafta;
use ftr_bench::harness;
use ftr_obs::json;
use ftr_sim::{Network, Pattern, SimConfig, TrafficSource};
use ftr_topo::{FaultSet, Mesh2D};
use std::sync::Arc;

struct Row {
    policy: &'static str,
    direct: f64,
    detoured: f64,
    detoured_count: u64,
}

fn run(policy: &'static str, prioritize: bool) -> Row {
    let mesh = Mesh2D::new(8, 8);
    let mut faults = FaultSet::new();
    faults.inject_random_links(&mesh, 8, true, 41);
    let cfg = SimConfig { prioritize_misrouted: prioritize, ..Default::default() };
    let algo = Nafta::new(mesh.clone());
    let mut net =
        Network::builder(Arc::new(mesh.clone())).config(cfg).build(&algo).expect("valid config");
    net.apply_fault_set(&faults);
    net.settle_control(100_000).unwrap();
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.12, 4, 55);
    harness::drive(&mut net, &mut tf, 4_000);
    net.drain(100_000);
    Row {
        policy,
        direct: net.stats.latency_direct.mean(),
        detoured: net.stats.latency_detoured.mean(),
        detoured_count: net.stats.latency_detoured.count,
    }
}

fn main() {
    println!("Fairness ablation: favouring fault-misrouted messages in the switch");
    println!("(NAFTA, 8x8 mesh, 8 link faults, load 0.12)\n");
    println!(
        "{:<22} {:>14} {:>16} {:>10}",
        "policy", "direct latency", "detoured latency", "detoured#"
    );
    let rows = [run("round-robin", false), run("misrouted-first", true)];
    for r in &rows {
        println!(
            "{:<22} {:>14.1} {:>16.1} {:>10}",
            r.policy, r.direct, r.detoured, r.detoured_count
        );
    }

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E14 fairness ablation");
        root.field(
            "rows",
            json::array(rows.iter().map(|r| {
                let mut o = json::Obj::new();
                o.str("policy", r.policy)
                    .float("direct_latency", r.direct)
                    .float("detoured_latency", r.detoured)
                    .num("detoured_count", r.detoured_count);
                o.finish()
            })),
        );
        root.finish()
    };
    println!(
        "\nExpected shape: the policy narrows the detoured-vs-direct latency\n\
         gap at a small cost to direct traffic — 'adaptivity in the small'."
    );
    harness::export("fairness", &payload);
}
