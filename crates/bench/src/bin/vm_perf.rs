//! Experiment E20 — direct-threaded bytecode backend performance: the
//! wall-clock saved by replacing AST-walking premise evaluation with the
//! flat `ftr-vm` op stream, while every routing decision stays
//! bit-identical.
//!
//! Two layers of measurement:
//!
//! * **Micro** — one isolated routing decision (XY entry base, a spread
//!   of destinations/link states), fired back-to-back on the table
//!   interpreter and the bytecode VM. This is the per-decision headline,
//!   undiluted by flit movement.
//! * **Campaign** — full simulations on the paper's campaign
//!   configurations: NAFTA on the 6x6 mesh with transient link faults
//!   and source retransmission (the E15 setup), and rule-driven ROUTE_C
//!   on a hypercube with a node fault. Each program runs four arms —
//!   {table, bytecode} × {as compiled, E18-optimized with `StepWeights`}
//!   — over one pre-drawn injection schedule; all four `SimStats` must
//!   be equal (the backend/optimizer identity contracts, checked on live
//!   traffic) while the wall clock is timed per arm.
//!
//! `vm_perf [--smoke]` — smoke mode shrinks the schedules for CI.
//! Results go to `results/BENCH_vm.json`.

use ftr_analyze::{opt, TopoFacts};
use ftr_bench::harness;
use ftr_core::{configure, CubeRuleRouter, RouterConfiguration, RuleRouter};
use ftr_obs::json;
use ftr_rules::{Backend, InputMap, RegFile, Value};
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, SimStats, TrafficSource};
use ftr_topo::{FaultSet, Hypercube, Mesh2D, NodeId, Topology};
use std::sync::Arc;
use std::time::Instant;

const SIDE: u32 = 6;
const CUBE_DIM: u32 = 4;
const MSG_LEN: u32 = 16;
const LOAD: f64 = 0.15;
const SEED: u64 = 7919;
/// Timing repetitions per arm; the minimum is reported (classic
/// min-of-N to strip scheduler noise from a deterministic workload).
const REPS: usize = 3;

// ---------------------------------------------------------------- micro

struct Micro {
    fires: u64,
    table_ns: f64,
    bytecode_ns: f64,
}

impl Micro {
    fn speedup(&self) -> f64 {
        if self.bytecode_ns == 0.0 {
            0.0
        } else {
            self.table_ns / self.bytecode_ns
        }
    }
}

/// Per-decision cost of the XY entry base: same spread of inputs as the
/// E9 criterion bench, timed over `fires` back-to-back interpretations.
fn micro_decision(fires: u64) -> Micro {
    let cfg = configure("xy", ftr_algos::rules_src::XY).expect("xy compiles");
    let prog = &cfg.compiled.prog;
    let vm = ftr_rules::VmProgram::lower(&cfg.compiled).expect("xy lowers");
    let mut regs = RegFile::new(prog);
    // node (2, 3)
    regs.write(prog, 0, &[], Value::Int(2)).unwrap();
    regs.write(prog, 1, &[], Value::Int(3)).unwrap();
    let mut inputs = Vec::new();
    for i in 0..16u8 {
        let mut im = InputMap::new();
        im.set(prog, "xdes", &[], Value::Int((i % 8) as i64)).unwrap();
        im.set(prog, "ydes", &[], Value::Int((i / 2 % 8) as i64)).unwrap();
        for d in 0..4 {
            im.set(prog, "free", &[Value::Int(d)], Value::Bool((i >> (d as u8 % 4)) & 1 == 0))
                .unwrap();
            im.set(prog, "linkok", &[Value::Int(d)], Value::Bool(true)).unwrap();
        }
        inputs.push(im);
    }

    let base = &cfg.compiled.bases[0];
    let mut r = regs.clone();
    let mut table_ns = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for i in 0..fires {
            let im = &inputs[(i % 16) as usize];
            std::hint::black_box(base.fire(prog, &[], &mut r, im).expect("table fires"));
        }
        table_ns = table_ns.min(t0.elapsed().as_nanos() as f64 / fires as f64);
    }

    let mut sc = ftr_rules::vm::Scratch::new();
    let mut r2 = regs.clone();
    let mut bytecode_ns = f64::INFINITY;
    for _ in 0..REPS {
        let t1 = Instant::now();
        for i in 0..fires {
            let im = &inputs[(i % 16) as usize];
            std::hint::black_box(
                vm.bases[0].fire(prog, &[], &mut r2, im, &mut sc).expect("vm fires"),
            );
        }
        bytecode_ns = bytecode_ns.min(t1.elapsed().as_nanos() as f64 / fires as f64);
    }

    assert_eq!(r, r2, "micro arms must leave identical register state");
    Micro { fires, table_ns, bytecode_ns }
}

// ------------------------------------------------------------- campaign

/// One program's four configuration arms.
struct Arms {
    table: RouterConfiguration,
    bytecode: RouterConfiguration,
    table_opt: RouterConfiguration,
    bytecode_opt: RouterConfiguration,
    rewrites: usize,
}

fn arms(name: &str, src: &str, topo: Option<TopoFacts>) -> Arms {
    let table = configure(name, src).expect("program compiles");
    let table = table.with_backend(Backend::Table).expect("table backend");
    let bytecode = configure(name, src)
        .expect("program compiles")
        .with_backend(Backend::Bytecode)
        .expect("lowers");
    let oopts = opt::OptOptions { topo: topo.unwrap_or_default(), ..opt::OptOptions::default() };
    let optimized =
        opt::optimize_rulebase(name, &table.compiled.prog, &oopts).expect("program optimizes");
    let rewrites = optimized.cert.rewrites.len();
    let table_opt = RouterConfiguration::from_compiled(name, optimized.compiled.clone())
        .expect("optimized program costs out")
        .with_step_weights(optimized.step_weights.clone())
        .with_backend(Backend::Table)
        .expect("table backend");
    let bytecode_opt = RouterConfiguration::from_compiled(name, optimized.compiled)
        .expect("optimized program costs out")
        .with_step_weights(optimized.step_weights)
        .with_backend(Backend::Bytecode)
        .expect("lowers");
    Arms { table, bytecode, table_opt, bytecode_opt, rewrites }
}

type Schedule = Vec<Vec<(NodeId, NodeId, u32)>>;

fn schedule(topo: &dyn Topology, load: f64, cycles: u64, seed: u64) -> Schedule {
    let faults = FaultSet::new();
    let mut tf = TrafficSource::new(Pattern::Uniform, load, MSG_LEN, seed);
    (0..cycles).map(|_| tf.tick(topo, &faults)).collect()
}

/// Runs one arm over `sched` and times the simulation loop (network
/// construction excluded — the backend's cost is per decision, not per
/// build).
fn timed_run(mut net: Network, sched: &Schedule) -> (SimStats, f64) {
    net.set_measuring(true);
    let t0 = Instant::now();
    for cycle in sched {
        for &(s, d, l) in cycle {
            let _ = net.send(s, d, l);
        }
        net.step();
    }
    net.drain(200_000);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (net.stats, wall_ms)
}

struct CampaignReport {
    name: &'static str,
    topology: String,
    cycles: u64,
    rewrites: usize,
    delivered: u64,
    // (label, wall_ms) in arm order: table, bytecode, table_opt, bytecode_opt
    walls: [(&'static str, f64); 4],
}

impl CampaignReport {
    fn speedup_plain(&self) -> f64 {
        self.walls[0].1 / self.walls[1].1
    }
    fn speedup_optimized(&self) -> f64 {
        self.walls[2].1 / self.walls[3].1
    }
}

fn mesh_campaign(name: &'static str, src: &str, cycles: u64) -> CampaignReport {
    let mesh = Mesh2D::new(SIDE, SIDE);
    let a = arms(name, src, Some(TopoFacts::mesh(SIDE, SIDE)));
    let sched = schedule(&mesh, LOAD, cycles, SEED ^ 0x5ca1e);
    let build = |cfg: &RouterConfiguration| {
        let algo = RuleRouter::new(cfg.clone(), mesh.clone(), 1);
        Network::builder(Arc::new(mesh.clone()))
            .fault_plan(FaultPlan::random_transient_links(&mesh, 6, 100..450, 120, SEED))
            .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 })
            .build(&algo)
            .expect("valid config")
    };
    run_arms(name, format!("{SIDE}x{SIDE} mesh, 6 transient link faults"), cycles, a, &sched, build)
}

fn cube_campaign(name: &'static str, cycles: u64) -> CampaignReport {
    let cube = Hypercube::new(CUBE_DIM);
    let src = ftr_algos::rules_src::route_c_source(CUBE_DIM);
    let a = arms(name, &src, None);
    let sched = schedule(&cube, 0.1, cycles, SEED ^ 0xc0be);
    let build = |cfg: &RouterConfiguration| {
        let algo = CubeRuleRouter::new(cfg.clone(), cube.clone());
        let mut net = Network::builder(Arc::new(cube.clone())).build(&algo).expect("valid config");
        net.inject_node_fault(NodeId(5));
        net.settle_control(10_000).expect("control settles");
        net
    };
    run_arms(name, format!("{CUBE_DIM}-cube, 1 node fault"), cycles, a, &sched, build)
}

fn run_arms(
    name: &'static str,
    topology: String,
    cycles: u64,
    arms: Arms,
    sched: &Schedule,
    build: impl Fn(&RouterConfiguration) -> Network,
) -> CampaignReport {
    let labeled = [
        ("table", &arms.table),
        ("bytecode", &arms.bytecode),
        ("table_opt", &arms.table_opt),
        ("bytecode_opt", &arms.bytecode_opt),
    ];
    let mut stats: Vec<SimStats> = Vec::new();
    let mut walls = [("", 0.0); 4];
    for (i, (label, cfg)) in labeled.iter().enumerate() {
        let mut best = f64::INFINITY;
        let mut kept = None;
        for _ in 0..REPS {
            let (s, ms) = timed_run(build(cfg), sched);
            best = best.min(ms);
            if let Some(prev) = &kept {
                assert_eq!(prev, &s, "{name} {label}: repetition diverged — sim not deterministic");
            }
            kept = Some(s);
        }
        let s = kept.expect("at least one repetition");
        println!(
            "{name:>10} {label:>14}  {best:>9.1} ms  delivered {:>6}  decision_steps.max {}",
            s.delivered_msgs, s.decision_steps.max
        );
        walls[i] = (label, best);
        stats.push(s);
    }
    // the identity contracts, on live traffic: every arm — bytecode,
    // optimizer, both at once — must report the same SimStats, including
    // the StepWeights-modeled decision_steps
    for (i, s) in stats.iter().enumerate().skip(1) {
        assert_eq!(&stats[0], s, "{name}: arm {} diverged from the table baseline", walls[i].0);
    }
    assert!(stats[0].delivered_msgs > 0, "{name}: campaign must deliver traffic");
    CampaignReport {
        name,
        topology,
        cycles,
        rewrites: arms.rewrites,
        delivered: stats[0].delivered_msgs,
        walls,
    }
}

fn report_json(r: &CampaignReport) -> String {
    let mut o = json::Obj::new();
    o.str("program", r.name)
        .str("topology", &r.topology)
        .num("cycles", r.cycles)
        .num("rewrites", r.rewrites as u64)
        .num("delivered_msgs", r.delivered)
        .bool("bit_identical", true) // asserted across all four arms above
        .float("speedup_plain", r.speedup_plain())
        .float("speedup_optimized", r.speedup_optimized());
    for (label, ms) in &r.walls {
        o.float(&format!("wall_ms_{label}"), *ms);
    }
    o.finish()
}

fn main() {
    let smoke = harness::Args::parse().smoke();
    let cycles = if smoke { 400 } else { 3_000 };
    let fires = if smoke { 200_000 } else { 2_000_000 };
    println!(
        "# E20 vm_perf: campaign {cycles} cycles per arm, micro {fires} fires (smoke={smoke})"
    );

    let micro = micro_decision(fires);
    println!(
        "# micro (xy decision): table {:.0} ns/fire, bytecode {:.0} ns/fire  ({:.2}x)",
        micro.table_ns,
        micro.bytecode_ns,
        micro.speedup()
    );
    // the backend's raison d'être, measured where flit movement cannot
    // dilute it: a bytecode decision must not be slower than a table one
    assert!(micro.speedup() >= 1.0, "bytecode decision slower than table: {:.2}x", micro.speedup());

    let reports = [
        mesh_campaign("nafta", ftr_algos::rules_src::NAFTA, cycles),
        cube_campaign("route_c", cycles),
    ];
    for r in &reports {
        println!(
            "# {}: sim wall-clock speedup {:.2}x plain, {:.2}x optimized",
            r.name,
            r.speedup_plain(),
            r.speedup_optimized()
        );
    }

    let mut micro_obj = json::Obj::new();
    micro_obj
        .str("program", "xy")
        .num("fires", micro.fires)
        .float("table_ns_per_fire", micro.table_ns)
        .float("bytecode_ns_per_fire", micro.bytecode_ns)
        .float("speedup", micro.speedup());

    let mut root = json::Obj::new();
    root.str("experiment", "E20")
        .str("binary", "vm_perf")
        .bool("smoke", smoke)
        .num("campaign_cycles", cycles)
        .num("msg_len", MSG_LEN as i64)
        .field("micro", micro_obj.finish())
        .field("campaigns", json::array(reports.iter().map(report_json)));
    harness::export("BENCH_vm", &root.finish());
}
