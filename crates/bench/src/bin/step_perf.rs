//! Experiment E17 — engine-scaling baseline: active-set `Network::step`
//! vs the dense every-node reference scan.
//!
//! The simulator's step loop historically visited every node every cycle,
//! so wall-clock per cycle was O(network size) even when a single worm was
//! in flight. Active-set scheduling makes step cost track the number of
//! nodes with work. This harness pins the claim with numbers: it measures
//! simulated cycles per second for both paths on the paper's two standard
//! fabrics — a 6x6 NAFTA mesh and a ROUTE_C 4-cube — at a low load
//! (0.02 flits/node/cycle), a moderate load (0.2) and saturation (0.6).
//!
//! Methodology: injection schedules are pre-generated outside the timed
//! region (the Bernoulli source costs one RNG draw per node per cycle,
//! which would otherwise re-introduce exactly the O(nodes) term the
//! active set removes); each (fabric, load, mode) point runs one warmup
//! pass plus `reps` timed passes and reports the median. Both modes
//! replay the same schedule, so their final `SimStats` must be
//! bit-identical — the run doubles as a cheap correctness check.
//!
//! `step_perf [--smoke]` — smoke mode shrinks cycles/reps for CI and
//! skips the absolute speedup assertions (shared runners are too noisy
//! for hard thresholds; CI instead compares the exported ratios against
//! the committed baseline). Results go to `results/BENCH_step.json`.

use ftr_algos::{Nafta, RouteC};
use ftr_bench::harness;
use ftr_obs::json;
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Network, Pattern, TrafficSource};
use ftr_topo::{Hypercube, Mesh2D, NodeId, Topology};
use std::sync::Arc;
use std::time::Instant;

const LOADS: [f64; 3] = [0.02, 0.2, 0.6];
const MSG_LEN: u32 = 8;
const SEED: u64 = 0x5eed;

/// One (load, mode) measurement: median simulated cycles per second.
struct Point {
    load: f64,
    dense_cps: f64,
    active_cps: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.active_cps / self.dense_cps
    }
}

type Schedule = Vec<Vec<(NodeId, NodeId, u32)>>;

/// Pre-draws the whole injection schedule for `cycles` cycles.
fn schedule<T: Topology + Clone + 'static>(topo: &T, load: f64, cycles: u64) -> Schedule {
    let faults = ftr_topo::FaultSet::new();
    let mut tf = TrafficSource::new(Pattern::Uniform, load, MSG_LEN, SEED);
    (0..cycles).map(|_| tf.tick(topo, &faults)).collect()
}

/// Replays `sched` once; returns (elapsed seconds, final stats).
fn replay<T: Topology + Clone + 'static>(
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    sched: &Schedule,
    dense: bool,
) -> (f64, ftr_sim::SimStats) {
    let mut net = Network::builder(Arc::new(topo.clone())).build(algo).expect("valid config");
    net.set_dense_reference(dense);
    let t0 = Instant::now();
    for cycle in sched {
        for &(s, d, l) in cycle {
            net.send(s, d, l).expect("healthy fabric accepts");
        }
        net.step();
    }
    let secs = t0.elapsed().as_secs_f64();
    net.drain(200_000);
    (secs, net.stats)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn measure_fabric<T: Topology + Clone + 'static>(
    name: &str,
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    cycles: u64,
    reps: usize,
) -> Vec<Point> {
    let mut points = Vec::new();
    for load in LOADS {
        let sched = schedule(topo, load, cycles);
        let mut cps = [Vec::new(), Vec::new()]; // [dense, active]
        let mut stats_pair = [None, None];
        replay(topo, algo, &sched, true); // warmup (untimed)
        replay(topo, algo, &sched, false);
        // interleave the modes rep by rep: clock-frequency drift and noisy
        // neighbours then hit both paths evenly instead of whichever mode
        // happens to run second
        for _ in 0..reps {
            for (slot, dense) in [(0usize, true), (1usize, false)] {
                let (secs, stats) = replay(topo, algo, &sched, dense);
                cps[slot].push(cycles as f64 / secs);
                stats_pair[slot] = Some(stats);
            }
        }
        // both modes replayed the same schedule: any stats divergence is
        // an active-set correctness bug, not a measurement artefact
        assert_eq!(
            stats_pair[0], stats_pair[1],
            "{name} load {load}: dense and active stats diverged"
        );
        let p =
            Point { load, dense_cps: median(cps[0].clone()), active_cps: median(cps[1].clone()) };
        println!(
            "{name:>18}  load {load:>5.2}  dense {:>12.0} c/s  active {:>12.0} c/s  speedup {:>5.2}x",
            p.dense_cps,
            p.active_cps,
            p.speedup()
        );
        points.push(p);
    }
    points
}

fn points_json(points: &[Point]) -> String {
    let objs: Vec<String> = points
        .iter()
        .map(|p| {
            let mut o = json::Obj::new();
            o.float("load", p.load)
                .float("dense_cycles_per_sec", p.dense_cps)
                .float("active_cycles_per_sec", p.active_cps)
                .float("speedup", p.speedup());
            o.finish()
        })
        .collect();
    json::array(&objs)
}

fn main() {
    let smoke = harness::Args::parse().smoke();
    let (cycles, reps) = if smoke { (4_000, 3) } else { (30_000, 5) };
    println!("# E17 step_perf: {cycles} cycles/rep, median of {reps} (smoke={smoke})");

    let mesh = Mesh2D::new(6, 6);
    let mesh_points =
        measure_fabric("mesh6x6_nafta", &mesh, &Nafta::new(mesh.clone()), cycles, reps);
    let cube = Hypercube::new(4);
    let cube_points =
        measure_fabric("hypercube4_route_c", &cube, &RouteC::new(cube.clone()), cycles, reps);

    let low = &mesh_points[0];
    let sat = &mesh_points[LOADS.len() - 1];
    println!(
        "# headline: low-load speedup {:.2}x, saturation ratio {:.3}",
        low.speedup(),
        sat.speedup()
    );
    if !smoke {
        // the active-set acceptance bar, asserted where the numbers are
        // stable (a dedicated run, not a shared CI runner). The low-load
        // bar dropped from 5x when the sharded engine landed: the arena
        // accessor layer and per-shard scratch/replay structure add a
        // fixed per-cycle cost that dilutes the active-set win on
        // near-idle fabrics, in exchange for bit-identical N-thread
        // scaling (DESIGN.md §14). Saturation stays at parity.
        assert!(low.speedup() >= 4.0, "low-load speedup {:.2}x misses the 4x bar", low.speedup());
        assert!(
            sat.speedup() >= 0.97,
            "saturation regression {:.1}% exceeds 3%",
            (1.0 - sat.speedup()) * 100.0
        );
    }

    let mut root = json::Obj::new();
    root.str("experiment", "E17")
        .str("binary", "step_perf")
        .bool("smoke", smoke)
        .num("cycles_per_rep", cycles as i64)
        .num("reps", reps as i64)
        .num("msg_len", MSG_LEN as i64)
        .float("low_load_speedup", low.speedup())
        .float("saturation_ratio", sat.speedup())
        .field("mesh6x6_nafta", points_json(&mesh_points))
        .field("hypercube4_route_c", points_json(&cube_points));
    harness::export("BENCH_step", &root.finish());
}
