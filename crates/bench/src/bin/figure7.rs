//! Figure 7 reproduction — the rule-interpreter configuration for
//! ROUTE_C's `update_state` base (and NAFTA's decision chain): which
//! values wire directly into the table index, which comparisons become
//! FCFB predicate bits, and the resulting RBR-kernel geometry.

use ftr_algos::rules_src;
use ftr_rules::{compile, parse, CompileOptions};

fn main() {
    println!("Figure 7 — interpreter configurations (regenerated)\n");
    for (name, src, bases) in [
        ("route_c", rules_src::ROUTE_C, vec!["update_state", "decide_dir"]),
        ("nafta", rules_src::NAFTA, vec!["incoming_message", "in_message_ft"]),
    ] {
        let prog = parse(src).expect("shipped program parses");
        let compiled = compile(&prog, &CompileOptions::default()).expect("compiles");
        for base in bases {
            let (i, _) = prog.rulebase(base).expect("base exists");
            println!("[{name}]");
            println!("{}", compiled.bases[i].describe(&prog));
        }
    }
    println!(
        "Compare with the paper's Figure 7: `state` and `new_state(dir)` are\n\
         used 'as part of the table index directly' (direct wires here),\n\
         while the counters go through comparators (FCFB predicates)."
    );
}
