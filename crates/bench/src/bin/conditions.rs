//! Experiment E8 — empirical compliance with conditions 1–3 (§2.1).
//!
//! For every algorithm and growing random fault counts, reports which
//! fraction of node pairs satisfying each condition's premise the
//! algorithm actually handles. Expected shape:
//!   * XY: cond2 only (oblivious, minimal, zero fault tolerance);
//!   * west-first: cond2 + partial cond1;
//!   * NARA: full cond1 fault-free, collapses under faults;
//!   * NAFTA: full cond1 fault-free, high cond2/cond3 under faults
//!     (not 100% — convex completion, as the paper concedes);
//!   * spanning tree: cond3 always, cond2 rarely.

use ftr_algos::{
    check_conditions, ConditionsReport, Nafta, Nara, SpanningTreeRouting, WestFirst, XyRouting,
};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_topo::{FaultSet, Mesh2D};

fn row(name: &str, algo: &dyn RoutingAlgorithm, mesh: &Mesh2D, faults: &FaultSet) {
    let rep = check_conditions(mesh, algo, faults, None);
    println!(
        "{:<16} {:>6} {:>9.3} {:>9.3} {:>9.3}",
        name,
        faults.num_link_faults(),
        ConditionsReport::ratio(rep.cond1_ok, rep.cond1_pairs),
        ConditionsReport::ratio(rep.cond2_ok, rep.cond2_pairs),
        ConditionsReport::ratio(rep.cond3_ok, rep.cond3_pairs),
    );
}

fn main() {
    let mesh = Mesh2D::new(6, 6);
    println!("Conditions 1–3 compliance ratios (1.0 = premise always satisfied)\n");
    println!("{:<16} {:>6} {:>9} {:>9} {:>9}", "algorithm", "|F|", "cond1", "cond2", "cond3");

    for nf in [0usize, 2, 4, 6] {
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, nf, true, 31);
        row("xy", &XyRouting::new(mesh.clone()), &mesh, &faults);
        row("west-first", &WestFirst::new(mesh.clone()), &mesh, &faults);
        row("nara", &Nara::new(mesh.clone()), &mesh, &faults);
        row("nafta", &Nafta::new(mesh.clone()), &mesh, &faults);
        row("spanning-tree", &SpanningTreeRouting::new(mesh.clone()), &mesh, &faults);
        println!();
    }
}
