//! Experiment E21 (codec half) — compact binary traces vs JSONL.
//!
//! The FTB format exists so that fleet-scale campaigns can afford to
//! keep every run's full event trace. This driver quantifies the claim
//! on a representative stream — one dynamic-fault campaign run's events
//! captured in memory — and exports `results/BENCH_trace.json`:
//!
//! - **Size**: bytes per event for JSONL and FTB and their ratio. The
//!   full run must show FTB at least 4x smaller.
//! - **Encode throughput**: events/sec serializing the captured stream
//!   through each codec, per-rep arrays (for the regression gate's
//!   median/MAD summaries) plus the ratio of medians. The full run must
//!   show FTB at least 4x faster; the smoke bar is 2x (CI runners are
//!   noisy).
//! - **Decode throughput**: events/sec replaying the FTB bytes back
//!   into typed events (with a JSONL comparison point).
//! - **Fleet wall-clock**: seconds to execute a small fleet of real
//!   campaign runs ([`ftr_bench::fleetjob`]) at 1 and `FTR_THREADS`
//!   workers, with the host's parallelism reported honestly — a 1-CPU
//!   box cannot show a parallel speedup and the JSON says so.
//!
//! ```text
//! trace_perf [--smoke]
//! ```

use ftr_bench::fleetjob::{self, Campaign};
use ftr_bench::{harness, regress};
use ftr_obs::ftb::{BinSink, FtbHeader, FtbReader};
use ftr_obs::{json, RingSink, TraceEvent, TraceSink};
use ftr_sim::{run_fleet, worker_count};
use std::io::Cursor;
use std::sync::Arc;
use std::time::Instant;

/// `Write` into a shared growable buffer, so the encoded bytes survive
/// the sink that wrote them.
#[derive(Clone)]
struct SharedVec(Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedVec {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Captures one campaign run's full event stream in memory.
fn capture(cycles_scale: u64, load: f64) -> Vec<TraceEvent> {
    use ftr_algos::Nafta;
    use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, TrafficSource};
    use ftr_topo::Mesh2D;

    let mesh = Mesh2D::new(fleetjob::SIDE, fleetjob::SIDE);
    let plan = FaultPlan::random_transient_links(
        &mesh,
        8,
        fleetjob::FAULT_WINDOW,
        fleetjob::REPAIR_AFTER,
        1,
    );
    let ring = Arc::new(RingSink::new(8_000_000));
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .fault_plan(plan)
        .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 })
        .trace(ring.clone())
        .build(&Nafta::new(mesh.clone()))
        .expect("valid config");
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, load, fleetjob::MSG_LEN, 0x5ca1e);
    harness::drive(&mut net, &mut tf, fleetjob::WARM_CYCLES * cycles_scale);
    assert!(net.drain(fleetjob::DRAIN_BUDGET), "capture run must drain");
    assert!(net.stats.accounting_balanced() && !net.stats.deadlock);
    assert_eq!(ring.dropped(), 0, "capture ring overflowed");
    ring.drain()
}

fn encode_jsonl(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    for ev in events {
        buf.extend_from_slice(ev.to_json().as_bytes());
        buf.push(b'\n');
    }
    buf
}

fn encode_ftb(events: &[TraceEvent]) -> Vec<u8> {
    let shared = SharedVec(Arc::new(std::sync::Mutex::new(Vec::new())));
    let sink = BinSink::new(shared.clone(), FtbHeader::new().with("label", "trace_perf"))
        .expect("in-memory sink");
    for ev in events {
        sink.record(ev);
    }
    sink.finalize().expect("finalize");
    assert_eq!(sink.write_errors(), 0);
    drop(sink);
    Arc::try_unwrap(shared.0)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|m| m.lock().unwrap().clone())
}

/// Times `f` for `reps` repetitions; returns events/sec per rep.
fn throughput(reps: usize, events: usize, mut f: impl FnMut()) -> Vec<f64> {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            events as f64 / t.elapsed().as_secs_f64()
        })
        .collect()
}

fn main() {
    let args = harness::Args::parse();
    let smoke = args.smoke();
    let (cycles_scale, load, reps, fleet_runs) =
        if smoke { (2, 0.2, 3, 20) } else { (8, 0.2, 5, 60) };

    println!("E21 trace codec: capturing a dynamic-fault campaign stream…");
    let events = capture(cycles_scale, load);
    let n = events.len();
    assert!(n > 1_000, "capture too small to measure ({n} events)");

    let jsonl_bytes = encode_jsonl(&events).len() as u64;
    let ftb_bytes = encode_ftb(&events).len() as u64;
    let size_ratio = jsonl_bytes as f64 / ftb_bytes as f64;
    println!(
        "{n} events: JSONL {jsonl_bytes} B ({:.1} B/event), FTB {ftb_bytes} B \
         ({:.1} B/event) — {size_ratio:.2}x smaller",
        jsonl_bytes as f64 / n as f64,
        ftb_bytes as f64 / n as f64,
    );

    let jsonl_enc = throughput(reps, n, || {
        std::hint::black_box(encode_jsonl(&events));
    });
    let ftb_enc = throughput(reps, n, || {
        std::hint::black_box(encode_ftb(&events));
    });
    let encode_speedup = regress::median(&ftb_enc).unwrap() / regress::median(&jsonl_enc).unwrap();
    println!(
        "encode: JSONL {:.0} events/s, FTB {:.0} events/s — {encode_speedup:.2}x faster",
        regress::median(&jsonl_enc).unwrap(),
        regress::median(&ftb_enc).unwrap(),
    );

    let ftb_buf = encode_ftb(&events);
    let jsonl_buf = encode_jsonl(&events);
    let ftb_dec = throughput(reps, n, || {
        let r = FtbReader::from_reader(Cursor::new(&ftb_buf[..])).expect("header");
        let mut count = 0usize;
        for ev in r {
            std::hint::black_box(ev.expect("decode"));
            count += 1;
        }
        assert_eq!(count, n);
    });
    let jsonl_dec = throughput(reps, n, || {
        let mut count = 0usize;
        for line in jsonl_buf.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let ev = TraceEvent::from_json(std::str::from_utf8(line).unwrap()).expect("decode");
            std::hint::black_box(ev);
            count += 1;
        }
        assert_eq!(count, n);
    });
    let decode_eps = regress::median(&ftb_dec).unwrap();
    println!(
        "decode: JSONL {:.0} events/s, FTB {decode_eps:.0} events/s",
        regress::median(&jsonl_dec).unwrap()
    );

    // the compact format must actually pay for itself
    let (size_bar, speed_bar) = if smoke { (4.0, 2.0) } else { (4.0, 4.0) };
    assert!(size_ratio >= size_bar, "FTB only {size_ratio:.2}x smaller (bar {size_bar}x)");
    assert!(
        encode_speedup >= speed_bar,
        "FTB encode only {encode_speedup:.2}x faster (bar {speed_bar}x)"
    );

    // fleet wall-clock: real campaign runs at 1 and FTR_THREADS workers
    let host_parallelism =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) as u64;
    let mut thread_counts = vec![1usize];
    if worker_count() > 1 {
        thread_counts.push(worker_count());
    }
    let specs = fleetjob::specs(fleet_runs, 0.12);
    let mut fleet_points = Vec::new();
    for &threads in &thread_counts {
        let manifest = std::env::temp_dir()
            .join(format!("ftr-trace-perf-{}-{threads}.manifest", std::process::id()));
        let _ = std::fs::remove_file(&manifest);
        let t = Instant::now();
        let outcome = run_fleet(&Campaign, &specs, &manifest, threads).expect("fleet I/O");
        let seconds = t.elapsed().as_secs_f64();
        assert_eq!(outcome.executed, fleet_runs, "fresh manifest must execute every run");
        let _ = std::fs::remove_file(&manifest);
        println!(
            "fleet: {fleet_runs} runs on {threads} thread(s): {seconds:.2}s \
             ({:.1} runs/s)",
            fleet_runs as f64 / seconds
        );
        let mut o = json::Obj::new();
        o.num("threads", threads as u64)
            .float("seconds", seconds)
            .float("runs_per_sec", fleet_runs as f64 / seconds);
        fleet_points.push(o.finish());
    }

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E21");
        root.str("binary", "trace_perf");
        root.bool("smoke", smoke);
        root.num("events", n as u64);
        root.num("jsonl_bytes", jsonl_bytes);
        root.num("ftb_bytes", ftb_bytes);
        root.float("size_ratio", size_ratio);
        root.float("bytes_per_event_jsonl", jsonl_bytes as f64 / n as f64);
        root.float("bytes_per_event_ftb", ftb_bytes as f64 / n as f64);
        root.field(
            "jsonl_encode_events_per_sec",
            json::array(jsonl_enc.iter().map(f64::to_string)),
        );
        root.field("ftb_encode_events_per_sec", json::array(ftb_enc.iter().map(f64::to_string)));
        root.float("encode_speedup", encode_speedup);
        root.float("decode_events_per_sec", decode_eps);
        root.float("jsonl_decode_events_per_sec", regress::median(&jsonl_dec).unwrap());
        root.num("host_parallelism", host_parallelism);
        root.field("fleet", {
            let mut f = json::Obj::new();
            f.num("runs", fleet_runs as u64);
            f.field("points", json::array(fleet_points));
            f.finish()
        });
        root.finish()
    };
    harness::export("BENCH_trace", &payload);
}
