//! Experiment E12 — graceful degradation and fault-aware adaptivity.
//!
//! The paper (§3, Adaptivity): "an adaptivity scheme not aware of
//! fault-tolerance could cause a very ineffective use of the network
//! because faulty regions may appear lowly loaded ... a faulty link just
//! has to appear as maximally loaded." In this simulator dead links are
//! excluded from the candidate set outright (the equivalent of "maximally
//! loaded"); the experiment measures how throughput and latency degrade
//! as faults accumulate, and how much traffic is absorbed by detours.

use ftr_algos::Nafta;
use ftr_bench::{harness, measure_load};
use ftr_sim::{Network, Pattern, SimConfig, TrafficSource};
use ftr_topo::{FaultSet, Mesh2D};
use std::sync::Arc;

fn main() {
    let mesh = Mesh2D::new(8, 8);
    let cfg = SimConfig::default();
    let algo = Nafta::new(mesh.clone());

    println!("NAFTA graceful degradation, 8x8 mesh, offered load 0.15\n");
    println!(
        "{:>4} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "|F|", "latency", "throughput", "delivered", "mean detour", "unroutable"
    );

    for nf in [0usize, 2, 4, 8, 12, 16] {
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, nf, true, 13);

        let p =
            measure_load(&mesh, &algo, &faults, Pattern::Uniform, 0.15, 4, 1_000, 3_000, 21, cfg);

        // a separate run to collect detour/unroutable detail
        let mut net = Network::builder(Arc::new(mesh.clone()))
            .config(cfg)
            .build(&algo)
            .expect("valid config");
        net.apply_fault_set(&faults);
        net.settle_control(100_000).unwrap();
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 4, 22);
        harness::drive(&mut net, &mut tf, 2_000);
        net.drain(50_000);

        println!(
            "{:>4} {:>10.1} {:>12.4} {:>10.3} {:>12.3} {:>12}",
            nf,
            p.latency,
            p.throughput,
            p.delivery_ratio,
            net.stats.mean_excess_hops(),
            net.stats.unroutable_msgs,
        );
    }

    println!(
        "\nExpected shape: latency and detour length grow smoothly with the \
         fault count while delivery stays near 1.0 — graceful degradation \
         rather than collapse."
    );
}
