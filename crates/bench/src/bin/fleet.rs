//! Experiment E21 (fleet half) — resumable 10⁴-run fault campaigns.
//!
//! The statistical claims of E15 rest on hundreds of runs; this driver
//! scales the same dynamic-fault lifecycle (transient link faults on a
//! 6x6 NAFTA mesh, source retransmission on) to fleets of ten thousand
//! deterministic runs through [`ftr_sim::run_fleet`]. Every completed
//! run journals one line to a manifest, so an interrupted fleet — CI
//! timeout, preempted box — resumes where it stopped instead of
//! starting over; a rerun prints how many runs were resumed versus
//! executed. With `FTR_TRACE_DIR` set, each run also streams its full
//! event trace to a compact binary `.ftb` capture (self-describing
//! header carrying geometry/seed/label), cheap enough to keep for the
//! whole fleet and replayable through `ftr-trace`.
//!
//! Hard invariants, per run, attributed to the run's seed on failure:
//! message accounting balances, the network drains, neither the
//! watchdog nor the online diagnoser reports a deadlock, and the trace
//! capture loses no events (see [`ftr_bench::fleetjob`]).
//!
//! ```text
//! fleet [runs] [load] [manifest] [--smoke]
//! ```
//!
//! Aggregates go to stdout and `results/fleet.json`.

use ftr_bench::fleetjob::{specs, Campaign, FAULT_COUNTS, SIDE};
use ftr_bench::{harness, results};
use ftr_obs::json;
use ftr_sim::run_fleet;

fn main() {
    let args = harness::Args::parse();
    let runs: usize = args.pos(0, "runs", if args.smoke() { 120 } else { 10_000 });
    let load: f64 = args.pos(1, "load", 0.12);
    let manifest: String = args.pos(
        2,
        "manifest",
        results::results_dir().join("fleet.manifest").display().to_string(),
    );

    let fleet = specs(runs, load);

    println!(
        "E21 fleet: {runs} dynamic-fault runs on a {SIDE}x{SIDE} NAFTA mesh, \
         load {load}, retry on, manifest {manifest}"
    );
    let threads = harness::threads();
    let start = std::time::Instant::now();
    let outcome = run_fleet(&Campaign, &fleet, std::path::Path::new(&manifest), threads)
        .expect("fleet manifest I/O");
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "fleet: resumed {} runs from the manifest, executed {} ({elapsed:.1}s on {threads} threads)",
        outcome.resumed, outcome.executed
    );

    // aggregate per fault count
    println!(
        "\n{:>4} {:>6} {:>10} {:>10} {:>8} {:>7} {:>8} {:>10}",
        "|F|", "runs", "delivery", "worst", "killed", "unrte", "retried", "latency"
    );
    let mut cells = Vec::new();
    for &faults in &FAULT_COUNTS {
        let sel: Vec<_> = fleet
            .iter()
            .zip(&outcome.outs)
            .filter(|(s, _)| s.faults == faults)
            .map(|(_, o)| o)
            .collect();
        let delivered: u64 = sel.iter().map(|o| o.delivered).sum();
        let killed: u64 = sel.iter().map(|o| o.killed).sum();
        let unroutable: u64 = sel.iter().map(|o| o.unroutable).sum();
        let retried: u64 = sel.iter().map(|o| o.retried).sum();
        let done = delivered + killed + unroutable;
        let ratio = if done == 0 { 0.0 } else { delivered as f64 / done as f64 };
        let worst = sel.iter().map(|o| o.delivery_ratio()).fold(1.0, f64::min);
        let lat_sum: u64 = sel.iter().map(|o| o.latency_sum).sum();
        let lat_count: u64 = sel.iter().map(|o| o.latency_count).sum();
        let latency = if lat_count == 0 { 0.0 } else { lat_sum as f64 / lat_count as f64 };
        println!(
            "{faults:>4} {:>6} {ratio:>10.5} {worst:>10.5} {killed:>8} {unroutable:>7} \
             {retried:>8} {latency:>10.1}",
            sel.len()
        );
        let mut o = json::Obj::new();
        o.num("faults", faults as u64)
            .num("runs", sel.len() as u64)
            .num("delivered", delivered)
            .num("killed", killed)
            .num("unroutable", unroutable)
            .num("retried", retried)
            .float("delivery_ratio", ratio)
            .float("worst_run_ratio", worst)
            .float("latency_mean", latency);
        cells.push(o.finish());

        // the retry policy must keep fleet-scale delivery essentially
        // lossless at every fault rate (mirrors E15's headline claim)
        assert!(ratio >= 0.99, "fleet delivery ratio at |F|={faults} fell to {ratio}");
    }

    let injected: u64 = outcome.outs.iter().map(|o| o.injected).sum();
    let rejected: u64 = outcome.outs.iter().map(|o| o.rejected).sum();
    let trace_events: u64 = outcome.outs.iter().map(|o| o.trace_events).sum();
    println!(
        "\nall {runs} runs balanced, drained, deadlock-free \
         ({injected} injected, {rejected} rejected sends, {trace_events} traced events)"
    );

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E21 resumable fault-campaign fleet");
        root.str("topology", &format!("mesh {SIDE}x{SIDE}"));
        root.str("algorithm", "nafta");
        root.num("runs", runs as u64);
        root.num("resumed", outcome.resumed as u64);
        root.num("executed", outcome.executed as u64);
        root.float("load", load);
        root.num("threads", threads as u64);
        root.float("elapsed_seconds", elapsed);
        root.num("injected", injected);
        root.num("rejected", rejected);
        root.num("trace_events", trace_events);
        root.bool("invariants_held", true);
        root.field("cells", json::array(cells));
        root.finish()
    };
    harness::export("fleet", &payload);
}
