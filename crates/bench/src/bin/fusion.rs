//! Experiment E5 — the rule-base fusion blow-up.
//!
//! The paper (§5): "it is possible to integrate several steps into one,
//! but this would result in very large rule bases ... the combination of
//! the two rule bases of ROUTE_C decide_dir and decide_vc requires a rule
//! interpreter configuration with 1024·2^d × (d+1+a) bits rule table."
//!
//! This binary fuses decide_dir + decide_vc of the shipped ROUTE_C program
//! and NAFTA's decision chain, reporting the fused table geometry against
//! the separate-step cost.

use ftr_algos::rules_src;
use ftr_rules::fuse::fuse;
use ftr_rules::{parse, CompileOptions};

fn main() {
    let opts = CompileOptions { max_entries: 1 << 30 };

    println!("Fused rule-base cost vs separate interpretation steps\n");
    println!(
        "{:<36} {:>12} {:>7} {:>14} {:>14} {:>8}",
        "fusion", "entries", "width", "fused bits", "separate bits", "blow-up"
    );

    let route_c = parse(rules_src::ROUTE_C).expect("route_c parses");
    let f = fuse(&route_c, &["decide_dir", "decide_vc"], &opts).expect("fusible");
    println!(
        "{:<36} {:>12} {:>7} {:>14} {:>14} {:>8.1}",
        "route_c: decide_dir+decide_vc",
        f.entries,
        f.width_bits,
        f.table_bits,
        f.separate_table_bits,
        f.blowup()
    );
    let d = 6u32;
    let a = 2u32;
    println!(
        "{:<36} {:>12} {:>7} {:>14}",
        "  paper formula 1024*2^d x (d+1+a)",
        1024u64 << d,
        d + 1 + a,
        (1024u64 << d) * (d + 1 + a) as u64,
    );

    let nafta = parse(rules_src::NAFTA).expect("nafta parses");
    let f = fuse(&nafta, &["incoming_message", "in_message_ft", "test_exception"], &opts)
        .expect("fusible");
    println!(
        "{:<36} {:>12} {:>7} {:>14} {:>14} {:>8.1}",
        "nafta: 3-step decision chain",
        f.entries,
        f.width_bits,
        f.table_bits,
        f.separate_table_bits,
        f.blowup()
    );

    println!(
        "\nConclusion (paper §5): keeping consecutive interpretation steps \
         separate trades decision latency for exponentially smaller tables."
    );
}
