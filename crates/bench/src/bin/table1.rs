//! Experiment E1 — regenerates **Table 1**: the rule bases of NAFTA.
//!
//! Prints name, compiled table size (entries × width bits), FCFB
//! inventory and the nft marker for every rule base of the NAFTA rule
//! program, followed by the totals the paper quotes in the prose.
//! Compare against the paper's Table 1 (see EXPERIMENTS.md).

use ftr_core::{registry::configuration, HardwareReport};

fn main() {
    let cfg = configuration("nafta").expect("nafta program compiles");
    println!("Table 1 — rule bases of NAFTA (regenerated)\n");
    println!("{}", cfg.cost.to_markdown());

    let report = HardwareReport::of(&cfg);
    println!("{}", report.summary());
    println!(
        "fault-tolerance overhead: {} table bits ({}x over the nft subset = NARA)",
        report.ft_table_overhead(),
        report.ft_table_factor()
    );

    println!("\nRegisters:");
    println!("| register | bits | cells | writers | FT-only |");
    println!("|----------|-----:|------:|---------|:-------:|");
    for r in &cfg.cost.registers {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.name,
            r.total_bits,
            r.cells,
            r.writers.join(", "),
            if r.ft_only { "*" } else { "" }
        );
    }
    println!("\npaper: 159 register bits in 8 registers, 47 bits fault-tolerance-only");
    println!(
        "here:  {} register bits in {} registers, {} bits fault-tolerance-only",
        cfg.cost.total_register_bits(),
        cfg.cost.num_registers(),
        cfg.cost.ft_only_register_bits()
    );
}
