//! Experiment E3 — register accounting for every shipped configuration.
//!
//! The paper (§5): NAFTA needs "159 bits ... organized in 8 registers,
//! where some of them are modified by several rule bases; only 47 bits
//! account for fault-tolerance". ROUTE_C needs "15d + 2 log d + 3 register
//! bits ... organized as nine registers"; "9d register bits are needed in
//! the non-fault-tolerant case too".

use ftr_core::registry::{configuration, list_configurations};

fn main() {
    println!("Register accounting per configuration\n");
    println!("| configuration | registers | total bits | FT-only bits | shared-writer registers |");
    println!("|---------------|----------:|-----------:|-------------:|------------------------:|");
    for name in list_configurations() {
        let cfg = configuration(name).expect("shipped configs compile");
        let shared = cfg.cost.registers.iter().filter(|r| r.writers.len() > 1).count();
        println!(
            "| {} | {} | {} | {} | {} |",
            name,
            cfg.cost.num_registers(),
            cfg.cost.total_register_bits(),
            cfg.cost.ft_only_register_bits(),
            shared,
        );
    }

    println!("\nPer-register detail (nafta):");
    let cfg = configuration("nafta").unwrap();
    for r in &cfg.cost.registers {
        println!(
            "  {:<14} {:>4} bits  writers=[{}] readers=[{}]{}",
            r.name,
            r.total_bits,
            r.writers.join(","),
            r.readers.join(","),
            if r.ft_only { "  (FT-only)" } else { "" }
        );
    }

    println!("\npaper NAFTA:   159 bits / 8 registers / 47 FT-only");
    println!("paper ROUTE_C: 15d+2·log d+3 bits / 9 registers (d=6: 99 bits; nft: 9d = 54)");
}
