//! Experiment E13 (ablation) — static deadlock prevention trade-offs (§3).
//!
//! The paper: "Static deadlock prevention normally requires a larger number
//! of virtual channels which are expensive in terms of hardware. ... using
//! the negative hop scheme — for which the number of virtual channels
//! depends on the network diameter — no changes to the deadlock avoidance
//! are necessary at all."
//!
//! The ablation compares, across mesh sizes and fault counts:
//!   * NAFTA: 2 virtual channels + per-fault state machinery (registers,
//!     control traffic, up-to-3-step decisions);
//!   * negative-hop: ceil((diameter+detour)/2)+1 channels, **zero** fault
//!     state and single-step decisions.
//!
//! Buffer hardware scales with the channel count, so the channel column is
//! the hardware cost the paper weighs against NAFTA's state/overhead.

use ftr_algos::{Nafta, NegativeHop};
use ftr_bench::harness;
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Network, Pattern, TrafficSource};
use ftr_topo::{FaultSet, Mesh2D};
use std::sync::Arc;

struct Row {
    vcs: usize,
    latency: f64,
    delivered: f64,
    steps_max: u64,
    ctrl_msgs: u64,
}

fn run(mesh: &Mesh2D, algo: &dyn RoutingAlgorithm, faults: &FaultSet) -> Row {
    let mut net = Network::builder(Arc::new(mesh.clone())).build(algo).expect("valid config");
    net.apply_fault_set(faults);
    net.settle_control(100_000).expect("settles");
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.12, 4, 77);
    harness::drive(&mut net, &mut tf, 2_000);
    net.drain(100_000);
    Row {
        vcs: algo.num_vcs(),
        latency: net.stats.latency.mean(),
        delivered: net.stats.delivery_ratio(),
        steps_max: net.stats.decision_steps.max,
        ctrl_msgs: net.stats.control_msgs,
    }
}

fn main() {
    println!("Static-scheme ablation: NAFTA (2 VCs + fault state) vs negative-hop");
    println!("(diameter-dependent VCs, stateless) — §3 of the paper\n");
    println!(
        "{:<6} {:>4} {:<14} {:>4} {:>9} {:>10} {:>10} {:>10}",
        "mesh", "|F|", "scheme", "VCs", "latency", "delivered", "max steps", "ctrl msgs"
    );

    for side in [6u32, 8] {
        let mesh = Mesh2D::new(side, side);
        for nf in [0usize, 4, 8] {
            let mut faults = FaultSet::new();
            faults.inject_random_links(&mesh, nf, true, 23);

            let nafta = Nafta::new(mesh.clone());
            let r = run(&mesh, &nafta, &faults);
            println!(
                "{:<6} {:>4} {:<14} {:>4} {:>9.1} {:>10.3} {:>10} {:>10}",
                format!("{side}x{side}"),
                nf,
                "nafta",
                r.vcs,
                r.latency,
                r.delivered,
                r.steps_max,
                r.ctrl_msgs
            );

            let nh = NegativeHop::new(mesh.clone(), 6);
            let r = run(&mesh, &nh, &faults);
            println!(
                "{:<6} {:>4} {:<14} {:>4} {:>9.1} {:>10.3} {:>10} {:>10}",
                format!("{side}x{side}"),
                nf,
                "negative-hop",
                r.vcs,
                r.latency,
                r.delivered,
                r.steps_max,
                r.ctrl_msgs
            );
        }
        println!();
    }

    println!(
        "Reading: negative-hop needs zero control traffic and single-step\n\
         decisions at every fault count, but pays ~4-5x the buffer hardware;\n\
         NAFTA keeps 2 channels at the price of fault registers, propagation\n\
         traffic and 3-step worst-case decisions — the §3 trade-off, measured."
    );
}
