//! Experiment E11 — the spanning-tree strawman vs adaptive routing.
//!
//! Quantifies the paper's §2.1 motivation: the tree "uses only a small
//! fraction of the network links in most cases" and "the shortest ways
//! (minimal paths) between two nodes are nearly never taken". Static
//! analysis (link fraction, minimal-path fraction, dilation) plus a
//! latency/throughput comparison against NAFTA.

use ftr_algos::{Nafta, SpanningTreeRouting};
use ftr_bench::{format_curve, measure_load};
use ftr_sim::{Pattern, SimConfig};
use ftr_topo::spanning::SpanningTree;
use ftr_topo::{FaultSet, Mesh2D, NodeId};

fn main() {
    println!("Spanning-tree structural weakness (static analysis)\n");
    println!("{:<10} {:>12} {:>16} {:>12}", "mesh", "link frac", "minimal frac", "dilation");
    for side in [4u32, 6, 8, 10] {
        let mesh = Mesh2D::new(side, side);
        let faults = FaultSet::new();
        let tree = SpanningTree::build(&mesh, &faults, NodeId(0));
        println!(
            "{:<10} {:>12.3} {:>16.3} {:>12.3}",
            format!("{side}x{side}"),
            tree.link_fraction(&mesh, &faults),
            tree.minimal_fraction(&mesh, &faults),
            tree.average_dilation(&mesh, &faults),
        );
    }

    println!("\nDynamic comparison on an 8x8 mesh (uniform traffic):\n");
    let mesh = Mesh2D::new(8, 8);
    let cfg = SimConfig::default();
    let loads = [0.02, 0.05, 0.08, 0.12, 0.16, 0.2];

    for (name, algo) in [
        (
            "spanning-tree",
            Box::new(SpanningTreeRouting::new(mesh.clone()))
                as Box<dyn ftr_sim::routing::RoutingAlgorithm>,
        ),
        ("nafta", Box::new(Nafta::new(mesh.clone()))),
    ] {
        let pts: Vec<_> = loads
            .iter()
            .map(|&load| {
                measure_load(
                    &mesh,
                    algo.as_ref(),
                    &FaultSet::new(),
                    Pattern::Uniform,
                    load,
                    4,
                    800,
                    2_000,
                    7,
                    cfg,
                )
            })
            .collect();
        println!("{}", format_curve(name, &pts));
    }

    println!(
        "Expected shape: the tree saturates at a small fraction of the adaptive \
         router's throughput (root links are the bottleneck) and its latency is \
         dilated even at low load."
    );
}
