//! Experiment E10 — fault-state propagation settling time.
//!
//! The paper (§2.2, on ROUTE_C): "The way in which error states are
//! combined forms a partial order. Therefore the propagation scheme
//! settles fast." NAFTA's wave propagation is likewise monotone. This
//! binary injects growing fault counts and measures cycles until the
//! control plane goes quiet, plus the control-message volume — both from
//! the metrics registry the network records into. Rows print to stdout
//! and land in `results/settling.json`.

use ftr_algos::{Nafta, RouteC};
use ftr_bench::harness;
use ftr_obs::{json, MetricsRegistry};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::Network;
use ftr_topo::{FaultSet, Hypercube, Mesh2D, Topology};
use std::sync::Arc;

struct Row {
    series: &'static str,
    faults: usize,
    cycles: u64,
    ctrl_msgs: u64,
}

fn settle<T: Topology + Clone + 'static>(
    series: &'static str,
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &FaultSet,
) -> Row {
    let registry = Arc::new(MetricsRegistry::new());
    let mut net = Network::builder(Arc::new(topo.clone()))
        .metrics(registry.clone())
        .build(algo)
        .expect("valid config");
    net.apply_fault_set(faults);
    let cycles = net.settle_control(1_000_000).expect("monotone propagation settles");
    let ctrl_msgs = registry.counter_value("sim.control_msgs").unwrap_or(0);
    assert_eq!(ctrl_msgs, net.stats.control_msgs, "registry mirrors stats");
    Row {
        series,
        faults: faults.faulty_links().count() + faults.faulty_nodes().count(),
        cycles,
        ctrl_msgs,
    }
}

fn main() {
    println!("Fault-state propagation settling (cycles until quiescent)\n");
    println!("{:<26} {:>6} {:>10} {:>12}", "algorithm/topology", "|F|", "cycles", "ctrl msgs");

    let mut rows = Vec::new();

    let mesh = Mesh2D::new(12, 12);
    for nf in [1usize, 4, 8, 16] {
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, nf, true, 3);
        rows.push(settle("nafta / 12x12 mesh", &mesh, &Nafta::new(mesh.clone()), &faults));
    }

    let cube = Hypercube::new(6);
    for nf in [1usize, 2, 4] {
        let mut faults = FaultSet::new();
        faults.inject_random_nodes(&cube, nf, true, 17);
        rows.push(settle("route_c / 6-cube", &cube, &RouteC::new(cube.clone()), &faults));
    }

    let mut last = "";
    for r in &rows {
        if !last.is_empty() && last != r.series {
            println!();
        }
        last = r.series;
        println!("{:<26} {:>6} {:>10} {:>12}", r.series, r.faults, r.cycles, r.ctrl_msgs);
    }

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E10 control-plane settling");
        root.field(
            "rows",
            json::array(rows.iter().map(|r| {
                let mut o = json::Obj::new();
                o.str("series", r.series)
                    .num("faults", r.faults as u64)
                    .num("cycles", r.cycles)
                    .num("ctrl_msgs", r.ctrl_msgs);
                o.finish()
            })),
        );
        root.finish()
    };
    println!(
        "\nBoth schemes settle within a small multiple of the network diameter \
         (mesh 12x12 diameter 22, 6-cube diameter 6): monotone lattice updates \
         can cross the network only once."
    );
    harness::export("settling", &payload);
}
