//! Experiment E10 — fault-state propagation settling time.
//!
//! The paper (§2.2, on ROUTE_C): "The way in which error states are
//! combined forms a partial order. Therefore the propagation scheme
//! settles fast." NAFTA's wave propagation is likewise monotone. This
//! binary injects growing fault counts and measures cycles until the
//! control plane goes quiet, plus the control-message volume.

use ftr_algos::{Nafta, RouteC};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Network, SimConfig};
use ftr_topo::{FaultSet, Hypercube, Mesh2D, Topology};
use std::sync::Arc;

fn settle<T: Topology + Clone + 'static>(
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &FaultSet,
) -> (u64, u64) {
    let mut net = Network::new(Arc::new(topo.clone()), algo, SimConfig::default());
    net.apply_fault_set(faults);
    let cycles = net.settle_control(1_000_000).expect("monotone propagation settles");
    (cycles, net.stats.control_msgs)
}

fn main() {
    println!("Fault-state propagation settling (cycles until quiescent)\n");
    println!("{:<26} {:>6} {:>10} {:>12}", "algorithm/topology", "|F|", "cycles", "ctrl msgs");

    let mesh = Mesh2D::new(12, 12);
    for nf in [1usize, 4, 8, 16] {
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, nf, true, 3);
        let (c, m) = settle(&mesh, &Nafta::new(mesh.clone()), &faults);
        println!("{:<26} {:>6} {:>10} {:>12}", "nafta / 12x12 mesh", nf, c, m);
    }
    println!();

    let cube = Hypercube::new(6);
    for nf in [1usize, 2, 4] {
        let mut faults = FaultSet::new();
        faults.inject_random_nodes(&cube, nf, true, 17);
        let (c, m) = settle(&cube, &RouteC::new(cube.clone()), &faults);
        println!("{:<26} {:>6} {:>10} {:>12}", "route_c / 6-cube", nf, c, m);
    }

    println!(
        "\nBoth schemes settle within a small multiple of the network diameter \
         (mesh 12x12 diameter 22, 6-cube diameter 6): monotone lattice updates \
         can cross the network only once."
    );
}
