//! Experiment E2 — regenerates **Table 2**: the rule bases of ROUTE_C
//! (d = 6 hypercube, a = 2 adaptivity bits), plus the stripped
//! non-fault-tolerant variant for comparison.

use ftr_core::{registry::configuration, HardwareReport};

fn main() {
    let cfg = configuration("route_c").expect("route_c program compiles");
    println!("Table 2 — rule bases of ROUTE_C, d = 6, a = 2 (regenerated)\n");
    println!("{}", cfg.cost.to_markdown());
    let report = HardwareReport::of(&cfg);
    println!("{}", report.summary());
    println!("paper's total: 2960 bits of rule table for the 64-node hypercube, a = 2");
    println!(
        "paper's registers: 15d + 2 log d + 3 = {} bits for d = 6 (9d = {} in the nft case)",
        15 * 6 + 2 * 3 + 3,
        9 * 6
    );

    println!("\nVirtual channels: 5 for fault tolerance, 2 in the stripped variant");
    println!("(the fivefold virtual channel demand dominates ROUTE_C's FT hardware cost, §5)\n");

    let nft = configuration("route_c_nft").expect("stripped program compiles");
    println!("Stripped (non-fault-tolerant) variant:\n");
    println!("{}", nft.cost.to_markdown());
    println!("{}", HardwareReport::of(&nft).summary());
}
