//! Experiment E18 — certified-optimizer performance: interpreter work
//! saved by the table rewrites while every routing decision stays
//! bit-identical.
//!
//! For each mesh rule program the harness drives two rule-driven
//! networks over one pre-drawn injection schedule: the program as
//! compiled from source, and the output of
//! `ftr_analyze::opt::optimize_rulebase` (with its `StepWeights`
//! installed, so the *modeled* `decision_steps` statistic keeps the
//! original program's latency semantics). The final `SimStats` of both
//! runs must be equal — the optimizer's decision-identity contract,
//! checked on live traffic rather than isolated fires — while the
//! tagged `InterpProfiler`s count the *physical* rule interpretations
//! each run actually executed.
//!
//! The headline is NAFTA: fusing its three-deep decision chain
//! (incoming_message → in_message_ft → test_exception) plus the
//! constant-register/dead-rule rewrites cuts physical interpretations
//! per decision by well over the 10% CI gate.
//!
//! `opt_perf [--smoke]` — smoke mode shrinks the schedule for CI.
//! Results go to `results/BENCH_opt.json`.

use ftr_analyze::{opt, TopoFacts};
use ftr_bench::harness;
use ftr_core::{configure, RouterConfiguration, RuleRouter};
use ftr_obs::{json, InterpProfiler};
use ftr_sim::{Network, Pattern, SimStats, TrafficSource};
use ftr_topo::{Mesh2D, NodeId};
use std::sync::Arc;

const SIDE: u32 = 6;
const MSG_LEN: u32 = 8;
const SEED: u64 = 0x0f7e18;
// 0.2 keeps the single-VC mesh below saturation so every schedule drains
const LOADS: [f64; 2] = [0.1, 0.2];

type Schedule = Vec<Vec<(NodeId, NodeId, u32)>>;

fn schedule(mesh: &Mesh2D, load: f64, cycles: u64) -> Schedule {
    let faults = ftr_topo::FaultSet::new();
    let mut tf = TrafficSource::new(Pattern::Uniform, load, MSG_LEN, SEED);
    (0..cycles).map(|_| tf.tick(mesh, &faults)).collect()
}

fn replay(algo: &RuleRouter, mesh: &Mesh2D, sched: &Schedule) -> SimStats {
    let mut net = Network::builder(Arc::new(mesh.clone())).build(algo).expect("valid config");
    net.set_measuring(true);
    for cycle in sched {
        for &(s, d, l) in cycle {
            net.send(s, d, l).expect("healthy fabric accepts");
        }
        net.step();
    }
    assert!(net.drain(200_000), "drain budget exhausted");
    net.stats
}

struct Point {
    load: f64,
    baseline_steps: u64,
    optimized_steps: u64,
}

impl Point {
    fn reduction_pct(&self) -> f64 {
        if self.baseline_steps == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.optimized_steps as f64 / self.baseline_steps as f64)
        }
    }
}

struct ProgReport {
    name: &'static str,
    rewrites: usize,
    table_bits_before: u64,
    table_bits_after: u64,
    points: Vec<Point>,
}

impl ProgReport {
    /// Schedule-weighted physical-interpretation reduction.
    fn reduction_pct(&self) -> f64 {
        let base: u64 = self.points.iter().map(|p| p.baseline_steps).sum();
        let opt: u64 = self.points.iter().map(|p| p.optimized_steps).sum();
        if base == 0 {
            0.0
        } else {
            100.0 * (1.0 - opt as f64 / base as f64)
        }
    }
}

fn measure(name: &'static str, src: &str, mesh: &Mesh2D, cycles: u64) -> ProgReport {
    let baseline = configure(name, src).expect("program compiles");
    let prog = &baseline.compiled.prog;
    let oopts = opt::OptOptions { topo: TopoFacts::mesh(SIDE, SIDE), ..opt::OptOptions::default() };
    let optimized = opt::optimize_rulebase(name, prog, &oopts).expect("program optimizes");
    opt::verify(prog, &optimized, &oopts).expect("certificate replays");
    let opt_cfg = RouterConfiguration::from_compiled(name, optimized.compiled.clone())
        .expect("optimized program costs out")
        .with_step_weights(optimized.step_weights.clone());

    let mut report = ProgReport {
        name,
        rewrites: optimized.cert.rewrites.len(),
        table_bits_before: baseline.cost.total_table_bits(),
        table_bits_after: opt_cfg.cost.total_table_bits(),
        points: Vec::new(),
    };
    for load in LOADS {
        let sched = schedule(mesh, load, cycles);

        let base_prof = Arc::new(InterpProfiler::with_tag("baseline"));
        let base_algo =
            RuleRouter::new(baseline.clone(), mesh.clone(), 1).with_profiler(base_prof.clone());
        let base_stats = replay(&base_algo, mesh, &sched);

        let opt_prof = Arc::new(InterpProfiler::with_tag("optimized"));
        let opt_algo =
            RuleRouter::new(opt_cfg.clone(), mesh.clone(), 1).with_profiler(opt_prof.clone());
        let opt_stats = replay(&opt_algo, mesh, &sched);

        // the optimizer's contract, checked on live traffic: same
        // deliveries, same paths, same latencies, same *modeled*
        // decision_steps — only the physical interpretation count drops
        assert_eq!(
            base_stats, opt_stats,
            "{name} load {load}: optimized run diverged from baseline"
        );
        let p = Point {
            load,
            baseline_steps: base_prof.interpretations(),
            optimized_steps: opt_prof.interpretations(),
        };
        println!(
            "{name:>12}  load {load:>4.2}  interpretations {:>9} -> {:>9}  (-{:>5.1}%)  \
             delivered {}",
            p.baseline_steps,
            p.optimized_steps,
            p.reduction_pct(),
            base_stats.delivered_msgs,
        );
        report.points.push(p);
    }
    report
}

fn report_json(r: &ProgReport) -> String {
    let points: Vec<String> = r
        .points
        .iter()
        .map(|p| {
            let mut o = json::Obj::new();
            o.float("load", p.load)
                .num("baseline_interpretations", p.baseline_steps)
                .num("optimized_interpretations", p.optimized_steps)
                .float("reduction_pct", p.reduction_pct());
            o.finish()
        })
        .collect();
    let mut o = json::Obj::new();
    o.str("program", r.name)
        .num("rewrites", r.rewrites as u64)
        .num("table_bits_before", r.table_bits_before)
        .num("table_bits_after", r.table_bits_after)
        .bool("bit_identical", true) // asserted per load point above
        .float("decision_steps_reduction_pct", r.reduction_pct())
        .field("points", json::array(points));
    o.finish()
}

fn main() {
    let smoke = harness::Args::parse().smoke();
    let cycles = if smoke { 500 } else { 4_000 };
    println!("# E18 opt_perf: {SIDE}x{SIDE} mesh, {cycles} cycles per load point (smoke={smoke})");

    let mesh = Mesh2D::new(SIDE, SIDE);
    let reports = [
        measure("nafta", ftr_algos::rules_src::NAFTA, &mesh, cycles),
        measure("xy", ftr_algos::rules_src::XY, &mesh, cycles),
        measure("west_first", ftr_algos::rules_src::WEST_FIRST, &mesh, cycles),
    ];

    let nafta = &reports[0];
    println!(
        "# headline: NAFTA physical interpretations -{:.1}% ({} rewrites), decisions bit-identical",
        nafta.reduction_pct(),
        nafta.rewrites
    );
    assert!(
        nafta.reduction_pct() >= 10.0,
        "NAFTA interpretation reduction {:.1}% misses the 10% bar",
        nafta.reduction_pct()
    );

    let mut root = json::Obj::new();
    root.str("experiment", "E18")
        .str("binary", "opt_perf")
        .bool("smoke", smoke)
        .num("cycles_per_point", cycles)
        .num("msg_len", MSG_LEN as i64)
        .float("nafta_reduction_pct", nafta.reduction_pct())
        .field("programs", json::array(reports.iter().map(report_json)));
    harness::export("BENCH_opt", &root.finish());
}
