//! Experiment E4 — consecutive rule interpretations per routing decision.
//!
//! The paper (§5): "While NAFTA in the fault-free case proceeds with one
//! step and in the worst case needs three, ROUTE_C always needs two steps.
//! In both cases this overhead in time accounts to fault-tolerance. The
//! non-fault-tolerant routing algorithm NARA and a stripped down variant
//! of ROUTE_C can be implemented with only one interpretation per
//! message."
//!
//! Measured here by running each algorithm in the simulator and recording
//! the step count of every routing decision, fault-free and with faults.

use ftr_algos::{Nafta, Nara, RouteC};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Network, Pattern, SimConfig, TrafficSource};
use ftr_topo::{FaultSet, Hypercube, Mesh2D, Topology};
use std::sync::Arc;

fn run<T: Topology + Clone + 'static>(
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &FaultSet,
) -> (f64, u64, u64) {
    let mut net = Network::new(Arc::new(topo.clone()), algo, SimConfig::default());
    net.apply_fault_set(faults);
    net.settle_control(100_000).expect("settles");
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 4, 99);
    for _ in 0..1_500 {
        for (s, d, l) in tf.tick(topo, net.faults()) {
            net.send(s, d, l);
        }
        net.step();
    }
    net.drain(100_000);
    let s = &net.stats.decision_steps;
    (s.mean(), s.min, s.max)
}

fn main() {
    println!("Rule interpretations per routing decision (mean / min / max)\n");
    println!("{:<22} {:>10} {:>6} {:>6}   note", "algorithm", "mean", "min", "max");

    let mesh = Mesh2D::new(8, 8);
    let mut mesh_faults = FaultSet::new();
    mesh_faults.inject_random_links(&mesh, 6, true, 7);

    let (m, lo, hi) = run(&mesh, &Nara::new(mesh.clone()), &FaultSet::new());
    println!("{:<22} {:>10.3} {:>6} {:>6}   paper: 1", "nara (fault-free)", m, lo, hi);

    let (m, lo, hi) = run(&mesh, &Nafta::new(mesh.clone()), &FaultSet::new());
    println!("{:<22} {:>10.3} {:>6} {:>6}   paper: 1", "nafta (fault-free)", m, lo, hi);

    let (m, lo, hi) = run(&mesh, &Nafta::new(mesh.clone()), &mesh_faults);
    println!(
        "{:<22} {:>10.3} {:>6} {:>6}   paper: up to 3 near faults",
        "nafta (6 link faults)", m, lo, hi
    );

    let cube = Hypercube::new(5);
    let mut cube_faults = FaultSet::new();
    cube_faults.inject_random_nodes(&cube, 2, true, 11);

    let (m, lo, hi) = run(&cube, &RouteC::new(cube.clone()), &FaultSet::new());
    println!("{:<22} {:>10.3} {:>6} {:>6}   paper: always 2", "route_c (fault-free)", m, lo, hi);

    let (m, lo, hi) = run(&cube, &RouteC::new(cube.clone()), &cube_faults);
    println!("{:<22} {:>10.3} {:>6} {:>6}   paper: always 2", "route_c (2 node flt)", m, lo, hi);

    let (m, lo, hi) = run(&cube, &RouteC::stripped(cube.clone()), &FaultSet::new());
    println!("{:<22} {:>10.3} {:>6} {:>6}   paper: 1 (stripped)", "route_c_nft", m, lo, hi);

    println!(
        "\n(min = 0 appears when a message is delivered at its injection node's \
         neighbour and the ejection shortcut fires; see ftr-sim docs)"
    );
}
