//! Experiment E4 — consecutive rule interpretations per routing decision.
//!
//! The paper (§5): "While NAFTA in the fault-free case proceeds with one
//! step and in the worst case needs three, ROUTE_C always needs two steps.
//! In both cases this overhead in time accounts to fault-tolerance. The
//! non-fault-tolerant routing algorithm NARA and a stripped down variant
//! of ROUTE_C can be implemented with only one interpretation per
//! message."
//!
//! Step counts are derived **from the trace stream alone**: the simulator
//! runs with a `RingSink` attached and the per-decision numbers are
//! aggregated from `route_decision` events, then cross-checked against the
//! engine's internal accumulator. The table goes to stdout and the same
//! rows go to `results/steps.json`.

use ftr_algos::{Nafta, Nara, RouteC};
use ftr_bench::harness;
use ftr_obs::{json, EventKind, RingSink};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::{Network, Pattern, TrafficSource};
use ftr_topo::{FaultSet, Hypercube, Mesh2D, Topology};
use std::sync::Arc;

struct Row {
    name: &'static str,
    note: &'static str,
    mean: f64,
    min: u64,
    max: u64,
    decisions: u64,
}

fn run<T: Topology + Clone + 'static>(
    name: &'static str,
    note: &'static str,
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &FaultSet,
) -> Row {
    let sink = Arc::new(RingSink::new(1 << 22));
    let mut net = Network::builder(Arc::new(topo.clone()))
        .trace(sink.clone())
        .build(algo)
        .expect("valid config");
    net.apply_fault_set(faults);
    net.settle_control(100_000).expect("settles");
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 4, 99);
    harness::drive(&mut net, &mut tf, 1_500);
    net.drain(100_000);

    // E4 from the trace stream alone: aggregate route_decision events
    assert_eq!(sink.dropped(), 0, "ring must retain the full trace");
    let (mut count, mut sum, mut min, mut max) = (0u64, 0u64, u64::MAX, 0u64);
    for ev in sink.events() {
        if let EventKind::RouteDecision { steps, .. } = ev.kind {
            let s = steps as u64;
            count += 1;
            sum += s;
            min = min.min(s);
            max = max.max(s);
        }
    }
    assert!(count > 0, "no decisions traced");

    // the engine's internal accumulator must tell the same story
    let acc = &net.stats.decision_steps;
    assert_eq!(count, acc.count, "{name}: trace/stats decision count");
    assert_eq!(sum, acc.sum, "{name}: trace/stats step total");
    assert_eq!(min, acc.min, "{name}: trace/stats min");
    assert_eq!(max, acc.max, "{name}: trace/stats max");

    Row { name, note, mean: sum as f64 / count as f64, min, max, decisions: count }
}

fn main() {
    println!("Rule interpretations per routing decision (mean / min / max)");
    println!("(derived from route_decision trace events, cross-checked vs stats)\n");
    println!("{:<22} {:>10} {:>6} {:>6}   note", "algorithm", "mean", "min", "max");

    let mesh = Mesh2D::new(8, 8);
    let mut mesh_faults = FaultSet::new();
    mesh_faults.inject_random_links(&mesh, 6, true, 7);

    let cube = Hypercube::new(5);
    let mut cube_faults = FaultSet::new();
    cube_faults.inject_random_nodes(&cube, 2, true, 11);

    let rows = [
        run("nara (fault-free)", "paper: 1", &mesh, &Nara::new(mesh.clone()), &FaultSet::new()),
        run("nafta (fault-free)", "paper: 1", &mesh, &Nafta::new(mesh.clone()), &FaultSet::new()),
        run(
            "nafta (6 link faults)",
            "paper: up to 3 near faults",
            &mesh,
            &Nafta::new(mesh.clone()),
            &mesh_faults,
        ),
        run(
            "route_c (fault-free)",
            "paper: always 2",
            &cube,
            &RouteC::new(cube.clone()),
            &FaultSet::new(),
        ),
        run(
            "route_c (2 node flt)",
            "paper: always 2",
            &cube,
            &RouteC::new(cube.clone()),
            &cube_faults,
        ),
        run(
            "route_c_nft",
            "paper: 1 (stripped)",
            &cube,
            &RouteC::stripped(cube.clone()),
            &FaultSet::new(),
        ),
    ];

    for r in &rows {
        println!("{:<22} {:>10.3} {:>6} {:>6}   {}", r.name, r.mean, r.min, r.max, r.note);
    }

    let payload = {
        let mut root = json::Obj::new();
        root.str("experiment", "E4 steps per routing decision");
        root.str("source", "route_decision trace events");
        root.field(
            "rows",
            json::array(rows.iter().map(|r| {
                let mut o = json::Obj::new();
                o.str("algorithm", r.name)
                    .str("note", r.note)
                    .float("mean", r.mean)
                    .num("min", r.min)
                    .num("max", r.max)
                    .num("decisions", r.decisions);
                o.finish()
            })),
        );
        root.finish()
    };
    println!(
        "\n(min = 0 appears when a message is delivered at its injection node's \
         neighbour and the ejection shortcut fires; see ftr-sim docs)"
    );
    harness::export("steps", &payload);
}
