//! Machine-readable experiment output.
//!
//! Every bench binary prints its human-readable table to stdout and, via
//! [`write_json`], drops the same data as validated JSON into `results/`
//! so plots and CI checks never scrape the tables. Setting
//! `FTR_TRACE_DIR` additionally makes the experiment harness attach a
//! `JsonlSink` per run (see [`trace_sink`]), so any sweep can be
//! replayed through `ftr-trace` after the fact.

use ftr_obs::{json, BinSink, FtbHeader, JsonlSink};
use std::path::PathBuf;
use std::sync::Arc;

/// Directory experiment outputs land in, overridable through the
/// `FTR_RESULTS_DIR` environment variable (used by CI to keep smoke runs
/// out of the tree).
pub fn results_dir() -> PathBuf {
    std::env::var_os("FTR_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Directory JSONL trace captures go to, from the `FTR_TRACE_DIR`
/// environment variable. `None` (the default) disables trace capture —
/// simulations then run without a sink and never construct an event.
pub fn trace_dir() -> Option<PathBuf> {
    std::env::var_os("FTR_TRACE_DIR").map(PathBuf::from)
}

/// Sanitised trace-capture path: `<FTR_TRACE_DIR>/<label>.<ext>`, with
/// `label` restricted to `[A-Za-z0-9._-]` so callers can pass algorithm
/// names (`rule:xy`) or parameter tuples verbatim.
fn trace_path(label: &str, ext: &str) -> Option<PathBuf> {
    let dir = trace_dir()?;
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
    let clean: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '-' })
        .collect();
    Some(dir.join(format!("{clean}.{ext}")))
}

/// When `FTR_TRACE_DIR` is set, creates `<dir>/<label>.jsonl` and
/// returns a sink streaming this run's events into it.
pub fn trace_sink(label: &str) -> Option<Arc<JsonlSink<std::fs::File>>> {
    let path = trace_path(label, "jsonl")?;
    let sink = JsonlSink::create(&path).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"));
    Some(Arc::new(sink))
}

/// When `FTR_TRACE_DIR` is set, creates `<dir>/<label>.ftb` and returns
/// a compact binary sink streaming this run's events into it. The
/// header travels with the file, so a fleet capture replays without the
/// manifest that produced it. Callers should `finalize()` (or drop) the
/// sink before reading the capture back.
pub fn ftb_sink(label: &str, header: FtbHeader) -> Option<Arc<BinSink<std::fs::File>>> {
    let path = trace_path(label, "ftb")?;
    let sink =
        BinSink::create(&path, header).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"));
    Some(Arc::new(sink))
}

/// Validates `payload` as JSON and writes it to `results/<name>.json`
/// (creating the directory). Panics on malformed JSON — an exporter bug
/// must fail the run, not poison downstream tooling.
pub fn write_json(name: &str, payload: &str) -> std::io::Result<PathBuf> {
    if let Err(e) = json::validate(payload) {
        panic!("refusing to write malformed JSON for {name}: {e}");
    }
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, payload)?;
    Ok(path)
}

/// Renders a [`crate::LoadPoint`] as a JSON object.
pub fn load_point_json(p: &crate::LoadPoint) -> String {
    let mut o = json::Obj::new();
    o.float("offered", p.offered)
        .float("latency", p.latency)
        .float("throughput", p.throughput)
        .float("delivery_ratio", p.delivery_ratio)
        .bool("deadlock", p.deadlock);
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_point_renders_valid_json() {
        let p = crate::LoadPoint {
            offered: 0.1,
            latency: 12.5,
            throughput: 0.099,
            delivery_ratio: 1.0,
            deadlock: false,
        };
        let j = load_point_json(&p);
        assert!(json::validate(&j).is_ok(), "{j}");
        assert!(j.contains("\"deadlock\":false"));
    }

    #[test]
    #[should_panic(expected = "malformed JSON")]
    fn write_json_rejects_garbage() {
        let _ = write_json("nope", "{not json");
    }
}
