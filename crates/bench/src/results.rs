//! Machine-readable experiment output.
//!
//! Every bench binary prints its human-readable table to stdout and, via
//! [`write_json`], drops the same data as validated JSON into `results/`
//! so plots and CI checks never scrape the tables.

use ftr_obs::json;
use std::path::PathBuf;

/// Directory experiment outputs land in, overridable through the
/// `FTR_RESULTS_DIR` environment variable (used by CI to keep smoke runs
/// out of the tree).
pub fn results_dir() -> PathBuf {
    std::env::var_os("FTR_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Validates `payload` as JSON and writes it to `results/<name>.json`
/// (creating the directory). Panics on malformed JSON — an exporter bug
/// must fail the run, not poison downstream tooling.
pub fn write_json(name: &str, payload: &str) -> std::io::Result<PathBuf> {
    if let Err(e) = json::validate(payload) {
        panic!("refusing to write malformed JSON for {name}: {e}");
    }
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, payload)?;
    Ok(path)
}

/// Renders a [`crate::LoadPoint`] as a JSON object.
pub fn load_point_json(p: &crate::LoadPoint) -> String {
    let mut o = json::Obj::new();
    o.float("offered", p.offered)
        .float("latency", p.latency)
        .float("throughput", p.throughput)
        .float("delivery_ratio", p.delivery_ratio)
        .bool("deadlock", p.deadlock);
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_point_renders_valid_json() {
        let p = crate::LoadPoint {
            offered: 0.1,
            latency: 12.5,
            throughput: 0.099,
            delivery_ratio: 1.0,
            deadlock: false,
        };
        let j = load_point_json(&p);
        assert!(json::validate(&j).is_ok(), "{j}");
        assert!(j.contains("\"deadlock\":false"));
    }

    #[test]
    #[should_panic(expected = "malformed JSON")]
    fn write_json_rejects_garbage() {
        let _ = write_json("nope", "{not json");
    }
}
