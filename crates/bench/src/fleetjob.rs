//! The E21 fleet campaign job: one dynamic-fault run, keyed, executed
//! and journaled through [`ftr_sim::fleet`].
//!
//! Shared between the `fleet` driver (which scales it to 10⁴ runs) and
//! `trace_perf` (which times small fleets for the wall-clock half of
//! `BENCH_trace.json`), so both measure exactly the same workload: a
//! 6x6 NAFTA mesh under uniform traffic with scripted transient link
//! faults, source retransmission on, the online deadlock diagnoser
//! attached, and (with `FTR_TRACE_DIR` set) a compact binary `.ftb`
//! capture per run.
//!
//! Every run asserts its own invariants — accounting balanced, network
//! drained, no watchdog or diagnoser deadlock verdict, no trace events
//! lost — so a violation panics inside the run and the fleet attributes
//! it to this run's key (its seed, fault count and load).

use crate::results;
use ftr_algos::Nafta;
use ftr_obs::{json, FtbHeader, TeeSink};
use ftr_sim::{FaultPlan, FleetJob, Network, Pattern, RetryPolicy, TrafficSource};
use ftr_topo::Mesh2D;
use ftr_trace::DiagnoserSink;
use std::sync::Arc;

/// Mesh side of the campaign fabric.
pub const SIDE: u32 = 6;
/// Cycles until a transient link fault repairs.
pub const REPAIR_AFTER: u64 = 150;
/// Cycle window the scripted faults strike in.
pub const FAULT_WINDOW: std::ops::Range<u64> = 100..700;
/// Cycles of offered load per run.
pub const WARM_CYCLES: u64 = 900;
/// Drain budget per run.
pub const DRAIN_BUDGET: u64 = 30_000;
/// Message length (flits).
pub const MSG_LEN: u32 = 12;
/// Fault counts cycled across a fleet.
pub const FAULT_COUNTS: [usize; 5] = [0, 4, 8, 12, 16];

/// Per-run parameters.
#[derive(Clone, Copy)]
pub struct Spec {
    /// Fault-plan and traffic seed.
    pub seed: u64,
    /// Transient link faults scripted into the run.
    pub faults: usize,
    /// Offered load (flits/node/cycle).
    pub load: f64,
}

/// Builds the standard fleet: `runs` specs cycling the fault counts,
/// seeds spread with a prime stride.
pub fn specs(runs: usize, load: f64) -> Vec<Spec> {
    (0..runs)
        .map(|i| Spec {
            seed: 1 + i as u64 * 7919,
            faults: FAULT_COUNTS[i % FAULT_COUNTS.len()],
            load,
        })
        .collect()
}

/// Per-run result, journaled as one line of single-object JSON.
pub struct Out {
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Worms killed by faults.
    pub killed: u64,
    /// Messages abandoned as unroutable.
    pub unroutable: u64,
    /// Source retransmissions.
    pub retried: u64,
    /// Messages abandoned after exhausting retries.
    pub abandoned: u64,
    /// Sends the network refused.
    pub rejected: u64,
    /// Sum of delivered-message latencies (cycles).
    pub latency_sum: u64,
    /// Delivered messages with measured latency.
    pub latency_count: u64,
    /// Events streamed to this run's `.ftb` capture (0 without
    /// `FTR_TRACE_DIR`).
    pub trace_events: u64,
}

impl Out {
    /// Delivered / terminated ratio for this run.
    pub fn delivery_ratio(&self) -> f64 {
        let done = self.delivered + self.killed + self.unroutable;
        if done == 0 {
            1.0
        } else {
            self.delivered as f64 / done as f64
        }
    }
}

/// The campaign job (see module docs).
pub struct Campaign;

impl FleetJob for Campaign {
    type Input = Spec;
    type Output = Out;

    fn key(&self, s: &Spec) -> String {
        // load is part of the key: a manifest from a different load must
        // not satisfy this fleet's runs
        format!("s{}f{}l{}", s.seed, s.faults, s.load)
    }

    fn run(&self, spec: &Spec) -> Out {
        let mesh = Mesh2D::new(SIDE, SIDE);
        let plan = FaultPlan::random_transient_links(
            &mesh,
            spec.faults,
            FAULT_WINDOW,
            REPAIR_AFTER,
            spec.seed,
        );
        let mut b = Network::builder(Arc::new(mesh.clone()))
            .fault_plan(plan)
            .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 });
        let diag = Arc::new(DiagnoserSink::default());
        let label = format!("fleet_s{}_f{}", spec.seed, spec.faults);
        let ftb = results::ftb_sink(
            &label,
            FtbHeader::new()
                .with("geometry", format!("mesh{SIDE}x{SIDE}"))
                .with("seed", spec.seed)
                .with("label", &label)
                .with("faults", spec.faults)
                .with("load", spec.load),
        );
        b = match &ftb {
            Some(f) => b.trace(Arc::new(TeeSink::new(vec![f.clone(), diag.clone()]))),
            None => b.trace(diag.clone()),
        };
        let mut net = b.build(&Nafta::new(mesh.clone())).expect("valid config");
        net.set_measuring(true);

        let mut tf = TrafficSource::new(Pattern::Uniform, spec.load, MSG_LEN, spec.seed ^ 0x5ca1e);
        crate::harness::drive(&mut net, &mut tf, WARM_CYCLES);
        let drained = net.drain(DRAIN_BUDGET);
        diag.scan_now();

        // hard invariants — a panic here is attributed to this run's key
        let s = &net.stats;
        assert!(s.accounting_balanced(), "message accounting out of balance");
        assert!(drained, "network failed to drain within {DRAIN_BUDGET} cycles");
        assert!(!s.deadlock, "watchdog reported deadlock");
        assert!(diag.deadlock().is_none(), "online diagnoser reported deadlock");
        let trace_events = match &ftb {
            Some(f) => {
                f.finalize().expect("finalize trace capture");
                assert_eq!(f.write_errors(), 0, "trace capture lost events");
                f.written()
            }
            None => 0,
        };

        Out {
            injected: s.injected_msgs,
            delivered: s.delivered_msgs,
            killed: s.killed_msgs,
            unroutable: s.unroutable_msgs,
            retried: s.retried_msgs,
            abandoned: s.abandoned_msgs,
            rejected: s.rejected_sends,
            latency_sum: s.latency.sum,
            latency_count: s.latency.count,
            trace_events,
        }
    }

    fn encode(&self, o: &Out) -> String {
        let mut j = json::Obj::new();
        j.num("injected", o.injected)
            .num("delivered", o.delivered)
            .num("killed", o.killed)
            .num("unroutable", o.unroutable)
            .num("retried", o.retried)
            .num("abandoned", o.abandoned)
            .num("rejected", o.rejected)
            .num("latency_sum", o.latency_sum)
            .num("latency_count", o.latency_count)
            .num("trace_events", o.trace_events);
        j.finish()
    }

    fn decode(&self, payload: &str) -> Result<Out, String> {
        let v = json::parse(payload)?;
        let f = |k: &str| v.get(k).and_then(|x| x.as_u64()).ok_or_else(|| format!("missing {k}"));
        Ok(Out {
            injected: f("injected")?,
            delivered: f("delivered")?,
            killed: f("killed")?,
            unroutable: f("unroutable")?,
            retried: f("retried")?,
            abandoned: f("abandoned")?,
            rejected: f("rejected")?,
            latency_sum: f("latency_sum")?,
            latency_count: f("latency_count")?,
            trace_events: f("trace_events")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_codec_round_trips() {
        let out = Out {
            injected: 300,
            delivered: 299,
            killed: 1,
            unroutable: 0,
            retried: 4,
            abandoned: 0,
            rejected: 2,
            latency_sum: 4800,
            latency_count: 299,
            trace_events: 4668,
        };
        let line = Campaign.encode(&out);
        assert!(!line.contains('\n'));
        let back = Campaign.decode(&line).unwrap();
        assert_eq!(back.delivered, 299);
        assert_eq!(back.latency_sum, 4800);
        assert!((back.delivery_ratio() - 299.0 / 300.0).abs() < 1e-12);
        assert!(Campaign.decode("{\"injected\":1}").is_err(), "missing fields are torn lines");
        assert!(Campaign.decode("{\"injected\":1").is_err(), "truncated JSON is a torn line");
    }

    #[test]
    fn keys_are_whitespace_free_and_distinct() {
        let specs = specs(10, 0.12);
        let keys: std::collections::HashSet<String> =
            specs.iter().map(|s| Campaign.key(s)).collect();
        assert_eq!(keys.len(), 10);
        assert!(keys.iter().all(|k| !k.contains(char::is_whitespace)));
    }

    #[test]
    fn one_run_executes_with_invariants() {
        let out = Campaign.run(&Spec { seed: 1, faults: 4, load: 0.1 });
        assert!(out.injected > 0);
        assert!(out.delivery_ratio() >= 0.99);
    }
}
