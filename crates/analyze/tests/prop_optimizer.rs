//! Property-based differential tests over random well-typed two-base
//! programs (entry base optionally tail-emitting into an exception base,
//! so the fusion pass gets exercised):
//!
//! 1. **Optimizer contract** — the optimized program must agree with the
//!    reference evaluator on every step of long random trajectories
//!    started from INIT — same returns, same host events, same register
//!    effects — and the emitted certificate must replay through the
//!    independent checker.
//! 2. **Backend contract** — the three rule-execution arms (reference
//!    evaluator, compiled table interpreter, direct-threaded bytecode VM)
//!    must be trajectory-identical on the same program family, with the
//!    bytecode arm additionally checked over E18-optimized tables.

use ftr_analyze::opt;
use ftr_analyze::{optimize_rulebase, OptOptions};
use ftr_rules::env::{InputMap, RegFile};
use ftr_rules::eval::{fire_reference, EventInstance, FireOutcome};
use ftr_rules::parse;
use ftr_rules::value::Value;
use ftr_rules::vm::Scratch;
use ftr_rules::{compile, CompileOptions, Program, VmProgram};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn atom_pool(with_d: bool) -> Vec<&'static str> {
    let mut v = vec![
        "state = alpha",
        "state IN {beta, gamma}",
        "count = 0",
        "count > 3",
        "count <= 9",
        "go",
        "level(0) < level(1)",
        "level(2) > 4",
        "EXISTS i IN dirs: flags(i)",
        "FORALL i IN dirs: level(i) < 6",
        "TRUE",
    ];
    if with_d {
        v.extend(["flags(d)", "level(d) > 2", "d IN {0, 2}"]);
    }
    v
}

/// Uniform choice from a fixed string pool (the vendored proptest shim
/// has no `sample::select`).
fn select(pool: Vec<&'static str>) -> Union<String> {
    Union::new(pool.into_iter().map(|s| Just(s.to_string()).boxed()).collect())
}

/// 1-3 atoms combined with AND / OR / NOT; `with_d` controls whether the
/// rule-base parameter `d` may appear (the exception base has none).
fn arb_premise(with_d: bool) -> impl Strategy<Value = String> {
    let atom = select(atom_pool(with_d));
    proptest::collection::vec((atom, any::<u8>()), 1..4).prop_map(|parts| {
        let mut out = String::new();
        for (i, (a, tag)) in parts.iter().enumerate() {
            if i > 0 {
                out.push_str(if tag % 2 == 0 { " AND " } else { " OR " });
            }
            if tag % 3 == 0 {
                out.push_str(&format!("NOT ({a})"));
            } else {
                out.push_str(&format!("({a})"));
            }
        }
        out
    })
}

fn arb_conclusion(with_d: bool) -> impl Strategy<Value = String> {
    let mut pool = vec![
        "RETURN(1)",
        "count <- min(count + 1, 15), RETURN(2)",
        "state <- beta, RETURN(3)",
        "state <- latmax(state, beta), RETURN(5)",
        "RETURN(min(count, 9))",
    ];
    if with_d {
        pool.extend(["RETURN(d)", "flags(d) <- TRUE, RETURN(4)"]);
    } else {
        pool.push("flags(1) <- TRUE, RETURN(4)");
    }
    select(pool)
}

/// `Some(premise)` half the time (no `option::of` in the shim).
fn arb_tail() -> impl Strategy<Value = Option<String>> {
    prop_oneof![arb_premise(true).prop_map(Some), Just(None)]
}

/// A two-base program over the fixed environment. When `tail_guard` is
/// set, the entry base ends with `IF <guard> THEN !exception();` — the
/// shape the fusion pass looks for.
fn gen_program(
    route: &[(String, String)],
    tail_guard: Option<&String>,
    exception: &[(String, String)],
) -> String {
    let mut f_rules = String::new();
    for (p, c) in route {
        f_rules.push_str(&format!("  IF {p} THEN {c};\n"));
    }
    if let Some(g) = tail_guard {
        f_rules.push_str(&format!("  IF {g} THEN !exception();\n"));
    }
    let mut g_rules = String::new();
    for (p, c) in exception {
        g_rules.push_str(&format!("  IF {p} THEN {c};\n"));
    }
    format!(
        "CONSTANT st = {{alpha, beta, gamma}}\n\
         CONSTANT dirs = 0 TO 3\n\
         VARIABLE state IN st INIT alpha\n\
         VARIABLE count IN 0 TO 15 INIT 0\n\
         VARIABLE flags[dirs] IN bool\n\
         INPUT level[dirs] IN 0 TO 7\n\
         INPUT go IN bool\n\
         ON route(d IN dirs) RETURNS 0 TO 15\n{f_rules}END route;\n\
         ON exception() RETURNS 0 TO 15\n{g_rules}END exception;"
    )
}

/// Fires a base and follows emitted events into other rule bases;
/// returns the final RETURN plus the events that escape to the host.
fn cascade(
    prog: &Program,
    bi: usize,
    params: &[Value],
    regs: &mut RegFile,
    inputs: &InputMap,
) -> (Option<Value>, Vec<EventInstance>) {
    let out = fire_reference(prog, bi, params, regs, inputs).expect("fire");
    let mut ret = out.returned;
    let mut host = Vec::new();
    for ev in out.emitted {
        match prog.rulebase(&ev.event) {
            Some((ti, trb)) if trb.params.len() == ev.args.len() => {
                let (r, h) = cascade(prog, ti, &ev.args, regs, inputs);
                if r.is_some() {
                    ret = r;
                }
                host.extend(h);
            }
            _ => host.push(ev),
        }
    }
    (ret, host)
}

/// [`cascade`] generalized over the firing backend: `fire(base, params,
/// regs)` supplies one rule-base interpretation, and emitted events are
/// followed into other rule bases exactly as the machine would. Errors
/// propagate so err-ness can be compared across arms.
fn cascade_with<F>(
    prog: &Program,
    bi: usize,
    params: &[Value],
    regs: &mut RegFile,
    fire: &mut F,
) -> ftr_rules::Result<(Option<Value>, Vec<EventInstance>)>
where
    F: FnMut(usize, &[Value], &mut RegFile) -> ftr_rules::Result<FireOutcome>,
{
    let out = fire(bi, params, regs)?;
    let mut ret = out.returned;
    let mut host = Vec::new();
    for ev in out.emitted {
        match prog.rulebase(&ev.event) {
            Some((ti, trb)) if trb.params.len() == ev.args.len() => {
                let (r, h) = cascade_with(prog, ti, &ev.args, regs, fire)?;
                if r.is_some() {
                    ret = r;
                }
                host.extend(h);
            }
            _ => host.push(ev),
        }
    }
    Ok((ret, host))
}

fn random_inputs(rng: &mut StdRng, prog: &Program) -> InputMap {
    let mut im = InputMap::default();
    for i in 0..4 {
        im.set(prog, "level", &[Value::Int(i)], Value::Int(rng.gen_range(0..8))).unwrap();
    }
    im.set(prog, "go", &[], Value::Bool(rng.gen_bool(0.5))).unwrap();
    im
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer's contract, quantified over a program family: on
    /// every state reachable from INIT, the optimized program makes the
    /// same decisions and the certificate replays.
    #[test]
    fn optimized_programs_are_trajectory_identical(
        route_p in proptest::collection::vec(arb_premise(true), 1..5),
        route_c in proptest::collection::vec(arb_conclusion(true), 5),
        tail in arb_tail(),
        exc_p in proptest::collection::vec(arb_premise(false), 1..4),
        exc_c in proptest::collection::vec(arb_conclusion(false), 4),
        seed in any::<u64>(),
    ) {
        let route: Vec<(String, String)> =
            route_p.iter().cloned().zip(route_c.iter().cloned()).collect();
        let exc: Vec<(String, String)> =
            exc_p.iter().cloned().zip(exc_c.iter().cloned()).collect();
        let src = gen_program(&route, tail.as_ref(), &exc);
        let orig = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));

        let opts = OptOptions::default();
        let o = optimize_rulebase("prop", &orig, &opts)
            .unwrap_or_else(|e| panic!("optimize failed: {e}\n{src}"));
        let opt_prog = &o.compiled.prog;

        // the certificate must replay through the independent checker
        opt::verify(&orig, &o, &opts)
            .unwrap_or_else(|e| panic!("certificate rejected: {e}\n{src}"));

        // walk a reachable trajectory: fire every base with random
        // params/inputs from the INIT state onward, comparing decisions
        // and register effects at each step
        let mut rng = StdRng::seed_from_u64(seed);
        let mut regs_a = RegFile::new(&orig);
        let mut regs_b = RegFile::new(opt_prog);
        prop_assert_eq!(&regs_a, &regs_b, "register layouts diverged\n{}", src);

        let ss = orig.sym_sizes();
        for step in 0..40 {
            let im = random_inputs(&mut rng, &orig);
            for bi in 0..orig.rulebases.len() {
                let params: Vec<Value> = orig.rulebases[bi]
                    .params
                    .iter()
                    .map(|p| p.dom.value_at(rng.gen_range(0..p.dom.size(&ss))))
                    .collect();
                let (ra, ha) = cascade(&orig, bi, &params, &mut regs_a, &im);
                let (rb, hb) = cascade(opt_prog, bi, &params, &mut regs_b, &im);
                prop_assert_eq!(
                    &ra, &rb,
                    "step {} base {} returned differently (params {:?})\n{}",
                    step, bi, params, src
                );
                prop_assert_eq!(
                    &ha, &hb,
                    "step {} base {} emitted different host events\n{}",
                    step, bi, src
                );
                prop_assert_eq!(
                    &regs_a, &regs_b,
                    "step {} base {} left different register state\n{}",
                    step, bi, src
                );
            }
        }
    }

    /// The backend contract, quantified over the same program family:
    /// reference evaluator, table interpreter, and bytecode VM (over
    /// both the plain and the E18-optimized tables) make identical
    /// decisions — same returns, host events, and register effects — on
    /// every step of random trajectories from INIT. When one arm errors,
    /// every arm must error.
    #[test]
    fn table_and_bytecode_backends_match_the_reference_evaluator(
        route_p in proptest::collection::vec(arb_premise(true), 1..5),
        route_c in proptest::collection::vec(arb_conclusion(true), 5),
        tail in arb_tail(),
        exc_p in proptest::collection::vec(arb_premise(false), 1..4),
        exc_c in proptest::collection::vec(arb_conclusion(false), 4),
        seed in any::<u64>(),
    ) {
        let route: Vec<(String, String)> =
            route_p.iter().cloned().zip(route_c.iter().cloned()).collect();
        let exc: Vec<(String, String)> =
            exc_p.iter().cloned().zip(exc_c.iter().cloned()).collect();
        let src = gen_program(&route, tail.as_ref(), &exc);
        let prog = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));

        let compiled = compile(&prog, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let vm = VmProgram::lower(&compiled)
            .unwrap_or_else(|e| panic!("lowering failed: {e}\n{src}"));
        let o = optimize_rulebase("prop", &prog, &OptOptions::default())
            .unwrap_or_else(|e| panic!("optimize failed: {e}\n{src}"));
        let vm_opt = VmProgram::lower(&o.compiled)
            .unwrap_or_else(|e| panic!("lowering optimized failed: {e}\n{src}"));

        let mut rng = StdRng::seed_from_u64(seed);
        let mut regs_r = RegFile::new(&prog);
        let mut regs_t = RegFile::new(&compiled.prog);
        let mut regs_v = RegFile::new(&compiled.prog);
        let mut regs_o = RegFile::new(&o.compiled.prog);
        let mut sc_v = Scratch::new();
        let mut sc_o = Scratch::new();

        let ss = prog.sym_sizes();
        'trajectory: for step in 0..40 {
            let im = random_inputs(&mut rng, &prog);
            for bi in 0..prog.rulebases.len() {
                let params: Vec<Value> = prog.rulebases[bi]
                    .params
                    .iter()
                    .map(|p| p.dom.value_at(rng.gen_range(0..p.dom.size(&ss))))
                    .collect();
                let rr = cascade_with(&prog, bi, &params, &mut regs_r, &mut |b, p, rg| {
                    fire_reference(&prog, b, p, rg, &im)
                });
                let rt = cascade_with(&compiled.prog, bi, &params, &mut regs_t, &mut |b, p, rg| {
                    compiled.bases[b].fire(&compiled.prog, p, rg, &im)
                });
                let rv = cascade_with(&compiled.prog, bi, &params, &mut regs_v, &mut |b, p, rg| {
                    vm.bases[b].fire(&compiled.prog, p, rg, &im, &mut sc_v)
                });
                let ro = cascade_with(&o.compiled.prog, bi, &params, &mut regs_o, &mut |b, p, rg| {
                    vm_opt.bases[b].fire(&o.compiled.prog, p, rg, &im, &mut sc_o)
                });
                match rr {
                    Err(e) => {
                        // err-ness must agree everywhere (messages may
                        // differ in evaluation-order detail); the state
                        // after an error is unspecified, so stop here
                        prop_assert!(rt.is_err(), "step {} base {}: reference erred ({}) but table succeeded\n{}", step, bi, e, src);
                        prop_assert!(rv.is_err(), "step {} base {}: reference erred ({}) but bytecode succeeded\n{}", step, bi, e, src);
                        prop_assert!(ro.is_err(), "step {} base {}: reference erred ({}) but optimized bytecode succeeded\n{}", step, bi, e, src);
                        break 'trajectory;
                    }
                    Ok(ref want) => {
                        let got_t = rt.unwrap_or_else(|e| panic!("table erred where reference succeeded: {e}\n{src}"));
                        let got_v = rv.unwrap_or_else(|e| panic!("bytecode erred where reference succeeded: {e}\n{src}"));
                        let got_o = ro.unwrap_or_else(|e| panic!("optimized bytecode erred where reference succeeded: {e}\n{src}"));
                        prop_assert_eq!(want, &got_t, "step {} base {}: table diverged (params {:?})\n{}", step, bi, &params, &src);
                        prop_assert_eq!(want, &got_v, "step {} base {}: bytecode diverged (params {:?})\n{}", step, bi, &params, &src);
                        prop_assert_eq!(want, &got_o, "step {} base {}: optimized bytecode diverged (params {:?})\n{}", step, bi, &params, &src);
                        prop_assert_eq!(&regs_r, &regs_t, "step {} base {}: table register state diverged\n{}", step, bi, &src);
                        prop_assert_eq!(&regs_r, &regs_v, "step {} base {}: bytecode register state diverged\n{}", step, bi, &src);
                        prop_assert_eq!(&regs_r, &regs_o, "step {} base {}: optimized bytecode register state diverged\n{}", step, bi, &src);
                    }
                }
            }
        }
    }
}
