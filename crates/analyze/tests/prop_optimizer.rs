//! Property-based differential test of the certified optimizer: for
//! random well-typed two-base programs (entry base optionally tail-
//! emitting into an exception base, so the fusion pass gets exercised),
//! the optimized program must agree with the reference evaluator on
//! every step of long random trajectories started from INIT — same
//! returns, same host events, same register effects — and the emitted
//! certificate must replay through the independent checker.

use ftr_analyze::opt;
use ftr_analyze::{optimize_rulebase, OptOptions};
use ftr_rules::env::{InputMap, RegFile};
use ftr_rules::eval::{fire_reference, EventInstance};
use ftr_rules::parse;
use ftr_rules::value::Value;
use ftr_rules::Program;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn atom_pool(with_d: bool) -> Vec<&'static str> {
    let mut v = vec![
        "state = alpha",
        "state IN {beta, gamma}",
        "count = 0",
        "count > 3",
        "count <= 9",
        "go",
        "level(0) < level(1)",
        "level(2) > 4",
        "EXISTS i IN dirs: flags(i)",
        "FORALL i IN dirs: level(i) < 6",
        "TRUE",
    ];
    if with_d {
        v.extend(["flags(d)", "level(d) > 2", "d IN {0, 2}"]);
    }
    v
}

/// Uniform choice from a fixed string pool (the vendored proptest shim
/// has no `sample::select`).
fn select(pool: Vec<&'static str>) -> Union<String> {
    Union::new(pool.into_iter().map(|s| Just(s.to_string()).boxed()).collect())
}

/// 1-3 atoms combined with AND / OR / NOT; `with_d` controls whether the
/// rule-base parameter `d` may appear (the exception base has none).
fn arb_premise(with_d: bool) -> impl Strategy<Value = String> {
    let atom = select(atom_pool(with_d));
    proptest::collection::vec((atom, any::<u8>()), 1..4).prop_map(|parts| {
        let mut out = String::new();
        for (i, (a, tag)) in parts.iter().enumerate() {
            if i > 0 {
                out.push_str(if tag % 2 == 0 { " AND " } else { " OR " });
            }
            if tag % 3 == 0 {
                out.push_str(&format!("NOT ({a})"));
            } else {
                out.push_str(&format!("({a})"));
            }
        }
        out
    })
}

fn arb_conclusion(with_d: bool) -> impl Strategy<Value = String> {
    let mut pool = vec![
        "RETURN(1)",
        "count <- min(count + 1, 15), RETURN(2)",
        "state <- beta, RETURN(3)",
        "state <- latmax(state, beta), RETURN(5)",
        "RETURN(min(count, 9))",
    ];
    if with_d {
        pool.extend(["RETURN(d)", "flags(d) <- TRUE, RETURN(4)"]);
    } else {
        pool.push("flags(1) <- TRUE, RETURN(4)");
    }
    select(pool)
}

/// `Some(premise)` half the time (no `option::of` in the shim).
fn arb_tail() -> impl Strategy<Value = Option<String>> {
    prop_oneof![arb_premise(true).prop_map(Some), Just(None)]
}

/// A two-base program over the fixed environment. When `tail_guard` is
/// set, the entry base ends with `IF <guard> THEN !exception();` — the
/// shape the fusion pass looks for.
fn gen_program(
    route: &[(String, String)],
    tail_guard: Option<&String>,
    exception: &[(String, String)],
) -> String {
    let mut f_rules = String::new();
    for (p, c) in route {
        f_rules.push_str(&format!("  IF {p} THEN {c};\n"));
    }
    if let Some(g) = tail_guard {
        f_rules.push_str(&format!("  IF {g} THEN !exception();\n"));
    }
    let mut g_rules = String::new();
    for (p, c) in exception {
        g_rules.push_str(&format!("  IF {p} THEN {c};\n"));
    }
    format!(
        "CONSTANT st = {{alpha, beta, gamma}}\n\
         CONSTANT dirs = 0 TO 3\n\
         VARIABLE state IN st INIT alpha\n\
         VARIABLE count IN 0 TO 15 INIT 0\n\
         VARIABLE flags[dirs] IN bool\n\
         INPUT level[dirs] IN 0 TO 7\n\
         INPUT go IN bool\n\
         ON route(d IN dirs) RETURNS 0 TO 15\n{f_rules}END route;\n\
         ON exception() RETURNS 0 TO 15\n{g_rules}END exception;"
    )
}

/// Fires a base and follows emitted events into other rule bases;
/// returns the final RETURN plus the events that escape to the host.
fn cascade(
    prog: &Program,
    bi: usize,
    params: &[Value],
    regs: &mut RegFile,
    inputs: &InputMap,
) -> (Option<Value>, Vec<EventInstance>) {
    let out = fire_reference(prog, bi, params, regs, inputs).expect("fire");
    let mut ret = out.returned;
    let mut host = Vec::new();
    for ev in out.emitted {
        match prog.rulebase(&ev.event) {
            Some((ti, trb)) if trb.params.len() == ev.args.len() => {
                let (r, h) = cascade(prog, ti, &ev.args, regs, inputs);
                if r.is_some() {
                    ret = r;
                }
                host.extend(h);
            }
            _ => host.push(ev),
        }
    }
    (ret, host)
}

fn random_inputs(rng: &mut StdRng, prog: &Program) -> InputMap {
    let mut im = InputMap::default();
    for i in 0..4 {
        im.set(prog, "level", &[Value::Int(i)], Value::Int(rng.gen_range(0..8))).unwrap();
    }
    im.set(prog, "go", &[], Value::Bool(rng.gen_bool(0.5))).unwrap();
    im
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer's contract, quantified over a program family: on
    /// every state reachable from INIT, the optimized program makes the
    /// same decisions and the certificate replays.
    #[test]
    fn optimized_programs_are_trajectory_identical(
        route_p in proptest::collection::vec(arb_premise(true), 1..5),
        route_c in proptest::collection::vec(arb_conclusion(true), 5),
        tail in arb_tail(),
        exc_p in proptest::collection::vec(arb_premise(false), 1..4),
        exc_c in proptest::collection::vec(arb_conclusion(false), 4),
        seed in any::<u64>(),
    ) {
        let route: Vec<(String, String)> =
            route_p.iter().cloned().zip(route_c.iter().cloned()).collect();
        let exc: Vec<(String, String)> =
            exc_p.iter().cloned().zip(exc_c.iter().cloned()).collect();
        let src = gen_program(&route, tail.as_ref(), &exc);
        let orig = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));

        let opts = OptOptions::default();
        let o = optimize_rulebase("prop", &orig, &opts)
            .unwrap_or_else(|e| panic!("optimize failed: {e}\n{src}"));
        let opt_prog = &o.compiled.prog;

        // the certificate must replay through the independent checker
        opt::verify(&orig, &o, &opts)
            .unwrap_or_else(|e| panic!("certificate rejected: {e}\n{src}"));

        // walk a reachable trajectory: fire every base with random
        // params/inputs from the INIT state onward, comparing decisions
        // and register effects at each step
        let mut rng = StdRng::seed_from_u64(seed);
        let mut regs_a = RegFile::new(&orig);
        let mut regs_b = RegFile::new(opt_prog);
        prop_assert_eq!(&regs_a, &regs_b, "register layouts diverged\n{}", src);

        let ss = orig.sym_sizes();
        for step in 0..40 {
            let im = random_inputs(&mut rng, &orig);
            for bi in 0..orig.rulebases.len() {
                let params: Vec<Value> = orig.rulebases[bi]
                    .params
                    .iter()
                    .map(|p| p.dom.value_at(rng.gen_range(0..p.dom.size(&ss))))
                    .collect();
                let (ra, ha) = cascade(&orig, bi, &params, &mut regs_a, &im);
                let (rb, hb) = cascade(opt_prog, bi, &params, &mut regs_b, &im);
                prop_assert_eq!(
                    &ra, &rb,
                    "step {} base {} returned differently (params {:?})\n{}",
                    step, bi, params, src
                );
                prop_assert_eq!(
                    &ha, &hb,
                    "step {} base {} emitted different host events\n{}",
                    step, bi, src
                );
                prop_assert_eq!(
                    &regs_a, &regs_b,
                    "step {} base {} left different register state\n{}",
                    step, bi, src
                );
            }
        }
    }
}
