//! The abstract-interpretation lints (FTR009–FTR013) over the shipped
//! rule programs: the production routers must come out clean, and the
//! naive fully-adaptive baseline must produce a concrete livelock
//! counterexample.

use ftr_analyze::{
    analyze_source_with, check_progress, LintCode, LintOptions, ProgressVerdict, Severity,
    TopoFacts,
};
use ftr_rules::{compile, parse, CompileOptions};

fn full_opts() -> LintOptions {
    LintOptions { absint: true, progress: true, topo: TopoFacts::mesh(8, 8) }
}

#[test]
fn production_programs_are_clean_under_the_absint_lints() {
    for (name, src) in ftr_algos::rules_src::all() {
        if name == "naive_adaptive" {
            continue; // the deliberate negative exemplar, tested below
        }
        let a =
            analyze_source_with(name, src, &full_opts()).unwrap_or_else(|e| panic!("{name}: {e}"));
        for code in
            [LintCode::AbsintUnreachable, LintCode::SemanticShadow, LintCode::ProgressViolation]
        {
            let hits = a.with_code(code);
            let loud: Vec<_> = hits.iter().filter(|d| d.severity >= Severity::Warning).collect();
            assert!(
                loud.is_empty(),
                "{name}: unexpected {} findings at warning level: {loud:?}",
                code.id()
            );
        }
        // FTR009 must produce nothing at all on the shipped routers
        assert!(
            a.with_code(LintCode::AbsintUnreachable).is_empty(),
            "{name}: {:?}",
            a.with_code(LintCode::AbsintUnreachable)
        );
    }
}

#[test]
fn nafta_exception_fallbacks_shadow_at_note_level_only() {
    // test_exception's unconditional fallbacks are shadowed only because
    // de_east/de_west provably stay at their INIT value: that is the
    // optimizer's deletion justification, surfaced as a note (a host
    // write to the exception registers would activate the fallbacks)
    let a = analyze_source_with("nafta", ftr_algos::rules_src::NAFTA, &full_opts()).unwrap();
    let shadows = a.with_code(LintCode::SemanticShadow);
    assert_eq!(shadows.len(), 2, "{shadows:?}");
    for d in &shadows {
        assert_eq!(d.severity, Severity::Note);
        assert_eq!(d.rulebase.as_deref(), Some("test_exception"));
        assert!(d.message.contains("host write"), "{}", d.message);
    }
}

#[test]
fn xy_and_west_first_prove_progress() {
    for name in ["xy", "west_first"] {
        let src = ftr_algos::rules_src::all().into_iter().find(|(n, _)| *n == name).unwrap().1;
        let prog = parse(src).unwrap();
        let c = compile(&prog, &CompileOptions::default()).unwrap();
        let report = check_progress(&c, &TopoFacts::mesh(8, 8));
        assert_eq!(
            report.verdict,
            ProgressVerdict::Proved,
            "{name} should prove progress: {}",
            report.describe()
        );
    }
}

#[test]
fn naive_adaptive_yields_a_livelock_counterexample() {
    let prog = parse(ftr_algos::rules_src::NAIVE_ADAPTIVE).unwrap();
    let c = compile(&prog, &CompileOptions::default()).unwrap();
    let report = check_progress(&c, &TopoFacts::mesh(8, 8));
    assert_eq!(report.verdict, ProgressVerdict::Livelock, "{}", report.describe());
    assert_eq!(report.witness.len(), 4, "the witness is a four-message ring");
    // every witness message names a held and a wanted channel that chain
    // around the ring
    for (i, m) in report.witness.iter().enumerate() {
        let next = &report.witness[(i + 1) % 4];
        assert_eq!(
            m.wants,
            next.holds,
            "ring does not close between message {i} and {}",
            (i + 1) % 4
        );
    }

    // and the lint layer surfaces it as a warning-level FTR013
    let a =
        analyze_source_with("naive_adaptive", ftr_algos::rules_src::NAIVE_ADAPTIVE, &full_opts())
            .unwrap();
    let hits = a.with_code(LintCode::ProgressViolation);
    assert!(
        hits.iter().any(|d| d.severity == Severity::Warning),
        "expected a warning-level FTR013: {hits:?}"
    );
    assert!(
        hits[0].message.contains("ring"),
        "the diagnostic should carry the counterexample: {}",
        hits[0].message
    );
}

#[test]
fn semantic_lints_fire_on_seeded_defects() {
    // interval-provable unreachability and entailment shadowing that the
    // propositional table lints (FTR001/FTR002) cannot see
    let src = "INPUT n IN 0 TO 15\n\
               VARIABLE z IN 0 TO 7 INIT 3\n\
               ON f() RETURNS 0 TO 3\n\
                 IF n > 3 THEN RETURN(0);\n\
                 IF n > 5 AND z = 3 THEN RETURN(1);\n\
                 IF n < 2 AND n > 9 THEN RETURN(2);\n\
                 IF TRUE THEN RETURN(3);\n\
               END f;";
    let a = analyze_source_with(
        "seeded",
        src,
        &LintOptions { absint: true, progress: false, topo: TopoFacts::none() },
    )
    .unwrap();
    assert!(
        !a.with_code(LintCode::SemanticShadow).is_empty(),
        "n > 5 entails n > 3: {:?}",
        a.diagnostics
    );
    assert!(
        !a.with_code(LintCode::AbsintUnreachable).is_empty(),
        "n < 2 AND n > 9 is interval-unsat: {:?}",
        a.diagnostics
    );
    assert!(
        !a.with_code(LintCode::ConstantRegister).is_empty(),
        "z is provably 3: {:?}",
        a.diagnostics
    );
}
