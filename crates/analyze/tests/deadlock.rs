//! The CDG deadlock verifier over compiled rule programs: the shipped
//! deterministic/turn-model/NAFTA programs must verify, and the naive
//! fully-adaptive baseline must produce a concrete cycle witness.

use ftr_analyze::{verify_cube, verify_mesh, MeshVcMode};
use ftr_rules::{compile, parse, CompileOptions, CompiledProgram};

fn compiled(src: &str) -> CompiledProgram {
    let prog = parse(src).expect("parse");
    compile(&prog, &CompileOptions::default()).expect("compile")
}

fn shipped(name: &str) -> CompiledProgram {
    let src = ftr_algos::rules_src::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no shipped program {name}"))
        .1;
    compiled(src)
}

#[test]
fn xy_program_is_deadlock_free_fault_free() {
    let report = verify_mesh("xy", &shipped("xy"), 4, 4, MeshVcMode::SingleVc, 0, 16);
    assert!(report.verified(), "{}", report.summary());
    assert_eq!(report.fault_sets_checked, 1);
}

#[test]
fn west_first_program_is_deadlock_free_fault_free() {
    let report =
        verify_mesh("west_first", &shipped("west_first"), 4, 4, MeshVcMode::SingleVc, 0, 16);
    assert!(report.verified(), "{}", report.summary());
}

#[test]
fn naive_adaptive_baseline_has_a_cycle_witness() {
    let c = compiled(ftr_algos::rules_src::NAIVE_ADAPTIVE);
    let report = verify_mesh("adaptive", &c, 3, 3, MeshVcMode::SingleVc, 0, 16);
    assert!(!report.verified(), "the naive adaptive baseline must deadlock");
    let witness = &report.failures[0];
    assert_eq!(witness.faults, "fault-free");
    // a dependency cycle on a mesh needs at least four turning channels
    assert!(witness.cycle.len() >= 4, "degenerate witness: {:?}", witness.cycle);
}

#[test]
fn nafta_is_deadlock_free_with_up_to_two_link_faults_exhaustively() {
    // 3x3 mesh has 12 links: 1 + 12 + C(12,2) = 79 fault scenarios, all
    // checked exhaustively under the two-virtual-network discipline.
    let report = verify_mesh("nafta", &shipped("nafta"), 3, 3, MeshVcMode::NaraPair, 2, 1 << 20);
    assert!(report.verified(), "{}", report.summary());
    assert_eq!(report.fault_sets_checked, 79);
}

#[test]
fn nafta_is_deadlock_free_on_4x4_with_single_link_faults() {
    let report = verify_mesh("nafta", &shipped("nafta"), 4, 4, MeshVcMode::NaraPair, 1, 1 << 20);
    assert!(report.verified(), "{}", report.summary());
    assert_eq!(report.fault_sets_checked, 25); // 24 links + fault-free
}

#[test]
fn nafta_on_single_virtual_network_is_not_deadlock_free() {
    // sanity check that verification has teeth: the same program without
    // the virtual-network discipline deadlocks
    let report = verify_mesh("nafta", &shipped("nafta"), 3, 3, MeshVcMode::SingleVc, 0, 16);
    assert!(!report.verified());
}

#[test]
fn route_c_is_deadlock_free_on_a_4_cube() {
    let src = ftr_algos::rules_src::route_c_source(4);
    let c = compiled(&src);
    let report = verify_cube("route_c", &c, 4, 0, 16);
    assert!(report.verified(), "{}", report.summary());
    assert_eq!(report.num_vcs, 5);
}
