//! The linter over the five shipped rule programs and the deliberately
//! broken fixture: the production programs must come out clean (notes
//! only), and every seeded defect in the fixture must be flagged with a
//! source span.

use ftr_analyze::{analyze_source, LintCode, Severity};

#[test]
fn all_shipped_programs_analyze_without_error() {
    let programs = ftr_algos::rules_src::all();
    assert_eq!(programs.len(), 6);
    for (name, src) in programs {
        let a = analyze_source(name, src)
            .unwrap_or_else(|e| panic!("{name} failed to parse/compile: {e}"));
        for d in &a.diagnostics {
            assert!(d.pos.is_some(), "{name}: diagnostic without a span: {d}");
        }
        assert!(
            a.max_severity() < Some(Severity::Error),
            "{name}: unexpected error-level finding: {:?}",
            a.with_code(LintCode::DomainViolation)
        );
    }
}

#[test]
fn nafta_and_route_c_are_clean() {
    for (name, src) in ftr_algos::rules_src::all() {
        if name != "nafta" && name != "route_c" {
            continue;
        }
        let a = analyze_source(name, src).unwrap();
        let loud: Vec<_> =
            a.diagnostics.iter().filter(|d| d.severity >= Severity::Warning).collect();
        assert!(a.is_clean(), "{name} should be clean but has warnings/errors: {loud:?}");
    }
}

#[test]
fn broken_fixture_flags_every_seeded_defect_with_spans() {
    let src = include_str!("fixtures/broken.rules");
    let a = analyze_source("broken", src).expect("fixture must parse and compile");

    for code in [
        LintCode::ShadowedRule,
        LintCode::UnsatisfiablePremise,
        LintCode::RuleConflict,
        LintCode::GapCoverage,
        LintCode::DomainViolation,
        LintCode::UnusedRegister,
        LintCode::UnusedInput,
        LintCode::ParallelWriteConflict,
    ] {
        let hits = a.with_code(code);
        assert!(
            !hits.is_empty(),
            "seeded defect {} not flagged; all diagnostics: {:#?}",
            code.id(),
            a.diagnostics
        );
        for d in &hits {
            let pos = d.pos.unwrap_or_else(|| panic!("{} finding has no span", code.id()));
            assert!(pos.line > 0, "{}: zero line", code.id());
        }
    }
    assert!(!a.is_clean());
    assert_eq!(a.max_severity(), Some(Severity::Error));

    // the spans point at the seeded lines, not just somewhere in the file
    let shadowed = a.with_code(LintCode::ShadowedRule);
    assert!(
        shadowed.iter().any(|d| d.pos.unwrap().line == 26),
        "shadowed-rule span should be the rule 2 IF at line 26: {shadowed:?}"
    );
    let domain = a.with_code(LintCode::DomainViolation);
    assert!(
        domain.iter().any(|d| d.pos.unwrap().line == 29),
        "domain-violation span should be the RETURN(99) rule at line 29: {domain:?}"
    );
}

#[test]
fn adaptive_baseline_fixture_lints_without_errors() {
    let src = ftr_algos::rules_src::NAIVE_ADAPTIVE;
    let a = analyze_source("adaptive", src).expect("fixture must parse and compile");
    // deadlock-prone, but statically well-formed: nothing at error level
    assert!(a.max_severity() < Some(Severity::Error), "{:?}", a.diagnostics);
}
