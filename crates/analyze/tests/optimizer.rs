//! The certified optimizer over the shipped NAFTA program: the optimized
//! table must be decision-identical to the original at the fire level
//! (same returns, same host events, same register effects) across
//! thousands of randomized reachable states, the certificate must replay,
//! and tampered certificates must be rejected.

use ftr_analyze::opt;
use ftr_analyze::{optimize_rulebase, AbsEnv, AbsVal, OptOptions, Optimized, Rewrite, TopoFacts};
use ftr_rules::ast::Program;
use ftr_rules::env::{InputMap, RegFile};
use ftr_rules::eval::{fire_reference, EventInstance};
use ftr_rules::value::{Type, Value};
use ftr_rules::{compile, parse, CompileOptions};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::OnceLock;

fn opts() -> OptOptions {
    OptOptions { topo: TopoFacts::mesh(6, 6), ..OptOptions::default() }
}

fn nafta() -> &'static Program {
    static P: OnceLock<Program> = OnceLock::new();
    P.get_or_init(|| parse(ftr_algos::rules_src::NAFTA).expect("NAFTA parses"))
}

fn optimized() -> &'static Optimized {
    static O: OnceLock<Optimized> = OnceLock::new();
    O.get_or_init(|| optimize_rulebase("nafta", nafta(), &opts()).expect("NAFTA optimizes"))
}

/// Samples one concrete value from an abstraction (the states the
/// optimizer's justifications quantify over).
fn sample(rng: &mut StdRng, prog: &Program, a: &AbsVal, elem: Type) -> Value {
    match *a {
        AbsVal::Int { lo, hi } => Value::Int(rng.gen_range(lo..=hi.max(lo))),
        AbsVal::Bool { can_f, can_t } => Value::Bool(match (can_f, can_t) {
            (true, true) => rng.gen_range(0..2) == 1,
            (false, _) => true,
            (_, false) => false,
        }),
        AbsVal::Sym { ty, mask } => {
            let bits: Vec<u32> = (0..64).filter(|b| mask & (1 << b) != 0).collect();
            let idx = bits[rng.gen_range(0..bits.len())];
            Value::Sym { ty, idx }
        }
        AbsVal::Set { dom, must, may } => {
            let optional = may & !must;
            Value::Set { dom, mask: must | (rng.next_u64() & optional) }
        }
        AbsVal::Any => {
            let ss = prog.sym_sizes();
            match elem {
                Type::Scalar(d) => d.value_at(rng.gen_range(0..d.size(&ss))),
                Type::Set(d) => {
                    let full = if d.size(&ss) >= 64 { u64::MAX } else { (1u64 << d.size(&ss)) - 1 };
                    Value::Set { dom: d, mask: rng.next_u64() & full }
                }
            }
        }
    }
}

/// A randomized reachable-ish machine state: registers drawn from the
/// abstract hull the justifications rely on, inputs from their declared
/// (topology-clamped) domains.
fn random_state(rng: &mut StdRng, prog: &Program, env: &AbsEnv) -> (RegFile, InputMap) {
    let ss = prog.sym_sizes();
    let mut regs = RegFile::new(prog);
    for (vi, v) in prog.vars.iter().enumerate() {
        let cells: Vec<Vec<Value>> = index_tuples(prog, &v.index_domains);
        for idx in cells {
            let val = sample(rng, prog, &env.vars[vi], v.elem);
            regs.write(prog, vi, &idx, val).expect("in-domain write");
        }
    }
    let mut inputs = InputMap::default();
    for (ii, d) in prog.inputs.iter().enumerate() {
        for idx in index_tuples(prog, &d.index_domains) {
            let val = sample(rng, prog, &env.inputs[ii], d.elem);
            inputs.set(prog, &d.name, &idx, val).expect("in-domain input");
        }
    }
    let _ = ss;
    (regs, inputs)
}

fn index_tuples(prog: &Program, doms: &[ftr_rules::value::Domain]) -> Vec<Vec<Value>> {
    let ss = prog.sym_sizes();
    let mut out: Vec<Vec<Value>> = vec![Vec::new()];
    for d in doms {
        let mut next = Vec::new();
        for prefix in &out {
            for k in 0..d.size(&ss) {
                let mut t = prefix.clone();
                t.push(d.value_at(k));
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// Fires a base and follows emitted events into other rule bases (the
/// machine's decision cascade); returns the final RETURN plus the events
/// that escape to the host.
fn cascade(
    prog: &Program,
    bi: usize,
    params: &[Value],
    regs: &mut RegFile,
    inputs: &InputMap,
) -> (Option<Value>, Vec<EventInstance>) {
    let out = fire_reference(prog, bi, params, regs, inputs).expect("fire");
    let mut ret = out.returned;
    let mut host = Vec::new();
    for ev in out.emitted {
        match prog.rulebase(&ev.event) {
            Some((ti, trb)) if trb.params.len() == ev.args.len() => {
                let (r, h) = cascade(prog, ti, &ev.args, regs, inputs);
                if r.is_some() {
                    ret = r;
                }
                host.extend(h);
            }
            _ => host.push(ev),
        }
    }
    (ret, host)
}

#[test]
fn nafta_optimizer_is_decision_identical_at_fire_level() {
    let orig = nafta();
    let o = optimized();
    let opt_prog = &o.compiled.prog;

    let compiled = compile(orig, &CompileOptions::default()).unwrap();
    let facts = ftr_analyze::analyze_program(&compiled, &opts().topo);
    let mut env = AbsEnv::seed(orig, 0, &opts().topo, &facts.monotone);
    for (slot, h) in env.vars.iter_mut().zip(&facts.reg_hull) {
        if let Some(m) = slot.meet(h) {
            *slot = m;
        }
    }

    let mut rng = StdRng::seed_from_u64(0x0f7a_11ce);
    for trial in 0..1000 {
        let (regs, inputs) = random_state(&mut rng, orig, &env);
        for (bi, rb) in orig.rulebases.iter().enumerate() {
            let params: Vec<Value> = rb
                .params
                .iter()
                .map(|p| {
                    let ss = orig.sym_sizes();
                    p.dom.value_at(rng.gen_range(0..p.dom.size(&ss)))
                })
                .collect();
            let mut regs_a = regs.clone();
            let mut regs_b = regs.clone();
            let (ret_a, host_a) = cascade(orig, bi, &params, &mut regs_a, &inputs);
            let (ret_b, host_b) = cascade(opt_prog, bi, &params, &mut regs_b, &inputs);
            assert_eq!(
                ret_a, ret_b,
                "trial {trial}: base `{}` returned differently (params {params:?})",
                rb.name
            );
            assert_eq!(
                host_a, host_b,
                "trial {trial}: base `{}` emitted different host events",
                rb.name
            );
            assert_eq!(
                regs_a, regs_b,
                "trial {trial}: base `{}` left different register state",
                rb.name
            );
        }
    }
}

#[test]
fn nafta_fusion_collapses_the_decision_cascade() {
    let o = optimized();
    let fused: Vec<(&str, &str)> = o
        .cert
        .rewrites
        .iter()
        .filter_map(|r| match r {
            Rewrite::FuseTail { base, target } => Some((base.as_str(), target.as_str())),
            _ => None,
        })
        .collect();
    assert!(
        fused.contains(&("in_message_ft", "test_exception")),
        "expected the inner chain link to fuse: {fused:?}"
    );
    assert!(
        fused.contains(&("incoming_message", "in_message_ft")),
        "expected the outer chain link to fuse: {fused:?}"
    );

    // the fused entry base no longer emits into the chain
    let (_, inc) = o.compiled.prog.rulebase("incoming_message").unwrap();
    for r in &inc.rules {
        for c in &r.conclusion {
            if let ftr_rules::ast::Command::Emit { event, .. } = c {
                assert!(
                    o.compiled.prog.rulebase(event).is_none(),
                    "fused base still emits into rule base `{event}`"
                );
            }
        }
    }

    // inlined rules are modeled at their original cascade depth
    let (bi, _) = o.compiled.prog.rulebase("incoming_message").unwrap();
    let w = &o.step_weights.per_base[bi];
    assert!(w.iter().any(|&x| x >= 3), "no depth-3 weights after double fusion: {w:?}");
    assert!(w.contains(&1), "entry rules should stay depth 1: {w:?}");

    // the dead-code passes fired too
    assert!(o
        .cert
        .rewrites
        .iter()
        .any(|r| matches!(r, Rewrite::SpecializeRegister { var, .. } if var == "de_east")));
    assert!(o.cert.rewrites.iter().any(|r| matches!(r, Rewrite::DeleteRule { .. })));
}

#[test]
fn nafta_certificate_replays_and_tampering_is_rejected() {
    let orig = nafta();
    let o = optimized();
    opt::verify(orig, o, &opts()).expect("certificate must replay");

    // dropping a rewrite breaks final equality
    let mut truncated = o.cert.clone();
    truncated.rewrites.pop();
    let (replayed, _) =
        opt::verify_cert(orig, &truncated, &opts()).expect("prefix still justifies");
    assert_ne!(
        ftr_rules::pretty::print_program(&replayed),
        ftr_rules::pretty::print_program(&o.compiled.prog),
        "truncated replay must not match the shipped program"
    );

    // claiming a live rule is dead must fail justification
    let mut bad = o.cert.clone();
    bad.rewrites.insert(0, Rewrite::DeleteRule { base: "incoming_message".into(), rule: 0 });
    assert!(opt::verify_cert(orig, &bad, &opts()).is_err());

    // claiming a host-written register is constant must fail
    let mut bad2 = o.cert.clone();
    bad2.rewrites
        .insert(0, Rewrite::SpecializeRegister { var: "xpos".into(), value: Value::Int(0) });
    assert!(opt::verify_cert(orig, &bad2, &opts()).is_err());
}

#[test]
fn optimizer_reduces_nafta_decision_features() {
    let orig = compile(nafta(), &CompileOptions::default()).unwrap();
    let o = optimized();
    let bits = |c: &ftr_rules::CompiledProgram| -> u64 {
        c.bases.iter().map(|b| b.table.len() as u64).sum()
    };
    // after specialization + folding the total feature space must shrink
    // even though fusion widens the entry base
    let orig_rules: usize = orig.prog.rulebases.iter().map(|r| r.rules.len()).sum();
    let opt_rules: usize = o.compiled.prog.rulebases.iter().map(|r| r.rules.len()).sum();
    assert!(opt_rules < orig_rules + 20, "rule growth out of bounds: {orig_rules} -> {opt_rules}");
    assert!(!o.cert.rewrites.is_empty());
    let _ = bits;
}
