//! Static analysis for fault-tolerant-router rule programs.
//!
//! Two layers, matching the two ways a rule base can be wrong:
//!
//! * **Layer 1 — the linter** ([`lints`]): rule-base diagnostics computed
//!   over the AST and the compiled ARON tables (§4.3) — unreachable and
//!   shadowed rules, conflicting conclusions that source order resolves
//!   silently, gap-coverage reports, domain violations, unused
//!   variables/registers — as structured [`Diagnostic`]s with source
//!   spans and stable `FTRnnn` lint codes.
//! * **Layer 2 — the deadlock verifier** ([`deadlock`]): lifts a compiled
//!   program into the full routing relation expected by
//!   `ftr_topo::cdg` and proves channel-dependency-graph acyclicity by
//!   exhaustion over destinations and enumerated fault sets, reporting a
//!   concrete cycle witness on failure.
//!
//! The `ftr-lint` binary exposes both layers on the command line.

pub mod deadlock;
pub mod diag;
pub mod lints;

pub use deadlock::{
    verify_cube, verify_mesh, CubeProgramLift, CycleWitness, DeadlockReport, MeshProgramLift,
    MeshVcMode,
};
pub use diag::{Diagnostic, LintCode, Severity};
pub use lints::{analyze_compiled, analyze_source, Analysis};
