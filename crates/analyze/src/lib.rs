//! Static analysis for fault-tolerant-router rule programs.
//!
//! Two layers, matching the two ways a rule base can be wrong:
//!
//! * **Layer 1 — the linter** ([`lints`]): rule-base diagnostics computed
//!   over the AST and the compiled ARON tables (§4.3) — unreachable and
//!   shadowed rules, conflicting conclusions that source order resolves
//!   silently, gap-coverage reports, domain violations, unused
//!   variables/registers — as structured [`Diagnostic`]s with source
//!   spans and stable `FTRnnn` lint codes.
//! * **Layer 2 — the deadlock verifier** ([`deadlock`]): lifts a compiled
//!   program into the full routing relation expected by
//!   `ftr_topo::cdg` and proves channel-dependency-graph acyclicity by
//!   exhaustion over destinations and enumerated fault sets, reporting a
//!   concrete cycle witness on failure.
//! * **Layer 3 — the abstract-interpretation engine** ([`absint`]): a
//!   forward dataflow analysis over interval/mask/set domains that sees
//!   through the table compiler's propositional abstraction. It powers
//!   the semantic lints FTR009–FTR012, the progress lint FTR013
//!   ([`progress`]) and the certified table optimizer ([`opt`]), whose
//!   machine-checkable [`opt::OptCert`] re-validates every rewrite
//!   against independently recomputed facts.
//!
//! The `ftr-lint` binary exposes all layers on the command line.

pub mod absint;
pub mod deadlock;
pub mod diag;
pub mod lints;
pub mod opt;
pub mod progress;

pub use absint::{analyze_program, AbsEnv, AbsVal, Facts, Monotonicity, TopoFacts};
pub use deadlock::{
    verify_cube, verify_mesh, CubeProgramLift, CycleWitness, DeadlockReport, MeshProgramLift,
    MeshVcMode,
};
pub use diag::{Diagnostic, LintCode, Severity};
pub use lints::{
    analyze_compiled, analyze_compiled_with, analyze_source, analyze_source_with, Analysis,
    LintOptions,
};
pub use opt::{optimize_rulebase, OptCert, OptOptions, Optimized, Rewrite};
pub use progress::{check_progress, ProgressReport, ProgressVerdict};
