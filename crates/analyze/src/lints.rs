//! Layer 1: rule-base diagnostics over the AST and the compiled tables.
//!
//! The ARON compiler (§4.3) fills the rule table *silently*: overlapping
//! premises are resolved by source order and uncovered feature-space
//! entries become no-op gaps. This module turns those silent resolutions —
//! plus a handful of purely syntactic checks the parser's kind-level type
//! system does not catch — into [`Diagnostic`]s:
//!
//! * table-derived: FTR001 shadowed rules, FTR002 unsatisfiable premises,
//!   FTR003 order-resolved conflicts, FTR004 gap coverage;
//! * AST-derived: FTR005 literal domain violations (the parser unifies all
//!   integer ranges and defers the range check to runtime), FTR006/FTR007
//!   unused registers/inputs, FTR008 conflicting parallel writes.

use crate::absint::{self, TopoFacts};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::progress;
use ftr_rules::ast::{Builtin, Command, Expr, IndexedRef, Program, Ref, Rule, RuleBase};
use ftr_rules::compile::CompileWarning;
use ftr_rules::error::Result;
use ftr_rules::pretty::describe_expr;
use ftr_rules::value::{Type, Value};
use ftr_rules::{compile, parse, CompileOptions, CompiledProgram};

/// Which optional analysis layers to run on top of the base lints.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Run the abstract-interpretation engine (FTR009–FTR012).
    pub absint: bool,
    /// Run the progress lint (FTR013); implies the engine's facts.
    pub progress: bool,
    /// Topology invariants seeded into the engine.
    pub topo: TopoFacts,
}

/// The result of analyzing one program: the compiled artefact (reusable by
/// the deadlock verifier) plus every linter finding.
#[derive(Debug)]
pub struct Analysis {
    /// Program name used in diagnostics.
    pub name: String,
    /// The compiled program (parse + ARON compile succeeded).
    pub compiled: CompiledProgram,
    /// All findings, in (rule base, code) order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Highest severity among the findings.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Clean = nothing at warning severity or above.
    pub fn is_clean(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.severity >= Severity::Warning)
    }

    /// Findings with a specific code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }
}

/// Parses, compiles and lints a rule program. Parse/compile failures are
/// hard errors (the program is broken before linting can start).
pub fn analyze_source(name: &str, src: &str) -> Result<Analysis> {
    analyze_source_with(name, src, &LintOptions::default())
}

/// [`analyze_source`] with the optional layers enabled per `opts`.
pub fn analyze_source_with(name: &str, src: &str, opts: &LintOptions) -> Result<Analysis> {
    let prog = parse(src)?;
    let compiled = compile(&prog, &CompileOptions::default())?;
    Ok(analyze_compiled_with(name, compiled, opts))
}

/// Lints an already-compiled program (base lints only).
pub fn analyze_compiled(name: &str, compiled: CompiledProgram) -> Analysis {
    analyze_compiled_with(name, compiled, &LintOptions::default())
}

/// Lints an already-compiled program with the optional layers per `opts`.
pub fn analyze_compiled_with(
    name: &str,
    compiled: CompiledProgram,
    opts: &LintOptions,
) -> Analysis {
    let mut diags = Vec::new();
    table_lints(name, &compiled, &mut diags);
    domain_lints(name, &compiled.prog, &mut diags);
    usage_lints(name, &compiled.prog, &mut diags);
    parallel_write_lints(name, &compiled.prog, &mut diags);
    if opts.absint || opts.progress {
        let facts = absint::analyze_program(&compiled, &opts.topo);
        if opts.absint {
            // paranoid re-run with every register treated as host-written:
            // findings that survive it hold under the declared domains
            // alone (warning); findings that need INIT-derived register
            // facts could be upset by a host write (note)
            let paranoid_topo = TopoFacts {
                host_written: compiled.prog.vars.iter().map(|v| v.name.clone()).collect(),
                ..opts.topo.clone()
            };
            let paranoid = absint::analyze_program(&compiled, &paranoid_topo);
            absint_lints(name, &compiled, &facts, &paranoid, &mut diags);
        }
        if opts.progress {
            progress_lints(name, &compiled, &opts.topo, &mut diags);
        }
    }
    Analysis { name: name.to_string(), compiled, diagnostics: diags }
}

/// FTR009–FTR012 from the abstract-interpretation facts. Rules the
/// propositional table lints already flagged (FTR001/FTR002) are skipped:
/// the engine's findings strictly extend them.
fn absint_lints(
    name: &str,
    compiled: &CompiledProgram,
    facts: &absint::Facts,
    paranoid: &absint::Facts,
    diags: &mut Vec<Diagnostic>,
) {
    let prog = &compiled.prog;
    for (bi, cb) in compiled.bases.iter().enumerate() {
        let rb = &prog.rulebases[cb.rb];
        let mut wins = vec![0u64; rb.rules.len()];
        for &e in &cb.table {
            if let Some(r) = cb.decode_entry(e).ok().flatten() {
                wins[r] += 1;
            }
        }
        for (ri, rule) in rb.rules.iter().enumerate() {
            // already covered by FTR001/FTR002
            if cb.rule_applicable[ri] == 0 || wins[ri] == 0 {
                continue;
            }
            if let Some(i) = facts.entailed_by[bi][ri] {
                // domain-only shadows are defects; shadows that rely on
                // INIT-derived register facts are redundancy a host write
                // could activate — the optimizer's business, not a bug
                let domain_only = paranoid.entailed_by[bi][ri].is_some();
                diags.push(Diagnostic {
                    code: LintCode::SemanticShadow,
                    severity: if domain_only { Severity::Warning } else { Severity::Note },
                    program: name.into(),
                    pos: Some(rule.pos),
                    rulebase: Some(rb.name.clone()),
                    message: format!(
                        "rule {} is semantically shadowed: whenever its guard holds, \
                         rule {}'s guard provably holds too, and source order picks \
                         rule {} (the table alone cannot see this){}",
                        ri + 1,
                        i + 1,
                        i + 1,
                        if domain_only {
                            ""
                        } else {
                            " — the proof uses register-value facts a host write \
                             could invalidate"
                        }
                    ),
                });
            } else if !facts.reachable[bi][ri] {
                let domain_only = !paranoid.reachable[bi][ri];
                diags.push(Diagnostic {
                    code: LintCode::AbsintUnreachable,
                    severity: if domain_only { Severity::Warning } else { Severity::Note },
                    program: name.into(),
                    pos: Some(rule.pos),
                    rulebase: Some(rb.name.clone()),
                    message: format!(
                        "rule {} is unreachable: abstract interpretation over the \
                         value domains proves its guard (with all earlier guards \
                         negated) unsatisfiable{}",
                        ri + 1,
                        if domain_only {
                            ""
                        } else {
                            " — the proof uses register-value facts a host write \
                             could invalidate"
                        }
                    ),
                });
            }
        }
        for ca in &facts.const_atoms[bi] {
            diags.push(Diagnostic {
                code: LintCode::ConstantAtom,
                severity: Severity::Note,
                program: name.into(),
                pos: Some(rb.rules[ca.rule].pos),
                rulebase: Some(rb.name.clone()),
                message: format!(
                    "in rule {}, the atom `{}` is always {} under the declared \
                     domains — it costs a feature bit without discriminating",
                    ca.rule + 1,
                    describe_expr(prog, rb, &ca.atom),
                    ca.truth
                ),
            });
        }
    }
    for (v, decl) in prog.vars.iter().enumerate() {
        if let Some(val) = &facts.const_regs[v] {
            diags.push(Diagnostic {
                code: LintCode::ConstantRegister,
                severity: Severity::Note,
                program: name.into(),
                pos: Some(decl.pos),
                rulebase: None,
                message: format!(
                    "register `{}` provably holds {} at every decision point under \
                     the program's own writes (the optimizer may specialize it \
                     unless the host writes it)",
                    decl.name,
                    prog.display_value(val)
                ),
            });
        }
    }
}

/// FTR013 from the progress checker.
fn progress_lints(
    name: &str,
    compiled: &CompiledProgram,
    topo: &TopoFacts,
    diags: &mut Vec<Diagnostic>,
) {
    let report = progress::check_progress(compiled, topo);
    match report.verdict {
        progress::ProgressVerdict::Proved | progress::ProgressVerdict::NotApplicable => {}
        progress::ProgressVerdict::Livelock => {
            diags.push(Diagnostic {
                code: LintCode::ProgressViolation,
                severity: Severity::Warning,
                program: name.into(),
                pos: None,
                rulebase: report.rulebase.clone(),
                message: report.describe(),
            });
        }
        progress::ProgressVerdict::Inconclusive => {
            diags.push(Diagnostic {
                code: LintCode::ProgressViolation,
                severity: Severity::Note,
                program: name.into(),
                pos: None,
                rulebase: report.rulebase.clone(),
                message: report.describe(),
            });
        }
    }
}

/// FTR001/002/003/004 from the compiled tables and collected warnings.
fn table_lints(name: &str, compiled: &CompiledProgram, diags: &mut Vec<Diagnostic>) {
    for cb in &compiled.bases {
        let rb = &compiled.prog.rulebases[cb.rb];
        // how often each rule actually wins a table entry
        let mut wins = vec![0u64; rb.rules.len()];
        for &e in &cb.table {
            if let Some(r) = cb.decode_entry(e).ok().flatten() {
                wins[r] += 1;
            }
        }
        for (ri, rule) in rb.rules.iter().enumerate() {
            if cb.rule_applicable[ri] == 0 {
                diags.push(Diagnostic {
                    code: LintCode::UnsatisfiablePremise,
                    severity: Severity::Warning,
                    program: name.into(),
                    pos: Some(rule.pos),
                    rulebase: Some(rb.name.clone()),
                    message: format!(
                        "rule {} can never fire: its premise is false at every \
                         entry of the abstract feature space",
                        ri + 1
                    ),
                });
            } else if wins[ri] == 0 {
                diags.push(Diagnostic {
                    code: LintCode::ShadowedRule,
                    severity: Severity::Warning,
                    program: name.into(),
                    pos: Some(rule.pos),
                    rulebase: Some(rb.name.clone()),
                    message: format!(
                        "rule {} is shadowed: its premise holds at {} feature-space \
                         entries, but an earlier rule wins at every one of them",
                        ri + 1,
                        cb.rule_applicable[ri]
                    ),
                });
            }
        }
        for w in &cb.warnings {
            match *w {
                CompileWarning::Conflict { winner, loser, kind, entries } => {
                    let what = match kind {
                        ftr_rules::ConflictKind::Return => "return values",
                        ftr_rules::ConflictKind::Register => "register writes",
                        ftr_rules::ConflictKind::Emit => "emitted events",
                    };
                    diags.push(Diagnostic {
                        code: LintCode::RuleConflict,
                        severity: Severity::Note,
                        program: name.into(),
                        pos: Some(rb.rules[loser].pos),
                        rulebase: Some(rb.name.clone()),
                        message: format!(
                            "rules {} and {} both apply at {} feature-space entries \
                             with different {what}; source order silently picks \
                             rule {}",
                            winner + 1,
                            loser + 1,
                            entries,
                            winner + 1
                        ),
                    });
                }
                CompileWarning::Gaps { entries, total } => {
                    // a gap in a RETURNS base silently yields "no decision";
                    // in a pure state-update base it is a legitimate idiom
                    let severity =
                        if rb.returns.is_some() { Severity::Warning } else { Severity::Note };
                    diags.push(Diagnostic {
                        code: LintCode::GapCoverage,
                        severity,
                        program: name.into(),
                        pos: Some(rb.pos),
                        rulebase: Some(rb.name.clone()),
                        message: format!(
                            "gap coverage: {entries} of {total} feature-space entries \
                             ({:.1}%) map to the no-op entry — no rule applies there",
                            100.0 * entries as f64 / total as f64
                        ),
                    });
                }
            }
        }
    }
}

/// Best-effort constant folding for literal checks: literals, named
/// constants, and unary minus on those.
fn const_value(prog: &Program, e: &Expr) -> Option<Value> {
    match e {
        Expr::Lit(v) => Some(*v),
        Expr::Ref(Ref::Const(c)) => Some(prog.consts[*c].value),
        Expr::Un(ftr_rules::ast::UnOp::Neg, inner) => match const_value(prog, inner)? {
            Value::Int(v) => Some(Value::Int(-v)),
            _ => None,
        },
        _ => None,
    }
}

/// FTR005: literal values outside declared domains. The parser's type
/// system is kind-level — all integer ranges unify — so `RETURN(99)` in a
/// `RETURNS 0 TO 15` base or `counter <- 99` with `counter IN 0 TO 15`
/// parses fine and fails at runtime. These are statically decidable.
fn domain_lints(name: &str, prog: &Program, diags: &mut Vec<Diagnostic>) {
    let ss = prog.sym_sizes();
    for rb in &prog.rulebases {
        for rule in &rb.rules {
            let mut report = |message: String| {
                diags.push(Diagnostic {
                    code: LintCode::DomainViolation,
                    severity: Severity::Error,
                    program: name.into(),
                    pos: Some(rule.pos),
                    rulebase: Some(rb.name.clone()),
                    message,
                });
            };
            // literal indices of every indexed read in the rule
            for_each_expr(rule, &mut |e| {
                if let Expr::Indexed { target, indices } = e {
                    let doms = match target {
                        IndexedRef::Var(v) => &prog.vars[*v].index_domains,
                        IndexedRef::Input(i) => &prog.inputs[*i].index_domains,
                    };
                    let tname = match target {
                        IndexedRef::Var(v) => &prog.vars[*v].name,
                        IndexedRef::Input(i) => &prog.inputs[*i].name,
                    };
                    for (ix, dom) in indices.iter().zip(doms) {
                        if let Some(v) = const_value(prog, ix) {
                            if !dom.contains(&v, &ss) {
                                report(format!(
                                    "index {} of `{tname}` is outside its domain {dom:?}",
                                    prog.display_value(&v)
                                ));
                            }
                        }
                    }
                }
            });
            check_commands(prog, rb, &rule.conclusion, &ss, &mut report);
        }
    }
}

fn check_commands(
    prog: &Program,
    rb: &RuleBase,
    cmds: &[Command],
    ss: &impl Fn(usize) -> usize,
    report: &mut impl FnMut(String),
) {
    for cmd in cmds {
        match cmd {
            Command::Return(e) => {
                if let (Some(Type::Scalar(dom)), Some(v)) = (rb.returns, const_value(prog, e)) {
                    if !dom.contains(&v, ss) {
                        report(format!(
                            "RETURN({}) is outside the declared return domain {dom:?}",
                            prog.display_value(&v)
                        ));
                    }
                }
            }
            Command::Assign { var, indices, value } => {
                let decl = &prog.vars[*var];
                for (ix, dom) in indices.iter().zip(&decl.index_domains) {
                    if let Some(v) = const_value(prog, ix) {
                        if !dom.contains(&v, ss) {
                            report(format!(
                                "index {} of `{}` is outside its domain {dom:?}",
                                prog.display_value(&v),
                                decl.name
                            ));
                        }
                    }
                }
                if let (Type::Scalar(dom), Some(v)) = (decl.elem, const_value(prog, value)) {
                    if !dom.contains(&v, ss) {
                        report(format!(
                            "`{} <- {}` is outside the register's domain {dom:?}",
                            decl.name,
                            prog.display_value(&v)
                        ));
                    }
                }
            }
            Command::ForAll { body, .. } => check_commands(prog, rb, body, ss, report),
            Command::Emit { .. } => {}
        }
    }
}

/// FTR006/FTR007: registers and inputs no rule ever reads.
fn usage_lints(name: &str, prog: &Program, diags: &mut Vec<Diagnostic>) {
    let mut var_read = vec![false; prog.vars.len()];
    let mut var_written = vec![false; prog.vars.len()];
    let mut input_read = vec![false; prog.inputs.len()];

    for rb in &prog.rulebases {
        for rule in &rb.rules {
            for_each_expr(rule, &mut |e| match e {
                Expr::Ref(Ref::Var(v)) => var_read[*v] = true,
                Expr::Ref(Ref::Input(i)) => input_read[*i] = true,
                Expr::Indexed { target: IndexedRef::Var(v), .. } => var_read[*v] = true,
                Expr::Indexed { target: IndexedRef::Input(i), .. } => input_read[*i] = true,
                Expr::Call { builtin: Builtin::ArgMin(i) | Builtin::ArgMax(i), .. } => {
                    input_read[*i] = true
                }
                _ => {}
            });
            mark_writes(&rule.conclusion, &mut var_written);
        }
    }

    for (v, decl) in prog.vars.iter().enumerate() {
        if var_read[v] {
            continue;
        }
        let (severity, message) = if var_written[v] {
            (
                Severity::Note,
                format!(
                    "register `{}` is write-only inside the program — only the \
                     host can observe it",
                    decl.name
                ),
            )
        } else {
            (
                Severity::Warning,
                format!("register `{}` is never read or written by any rule", decl.name),
            )
        };
        diags.push(Diagnostic {
            code: LintCode::UnusedRegister,
            severity,
            program: name.into(),
            pos: Some(decl.pos),
            rulebase: None,
            message,
        });
    }
    for (i, decl) in prog.inputs.iter().enumerate() {
        if !input_read[i] {
            diags.push(Diagnostic {
                code: LintCode::UnusedInput,
                severity: Severity::Warning,
                program: name.into(),
                pos: Some(decl.pos),
                rulebase: None,
                message: format!("input `{}` is never read by any rule", decl.name),
            });
        }
    }
}

fn mark_writes(cmds: &[Command], var_written: &mut [bool]) {
    for cmd in cmds {
        match cmd {
            Command::Assign { var, .. } => var_written[*var] = true,
            Command::ForAll { body, .. } => mark_writes(body, var_written),
            _ => {}
        }
    }
}

/// FTR008: one conclusion assigning the same register cell (syntactically
/// identical index expressions) two different values. All commands of a
/// conclusion execute in parallel against the pre-state (§4.2), so this is
/// a guaranteed runtime conflict whenever the rule fires.
fn parallel_write_lints(name: &str, prog: &Program, diags: &mut Vec<Diagnostic>) {
    for rb in &prog.rulebases {
        for (ri, rule) in rb.rules.iter().enumerate() {
            check_parallel(prog, rb, ri, rule, &rule.conclusion, diags, name);
        }
    }
}

fn check_parallel(
    prog: &Program,
    rb: &RuleBase,
    ri: usize,
    rule: &Rule,
    cmds: &[Command],
    diags: &mut Vec<Diagnostic>,
    name: &str,
) {
    let assigns: Vec<(&usize, &Vec<Expr>, &Expr)> = cmds
        .iter()
        .filter_map(|c| match c {
            Command::Assign { var, indices, value } => Some((var, indices, value)),
            _ => None,
        })
        .collect();
    for (a, &(va, ia, xa)) in assigns.iter().enumerate() {
        for &(vb, ib, xb) in assigns.iter().skip(a + 1) {
            if va == vb && ia == ib && xa != xb {
                diags.push(Diagnostic {
                    code: LintCode::ParallelWriteConflict,
                    severity: Severity::Warning,
                    program: name.into(),
                    pos: Some(rule.pos),
                    rulebase: Some(rb.name.clone()),
                    message: format!(
                        "rule {} writes register `{}` twice with different values in \
                         one parallel conclusion — a runtime conflict when it fires",
                        ri + 1,
                        prog.vars[*va].name
                    ),
                });
            }
        }
    }
    for cmd in cmds {
        if let Command::ForAll { body, .. } = cmd {
            check_parallel(prog, rb, ri, rule, body, diags, name);
        }
    }
}

/// Applies `f` to every expression in the rule: the premise and every
/// expression reachable from the conclusion commands (assignment indices
/// and values, return values, emit arguments, quantified sets/bodies).
fn for_each_expr(rule: &Rule, f: &mut impl FnMut(&Expr)) {
    walk_expr(&rule.premise, f);
    walk_cmds(&rule.conclusion, f);
}

fn walk_cmds(cmds: &[Command], f: &mut impl FnMut(&Expr)) {
    for cmd in cmds {
        match cmd {
            Command::Assign { indices, value, .. } => {
                for ix in indices {
                    walk_expr(ix, f);
                }
                walk_expr(value, f);
            }
            Command::Return(e) => walk_expr(e, f),
            Command::Emit { args, .. } => {
                for a in args {
                    walk_expr(a, f);
                }
            }
            Command::ForAll { set, body, .. } => {
                walk_expr(set, f);
                walk_cmds(body, f);
            }
        }
    }
}

fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Lit(_) | Expr::Ref(_) => {}
        Expr::Indexed { indices, .. } => {
            for ix in indices {
                walk_expr(ix, f);
            }
        }
        Expr::Un(_, a) => walk_expr(a, f),
        Expr::Bin(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Quant { set, body, .. } => {
            walk_expr(set, f);
            walk_expr(body, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_program_has_no_findings_above_note() {
        let a = analyze_source(
            "tiny",
            "VARIABLE n IN 0 TO 3 INIT 0\n\
             INPUT x IN 0 TO 3\n\
             ON f() RETURNS 0 TO 3\n\
               IF x > n THEN n <- x, RETURN(1);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        assert!(a.is_clean(), "{:?}", a.diagnostics);
    }

    #[test]
    fn shadowed_rule_is_detected_with_span() {
        let a = analyze_source(
            "s",
            "INPUT x IN 0 TO 7\n\
             INPUT go IN bool\n\
             ON f() RETURNS 0 TO 3\n\
               IF x > 3 THEN RETURN(1);\n\
               IF x > 3 AND go THEN RETURN(2);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let hits = a.with_code(LintCode::ShadowedRule);
        assert_eq!(hits.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(hits[0].pos.unwrap().line, 5);
        assert!(!a.is_clean());
    }

    #[test]
    fn unsatisfiable_symbolic_premise_is_detected() {
        let a = analyze_source(
            "u",
            "CONSTANT st = {safe, faulty}\n\
             VARIABLE mode IN st INIT safe\n\
             ON f() RETURNS 0 TO 1\n\
               IF mode = safe AND mode = faulty THEN RETURN(1);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        assert_eq!(a.with_code(LintCode::UnsatisfiablePremise).len(), 1);
    }

    #[test]
    fn out_of_range_return_is_an_error() {
        let a = analyze_source(
            "d",
            "ON f() RETURNS 0 TO 3\n\
               IF TRUE THEN RETURN(9);\n\
             END f;",
        )
        .unwrap();
        let hits = a.with_code(LintCode::DomainViolation);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
    }

    #[test]
    fn gap_in_returning_base_is_a_warning_in_update_base_a_note() {
        let a = analyze_source(
            "g",
            "INPUT x IN 0 TO 3\n\
             VARIABLE n IN 0 TO 3 INIT 0\n\
             ON ret() RETURNS 0 TO 3\n\
               IF x > 2 THEN RETURN(1);\n\
             END ret;\n\
             ON upd()\n\
               IF x > 2 THEN n <- 1;\n\
             END upd;",
        )
        .unwrap();
        let gaps = a.with_code(LintCode::GapCoverage);
        assert_eq!(gaps.len(), 2, "{:?}", a.diagnostics);
        let ret = gaps.iter().find(|d| d.rulebase.as_deref() == Some("ret")).unwrap();
        let upd = gaps.iter().find(|d| d.rulebase.as_deref() == Some("upd")).unwrap();
        assert_eq!(ret.severity, Severity::Warning);
        assert_eq!(upd.severity, Severity::Note);
    }
}
