//! `ftr-lint` — static analysis CLI for rule programs.
//!
//! ```text
//! ftr-lint [OPTIONS] [FILE.rules ...]
//!
//!   --builtin          also lint the shipped programs (xy, west_first,
//!                      nafta, route_c, route_c_nft, naive_adaptive)
//!   --absint           run the abstract-interpretation lints
//!                      (FTR009-FTR012: semantic unreachability,
//!                      entailment shadowing, constant registers,
//!                      constant atoms)
//!   --progress         run the progress/livelock lint (FTR013); proves
//!                      a distance measure decreases or reports a
//!                      concrete livelock counterexample
//!   --optimize         run the certified table optimizer on each
//!                      program and replay its certificate through the
//!                      independent checker
//!   --mesh WxH         topology facts for --absint/--progress/--optimize
//!                      (clamps xpos/xdes/ypos/ydes; default: declared
//!                      domains only)
//!   --format FMT       text (default) or json: one machine-readable
//!                      document with every diagnostic (code, severity,
//!                      span, rule base) plus optimizer summaries, so CI
//!                      can diff lint output instead of grepping text
//!   --deadlock SPEC    additionally run the CDG deadlock verifier on
//!                      each program; SPEC is mesh:WxH or cube:D
//!   --mode MODE        mesh virtual-channel discipline: single | nara
//!                      (default: single)
//!   --max-faults N     verify all link-fault sets up to size N
//!                      (default: 0, fault-free only)
//!   --max-sets N       cap on enumerated fault scenarios (default: 512,
//!                      deterministically sampled beyond that)
//!   --verbose          also print note-level findings (intentional
//!                      rule-language idioms: order-resolved conflicts,
//!                      host-read registers, gaps in non-returning bases)
//!
//! exit status: 0 clean, 1 findings at error severity, a dependency
//! cycle, or a failed optimizer certificate, 2 usage/parse/compile
//! failure
//! ```

use ftr_analyze::{
    analyze_source_with, opt, verify_cube, verify_mesh, Diagnostic, LintOptions, MeshVcMode,
    Rewrite, Severity, TopoFacts,
};
use ftr_obs::json::Obj;
use std::process::ExitCode;

struct Options {
    files: Vec<String>,
    builtin: bool,
    absint: bool,
    progress: bool,
    optimize: bool,
    mesh: Option<(u32, u32)>,
    json: bool,
    deadlock: Option<String>,
    mode: MeshVcMode,
    max_faults: usize,
    max_sets: usize,
    verbose: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ftr-lint [--builtin] [--absint] [--progress] [--optimize] [--mesh WxH] \
         [--format text|json] [--deadlock mesh:WxH|cube:D] [--mode single|nara] \
         [--max-faults N] [--max-sets N] [--verbose] [FILE.rules ...]"
    );
    ExitCode::from(2)
}

fn parse_wh(spec: &str) -> Option<(u32, u32)> {
    let (w, h) = spec.split_once('x')?;
    let (w, h): (u32, u32) = (w.parse().ok()?, h.parse().ok()?);
    if w == 0 || h == 0 {
        return None;
    }
    Some((w, h))
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        files: Vec::new(),
        builtin: false,
        absint: false,
        progress: false,
        optimize: false,
        mesh: None,
        json: false,
        deadlock: None,
        mode: MeshVcMode::SingleVc,
        max_faults: 0,
        max_sets: 512,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--builtin" => opts.builtin = true,
            "--absint" => opts.absint = true,
            "--progress" => opts.progress = true,
            "--optimize" => opts.optimize = true,
            "--mesh" => {
                let spec = args.next().ok_or_else(usage)?;
                opts.mesh = Some(parse_wh(&spec).ok_or_else(usage)?);
            }
            "--format" => {
                opts.json = match args.next().as_deref() {
                    Some("json") => true,
                    Some("text") => false,
                    _ => return Err(usage()),
                }
            }
            "--deadlock" => opts.deadlock = Some(args.next().ok_or_else(usage)?),
            "--mode" => {
                opts.mode = match args.next().as_deref() {
                    Some("single") => MeshVcMode::SingleVc,
                    Some("nara") => MeshVcMode::NaraPair,
                    _ => return Err(usage()),
                }
            }
            "--max-faults" => {
                opts.max_faults = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--max-sets" => {
                opts.max_sets = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--verbose" | "-v" => opts.verbose = true,
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with('-') => return Err(usage()),
            _ => opts.files.push(a),
        }
    }
    if opts.files.is_empty() && !opts.builtin {
        return Err(usage());
    }
    Ok(opts)
}

fn topo_facts(opts: &Options) -> TopoFacts {
    match opts.mesh {
        Some((w, h)) => TopoFacts::mesh(w, h),
        None => TopoFacts::none(),
    }
}

/// `mesh:4x4` → Mesh verification, `cube:4` → hypercube verification.
/// Returns (human summary, verified).
fn run_deadlock(
    spec: &str,
    name: &str,
    analysis: &ftr_analyze::Analysis,
    opts: &Options,
) -> Result<(String, bool), ExitCode> {
    let report = if let Some(wh) = spec.strip_prefix("mesh:") {
        let (w, h) = parse_wh(wh).ok_or_else(|| {
            eprintln!("ftr-lint: bad mesh spec: {spec}");
            ExitCode::from(2)
        })?;
        verify_mesh(name, &analysis.compiled, w, h, opts.mode, opts.max_faults, opts.max_sets)
    } else if let Some(d) = spec.strip_prefix("cube:") {
        let d: u32 = d.parse().map_err(|_| usage())?;
        // the direction/free masks in the program lift are u8 bit sets
        if !(1..=8).contains(&d) {
            eprintln!("ftr-lint: cube dimension must be in 1..=8: {spec}");
            return Err(ExitCode::from(2));
        }
        verify_cube(name, &analysis.compiled, d, opts.max_faults, opts.max_sets)
    } else {
        return Err(usage());
    };
    Ok((report.summary(), report.verified()))
}

fn diag_json(d: &Diagnostic) -> String {
    let mut o = Obj::new();
    o.str("code", d.code.id());
    o.str("severity", &d.severity.to_string());
    if let Some(p) = d.pos {
        o.num("line", p.line);
        o.num("col", p.col);
    }
    if let Some(rb) = &d.rulebase {
        o.str("rulebase", rb);
    }
    o.str("message", &d.message);
    o.finish()
}

/// Runs the certified optimizer on one program and replays the
/// certificate. Returns (json summary, text summary, healthy).
fn run_optimize(
    name: &str,
    analysis: &ftr_analyze::Analysis,
    topo: &TopoFacts,
) -> (String, String, bool) {
    let oopts = opt::OptOptions { topo: topo.clone(), ..opt::OptOptions::default() };
    let prog = &analysis.compiled.prog;
    match opt::optimize_rulebase(name, prog, &oopts) {
        Ok(o) => {
            let verified = opt::verify(prog, &o, &oopts).is_ok();
            let count = |f: fn(&Rewrite) -> bool| o.cert.rewrites.iter().filter(|r| f(r)).count();
            let specialized = count(|r| matches!(r, Rewrite::SpecializeRegister { .. }));
            let folded = count(|r| matches!(r, Rewrite::FoldAtom { .. }));
            let deleted = count(|r| matches!(r, Rewrite::DeleteRule { .. }));
            let fused = count(|r| matches!(r, Rewrite::FuseTail { .. }));
            let reordered = count(|r| matches!(r, Rewrite::SwapRules { .. }));
            let rules = |c: &ftr_rules::CompiledProgram| -> usize {
                c.prog.rulebases.iter().map(|rb| rb.rules.len()).sum()
            };
            let mut j = Obj::new();
            j.num("rewrites", o.cert.rewrites.len() as u64);
            j.num("specialized", specialized as u64);
            j.num("folded", folded as u64);
            j.num("deleted", deleted as u64);
            j.num("fused", fused as u64);
            j.num("reordered", reordered as u64);
            j.num("rules_before", rules(&analysis.compiled) as u64);
            j.num("rules_after", rules(&o.compiled) as u64);
            j.bool("certificate_verified", verified);
            let text = format!(
                "{name}: optimize: {} rewrite(s) ({specialized} specialized, {folded} folded, \
                 {deleted} deleted, {fused} fused, {reordered} reordered), certificate {}",
                o.cert.rewrites.len(),
                if verified { "verified" } else { "REJECTED" },
            );
            (j.finish(), text, verified)
        }
        Err(e) => {
            let mut j = Obj::new();
            j.str("error", &e);
            j.bool("certificate_verified", false);
            (j.finish(), format!("{name}: optimize FAILED: {e}"), false)
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let mut programs: Vec<(String, String)> = Vec::new();
    if opts.builtin {
        for (name, src) in ftr_algos::rules_src::all() {
            programs.push((name.to_string(), src.to_string()));
        }
    }
    for f in &opts.files {
        match std::fs::read_to_string(f) {
            Ok(src) => {
                let name = std::path::Path::new(f)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(f)
                    .to_string();
                programs.push((name, src));
            }
            Err(e) => {
                eprintln!("ftr-lint: cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let topo = topo_facts(&opts);
    let lint_opts =
        LintOptions { absint: opts.absint, progress: opts.progress, topo: topo.clone() };

    let mut worst = Severity::Note;
    let mut any_finding = false;
    let mut all_verified = true;
    let mut program_objs: Vec<String> = Vec::new();
    for (name, src) in &programs {
        let analysis = match analyze_source_with(name, src, &lint_opts) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("ftr-lint: {name}: {e}");
                return ExitCode::from(2);
            }
        };
        for d in &analysis.diagnostics {
            if !opts.json && (d.severity > Severity::Note || opts.verbose) {
                println!("{d}");
            }
            if d.severity > Severity::Note || opts.verbose {
                any_finding = true;
            }
            if d.severity > worst {
                worst = d.severity;
            }
        }

        let mut pj = Obj::new();
        pj.str("program", name);
        pj.field("diagnostics", ftr_obs::json::array(analysis.diagnostics.iter().map(diag_json)));

        if opts.optimize {
            let (oj, text, healthy) = run_optimize(name, &analysis, &topo);
            pj.field("optimize", oj);
            all_verified &= healthy;
            if !opts.json {
                println!("{text}");
            }
        }
        if let Some(spec) = &opts.deadlock {
            match run_deadlock(spec, name, &analysis, &opts) {
                Ok((summary, ok)) => {
                    all_verified &= ok;
                    pj.str("deadlock", &summary);
                    if !opts.json {
                        println!("{summary}");
                    }
                }
                Err(code) => return code,
            }
        }
        program_objs.push(pj.finish());
    }

    if opts.json {
        let mut root = Obj::new();
        root.str("tool", "ftr-lint");
        root.num("programs_linted", programs.len() as u64);
        root.str("worst_severity", &worst.to_string());
        root.bool("verified", all_verified);
        root.field("programs", ftr_obs::json::array(program_objs));
        println!("{}", root.finish());
    } else if !any_finding {
        println!("ftr-lint: {} program(s), no findings", programs.len());
    }
    if worst >= Severity::Error || !all_verified {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
