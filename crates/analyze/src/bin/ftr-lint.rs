//! `ftr-lint` — static analysis CLI for rule programs.
//!
//! ```text
//! ftr-lint [OPTIONS] [FILE.rules ...]
//!
//!   --builtin          also lint the five shipped programs (xy,
//!                      west_first, nafta, route_c, route_c_nft)
//!   --deadlock SPEC    additionally run the CDG deadlock verifier on
//!                      each program; SPEC is mesh:WxH or cube:D
//!   --mode MODE        mesh virtual-channel discipline: single | nara
//!                      (default: single)
//!   --max-faults N     verify all link-fault sets up to size N
//!                      (default: 0, fault-free only)
//!   --max-sets N       cap on enumerated fault scenarios (default: 512,
//!                      deterministically sampled beyond that)
//!   --verbose          also print note-level findings (intentional
//!                      rule-language idioms: order-resolved conflicts,
//!                      host-read registers, gaps in non-returning bases)
//!
//! exit status: 0 clean, 1 findings at error severity or a dependency
//! cycle, 2 usage/parse/compile failure
//! ```

use ftr_analyze::{analyze_source, verify_cube, verify_mesh, MeshVcMode, Severity};
use std::process::ExitCode;

struct Options {
    files: Vec<String>,
    builtin: bool,
    deadlock: Option<String>,
    mode: MeshVcMode,
    max_faults: usize,
    max_sets: usize,
    verbose: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ftr-lint [--builtin] [--deadlock mesh:WxH|cube:D] [--mode single|nara] \
         [--max-faults N] [--max-sets N] [--verbose] [FILE.rules ...]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        files: Vec::new(),
        builtin: false,
        deadlock: None,
        mode: MeshVcMode::SingleVc,
        max_faults: 0,
        max_sets: 512,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--builtin" => opts.builtin = true,
            "--deadlock" => opts.deadlock = Some(args.next().ok_or_else(usage)?),
            "--mode" => {
                opts.mode = match args.next().as_deref() {
                    Some("single") => MeshVcMode::SingleVc,
                    Some("nara") => MeshVcMode::NaraPair,
                    _ => return Err(usage()),
                }
            }
            "--max-faults" => {
                opts.max_faults = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--max-sets" => {
                opts.max_sets = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--verbose" | "-v" => opts.verbose = true,
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with('-') => return Err(usage()),
            _ => opts.files.push(a),
        }
    }
    if opts.files.is_empty() && !opts.builtin {
        return Err(usage());
    }
    Ok(opts)
}

/// `mesh:4x4` → Mesh verification, `cube:4` → hypercube verification.
fn run_deadlock(
    spec: &str,
    name: &str,
    analysis: &ftr_analyze::Analysis,
    opts: &Options,
) -> Result<bool, ExitCode> {
    let report = if let Some(wh) = spec.strip_prefix("mesh:") {
        let (w, h) = wh.split_once('x').ok_or_else(usage)?;
        let (w, h): (u32, u32) = (w.parse().map_err(|_| usage())?, h.parse().map_err(|_| usage())?);
        if w == 0 || h == 0 {
            eprintln!("ftr-lint: mesh dimensions must be positive: {spec}");
            return Err(ExitCode::from(2));
        }
        verify_mesh(name, &analysis.compiled, w, h, opts.mode, opts.max_faults, opts.max_sets)
    } else if let Some(d) = spec.strip_prefix("cube:") {
        let d: u32 = d.parse().map_err(|_| usage())?;
        // the direction/free masks in the program lift are u8 bit sets
        if !(1..=8).contains(&d) {
            eprintln!("ftr-lint: cube dimension must be in 1..=8: {spec}");
            return Err(ExitCode::from(2));
        }
        verify_cube(name, &analysis.compiled, d, opts.max_faults, opts.max_sets)
    } else {
        return Err(usage());
    };
    println!("{}", report.summary());
    Ok(report.verified())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let mut programs: Vec<(String, String)> = Vec::new();
    if opts.builtin {
        for (name, src) in ftr_algos::rules_src::all() {
            programs.push((name.to_string(), src.to_string()));
        }
    }
    for f in &opts.files {
        match std::fs::read_to_string(f) {
            Ok(src) => {
                let name = std::path::Path::new(f)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(f)
                    .to_string();
                programs.push((name, src));
            }
            Err(e) => {
                eprintln!("ftr-lint: cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut worst = Severity::Note;
    let mut any_finding = false;
    let mut all_verified = true;
    for (name, src) in &programs {
        let analysis = match analyze_source(name, src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("ftr-lint: {name}: {e}");
                return ExitCode::from(2);
            }
        };
        for d in &analysis.diagnostics {
            if d.severity > Severity::Note || opts.verbose {
                println!("{d}");
                any_finding = true;
            }
            if d.severity > worst {
                worst = d.severity;
            }
        }
        if let Some(spec) = &opts.deadlock {
            match run_deadlock(spec, name, &analysis, &opts) {
                Ok(ok) => all_verified &= ok,
                Err(code) => return code,
            }
        }
    }
    if !any_finding {
        println!("ftr-lint: {} program(s), no findings", programs.len());
    }
    if worst >= Severity::Error || !all_verified {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
