//! FTR013 — the progress lint.
//!
//! A fault-tolerant router that never drops messages can still fail to
//! make progress: if the turns its rules permit close a cycle, a ring of
//! messages can hold each other's channels and wait forever (livelock /
//! deadlock at the routing-relation level). This module decides, per
//! program, one of:
//!
//! * **Proved** — an abstract *turn screen* shows at least one turn of
//!   every routing cycle direction is impossible, so no message ring can
//!   close (the classic turn-model argument, checked against the actual
//!   rules rather than against the algorithm the author intended);
//! * **Livelock** — the screen found a complete rotation and a concrete
//!   four-message ring on a 2×2 square was *validated against the
//!   reference evaluator*: every message provably waits for the channel
//!   the next one holds, under legal `free`/`linkok` inputs;
//! * **Inconclusive** — the screen could not exclude a rotation but no
//!   concrete witness validated (reported as a note, not a warning);
//! * **NotApplicable** — the program's entry base is not a
//!   `route_msg()`-shaped mesh router (e.g. the NAFTA event pipeline or
//!   the hypercube router), so the mesh turn model does not apply.
//!
//! The screen works on sign states `(sx, sy)` where `sx` abstracts
//! `xpos ? xdes` into `{<, =, >}` (and `sy` likewise): a turn `d1 → d2`
//! is possible iff some sign state can return `d1` and some successor
//! state (after moving one hop along `d1`) can return `d2`. Return-value
//! abstraction goes through [`crate::absint`], with `argmin`/`argmax`
//! candidate sets kept as exact bitmasks so adaptive-choice rules do not
//! smear into interval hulls.

use crate::absint::{self, AbsEnv, AbsVal, TopoFacts};
use ftr_rules::ast::{BinOp, Builtin, Command, Expr, Program, Ref};
use ftr_rules::env::{InputMap, RegFile};
use ftr_rules::eval::fire_reference;
use ftr_rules::value::{Domain, Type, Value};
use ftr_rules::CompiledProgram;

/// Direction encoding shared with the mesh router convention.
const E: u8 = 0;
const W: u8 = 1;
const N: u8 = 2;
const S: u8 = 3;
const RET_WAIT: i64 = 14;

const DIR_NAMES: [&str; 4] = ["east", "west", "north", "south"];

/// Outcome of the progress check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressVerdict {
    /// No rotation of turns can close: rings are impossible.
    Proved,
    /// A validated four-message ring witness exists.
    Livelock,
    /// The screen is positive but no witness validated.
    Inconclusive,
    /// The program is not a mesh `route_msg()` router.
    NotApplicable,
}

/// One message of a validated livelock ring.
#[derive(Clone, Debug)]
pub struct RingMessage {
    /// Node the message is parked at.
    pub node: (i64, i64),
    /// Node it came from (tail of the channel it holds).
    pub prev: (i64, i64),
    /// Direction of the channel it occupies (`prev → node`).
    pub holds: u8,
    /// Direction it asks for at `node` (the next message's channel).
    pub wants: u8,
    /// Its destination.
    pub dst: (i64, i64),
}

/// Result of [`check_progress`].
#[derive(Clone, Debug)]
pub struct ProgressReport {
    /// The verdict.
    pub verdict: ProgressVerdict,
    /// Entry rule base analyzed, when applicable.
    pub rulebase: Option<String>,
    /// Which rotation closed ("clockwise"/"counter-clockwise"), if any.
    pub rotation: Option<&'static str>,
    /// The validated ring (empty unless [`ProgressVerdict::Livelock`]).
    pub witness: Vec<RingMessage>,
    /// Human-readable detail.
    pub detail: String,
}

impl ProgressReport {
    /// One-paragraph description suitable for a diagnostic message.
    pub fn describe(&self) -> String {
        match self.verdict {
            ProgressVerdict::Livelock => {
                let mut s = format!(
                    "progress violation: a {} four-message ring validated against \
                     the reference evaluator — ",
                    self.rotation.unwrap_or("closed")
                );
                for (i, m) in self.witness.iter().enumerate() {
                    if i > 0 {
                        s.push_str("; ");
                    }
                    s.push_str(&format!(
                        "message at ({},{}) for ({},{}) holds the {} channel from \
                         ({},{}) and waits {}",
                        m.node.0,
                        m.node.1,
                        m.dst.0,
                        m.dst.1,
                        DIR_NAMES[m.holds as usize],
                        m.prev.0,
                        m.prev.1,
                        DIR_NAMES[m.wants as usize]
                    ));
                }
                s.push_str(" — each waits on the channel the next holds, forever");
                s
            }
            _ => self.detail.clone(),
        }
    }
}

fn report(verdict: ProgressVerdict, rulebase: Option<String>, detail: &str) -> ProgressReport {
    ProgressReport { verdict, rulebase, rotation: None, witness: Vec::new(), detail: detail.into() }
}

/// The mesh-router shape the lint understands.
struct MeshShape {
    entry: usize,
    xpos: usize,
    ypos: usize,
    xdes: usize,
    ydes: usize,
    free: usize,
    linkok: Option<usize>,
    /// Effective coordinate bounds per axis (declared ∧ topology).
    xb: (i64, i64),
    yb: (i64, i64),
}

fn int_bound(t: Type) -> Option<(i64, i64)> {
    match t {
        Type::Scalar(Domain::Int { lo, hi }) => Some((lo, hi)),
        _ => None,
    }
}

fn detect_shape(prog: &Program, topo: &TopoFacts) -> Option<MeshShape> {
    let entry = 0;
    let base = prog.rulebases.first()?;
    if !base.params.is_empty() {
        return None;
    }
    let (rlo, rhi) = int_bound(base.returns?)?;
    if rlo > 0 || rhi < 15 {
        return None;
    }
    let var = |n: &str| prog.vars.iter().position(|v| v.name == n);
    let input = |n: &str| prog.inputs.iter().position(|d| d.name == n);
    let (xpos, ypos) = (var("xpos")?, var("ypos")?);
    let (xdes, ydes) = (input("xdes")?, input("ydes")?);
    let free = input("free")?;
    // free must be a bool array indexed by an integer direction domain
    match (prog.inputs[free].index_domains.as_slice(), prog.inputs[free].elem) {
        ([Domain::Int { lo: 0, hi }], Type::Scalar(Domain::Bool)) if *hi >= 3 => {}
        _ => return None,
    }
    let clamp = |name: &str, b: (i64, i64)| -> (i64, i64) {
        match topo.int_bounds.iter().find(|(n, _, _)| n == name) {
            Some(&(_, lo, hi)) => (b.0.max(lo), b.1.min(hi)),
            None => b,
        }
    };
    let meet2 = |a: (i64, i64), b: (i64, i64)| (a.0.max(b.0), a.1.min(b.1));
    let xb = meet2(
        clamp("xpos", int_bound(prog.vars[xpos].elem)?),
        clamp("xdes", int_bound(prog.inputs[xdes].elem)?),
    );
    let yb = meet2(
        clamp("ypos", int_bound(prog.vars[ypos].elem)?),
        clamp("ydes", int_bound(prog.inputs[ydes].elem)?),
    );
    Some(MeshShape { entry, xpos, ypos, xdes, ydes, free, linkok: input("linkok"), xb, yb })
}

/// Sign of `pos ? des` on one axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sign {
    Lt,
    Eq,
    Gt,
}
const SIGNS: [Sign; 3] = [Sign::Lt, Sign::Eq, Sign::Gt];

fn sign_expr(var: usize, input: usize, s: Sign) -> Expr {
    let op = match s {
        Sign::Lt => BinOp::Lt,
        Sign::Eq => BinOp::Eq,
        Sign::Gt => BinOp::Gt,
    };
    Expr::Bin(op, Box::new(Expr::Ref(Ref::Var(var))), Box::new(Expr::Ref(Ref::Input(input))))
}

/// Sign transitions of the moved axis after one hop in `dir`
/// (`towards` = E on x, N on y; `away` = W on x, S on y).
fn post_signs(s: Sign, towards: bool) -> &'static [Sign] {
    match (s, towards) {
        (Sign::Lt, true) => &[Sign::Lt, Sign::Eq],
        (Sign::Eq, true) => &[Sign::Gt],
        (Sign::Gt, true) => &[Sign::Gt],
        (Sign::Lt, false) => &[Sign::Lt],
        (Sign::Eq, false) => &[Sign::Lt],
        (Sign::Gt, false) => &[Sign::Gt, Sign::Eq],
    }
}

/// Can the abstract value of `ret` under `env` be direction `d`?
/// `argmin`/`argmax` keep their candidate set exact instead of the
/// interval hull, which is what separates oblivious from adaptive rules.
fn can_return_dir(prog: &Program, env: &AbsEnv, ret: &Expr, d: u8) -> bool {
    if let Expr::Call { builtin: Builtin::ArgMin(_) | Builtin::ArgMax(_), args } = ret {
        if let Some(AbsVal::Set { dom: Domain::Int { lo, .. }, may, .. }) =
            args.first().map(|a| absint::abs_eval(prog, env, a))
        {
            let bit = i64::from(d) - lo;
            return (0..64).contains(&bit) && may & (1u64 << bit) != 0;
        }
    }
    match absint::abs_eval(prog, env, ret) {
        AbsVal::Int { lo, hi } => lo <= i64::from(d) && i64::from(d) <= hi,
        _ => true,
    }
}

fn rule_return(prog: &Program, rb: usize, rule: usize) -> Option<&Expr> {
    prog.rulebases[rb].rules[rule].conclusion.iter().find_map(|c| match c {
        Command::Return(e) => Some(e),
        _ => None,
    })
}

/// The turn screen plus witness validation.
pub fn check_progress(compiled: &CompiledProgram, topo: &TopoFacts) -> ProgressReport {
    let prog = &compiled.prog;
    let Some(shape) = detect_shape(prog, topo) else {
        return report(
            ProgressVerdict::NotApplicable,
            None,
            "entry base is not a route_msg()-shaped mesh router",
        );
    };
    let base_name = prog.rulebases[shape.entry].name.clone();
    let cb = &compiled.bases[shape.entry];
    let mono = absint::monotone_facts(prog);
    let seed = AbsEnv::seed(prog, shape.entry, topo, &mono);

    // per sign state: the refined environment (None = state impossible,
    // e.g. Gt on a degenerate axis)
    let mut envs: Vec<Vec<Option<AbsEnv>>> = Vec::new();
    for &sx in &SIGNS {
        let mut row = Vec::new();
        for &sy in &SIGNS {
            let ex = sign_expr(shape.xpos, shape.xdes, sx);
            let ey = sign_expr(shape.ypos, shape.ydes, sy);
            row.push(absint::assume_all(prog, &seed, &[(&ex, true), (&ey, true)]));
        }
        envs.push(row);
    }

    // returnable[state][dir]: some rule can win under the state and its
    // return value can be `dir`
    let mut returnable = [[[false; 4]; 3]; 3];
    for (ix, _) in SIGNS.iter().enumerate() {
        for (iy, _) in SIGNS.iter().enumerate() {
            let Some(env) = &envs[ix][iy] else { continue };
            for ri in 0..cb.premises.len() {
                let mut items: Vec<(&Expr, bool)> = vec![(&cb.premises[ri], true)];
                for p in cb.premises.iter().take(ri) {
                    items.push((p, false));
                }
                let Some(refined) = absint::assume_all(prog, env, &items) else { continue };
                let Some(ret) = rule_return(prog, shape.entry, ri) else { continue };
                for d in 0..4u8 {
                    if !returnable[ix][iy][d as usize] && can_return_dir(prog, &refined, ret, d) {
                        returnable[ix][iy][d as usize] = true;
                    }
                }
            }
        }
    }

    let idx = |s: Sign| SIGNS.iter().position(|&x| x == s).unwrap();
    let turn_possible = |d1: u8, d2: u8| -> bool {
        for &sx in &SIGNS {
            for &sy in &SIGNS {
                if !returnable[idx(sx)][idx(sy)][d1 as usize] {
                    continue;
                }
                // one hop along d1 changes one axis's sign
                let (nxs, nys): (&[Sign], &[Sign]) = match d1 {
                    E => (post_signs(sx, true), &[sy]),
                    W => (post_signs(sx, false), &[sy]),
                    N => (&[sx], post_signs(sy, true)),
                    _ => (&[sx], post_signs(sy, false)),
                };
                for &nx in nxs {
                    for &ny in nys {
                        if returnable[idx(nx)][idx(ny)][d2 as usize] {
                            return true;
                        }
                    }
                }
            }
        }
        false
    };

    // a ring needs all four turns of one rotation
    let ccw: [(u8, u8); 4] = [(E, N), (N, W), (W, S), (S, E)];
    let cw: [(u8, u8); 4] = [(E, S), (S, W), (W, N), (N, E)];
    let mut open_rotations = Vec::new();
    for (name, turns) in [("counter-clockwise", ccw), ("clockwise", cw)] {
        if turns.iter().all(|&(a, b)| turn_possible(a, b)) {
            open_rotations.push((name, turns));
        }
    }
    if open_rotations.is_empty() {
        return report(
            ProgressVerdict::Proved,
            Some(base_name),
            "turn screen: both ring rotations contain an impossible turn — \
             no message ring can close",
        );
    }

    // witness phase: a 2x2 square needs a 4-wide coordinate window
    if shape.xb.1 - shape.xb.0 < 3 || shape.yb.1 - shape.yb.0 < 3 {
        return ProgressReport {
            verdict: ProgressVerdict::Inconclusive,
            rulebase: Some(base_name),
            rotation: Some(open_rotations[0].0),
            witness: Vec::new(),
            detail: format!(
                "turn screen could not exclude the {} rotation, and the \
                 coordinate space is too small for a ring witness",
                open_rotations[0].0
            ),
        };
    }
    let (ox, oy) = (shape.xb.0, shape.yb.0);
    for (name, _) in &open_rotations {
        let ring = ring_witness(name, ox, oy);
        if validate_witness(prog, &shape, &ring) {
            return ProgressReport {
                verdict: ProgressVerdict::Livelock,
                rulebase: Some(base_name),
                rotation: Some(name),
                witness: ring,
                detail: String::new(),
            };
        }
    }
    ProgressReport {
        verdict: ProgressVerdict::Inconclusive,
        rulebase: Some(base_name),
        rotation: Some(open_rotations[0].0),
        witness: Vec::new(),
        detail: format!(
            "turn screen could not exclude the {} rotation, but no concrete \
             ring witness validated against the reference evaluator — \
             progress unproven",
            open_rotations[0].0
        ),
    }
}

/// The canonical four-message ring on the unit square, offset to the
/// program's coordinate window.
fn ring_witness(rotation: &str, ox: i64, oy: i64) -> Vec<RingMessage> {
    let at = |x: i64, y: i64| (ox + x, oy + y);
    if rotation == "counter-clockwise" {
        // A=(1,1) -E-> B=(2,1) -N-> C=(2,2) -W-> D=(1,2) -S-> A
        vec![
            RingMessage { node: at(2, 1), prev: at(1, 1), holds: E, wants: N, dst: at(2, 3) },
            RingMessage { node: at(2, 2), prev: at(2, 1), holds: N, wants: W, dst: at(0, 2) },
            RingMessage { node: at(1, 2), prev: at(2, 2), holds: W, wants: S, dst: at(1, 0) },
            RingMessage { node: at(1, 1), prev: at(1, 2), holds: S, wants: E, dst: at(2, 1) },
        ]
    } else {
        // A=(1,2) -E-> B=(2,2) -S-> C=(2,1) -W-> D=(1,1) -N-> A
        vec![
            RingMessage { node: at(2, 2), prev: at(1, 2), holds: E, wants: S, dst: at(2, 0) },
            RingMessage { node: at(2, 1), prev: at(2, 2), holds: S, wants: W, dst: at(0, 1) },
            RingMessage { node: at(1, 1), prev: at(2, 1), holds: W, wants: N, dst: at(1, 3) },
            RingMessage { node: at(1, 2), prev: at(1, 1), holds: N, wants: E, dst: at(2, 2) },
        ]
    }
}

/// Fires the entry base once with concrete coordinates and a given
/// `free` bitmask (`linkok` all true), via the reference evaluator.
fn run_router(
    prog: &Program,
    shape: &MeshShape,
    node: (i64, i64),
    dst: (i64, i64),
    free_mask: u8,
) -> Option<i64> {
    let mut regs = RegFile::new(prog);
    regs.write(prog, shape.xpos, &[], Value::Int(node.0)).ok()?;
    regs.write(prog, shape.ypos, &[], Value::Int(node.1)).ok()?;
    let mut inputs = InputMap::default();
    let xdes = prog.inputs[shape.xdes].name.clone();
    let ydes = prog.inputs[shape.ydes].name.clone();
    inputs.set(prog, &xdes, &[], Value::Int(dst.0)).ok()?;
    inputs.set(prog, &ydes, &[], Value::Int(dst.1)).ok()?;
    let free_name = prog.inputs[shape.free].name.clone();
    for d in 0..4i64 {
        let v = Value::Bool(free_mask & (1 << d) != 0);
        inputs.set(prog, &free_name, &[Value::Int(d)], v).ok()?;
    }
    if let Some(lk) = shape.linkok {
        let lk_name = prog.inputs[lk].name.clone();
        // default any extra indices too
        inputs.set_default(prog, &lk_name, Value::Bool(true)).ok()?;
    }
    let out = fire_reference(prog, shape.entry, &[], &mut regs, &inputs).ok()?;
    out.returned.and_then(|v| v.as_int().ok())
}

/// A witness is valid when, for every message: (1) with its wanted
/// channel busy and everything else free it *waits*; (2) with everything
/// free it takes exactly the wanted channel; (3) at its previous node
/// some legal `free` configuration (with the held channel free) actually
/// routed it onto the channel it holds.
fn validate_witness(prog: &Program, shape: &MeshShape, ring: &[RingMessage]) -> bool {
    for m in ring {
        let busy_want = 0x0f & !(1u8 << m.wants);
        if run_router(prog, shape, m.node, m.dst, busy_want) != Some(RET_WAIT) {
            return false;
        }
        if run_router(prog, shape, m.node, m.dst, 0x0f) != Some(i64::from(m.wants)) {
            return false;
        }
        let inbound_ok = (0u8..16).any(|mask| {
            mask & (1 << m.holds) != 0
                && run_router(prog, shape, m.prev, m.dst, mask) == Some(i64::from(m.holds))
        });
        if !inbound_ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_rules::{compile, parse, CompileOptions};

    fn compiled(src: &str) -> CompiledProgram {
        compile(&parse(src).unwrap(), &CompileOptions::default()).unwrap()
    }

    #[test]
    fn non_mesh_program_is_not_applicable() {
        let c = compiled(
            "VARIABLE n IN 0 TO 3 INIT 0\n\
             ON f() RETURNS 0 TO 3\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        );
        let r = check_progress(&c, &TopoFacts::none());
        assert_eq!(r.verdict, ProgressVerdict::NotApplicable);
    }

    #[test]
    fn post_sign_transitions() {
        assert_eq!(post_signs(Sign::Lt, true), &[Sign::Lt, Sign::Eq]);
        assert_eq!(post_signs(Sign::Eq, true), &[Sign::Gt]);
        assert_eq!(post_signs(Sign::Gt, false), &[Sign::Gt, Sign::Eq]);
    }
}
