//! The certified table optimizer.
//!
//! [`optimize_rulebase`] rewrites a rule program at the AST level —
//! guided by the abstract-interpretation facts of [`crate::absint`] —
//! and recompiles it with the standard ARON compiler, so the output is
//! an ordinary [`CompiledProgram`] every existing consumer (machine,
//! router, cost model) can run unchanged. Five passes:
//!
//! 1. **specialize** — registers the engine proves constant (and that
//!    the host does not write, see [`OptOptions::host_written`]) are
//!    replaced by their value at every read;
//! 2. **fold atoms** — guard subexpressions with a forced truth value
//!    become literals, deleting their feature bit from the table;
//! 3. **delete dead** — rules that provably never win (table-shadowed,
//!    table-unsatisfiable, or absint-unreachable) are removed;
//! 4. **fuse** — a base whose last rule is a pure tail-emit
//!    (`IF g THEN !target();`) inlines the target's rules, turning an
//!    N-interpretation decision cascade into one table lookup;
//! 5. **reorder** — adjacent rules with provably disjoint guards are
//!    sorted cheap-first for the reference evaluator's premise scan.
//!
//! Every rewrite is recorded in a machine-checkable certificate
//! ([`OptCert`]). [`verify_cert`] replays the certificate against the
//! *original* program, re-deriving the justification of each step from
//! independently recomputed absint facts, and returns the replayed
//! program — equality with the shipped optimized program closes the
//! proof. Fused rules carry [`StepWeights`] so the event machine's
//! *modeled* step counts (and therefore simulated decision latencies)
//! stay bit-identical to the unoptimized program, while the *physical*
//! interpretation count drops — that separation is what the E18
//! benchmark measures.

use crate::absint::{self, AbsEnv, Facts, TopoFacts};
use ftr_rules::ast::{Command, Expr, Program, Ref};
use ftr_rules::pretty::print_program;
use ftr_rules::value::Value;
use ftr_rules::{compile, CompileOptions, CompiledProgram, StepWeights};

/// Optimizer configuration.
#[derive(Clone, Debug)]
pub struct OptOptions {
    /// Registers the host writes directly (outside the rule semantics) —
    /// never specialized even when the rules alone would make them
    /// constant. Mesh routers get their coordinates written at
    /// configuration time, hence the default.
    pub host_written: Vec<String>,
    /// Enable the specialize-constant-registers pass.
    pub specialize: bool,
    /// Enable the fold-constant-atoms pass.
    pub fold_atoms: bool,
    /// Enable the delete-dead-rules pass.
    pub delete_dead: bool,
    /// Enable tail-emit fusion.
    pub fuse: bool,
    /// Enable disjoint-rule reordering.
    pub reorder: bool,
    /// Table-size ceiling for fused bases; a fusion that would exceed it
    /// is rolled back.
    pub max_fused_entries: u64,
    /// Topology facts seeded into the engine.
    pub topo: TopoFacts,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            host_written: vec!["xpos".into(), "ypos".into()],
            specialize: true,
            fold_atoms: true,
            delete_dead: true,
            fuse: true,
            reorder: true,
            max_fused_entries: 1 << 20,
            topo: TopoFacts::default(),
        }
    }
}

/// One certified rewrite step, in application order.
#[derive(Clone, Debug, PartialEq)]
pub enum Rewrite {
    /// Replace every read of register `var` with `value`.
    SpecializeRegister {
        /// Register name.
        var: String,
        /// Its proved constant value.
        value: Value,
    },
    /// Replace `atom` with its forced truth value inside one guard.
    FoldAtom {
        /// Rule base name.
        base: String,
        /// Rule index at application time.
        rule: usize,
        /// The subexpression being folded.
        atom: Expr,
        /// Its proved truth value.
        truth: bool,
    },
    /// Delete a rule that provably never wins.
    DeleteRule {
        /// Rule base name.
        base: String,
        /// Rule index at application time.
        rule: usize,
    },
    /// Inline `target`'s rules over `base`'s tail emit.
    FuseTail {
        /// The base whose last rule is `IF g THEN !target();`.
        base: String,
        /// The emitted base being inlined.
        target: String,
    },
    /// Swap two adjacent rules with disjoint guards.
    SwapRules {
        /// Rule base name.
        base: String,
        /// Lower index of the swapped pair (`rule`, `rule + 1`).
        rule: usize,
    },
}

/// The machine-checkable certificate: the ordered rewrite list.
#[derive(Clone, Debug, Default)]
pub struct OptCert {
    /// Program name (matches the [`crate::Analysis`] / router name).
    pub program: String,
    /// Rewrites in the order they were applied.
    pub rewrites: Vec<Rewrite>,
}

/// Result of [`optimize_rulebase`].
#[derive(Debug)]
pub struct Optimized {
    /// The rewritten program, compiled with the standard compiler.
    pub compiled: CompiledProgram,
    /// Modeled per-rule step weights preserving original decision
    /// latencies (install via `Machine::set_step_weights`).
    pub step_weights: StepWeights,
    /// The certificate justifying every rewrite.
    pub cert: OptCert,
}

// ---------------------------------------------------------------------------
// expression utilities

fn map_expr(e: &Expr, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
    if let Some(r) = f(e) {
        return r;
    }
    match e {
        Expr::Lit(_) | Expr::Ref(_) => e.clone(),
        Expr::Indexed { target, indices } => Expr::Indexed {
            target: *target,
            indices: indices.iter().map(|ix| map_expr(ix, f)).collect(),
        },
        Expr::Un(op, a) => Expr::Un(*op, Box::new(map_expr(a, f))),
        Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f))),
        Expr::Quant { q, dom, set, body } => Expr::Quant {
            q: *q,
            dom: *dom,
            set: Box::new(map_expr(set, f)),
            body: Box::new(map_expr(body, f)),
        },
        Expr::Call { builtin, args } => {
            Expr::Call { builtin: *builtin, args: args.iter().map(|a| map_expr(a, f)).collect() }
        }
    }
}

fn map_cmds(cmds: &[Command], f: &impl Fn(&Expr) -> Option<Expr>) -> Vec<Command> {
    cmds.iter()
        .map(|c| match c {
            Command::Assign { var, indices, value } => Command::Assign {
                var: *var,
                indices: indices.iter().map(|ix| map_expr(ix, f)).collect(),
                value: map_expr(value, f),
            },
            Command::Return(e) => Command::Return(map_expr(e, f)),
            Command::Emit { event, args } => Command::Emit {
                event: event.clone(),
                args: args.iter().map(|a| map_expr(a, f)).collect(),
            },
            Command::ForAll { dom, set, body } => {
                Command::ForAll { dom: *dom, set: map_expr(set, f), body: map_cmds(body, f) }
            }
        })
        .collect()
}

fn contains_subexpr(e: &Expr, needle: &Expr) -> bool {
    if e == needle {
        return true;
    }
    match e {
        Expr::Lit(_) | Expr::Ref(_) => false,
        Expr::Indexed { indices, .. } => indices.iter().any(|ix| contains_subexpr(ix, needle)),
        Expr::Un(_, a) => contains_subexpr(a, needle),
        Expr::Bin(_, a, b) => contains_subexpr(a, needle) || contains_subexpr(b, needle),
        Expr::Quant { set, body, .. } => {
            contains_subexpr(set, needle) || contains_subexpr(body, needle)
        }
        Expr::Call { args, .. } => args.iter().any(|a| contains_subexpr(a, needle)),
    }
}

fn expr_size(e: &Expr) -> usize {
    let mut n = 1;
    match e {
        Expr::Lit(_) | Expr::Ref(_) => {}
        Expr::Indexed { indices, .. } => n += indices.iter().map(expr_size).sum::<usize>(),
        Expr::Un(_, a) => n += expr_size(a),
        Expr::Bin(_, a, b) => n += expr_size(a) + expr_size(b),
        Expr::Quant { set, body, .. } => n += expr_size(set) + expr_size(body),
        Expr::Call { args, .. } => n += args.iter().map(expr_size).sum::<usize>(),
    }
    n
}

// ---------------------------------------------------------------------------
// working state: the program plus its step-weight ledger

#[derive(Clone)]
struct Work {
    prog: Program,
    /// Per base: one weight per rule plus a trailing gap slot.
    weights: Vec<Vec<u32>>,
}

impl Work {
    fn new(prog: &Program) -> Work {
        Work {
            prog: prog.clone(),
            weights: prog.rulebases.iter().map(|rb| vec![1; rb.rules.len() + 1]).collect(),
        }
    }
}

fn base_index(prog: &Program, name: &str) -> Result<usize, String> {
    prog.rulebases
        .iter()
        .position(|rb| rb.name == name)
        .ok_or_else(|| format!("certificate names unknown rule base `{name}`"))
}

/// The seeded abstract environment for one base, narrowed by the
/// register hull (the same environment the analysis lints use).
fn base_env(prog: &Program, bi: usize, topo: &TopoFacts, facts: &Facts) -> AbsEnv {
    let mut env = AbsEnv::seed(prog, bi, topo, &facts.monotone);
    for (slot, h) in env.vars.iter_mut().zip(&facts.reg_hull) {
        if let Some(m) = slot.meet(h) {
            *slot = m;
        }
    }
    env
}

/// Is `base`'s last rule a pure tail emit `IF g THEN !target();`?
fn tail_emit(rb: &ftr_rules::ast::RuleBase) -> Option<&str> {
    match rb.rules.last()?.conclusion.as_slice() {
        [Command::Emit { event, args }] if args.is_empty() => Some(event),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// justification: each rewrite re-derives its proof from current facts

fn justify(
    prog: &Program,
    compiled: &CompiledProgram,
    facts: &Facts,
    rw: &Rewrite,
    opts: &OptOptions,
) -> Result<(), String> {
    match rw {
        Rewrite::SpecializeRegister { var, value } => {
            if opts.host_written.iter().any(|h| h == var) {
                return Err(format!("`{var}` is host-written; cannot specialize"));
            }
            let vi = prog
                .vars
                .iter()
                .position(|v| &v.name == var)
                .ok_or_else(|| format!("unknown register `{var}`"))?;
            match &facts.const_regs[vi] {
                Some(v) if v == value => Ok(()),
                other => Err(format!(
                    "register `{var}` is not proved constant {value:?} (facts say {other:?})"
                )),
            }
        }
        Rewrite::FoldAtom { base, rule, atom, truth } => {
            let bi = base_index(prog, base)?;
            let rb = &prog.rulebases[bi];
            let r = rb.rules.get(*rule).ok_or_else(|| format!("`{base}` has no rule {rule}"))?;
            if !contains_subexpr(&r.premise, atom) {
                return Err(format!("atom does not occur in `{base}` rule {rule}"));
            }
            let env = base_env(prog, bi, &opts.topo, facts);
            match absint::abs_eval(prog, &env, atom).truth() {
                Some(t) if t == *truth => Ok(()),
                other => Err(format!(
                    "atom in `{base}` rule {rule} is not proved {truth} (abs says {other:?})"
                )),
            }
        }
        Rewrite::DeleteRule { base, rule } => {
            let bi = base_index(prog, base)?;
            let cb = &compiled.bases[bi];
            if *rule >= cb.rule_applicable.len() {
                return Err(format!("`{base}` has no rule {rule}"));
            }
            if cb.rule_applicable[*rule] == 0 {
                return Ok(()); // table-unsatisfiable
            }
            let mut wins = vec![0u64; cb.rule_applicable.len()];
            for &e in &cb.table {
                if let Some(r) = cb.decode_entry(e).map_err(|e| e.to_string())? {
                    wins[r] += 1;
                }
            }
            if wins[*rule] == 0 {
                return Ok(()); // table-shadowed
            }
            if !facts.reachable[bi][*rule] {
                return Ok(()); // absint-unreachable
            }
            Err(format!("rule {rule} of `{base}` is not proved dead"))
        }
        Rewrite::FuseTail { base, target } => {
            let bi = base_index(prog, base)?;
            let ti = base_index(prog, target)?;
            let b = &prog.rulebases[bi];
            let t = &prog.rulebases[ti];
            if tail_emit(b) != Some(target.as_str()) {
                return Err(format!("`{base}` does not tail-emit `{target}`"));
            }
            if !t.params.is_empty() {
                return Err(format!("fusion target `{target}` has parameters"));
            }
            match (b.returns, t.returns) {
                (Some(a), Some(c)) if a != c => {
                    Err(format!("`{base}` and `{target}` declare different RETURNS"))
                }
                _ => Ok(()),
            }
        }
        Rewrite::SwapRules { base, rule } => {
            let bi = base_index(prog, base)?;
            let cb = &compiled.bases[bi];
            let (Some(pa), Some(pb)) = (cb.premises.get(*rule), cb.premises.get(rule + 1)) else {
                return Err(format!("`{base}` has no adjacent pair at {rule}"));
            };
            let env = base_env(prog, bi, &opts.topo, facts);
            if absint::sat_all(prog, &env, &[(pa, true), (pb, true)]) {
                return Err(format!(
                    "rules {} and {} of `{base}` are not proved disjoint",
                    rule,
                    rule + 1
                ));
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// application

fn apply(work: &mut Work, rw: &Rewrite) -> Result<(), String> {
    match rw {
        Rewrite::SpecializeRegister { var, value } => {
            let vi = work
                .prog
                .vars
                .iter()
                .position(|v| &v.name == var)
                .ok_or_else(|| format!("unknown register `{var}`"))?;
            let subst = |e: &Expr| -> Option<Expr> {
                matches!(e, Expr::Ref(Ref::Var(i)) if *i == vi).then(|| Expr::Lit(*value))
            };
            for rb in &mut work.prog.rulebases {
                for r in &mut rb.rules {
                    r.premise = map_expr(&r.premise, &subst);
                    r.conclusion = map_cmds(&r.conclusion, &subst);
                }
            }
            Ok(())
        }
        Rewrite::FoldAtom { base, rule, atom, truth } => {
            let bi = base_index(&work.prog, base)?;
            let r = work.prog.rulebases[bi]
                .rules
                .get_mut(*rule)
                .ok_or_else(|| format!("`{base}` has no rule {rule}"))?;
            let lit = Expr::Lit(Value::Bool(*truth));
            r.premise = map_expr(&r.premise, &|e| (e == atom).then(|| lit.clone()));
            Ok(())
        }
        Rewrite::DeleteRule { base, rule } => {
            let bi = base_index(&work.prog, base)?;
            let rb = &mut work.prog.rulebases[bi];
            if *rule >= rb.rules.len() {
                return Err(format!("`{base}` has no rule {rule}"));
            }
            rb.rules.remove(*rule);
            work.weights[bi].remove(*rule);
            Ok(())
        }
        Rewrite::FuseTail { base, target } => {
            let bi = base_index(&work.prog, base)?;
            let ti = base_index(&work.prog, target)?;
            if tail_emit(&work.prog.rulebases[bi]) != Some(target.as_str()) {
                return Err(format!("`{base}` does not tail-emit `{target}`"));
            }
            let target_rules = work.prog.rulebases[ti].rules.clone();
            let target_returns = work.prog.rulebases[ti].returns;
            let tw = work.weights[ti].clone();
            let target_gap = *tw.last().unwrap_or(&1);

            let rb = &mut work.prog.rulebases[bi];
            let emit_rule = rb.rules.pop().expect("tail_emit checked non-empty");
            let w = &mut work.weights[bi];
            let own_gap = w.pop().unwrap_or(1);
            let emit_w = w.pop().unwrap_or(1);
            let guard = emit_rule.premise;
            let guard_is_true = matches!(guard, Expr::Lit(Value::Bool(true)));

            for (k, tr) in target_rules.iter().enumerate() {
                let premise = if guard_is_true {
                    tr.premise.clone()
                } else {
                    Expr::Bin(
                        ftr_rules::ast::BinOp::And,
                        Box::new(guard.clone()),
                        Box::new(tr.premise.clone()),
                    )
                };
                rb.rules.push(ftr_rules::ast::Rule {
                    premise,
                    conclusion: tr.conclusion.clone(),
                    pos: emit_rule.pos,
                });
                w.push(emit_w + tw.get(k).copied().unwrap_or(1));
            }
            if guard_is_true {
                // a gap can now only come from the target's own gap
                w.push(emit_w + target_gap);
            } else {
                // "guard held but the target gapped" — keep it a firing
                // no-op so the modeled steps still count the traversal
                rb.rules.push(ftr_rules::ast::Rule {
                    premise: guard,
                    conclusion: Vec::new(),
                    pos: emit_rule.pos,
                });
                w.push(emit_w + target_gap);
                w.push(own_gap);
            }
            if rb.returns.is_none() {
                rb.returns = target_returns;
            }
            Ok(())
        }
        Rewrite::SwapRules { base, rule } => {
            let bi = base_index(&work.prog, base)?;
            let rb = &mut work.prog.rulebases[bi];
            if rule + 1 >= rb.rules.len() {
                return Err(format!("`{base}` has no adjacent pair at {rule}"));
            }
            rb.rules.swap(*rule, rule + 1);
            work.weights[bi].swap(*rule, rule + 1);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// the optimizer driver

/// Folds [`OptOptions::host_written`] into the topology facts so the
/// abstract engine never INIT-pins a register the optimizer must also
/// treat as host-writable.
fn merged(opts: &OptOptions) -> OptOptions {
    let mut o = opts.clone();
    for h in &opts.host_written {
        if !o.topo.host_written.contains(h) {
            o.topo.host_written.push(h.clone());
        }
    }
    o
}

fn recompute(prog: &Program, opts: &OptOptions) -> Result<(CompiledProgram, Facts), String> {
    let compiled = compile(prog, &CompileOptions { max_entries: opts.max_fused_entries })
        .map_err(|e| format!("recompile failed: {e}"))?;
    let facts = absint::analyze_program(&compiled, &opts.topo);
    Ok((compiled, facts))
}

/// Optimizes a rule program; see the module docs for the pass list.
/// The returned [`Optimized::compiled`] is decision-identical to the
/// input (differentially tested), [`Optimized::step_weights`] preserve
/// modeled latencies, and [`Optimized::cert`] replays under
/// [`verify_cert`].
pub fn optimize_rulebase(
    name: &str,
    prog: &Program,
    opts: &OptOptions,
) -> Result<Optimized, String> {
    let opts = &merged(opts);
    let mut work = Work::new(prog);
    let mut cert = OptCert { program: name.into(), rewrites: Vec::new() };

    let commit = |work: &mut Work,
                  cert: &mut OptCert,
                  rw: Rewrite,
                  compiled: &CompiledProgram,
                  facts: &Facts|
     -> Result<(), String> {
        justify(&work.prog, compiled, facts, &rw, opts)?;
        apply(work, &rw)?;
        cert.rewrites.push(rw);
        Ok(())
    };

    // pass 1: specialize constant registers
    if opts.specialize {
        let (compiled, facts) = recompute(&work.prog, opts)?;
        let candidates: Vec<(String, Value)> = work
            .prog
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| !opts.host_written.iter().any(|h| h == &v.name))
            .filter_map(|(i, v)| facts.const_regs[i].map(|val| (v.name.clone(), val)))
            .collect();
        for (var, value) in candidates {
            commit(
                &mut work,
                &mut cert,
                Rewrite::SpecializeRegister { var, value },
                &compiled,
                &facts,
            )?;
        }
    }

    // pass 2: fold constant atoms
    if opts.fold_atoms {
        let (compiled, facts) = recompute(&work.prog, opts)?;
        let mut folds = Vec::new();
        for (bi, rb) in work.prog.rulebases.iter().enumerate() {
            let env = base_env(&work.prog, bi, &opts.topo, &facts);
            for (ri, rule) in rb.rules.iter().enumerate() {
                let mut found = Vec::new();
                collect_folds(&work.prog, &env, &rule.premise, &mut found);
                for (atom, truth) in found {
                    folds.push(Rewrite::FoldAtom { base: rb.name.clone(), rule: ri, atom, truth });
                }
            }
        }
        for rw in folds {
            commit(&mut work, &mut cert, rw, &compiled, &facts)?;
        }
    }

    // pass 3: delete dead rules (one at a time — indices stay honest)
    if opts.delete_dead {
        loop {
            let (compiled, facts) = recompute(&work.prog, opts)?;
            let Some(rw) = find_dead(&work.prog, &compiled, &facts) else { break };
            commit(&mut work, &mut cert, rw, &compiled, &facts)?;
        }
    }

    // pass 4: fuse tail-emit chains, bottom-up, rolling back oversize fusions
    if opts.fuse {
        let mut vetoed: Vec<(String, String)> = Vec::new();
        for _ in 0..work.prog.rulebases.len() {
            let Some((base, target)) = find_fusion(&work.prog, &vetoed) else { break };
            let snapshot = work.clone();
            let (compiled, facts) = recompute(&work.prog, opts)?;
            let rw = Rewrite::FuseTail { base: base.clone(), target: target.clone() };
            commit(&mut work, &mut cert, rw, &compiled, &facts)?;
            if recompute(&work.prog, opts).is_err() {
                // fused table exceeds the ceiling: roll back
                work = snapshot;
                cert.rewrites.pop();
                vetoed.push((base, target));
            }
        }
    }

    // pass 5: bubble cheap disjoint rules forward
    if opts.reorder {
        for _ in 0..32 {
            let (compiled, facts) = recompute(&work.prog, opts)?;
            let Some(rw) = find_swap(&work.prog, &compiled, &facts, opts) else { break };
            commit(&mut work, &mut cert, rw, &compiled, &facts)?;
        }
    }

    let (compiled, _) = recompute(&work.prog, opts)?;
    Ok(Optimized { compiled, step_weights: StepWeights { per_base: work.weights }, cert })
}

/// Maximal boolean subexpressions of `premise` with a forced truth value
/// (literals excluded; a folded node's children are not revisited).
fn collect_folds(prog: &Program, env: &AbsEnv, e: &Expr, out: &mut Vec<(Expr, bool)>) {
    if !matches!(e, Expr::Lit(_)) {
        if let Some(t) = absint::abs_eval(prog, env, e).truth() {
            out.push((e.clone(), t));
            return;
        }
    }
    match e {
        Expr::Lit(_) | Expr::Ref(_) => {}
        Expr::Indexed { .. } => {}
        Expr::Un(_, a) => collect_folds(prog, env, a, out),
        Expr::Bin(_, a, b) => {
            collect_folds(prog, env, a, out);
            collect_folds(prog, env, b, out);
        }
        Expr::Quant { body, .. } => collect_folds(prog, env, body, out),
        Expr::Call { .. } => {}
    }
}

fn find_dead(prog: &Program, compiled: &CompiledProgram, facts: &Facts) -> Option<Rewrite> {
    for (bi, cb) in compiled.bases.iter().enumerate() {
        let mut wins = vec![0u64; cb.rule_applicable.len()];
        // the table was just compiled, so entries decode cleanly; a corrupt
        // entry simply proposes no deletion (verify re-checks everything)
        for &e in &cb.table {
            if let Some(r) = cb.decode_entry(e).ok().flatten() {
                wins[r] += 1;
            }
        }
        for (ri, &w) in wins.iter().enumerate() {
            if cb.rule_applicable[ri] == 0 || w == 0 || !facts.reachable[bi][ri] {
                return Some(Rewrite::DeleteRule {
                    base: prog.rulebases[bi].name.clone(),
                    rule: ri,
                });
            }
        }
    }
    None
}

fn find_fusion(prog: &Program, vetoed: &[(String, String)]) -> Option<(String, String)> {
    // bottom-up: only fuse into a target that is not itself a tail-emitter,
    // so chains collapse deepest-first and cycles never fuse
    for rb in &prog.rulebases {
        let Some(target) = tail_emit(rb) else { continue };
        let Some((_, t)) = prog.rulebase(target) else { continue };
        if !t.params.is_empty() || tail_emit(t).is_some() {
            continue;
        }
        if let (Some(a), Some(c)) = (rb.returns, t.returns) {
            if a != c {
                continue;
            }
        }
        let pair = (rb.name.clone(), target.to_string());
        if vetoed.contains(&pair) {
            continue;
        }
        return Some(pair);
    }
    None
}

fn find_swap(
    prog: &Program,
    compiled: &CompiledProgram,
    facts: &Facts,
    opts: &OptOptions,
) -> Option<Rewrite> {
    for (bi, rb) in prog.rulebases.iter().enumerate() {
        let env = base_env(prog, bi, &opts.topo, facts);
        let prems = &compiled.bases[bi].premises;
        for r in 0..rb.rules.len().saturating_sub(1) {
            if expr_size(&rb.rules[r].premise) <= expr_size(&rb.rules[r + 1].premise) {
                continue;
            }
            if !absint::sat_all(prog, &env, &[(&prems[r], true), (&prems[r + 1], true)]) {
                return Some(Rewrite::SwapRules { base: rb.name.clone(), rule: r });
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// verification

/// Replays a certificate against the original program, re-deriving every
/// justification from freshly recomputed absint facts. Returns the
/// replayed program and step weights; callers close the proof by
/// comparing them with the shipped artefacts (see [`verify`]).
pub fn verify_cert(
    original: &Program,
    cert: &OptCert,
    opts: &OptOptions,
) -> Result<(Program, StepWeights), String> {
    let opts = &merged(opts);
    let mut work = Work::new(original);
    for (i, rw) in cert.rewrites.iter().enumerate() {
        let (compiled, facts) = recompute(&work.prog, opts)?;
        justify(&work.prog, &compiled, &facts, rw, opts)
            .map_err(|e| format!("rewrite {i} ({rw:?}) failed to re-justify: {e}"))?;
        apply(&mut work, rw).map_err(|e| format!("rewrite {i} failed to apply: {e}"))?;
    }
    Ok((work.prog, StepWeights { per_base: work.weights }))
}

/// Full certificate check: replay, then require the replayed program and
/// step weights to be identical to the shipped optimized artefacts.
pub fn verify(original: &Program, optimized: &Optimized, opts: &OptOptions) -> Result<(), String> {
    let (replayed, weights) = verify_cert(original, &optimized.cert, opts)?;
    if print_program(&replayed) != print_program(&optimized.compiled.prog) {
        return Err("replayed program differs from the shipped optimized program".into());
    }
    if weights != optimized.step_weights {
        return Err("replayed step weights differ from the shipped weights".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_rules::env::{InputMap, RegFile};
    use ftr_rules::eval::fire_reference;
    use ftr_rules::parse;

    fn opts() -> OptOptions {
        OptOptions { max_fused_entries: 1 << 16, ..OptOptions::default() }
    }

    #[test]
    fn specializes_and_deletes_dead() {
        let prog = parse(
            "VARIABLE flag IN bool INIT FALSE\n\
             INPUT x IN 0 TO 7\n\
             ON f() RETURNS 0 TO 3\n\
               IF x > 3 AND flag THEN RETURN(1);\n\
               IF x > 3 THEN RETURN(2);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let o = optimize_rulebase("t", &prog, &opts()).unwrap();
        // flag is never written -> FALSE; rule 1 dies; the flag feature bit
        // disappears from the table
        assert_eq!(o.compiled.prog.rulebases[0].rules.len(), 2);
        assert!(o
            .cert
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::SpecializeRegister { var, .. } if var == "flag")));
        assert!(o.cert.rewrites.iter().any(|r| matches!(r, Rewrite::DeleteRule { .. })));
        verify(&prog, &o, &opts()).unwrap();
    }

    #[test]
    fn fuses_tail_emit_chain_with_weights() {
        let prog = parse(
            "INPUT x IN 0 TO 3\n\
             INPUT y IN 0 TO 3\n\
             ON a() RETURNS 0 TO 3\n\
               IF x = 0 THEN RETURN(0);\n\
               IF TRUE THEN !b();\n\
             END a;\n\
             ON b() RETURNS 0 TO 3\n\
               IF y = 0 THEN RETURN(1);\n\
               IF TRUE THEN RETURN(2);\n\
             END b;",
        )
        .unwrap();
        let o = optimize_rulebase("t", &prog, &opts()).unwrap();
        let a = &o.compiled.prog.rulebases[0];
        assert_eq!(a.rules.len(), 3, "x=0 + inlined y=0 + inlined TRUE");
        // inlined rules are modeled at depth 2
        assert_eq!(o.step_weights.per_base[0], vec![1, 2, 2, 2]);
        verify(&prog, &o, &opts()).unwrap();
    }

    #[test]
    fn fused_program_is_decision_identical() {
        let prog = parse(
            "VARIABLE n IN 0 TO 3 INIT 0\n\
             INPUT x IN 0 TO 3\n\
             INPUT y IN 0 TO 3\n\
             ON a() RETURNS 0 TO 7\n\
               IF x = 0 THEN n <- 1, RETURN(0);\n\
               IF TRUE THEN !b();\n\
             END a;\n\
             ON b() RETURNS 0 TO 7\n\
               IF y > x THEN n <- 2, RETURN(1);\n\
               IF TRUE THEN RETURN(2);\n\
             END b;",
        )
        .unwrap();
        let o = optimize_rulebase("t", &prog, &opts()).unwrap();
        // exhaustive: original cascade (a then, on emit, b) vs fused a
        for x in 0..4i64 {
            for y in 0..4i64 {
                let mut inputs = InputMap::default();
                inputs.set(&prog, "x", &[], Value::Int(x)).unwrap();
                inputs.set(&prog, "y", &[], Value::Int(y)).unwrap();

                let mut regs_o = RegFile::new(&prog);
                let mut out = fire_reference(&prog, 0, &[], &mut regs_o, &inputs).unwrap();
                for ev in std::mem::take(&mut out.emitted) {
                    let (bi, _) = prog.rulebase(&ev.event).unwrap();
                    let nested = fire_reference(&prog, bi, &[], &mut regs_o, &inputs).unwrap();
                    if nested.returned.is_some() {
                        out.returned = nested.returned;
                    }
                }

                let fprog = &o.compiled.prog;
                let mut regs_f = RegFile::new(fprog);
                let fout = fire_reference(fprog, 0, &[], &mut regs_f, &inputs).unwrap();

                assert_eq!(out.returned, fout.returned, "x={x} y={y}");
                assert_eq!(
                    regs_o.read(&prog, 0, &[]).unwrap(),
                    regs_f.read(fprog, 0, &[]).unwrap(),
                    "register state diverged at x={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn tampered_cert_is_rejected() {
        let prog = parse(
            "VARIABLE flag IN bool INIT FALSE\n\
             INPUT x IN 0 TO 7\n\
             ON f() RETURNS 0 TO 3\n\
               IF x > 3 AND flag THEN RETURN(1);\n\
               IF x > 3 THEN RETURN(2);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let o = optimize_rulebase("t", &prog, &opts()).unwrap();
        // claim a live rule is dead
        let mut bad = o.cert.clone();
        bad.rewrites = vec![Rewrite::DeleteRule { base: "f".into(), rule: 1 }];
        assert!(verify_cert(&prog, &bad, &opts()).is_err());
        // claim a varying register is constant
        let mut bad2 = o.cert.clone();
        bad2.rewrites =
            vec![Rewrite::SpecializeRegister { var: "flag".into(), value: Value::Bool(true) }];
        assert!(verify_cert(&prog, &bad2, &opts()).is_err());
    }

    #[test]
    fn reorder_preserves_table_decisions() {
        // rules 1 and 2 have disjoint guards; rule 1 is more expensive
        let prog = parse(
            "INPUT x IN 0 TO 7\n\
             INPUT go IN bool\n\
             ON f() RETURNS 0 TO 3\n\
               IF x > 5 AND go THEN RETURN(1);\n\
               IF x < 2 THEN RETURN(2);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        )
        .unwrap();
        let o = optimize_rulebase("t", &prog, &opts()).unwrap();
        if o.cert.rewrites.iter().any(|r| matches!(r, Rewrite::SwapRules { .. })) {
            verify(&prog, &o, &opts()).unwrap();
        }
        // decisions must be identical either way
        for x in 0..8i64 {
            for go in [false, true] {
                let mut inputs = InputMap::default();
                inputs.set(&prog, "x", &[], Value::Int(x)).unwrap();
                inputs.set(&prog, "go", &[], Value::Bool(go)).unwrap();
                let mut r1 = RegFile::new(&prog);
                let a = fire_reference(&prog, 0, &[], &mut r1, &inputs).unwrap();
                let fp = &o.compiled.prog;
                let mut r2 = RegFile::new(fp);
                let b = fire_reference(fp, 0, &[], &mut r2, &inputs).unwrap();
                assert_eq!(a.returned, b.returned, "x={x} go={go}");
            }
        }
    }
}
