//! Forward abstract interpretation over compiled rule programs.
//!
//! The ARON table compiler (ftr-rules) reasons *propositionally*: every
//! atom becomes an independent feature bit, so the table contains entries
//! for physically impossible combinations (`n < 2 AND n > 5` gets a
//! feature-space cell even though no `n` satisfies it). This module adds
//! the semantic layer: each register, input and parameter carries an
//! **abstract value** — an integer interval, a symbol/boolean
//! possibility mask, or a must/may set pair — seeded from the declared
//! domains, optional topology facts ([`TopoFacts`]) and the monotone
//! fault-state invariants the program maintains, and guards are checked
//! for satisfiability by narrowing those values through the guard's
//! atoms.
//!
//! Everything here is a *may*-analysis: [`sat`] answering `false` is a
//! proof of unsatisfiability (the lints and the optimizer only act on
//! that direction); answering `true` just means the analysis could not
//! refute the guard. The same engine backs the FTR009–FTR012 lints, the
//! progress lint (FTR013, see [`crate::progress`]) and the certified
//! optimizer ([`crate::opt`]), whose certificates re-validate against
//! facts recomputed here.

use ftr_rules::ast::{BinOp, Builtin, Command, Expr, IndexedRef, Program, Ref, UnOp};
use ftr_rules::value::{Domain, Type, Value};
use ftr_rules::CompiledProgram;
use std::collections::{HashMap, HashSet};

/// Branch budget of one satisfiability query. Disjunctions split the
/// environment; when the budget is exhausted the query conservatively
/// answers "satisfiable".
const SAT_BUDGET: u32 = 4096;

/// An abstract value: the over-approximated set of runtime values an
/// expression can take.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AbsVal {
    /// Integers in `[lo, hi]`; empty (bottom) iff `lo > hi`.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Symbols of type `ty` whose index bit is set in `mask`; bottom iff
    /// `mask == 0`.
    Sym {
        /// Symbol-type index.
        ty: usize,
        /// Possibility bitmask over symbol indices.
        mask: u64,
    },
    /// Booleans: which truth values are possible; bottom iff neither.
    Bool {
        /// `false` is possible.
        can_f: bool,
        /// `true` is possible.
        can_t: bool,
    },
    /// Sets over `dom`: every bit of `must` is definitely a member, no
    /// bit outside `may` can be one. Bottom iff `must & !may != 0`.
    Set {
        /// Element domain.
        dom: Domain,
        /// Definite members.
        must: u64,
        /// Possible members.
        may: u64,
    },
    /// Unknown value of unknown kind (top).
    Any,
}

impl AbsVal {
    /// Full abstraction of a scalar domain.
    pub fn from_domain(prog: &Program, d: Domain) -> AbsVal {
        match d {
            Domain::Int { lo, hi } => AbsVal::Int { lo, hi },
            Domain::Sym(t) => AbsVal::Sym { ty: t, mask: low_mask(prog.sym_size(t) as u64) },
            Domain::Bool => AbsVal::Bool { can_f: true, can_t: true },
        }
    }

    /// Full abstraction of a declared type (scalar or set).
    pub fn from_type(prog: &Program, t: Type) -> AbsVal {
        match t {
            Type::Scalar(d) => AbsVal::from_domain(prog, d),
            Type::Set(d) => {
                AbsVal::Set { dom: d, must: 0, may: low_mask(d.size(&prog.sym_sizes())) }
            }
        }
    }

    /// Exact abstraction of one concrete value.
    pub fn singleton(v: Value) -> AbsVal {
        match v {
            Value::Int(x) => AbsVal::Int { lo: x, hi: x },
            Value::Sym { ty, idx } => AbsVal::Sym { ty, mask: 1u64 << idx },
            Value::Bool(b) => AbsVal::Bool { can_f: !b, can_t: b },
            Value::Set { dom, mask } => AbsVal::Set { dom, must: mask, may: mask },
        }
    }

    /// True if no concrete value is represented.
    pub fn is_bottom(&self) -> bool {
        match *self {
            AbsVal::Int { lo, hi } => lo > hi,
            AbsVal::Sym { mask, .. } => mask == 0,
            AbsVal::Bool { can_f, can_t } => !can_f && !can_t,
            AbsVal::Set { must, may, .. } => must & !may != 0,
            AbsVal::Any => false,
        }
    }

    /// The single concrete value, if the abstraction pins one down.
    pub fn as_const(&self) -> Option<Value> {
        match *self {
            AbsVal::Int { lo, hi } if lo == hi => Some(Value::Int(lo)),
            AbsVal::Sym { ty, mask } if mask.count_ones() == 1 => {
                Some(Value::Sym { ty, idx: mask.trailing_zeros() })
            }
            AbsVal::Bool { can_f: true, can_t: false } => Some(Value::Bool(false)),
            AbsVal::Bool { can_f: false, can_t: true } => Some(Value::Bool(true)),
            AbsVal::Set { dom, must, may } if must == may => Some(Value::Set { dom, mask: must }),
            _ => None,
        }
    }

    /// The definite truth value, for boolean abstractions.
    pub fn truth(&self) -> Option<bool> {
        match *self {
            AbsVal::Bool { can_f: false, can_t: true } => Some(true),
            AbsVal::Bool { can_f: true, can_t: false } => Some(false),
            _ => None,
        }
    }

    /// Least upper bound. Incompatible kinds widen to [`AbsVal::Any`].
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        match (*self, *other) {
            (a, b) if a.is_bottom() => b,
            (a, b) if b.is_bottom() => a,
            (AbsVal::Int { lo: a, hi: b }, AbsVal::Int { lo: c, hi: d }) => {
                AbsVal::Int { lo: a.min(c), hi: b.max(d) }
            }
            (AbsVal::Sym { ty: t, mask: a }, AbsVal::Sym { ty: u, mask: b }) if t == u => {
                AbsVal::Sym { ty: t, mask: a | b }
            }
            (AbsVal::Bool { can_f: a, can_t: b }, AbsVal::Bool { can_f: c, can_t: d }) => {
                AbsVal::Bool { can_f: a || c, can_t: b || d }
            }
            (
                AbsVal::Set { dom, must: am, may: ay },
                AbsVal::Set { dom: d2, must: bm, may: by },
            ) if dom == d2 => AbsVal::Set { dom, must: am & bm, may: ay | by },
            _ => AbsVal::Any,
        }
    }

    /// Greatest lower bound; `None` when the result is empty (the two
    /// abstractions are contradictory) or the kinds are incomparable
    /// (in which case the caller keeps its own value).
    pub fn meet(&self, other: &AbsVal) -> Option<AbsVal> {
        let met = match (*self, *other) {
            (AbsVal::Any, b) => b,
            (a, AbsVal::Any) => a,
            (AbsVal::Int { lo: a, hi: b }, AbsVal::Int { lo: c, hi: d }) => {
                AbsVal::Int { lo: a.max(c), hi: b.min(d) }
            }
            (AbsVal::Sym { ty: t, mask: a }, AbsVal::Sym { ty: u, mask: b }) if t == u => {
                AbsVal::Sym { ty: t, mask: a & b }
            }
            (AbsVal::Bool { can_f: a, can_t: b }, AbsVal::Bool { can_f: c, can_t: d }) => {
                AbsVal::Bool { can_f: a && c, can_t: b && d }
            }
            (
                AbsVal::Set { dom, must: am, may: ay },
                AbsVal::Set { dom: d2, must: bm, may: by },
            ) if dom == d2 => AbsVal::Set { dom, must: am | bm, may: ay & by },
            // incomparable kinds: no refinement, but no contradiction either
            (a, _) => a,
        };
        if met.is_bottom() {
            None
        } else {
            Some(met)
        }
    }
}

fn low_mask(n: u64) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Bitmask of domain ordinals a scalar abstraction can take, or `None`
/// when unknown / not representable in 64 bits.
fn scalar_bits(a: &AbsVal, dom: Domain) -> Option<u64> {
    match (*a, dom) {
        (AbsVal::Int { lo, hi }, Domain::Int { lo: dlo, hi: dhi }) => {
            let lo = lo.max(dlo);
            let hi = hi.min(dhi);
            if lo > hi || (dhi - dlo) >= 64 {
                return (lo > hi).then_some(0);
            }
            let mut m = 0u64;
            for v in lo..=hi {
                m |= 1u64 << (v - dlo);
            }
            Some(m)
        }
        (AbsVal::Sym { ty, mask }, Domain::Sym(t)) if ty == t => Some(mask),
        (AbsVal::Bool { can_f, can_t }, Domain::Bool) => {
            Some(u64::from(can_f) | (u64::from(can_t) << 1))
        }
        _ => None,
    }
}

/// Scalar abstraction of a set of domain ordinals.
fn bits_to_scalar(mask: u64, dom: Domain) -> AbsVal {
    match dom {
        Domain::Int { lo, .. } => {
            if mask == 0 {
                AbsVal::Int { lo: 1, hi: 0 }
            } else {
                AbsVal::Int {
                    lo: lo + mask.trailing_zeros() as i64,
                    hi: lo + (63 - mask.leading_zeros() as i64),
                }
            }
        }
        Domain::Sym(t) => AbsVal::Sym { ty: t, mask },
        Domain::Bool => AbsVal::Bool { can_f: mask & 1 != 0, can_t: mask & 2 != 0 },
    }
}

/// Topology invariants the host guarantees, by declared name.
///
/// The router hardware writes node coordinates and destination headers;
/// on a `w × h` mesh they never leave `[0, w-1] × [0, h-1]` even though
/// the program declares a generous `0 TO maxc`. Seeding these bounds
/// makes boundary-dependent rules analyzable.
#[derive(Clone, Debug)]
pub struct TopoFacts {
    /// `(name, lo, hi)` — applied to any register or input of that name.
    pub int_bounds: Vec<(String, i64, i64)>,
    /// Registers the host writes directly between decisions (mesh
    /// coordinates by convention). They are never INIT-pinned: any value
    /// of the declared domain (clamped by `int_bounds`) may appear.
    pub host_written: Vec<String>,
}

impl Default for TopoFacts {
    fn default() -> TopoFacts {
        TopoFacts { int_bounds: Vec::new(), host_written: vec!["xpos".into(), "ypos".into()] }
    }
}

impl TopoFacts {
    /// No topology knowledge: declared domains only (mesh coordinates
    /// still count as host-written).
    pub fn none() -> TopoFacts {
        TopoFacts::default()
    }

    /// Mesh coordinate bounds for the `xpos/ypos/xdes/ydes` convention.
    pub fn mesh(width: u32, height: u32) -> TopoFacts {
        TopoFacts {
            int_bounds: vec![
                ("xpos".into(), 0, i64::from(width) - 1),
                ("xdes".into(), 0, i64::from(width) - 1),
                ("ypos".into(), 0, i64::from(height) - 1),
                ("ydes".into(), 0, i64::from(height) - 1),
            ],
            ..TopoFacts::default()
        }
    }

    /// Is `name` a register the host writes directly?
    pub fn is_host_written(&self, name: &str) -> bool {
        self.host_written.iter().any(|h| h == name)
    }

    /// Facts read off a concrete mesh topology.
    pub fn from_mesh(m: &ftr_topo::Mesh2D) -> TopoFacts {
        TopoFacts::mesh(m.width(), m.height())
    }

    fn bound_for(&self, name: &str) -> Option<(i64, i64)> {
        self.int_bounds.iter().find(|(n, _, _)| n == name).map(|&(_, lo, hi)| (lo, hi))
    }
}

/// How the program's own writes can move a register between decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Monotonicity {
    /// Never written (holds its INIT value unless the host intervenes).
    NeverWritten,
    /// Set register that only ever gains elements.
    GrowingSet,
    /// Set register that only ever loses elements.
    ShrinkingSet,
    /// Integer register that never decreases.
    NonDecreasing,
    /// Integer register that never increases.
    NonIncreasing,
    /// No direction can be established.
    Unknown,
}

/// The abstract environment: one abstraction per register, input and
/// parameter, plus term-keyed refinements accumulated while assuming a
/// guard. Indexed registers/inputs are cell-summarized (one abstraction
/// covers every cell); term refinements are keyed on the syntactic
/// expression, which is sound within a single guard because equal terms
/// denote equal values under one valuation.
#[derive(Clone, Debug)]
pub struct AbsEnv {
    /// Per register (indexed like `Program::vars`).
    pub vars: Vec<AbsVal>,
    /// Per input (indexed like `Program::inputs`).
    pub inputs: Vec<AbsVal>,
    /// Per parameter of the rule base under analysis.
    pub params: Vec<AbsVal>,
    terms: HashMap<Expr, AbsVal>,
    /// Ordering knowledge between term pairs: bit0 = `l < r` possible,
    /// bit1 = `l = r` possible, bit2 = `l > r` possible. Intervals alone
    /// cannot express `xpos < xdes` over two free slots; this can.
    rels: HashMap<(Expr, Expr), u8>,
}

/// Possible-orderings bitset for one assumed comparison.
fn rel_of(op: BinOp) -> u8 {
    match op {
        BinOp::Lt => 0b001,
        BinOp::Le => 0b011,
        BinOp::Eq => 0b010,
        BinOp::Ne => 0b101,
        BinOp::Ge => 0b110,
        BinOp::Gt => 0b100,
        _ => 0b111,
    }
}

/// Mirrors a relation bitset to the swapped operand order.
fn rel_flip(bits: u8) -> u8 {
    (bits & 0b010) | ((bits & 0b001) << 2) | ((bits & 0b100) >> 2)
}

impl AbsEnv {
    /// Seeds the environment for one rule base: declared domains, meet
    /// with topology bounds, meet with monotonicity-derived invariants.
    pub fn seed(prog: &Program, rb_idx: usize, topo: &TopoFacts, mono: &[Monotonicity]) -> AbsEnv {
        let clamp = |name: &str, a: AbsVal| -> AbsVal {
            match (topo.bound_for(name), a) {
                (Some((lo, hi)), AbsVal::Int { lo: a, hi: b }) => {
                    AbsVal::Int { lo: a.max(lo), hi: b.min(hi) }
                }
                (_, a) => a,
            }
        };
        let vars = prog
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let mut a = clamp(&v.name, AbsVal::from_type(prog, v.elem));
                if topo.is_host_written(&v.name) {
                    // the host may store any (clamped) domain value at any
                    // time, so INIT-relative invariants do not hold
                    return a;
                }
                // monotone invariants relative to INIT hold across every
                // decision epoch: a growing set always contains its INIT
                // elements, a non-decreasing counter never drops below it
                match (mono.get(i), v.init, a) {
                    (Some(Monotonicity::NeverWritten), init, _) => a = AbsVal::singleton(init),
                    (
                        Some(Monotonicity::GrowingSet),
                        Value::Set { mask, .. },
                        AbsVal::Set { dom, must, may },
                    ) => a = AbsVal::Set { dom, must: must | mask, may },
                    (
                        Some(Monotonicity::ShrinkingSet),
                        Value::Set { mask, .. },
                        AbsVal::Set { dom, must, may },
                    ) => a = AbsVal::Set { dom, must, may: may & mask },
                    (
                        Some(Monotonicity::NonDecreasing),
                        Value::Int(init),
                        AbsVal::Int { lo, hi },
                    ) => a = AbsVal::Int { lo: lo.max(init), hi },
                    (
                        Some(Monotonicity::NonIncreasing),
                        Value::Int(init),
                        AbsVal::Int { lo, hi },
                    ) => a = AbsVal::Int { lo, hi: hi.min(init) },
                    _ => {}
                }
                a
            })
            .collect();
        let inputs =
            prog.inputs.iter().map(|d| clamp(&d.name, AbsVal::from_type(prog, d.elem))).collect();
        let params = prog.rulebases[rb_idx]
            .params
            .iter()
            .map(|p| AbsVal::from_domain(prog, p.dom))
            .collect();
        AbsEnv { vars, inputs, params, terms: HashMap::new(), rels: HashMap::new() }
    }

    /// Currently-possible orderings of `(l, r)` (`0b111` when unknown).
    fn get_rel(&self, l: &Expr, r: &Expr) -> u8 {
        if let Some(&b) = self.rels.get(&(l.clone(), r.clone())) {
            b
        } else if let Some(&b) = self.rels.get(&(r.clone(), l.clone())) {
            rel_flip(b)
        } else {
            0b111
        }
    }

    /// Narrows the orderings of `(l, r)` to `bits` (already met by the
    /// caller); stores in whichever orientation is already keyed.
    fn set_rel(&mut self, l: &Expr, r: &Expr, bits: u8) {
        if let Some(b) = self.rels.get_mut(&(r.clone(), l.clone())) {
            *b = rel_flip(bits);
        } else {
            self.rels.insert((l.clone(), r.clone()), bits);
        }
    }

    /// Looks up a term refinement.
    fn term(&self, e: &Expr) -> Option<AbsVal> {
        self.terms.get(e).copied()
    }

    /// Narrows a term to `a`. Returns `false` on contradiction (bottom).
    fn refine(&mut self, prog: &Program, e: &Expr, a: AbsVal) -> bool {
        let cur = abs_eval(prog, self, e);
        let Some(met) = cur.meet(&a) else { return false };
        match e {
            Expr::Lit(_) => true, // consistency was the check
            Expr::Ref(Ref::Var(i)) => {
                self.vars[*i] = met;
                true
            }
            Expr::Ref(Ref::Input(i)) => {
                self.inputs[*i] = met;
                true
            }
            Expr::Ref(Ref::Param(i)) => {
                self.params[*i] = met;
                true
            }
            _ => {
                self.terms.insert(e.clone(), met);
                true
            }
        }
    }
}

/// Abstract evaluation of an expression under an environment.
pub fn abs_eval(prog: &Program, env: &AbsEnv, e: &Expr) -> AbsVal {
    if !matches!(e, Expr::Lit(_)) {
        if let Some(t) = env.term(e) {
            return t;
        }
    }
    match e {
        Expr::Lit(v) => AbsVal::singleton(*v),
        Expr::Ref(Ref::Const(i)) => AbsVal::singleton(prog.consts[*i].value),
        Expr::Ref(Ref::Var(i)) => env.vars[*i],
        Expr::Ref(Ref::Input(i)) => env.inputs[*i],
        Expr::Ref(Ref::Param(i)) => env.params.get(*i).copied().unwrap_or(AbsVal::Any),
        Expr::Ref(Ref::Bound(_)) => AbsVal::Any,
        Expr::Indexed { target: IndexedRef::Var(i), .. } => env.vars[*i],
        Expr::Indexed { target: IndexedRef::Input(i), .. } => env.inputs[*i],
        Expr::Un(UnOp::Neg, x) => match abs_eval(prog, env, x) {
            AbsVal::Int { lo, hi } => {
                AbsVal::Int { lo: hi.saturating_neg(), hi: lo.saturating_neg() }
            }
            _ => AbsVal::Any,
        },
        Expr::Un(UnOp::Not, x) => match abs_eval(prog, env, x) {
            AbsVal::Bool { can_f, can_t } => AbsVal::Bool { can_f: can_t, can_t: can_f },
            _ => AbsVal::Bool { can_f: true, can_t: true },
        },
        Expr::Bin(op, l, r) => abs_bin(prog, env, *op, l, r),
        Expr::Quant { .. } => AbsVal::Bool { can_f: true, can_t: true },
        Expr::Call { builtin, args } => abs_call(prog, env, *builtin, args),
    }
}

fn int_of(a: AbsVal) -> Option<(i64, i64)> {
    match a {
        AbsVal::Int { lo, hi } => Some((lo, hi)),
        _ => None,
    }
}

fn clamp_i128(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

fn abs_bin(prog: &Program, env: &AbsEnv, op: BinOp, l: &Expr, r: &Expr) -> AbsVal {
    let la = abs_eval(prog, env, l);
    let ra = abs_eval(prog, env, r);
    let both = AbsVal::Bool { can_f: true, can_t: true };
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let (Some((a, b)), Some((c, d))) = (int_of(la), int_of(ra)) else {
                return AbsVal::Any;
            };
            let (lo, hi) = match op {
                BinOp::Add => (a.saturating_add(c), b.saturating_add(d)),
                BinOp::Sub => (a.saturating_sub(d), b.saturating_sub(c)),
                BinOp::Mul => {
                    let ps = [
                        (a as i128) * (c as i128),
                        (a as i128) * (d as i128),
                        (b as i128) * (c as i128),
                        (b as i128) * (d as i128),
                    ];
                    (clamp_i128(*ps.iter().min().unwrap()), clamp_i128(*ps.iter().max().unwrap()))
                }
                _ => unreachable!(),
            };
            AbsVal::Int { lo, hi }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (Some((a, b)), Some((c, d))) = (int_of(la), int_of(ra)) else { return both };
            let (can_t, can_f) = match op {
                BinOp::Lt => (a < d, b >= c),
                BinOp::Le => (a <= d, b > c),
                BinOp::Gt => (b > c, a <= d),
                BinOp::Ge => (b >= c, a < d),
                _ => unreachable!(),
            };
            AbsVal::Bool { can_f, can_t }
        }
        BinOp::Eq | BinOp::Ne => {
            let eq = match (la, ra) {
                (AbsVal::Int { lo: a, hi: b }, AbsVal::Int { lo: c, hi: d }) => AbsVal::Bool {
                    can_t: a.max(c) <= b.min(d),
                    can_f: !(a == b && c == d && a == c),
                },
                (AbsVal::Sym { ty: t, mask: m }, AbsVal::Sym { ty: u, mask: n }) if t == u => {
                    AbsVal::Bool { can_t: m & n != 0, can_f: !(m == n && m.count_ones() == 1) }
                }
                (AbsVal::Bool { can_f: a, can_t: b }, AbsVal::Bool { can_f: c, can_t: d }) => {
                    AbsVal::Bool { can_t: (a && c) || (b && d), can_f: (a && d) || (b && c) }
                }
                (sa @ AbsVal::Set { .. }, sb @ AbsVal::Set { .. }) => {
                    match (sa.as_const(), sb.as_const()) {
                        (Some(x), Some(y)) => AbsVal::Bool { can_t: x == y, can_f: x != y },
                        _ => both,
                    }
                }
                _ => both,
            };
            match (op, eq) {
                (BinOp::Eq, v) => v,
                (BinOp::Ne, AbsVal::Bool { can_f, can_t }) => {
                    AbsVal::Bool { can_f: can_t, can_t: can_f }
                }
                _ => both,
            }
        }
        BinOp::In => {
            let AbsVal::Set { dom, must, may } = ra else { return both };
            let Some(bits) = scalar_bits(&la, dom) else { return both };
            AbsVal::Bool {
                can_t: bits & may != 0,
                can_f: !(bits.count_ones() == 1 && bits & must != 0),
            }
        }
        BinOp::And => {
            let (x, y) = (abs_truth(la), abs_truth(ra));
            AbsVal::Bool { can_t: x.1 && y.1, can_f: x.0 || y.0 }
        }
        BinOp::Or => {
            let (x, y) = (abs_truth(la), abs_truth(ra));
            AbsVal::Bool { can_t: x.1 || y.1, can_f: x.0 && y.0 }
        }
    }
}

/// `(can_f, can_t)` of a boolean abstraction (unknown kinds: both).
fn abs_truth(a: AbsVal) -> (bool, bool) {
    match a {
        AbsVal::Bool { can_f, can_t } => (can_f, can_t),
        _ => (true, true),
    }
}

fn abs_call(prog: &Program, env: &AbsEnv, builtin: Builtin, args: &[Expr]) -> AbsVal {
    let arg = |i: usize| args.get(i).map(|a| abs_eval(prog, env, a)).unwrap_or(AbsVal::Any);
    match builtin {
        Builtin::Min | Builtin::Max => {
            let (Some((a, b)), Some((c, d))) = (int_of(arg(0)), int_of(arg(1))) else {
                return AbsVal::Any;
            };
            match builtin {
                Builtin::Min => AbsVal::Int { lo: a.min(c), hi: b.min(d) },
                _ => AbsVal::Int { lo: a.max(c), hi: b.max(d) },
            }
        }
        Builtin::AbsDiff => {
            let (Some((a, b)), Some((c, d))) = (int_of(arg(0)), int_of(arg(1))) else {
                return AbsVal::Any;
            };
            let lo_d = a.saturating_sub(d);
            let hi_d = b.saturating_sub(c);
            let lo = if lo_d <= 0 && hi_d >= 0 { 0 } else { lo_d.abs().min(hi_d.abs()) };
            AbsVal::Int { lo, hi: lo_d.abs().max(hi_d.abs()) }
        }
        Builtin::Xor => {
            let (Some((a, _)), Some((c, _))) = (int_of(arg(0)), int_of(arg(1))) else {
                return AbsVal::Any;
            };
            if a < 0 || c < 0 {
                return AbsVal::Any;
            }
            let (Some((_, b)), Some((_, d))) = (int_of(arg(0)), int_of(arg(1))) else {
                return AbsVal::Any;
            };
            let bits = 64 - (b.max(d).max(1) as u64).leading_zeros();
            AbsVal::Int { lo: 0, hi: low_mask(u64::from(bits)) as i64 }
        }
        Builtin::Popcount => AbsVal::Int { lo: 0, hi: 64 },
        Builtin::Bit => AbsVal::Bool { can_f: true, can_t: true },
        Builtin::LatMax => match (arg(0), arg(1)) {
            (AbsVal::Sym { ty: t, mask: m }, AbsVal::Sym { ty: u, mask: n }) if t == u => {
                let mut out = 0u64;
                for i in 0..64u32 {
                    if m & (1u64 << i) == 0 {
                        continue;
                    }
                    for j in 0..64u32 {
                        if n & (1u64 << j) != 0 {
                            out |= 1u64 << i.max(j);
                        }
                    }
                }
                AbsVal::Sym { ty: t, mask: out }
            }
            _ => AbsVal::Any,
        },
        Builtin::Card => match arg(0) {
            AbsVal::Set { must, may, .. } => {
                AbsVal::Int { lo: i64::from(must.count_ones()), hi: i64::from(may.count_ones()) }
            }
            _ => AbsVal::Any,
        },
        Builtin::Union | Builtin::Isect | Builtin::Diff => match (arg(0), arg(1)) {
            (
                AbsVal::Set { dom, must: am, may: ay },
                AbsVal::Set { dom: d2, must: bm, may: by },
            ) if dom == d2 => match builtin {
                Builtin::Union => AbsVal::Set { dom, must: am | bm, may: ay | by },
                Builtin::Isect => AbsVal::Set { dom, must: am & bm, may: ay & by },
                _ => AbsVal::Set { dom, must: am & !by, may: ay & !bm },
            },
            _ => AbsVal::Any,
        },
        Builtin::Include | Builtin::Exclude => {
            let AbsVal::Set { dom, must, may } = arg(0) else { return AbsVal::Any };
            let ss = prog.sym_sizes();
            let ebit = args
                .get(1)
                .and_then(|e| abs_eval(prog, env, e).as_const())
                .and_then(|v| dom.ordinal(&v, &ss))
                .map(|k| 1u64 << k);
            let include = matches!(builtin, Builtin::Include);
            match (include, ebit) {
                (true, Some(b)) => AbsVal::Set { dom, must: must | b, may: may | b },
                (true, None) => AbsVal::Set { dom, must, may: low_mask(dom.size(&ss)) },
                (false, Some(b)) => AbsVal::Set { dom, must: must & !b, may: may & !b },
                (false, None) => AbsVal::Set { dom, must: 0, may },
            }
        }
        Builtin::ArgMin(i) | Builtin::ArgMax(i) => {
            // result: an index of the input's index domain, drawn from the
            // may-members of the set argument
            let idom = prog.inputs.get(i).and_then(|d| d.index_domains.first().copied());
            match (arg(0), idom) {
                (AbsVal::Set { may, .. }, Some(d)) if may != 0 => bits_to_scalar(may, d),
                (_, Some(d)) => AbsVal::from_domain(prog, d),
                _ => AbsVal::Any,
            }
        }
    }
}

/// Flattens a (possibly negated) expression into a conjunct list.
fn conjuncts<'a>(e: &'a Expr, pos: bool, out: &mut Vec<(&'a Expr, bool)>) {
    match (e, pos) {
        (Expr::Un(UnOp::Not, x), _) => conjuncts(x, !pos, out),
        (Expr::Bin(BinOp::And, l, r), true) | (Expr::Bin(BinOp::Or, l, r), false) => {
            conjuncts(l, pos, out);
            conjuncts(r, pos, out);
        }
        _ => out.push((e, pos)),
    }
}

/// Assumes `e` holds with polarity `pos`, narrowing `env`. `None` means
/// the assumption is definitely unsatisfiable; `Some` is an environment
/// consistent with it (possibly unrefined when the budget ran out).
pub fn assume(
    prog: &Program,
    env: AbsEnv,
    e: &Expr,
    pos: bool,
    budget: &mut u32,
) -> Option<AbsEnv> {
    let mut items = Vec::new();
    conjuncts(e, pos, &mut items);
    let mut cur = env;
    // two rounds so later conjuncts narrow earlier ones (`a < b AND b < 3`)
    let rounds = if items.len() > 1 { 2 } else { 1 };
    for _ in 0..rounds {
        for &(x, p) in &items {
            cur = assume_leaf(prog, cur, x, p, budget)?;
        }
    }
    Some(cur)
}

fn assume_leaf(
    prog: &Program,
    env: AbsEnv,
    e: &Expr,
    pos: bool,
    budget: &mut u32,
) -> Option<AbsEnv> {
    match (e, pos) {
        (Expr::Lit(Value::Bool(b)), _) => (*b == pos).then_some(env),
        (Expr::Un(UnOp::Not, x), _) => assume_leaf(prog, env, x, !pos, budget),
        // a disjunction at leaf level: branch under budget
        (Expr::Bin(BinOp::Or, l, r), true) | (Expr::Bin(BinOp::And, l, r), false) => {
            if *budget == 0 {
                return Some(env); // give up refining, stay sound
            }
            *budget -= 1;
            let a = assume(prog, env.clone(), l, pos, budget);
            let b = assume(prog, env.clone(), r, pos, budget);
            match (a, b) {
                (None, None) => None,
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                // both branches possible: no single refinement is sound
                (Some(_), Some(_)) => Some(env),
            }
        }
        (Expr::Bin(BinOp::And, ..), true) | (Expr::Bin(BinOp::Or, ..), false) => {
            assume(prog, env, e, pos, budget)
        }
        (Expr::Bin(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), l, r), _) => {
            let eff = if pos { *op } else { negate_cmp(*op) };
            assume_cmp(prog, env, eff, l, r)
        }
        (Expr::Bin(BinOp::Eq, l, r), _) => assume_eq(prog, env, l, r, pos),
        (Expr::Bin(BinOp::Ne, l, r), _) => assume_eq(prog, env, l, r, !pos),
        (Expr::Bin(BinOp::In, l, r), _) => assume_in(prog, env, l, r, pos),
        // anything else: check abstract truth, refine if it is a plain term
        _ => {
            let a = abs_eval(prog, &env, e);
            let (can_f, can_t) = abs_truth(a);
            if pos && !can_t {
                return None;
            }
            if !pos && !can_f {
                return None;
            }
            let mut env = env;
            let want = AbsVal::Bool { can_f: !pos, can_t: pos };
            if matches!(a, AbsVal::Bool { .. }) && !env.refine(prog, e, want) {
                return None;
            }
            Some(env)
        }
    }
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        other => other,
    }
}

fn assume_cmp(prog: &Program, mut env: AbsEnv, op: BinOp, l: &Expr, r: &Expr) -> Option<AbsEnv> {
    // relational knowledge first: `xpos < xdes` then `NOT (xpos < xdes)`
    // (or the mirrored `xdes < xpos`) is a contradiction even though the
    // two interval slots overlap
    let met = env.get_rel(l, r) & rel_of(op);
    if met == 0 {
        return None;
    }
    env.set_rel(l, r, met);
    let la = abs_eval(prog, &env, l);
    let ra = abs_eval(prog, &env, r);
    let (Some((a, b)), Some((c, d))) = (int_of(la), int_of(ra)) else {
        // non-integer comparison: only check it is not definitely false
        return Some(env);
    };
    let (lnew, rnew) = match op {
        BinOp::Lt => {
            if a >= d {
                return None;
            }
            ((a, b.min(d - 1)), (c.max(a + 1), d))
        }
        BinOp::Le => {
            if a > d {
                return None;
            }
            ((a, b.min(d)), (c.max(a), d))
        }
        BinOp::Gt => {
            if b <= c {
                return None;
            }
            ((a.max(c + 1), b), (c, d.min(b - 1)))
        }
        BinOp::Ge => {
            if b < c {
                return None;
            }
            ((a.max(c), b), (c, d.min(b)))
        }
        _ => return Some(env),
    };
    if !env.refine(prog, l, AbsVal::Int { lo: lnew.0, hi: lnew.1 }) {
        return None;
    }
    if !env.refine(prog, r, AbsVal::Int { lo: rnew.0, hi: rnew.1 }) {
        return None;
    }
    Some(env)
}

fn assume_eq(prog: &Program, mut env: AbsEnv, l: &Expr, r: &Expr, pos: bool) -> Option<AbsEnv> {
    let met = env.get_rel(l, r) & rel_of(if pos { BinOp::Eq } else { BinOp::Ne });
    if met == 0 {
        return None;
    }
    env.set_rel(l, r, met);
    let la = abs_eval(prog, &env, l);
    let ra = abs_eval(prog, &env, r);
    if pos {
        // meet both sides with each other
        match la.meet(&ra) {
            None => None,
            Some(met) => {
                if !env.refine(prog, l, met) || !env.refine(prog, r, met) {
                    return None;
                }
                Some(env)
            }
        }
    } else {
        // disequality: exclude a pinned-down side from the other
        let exclude = |env: &mut AbsEnv, term: &Expr, a: AbsVal, v: Value| -> Option<bool> {
            let narrowed = match (a, v) {
                (AbsVal::Int { lo, hi }, Value::Int(x)) => {
                    if lo == hi && lo == x {
                        return None;
                    }
                    if lo == x {
                        AbsVal::Int { lo: lo + 1, hi }
                    } else if hi == x {
                        AbsVal::Int { lo, hi: hi - 1 }
                    } else {
                        return Some(false);
                    }
                }
                (AbsVal::Sym { ty, mask }, Value::Sym { ty: t, idx }) if ty == t => {
                    let m = mask & !(1u64 << idx);
                    if m == 0 {
                        return None;
                    }
                    AbsVal::Sym { ty, mask: m }
                }
                (AbsVal::Bool { .. }, Value::Bool(b)) => AbsVal::Bool { can_f: b, can_t: !b },
                _ => return Some(false),
            };
            Some(env.refine(prog, term, narrowed))
        };
        match (la.as_const(), ra.as_const()) {
            (Some(x), Some(y)) => (x != y).then_some(env),
            (Some(x), None) => exclude(&mut env, r, ra, x).map(|_| env),
            (None, Some(y)) => exclude(&mut env, l, la, y).map(|_| env),
            (None, None) => Some(env),
        }
    }
}

fn assume_in(prog: &Program, mut env: AbsEnv, l: &Expr, r: &Expr, pos: bool) -> Option<AbsEnv> {
    let la = abs_eval(prog, &env, l);
    let ra = abs_eval(prog, &env, r);
    let AbsVal::Set { dom, must, may } = ra else { return Some(env) };
    let Some(bits) = scalar_bits(&la, dom) else { return Some(env) };
    if pos {
        if bits & may == 0 {
            return None;
        }
        // scalar can only be a may-member
        if !env.refine(prog, l, bits_to_scalar(bits & may, dom)) {
            return None;
        }
        // a pinned-down scalar is definitely a member
        if bits.count_ones() == 1 {
            let rset = AbsVal::Set { dom, must: must | bits, may };
            if !env.refine(prog, r, rset) {
                return None;
            }
        }
    } else {
        if bits.count_ones() == 1 {
            if bits & must != 0 {
                return None;
            }
            // a pinned-down scalar is definitely not a member
            let rset = AbsVal::Set { dom, must, may: may & !bits };
            if !env.refine(prog, r, rset) {
                return None;
            }
        } else if bits & !must == 0 {
            // every possible scalar value is a definite member
            return None;
        } else if !env.refine(prog, l, bits_to_scalar(bits & !must, dom)) {
            return None;
        }
    }
    Some(env)
}

/// Assumes a sequence of (expression, polarity) constraints jointly,
/// returning the refined environment, or `None` when they are proved
/// contradictory. Constraints are processed twice so refinements from
/// later items narrow earlier ones.
pub fn assume_all(prog: &Program, env: &AbsEnv, items: &[(&Expr, bool)]) -> Option<AbsEnv> {
    let mut budget = SAT_BUDGET;
    let mut cur = env.clone();
    for round in 0..2 {
        for &(e, p) in items {
            cur = assume(prog, cur, e, p, &mut budget)?;
        }
        if items.len() <= 1 || round == 1 {
            break;
        }
    }
    Some(cur)
}

/// Checks whether a sequence of (expression, polarity) assumptions is
/// jointly satisfiable under `env`; `false` is a proof of unsatisfiability.
pub fn sat_all(prog: &Program, env: &AbsEnv, items: &[(&Expr, bool)]) -> bool {
    assume_all(prog, env, items).is_some()
}

/// Satisfiability of one guard (over-approximate: `false` is a proof).
pub fn sat(prog: &Program, env: &AbsEnv, guard: &Expr) -> bool {
    sat_all(prog, env, &[(guard, true)])
}

/// Per-register write-shape classification; see [`Monotonicity`].
pub fn monotone_facts(prog: &Program) -> Vec<Monotonicity> {
    let mut facts = vec![Monotonicity::NeverWritten; prog.vars.len()];
    fn visit(prog: &Program, cmds: &[Command], facts: &mut [Monotonicity]) {
        for c in cmds {
            match c {
                Command::Assign { var, value, .. } => {
                    let dir = classify_write(prog, *var, value);
                    facts[*var] = combine_mono(facts[*var], dir);
                }
                Command::ForAll { body, .. } => visit(prog, body, facts),
                _ => {}
            }
        }
    }
    for rb in &prog.rulebases {
        for rule in &rb.rules {
            visit(prog, &rule.conclusion, &mut facts);
        }
    }
    facts
}

fn combine_mono(old: Monotonicity, new: Monotonicity) -> Monotonicity {
    match (old, new) {
        (Monotonicity::NeverWritten, n) => n,
        (o, n) if o == n => o,
        _ => Monotonicity::Unknown,
    }
}

/// True if `e` is a read of register `var` (any indices).
fn reads_var(e: &Expr, var: usize) -> bool {
    matches!(e, Expr::Ref(Ref::Var(v)) if *v == var)
        || matches!(e, Expr::Indexed { target: IndexedRef::Var(v), .. } if *v == var)
}

fn classify_write(prog: &Program, var: usize, value: &Expr) -> Monotonicity {
    match value {
        Expr::Call { builtin: Builtin::Include | Builtin::Union, args }
            if args.first().is_some_and(|a| reads_var(a, var)) =>
        {
            Monotonicity::GrowingSet
        }
        Expr::Call { builtin: Builtin::Exclude | Builtin::Diff, args }
            if args.first().is_some_and(|a| reads_var(a, var)) =>
        {
            Monotonicity::ShrinkingSet
        }
        Expr::Call { builtin: Builtin::LatMax, args } if args.iter().any(|a| reads_var(a, var)) => {
            Monotonicity::NonDecreasing
        }
        Expr::Bin(BinOp::Add, l, r) if reads_var(l, var) || reads_var(r, var) => {
            let other = if reads_var(l, var) { r } else { l };
            match nonneg_const(prog, other) {
                Some(true) => Monotonicity::NonDecreasing,
                _ => Monotonicity::Unknown,
            }
        }
        Expr::Bin(BinOp::Sub, l, r) if reads_var(l, var) => match nonneg_const(prog, r) {
            Some(true) => Monotonicity::NonIncreasing,
            _ => Monotonicity::Unknown,
        },
        // min(v + c, cap) with cap >= declared hi keeps non-decreasing
        Expr::Call { builtin: Builtin::Min, args } if args.len() == 2 => {
            let sub = classify_write(prog, var, &args[0]);
            let cap_ok = match (&prog.vars[var].elem, const_int(prog, &args[1])) {
                (Type::Scalar(Domain::Int { hi, .. }), Some(c)) => c >= *hi,
                _ => false,
            };
            if sub == Monotonicity::NonDecreasing && cap_ok {
                Monotonicity::NonDecreasing
            } else {
                Monotonicity::Unknown
            }
        }
        _ => Monotonicity::Unknown,
    }
}

fn const_int(prog: &Program, e: &Expr) -> Option<i64> {
    match e {
        Expr::Lit(Value::Int(v)) => Some(*v),
        Expr::Ref(Ref::Const(i)) => match prog.consts[*i].value {
            Value::Int(v) => Some(v),
            _ => None,
        },
        _ => None,
    }
}

fn nonneg_const(prog: &Program, e: &Expr) -> Option<bool> {
    const_int(prog, e).map(|v| v >= 0)
}

/// A provably constant atom inside one rule's guard.
#[derive(Clone, Debug)]
pub struct ConstAtom {
    /// Rule index within the base.
    pub rule: usize,
    /// The atom (in expanded guard IR form).
    pub atom: Expr,
    /// Its forced truth value.
    pub truth: bool,
}

/// Everything the engine proved about one program.
#[derive(Clone, Debug)]
pub struct Facts {
    /// Per base, per rule: `false` means the rule is *proved* unreachable
    /// (its guard, conjoined with the negations of all earlier guards,
    /// is unsatisfiable over the seeded environment).
    pub reachable: Vec<Vec<bool>>,
    /// Per base, per rule: `Some(i)` when the rule's guard semantically
    /// entails the (earlier) rule `i`'s guard — the rule can never win.
    pub entailed_by: Vec<Vec<Option<usize>>>,
    /// Per register: the flow-insensitive abstract hull of every value
    /// the program's own writes can produce (starting from INIT).
    pub reg_hull: Vec<AbsVal>,
    /// Per register: `Some(v)` when it provably holds `v` at every
    /// decision point (unless the host writes it directly).
    pub const_regs: Vec<Option<Value>>,
    /// Per register: write-shape monotonicity.
    pub monotone: Vec<Monotonicity>,
    /// Per base: atoms with a forced truth value in reachable rules.
    pub const_atoms: Vec<Vec<ConstAtom>>,
}

/// Runs the engine over a compiled program.
pub fn analyze_program(compiled: &CompiledProgram, topo: &TopoFacts) -> Facts {
    let prog = &compiled.prog;
    let monotone = monotone_facts(prog);

    // ---- flow-insensitive register hull ----------------------------------
    let full_hull: Vec<AbsVal> =
        prog.vars.iter().map(|v| AbsVal::from_type(prog, v.elem)).collect();
    let mut hull: Vec<AbsVal> = prog
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if topo.is_host_written(&v.name) {
                // host writes can land anywhere in the (clamped) domain
                match (topo.bound_for(&v.name), full_hull[i]) {
                    (Some((lo, hi)), AbsVal::Int { lo: a, hi: b }) => {
                        AbsVal::Int { lo: a.max(lo), hi: b.min(hi) }
                    }
                    (_, a) => a,
                }
            } else {
                AbsVal::singleton(v.init)
            }
        })
        .collect();
    let mut writes: Vec<(usize, usize, &Expr)> = Vec::new(); // (rb, var, value)
    fn collect_writes<'a>(rb: usize, cmds: &'a [Command], out: &mut Vec<(usize, usize, &'a Expr)>) {
        for c in cmds {
            match c {
                Command::Assign { var, value, .. } => out.push((rb, *var, value)),
                Command::ForAll { body, .. } => collect_writes(rb, body, out),
                _ => {}
            }
        }
    }
    for (bi, rb) in prog.rulebases.iter().enumerate() {
        for (ri, rule) in rb.rules.iter().enumerate() {
            // skip rules the table already proves unsatisfiable
            if compiled.bases[bi].rule_applicable.get(ri) == Some(&0) {
                continue;
            }
            collect_writes(bi, &rule.conclusion, &mut writes);
        }
    }
    for iter in 0..24 {
        let mut dirty = vec![false; hull.len()];
        for &(bi, var, value) in &writes {
            let mut env = AbsEnv::seed(prog, bi, topo, &monotone);
            env.vars = hull.clone();
            let mut v = abs_eval(prog, &env, value);
            // runtime writes outside the declared domain error out, so the
            // reachable-value hull stays inside it
            v = v.meet(&full_hull[var]).unwrap_or(full_hull[var]);
            if matches!(v, AbsVal::Any) {
                v = full_hull[var];
            }
            let joined = hull[var].join(&v);
            if joined != hull[var] {
                hull[var] = joined;
                dirty[var] = true;
            }
        }
        if !dirty.iter().any(|&d| d) {
            break;
        }
        if iter == 15 {
            // widen: long join chains (counters) jump to the full domain —
            // but only the registers that are still growing, so stable
            // hulls (constants) keep their precision
            for (var, d) in dirty.into_iter().enumerate() {
                if d {
                    hull[var] = hull[var].join(&full_hull[var]);
                }
            }
        }
    }
    let const_regs: Vec<Option<Value>> = hull.iter().map(AbsVal::as_const).collect();

    // ---- per-base guard analyses -----------------------------------------
    let mut reachable = Vec::new();
    let mut entailed_by = Vec::new();
    let mut const_atoms = Vec::new();
    for (bi, cb) in compiled.bases.iter().enumerate() {
        let mut env = AbsEnv::seed(prog, bi, topo, &monotone);
        // registers can be narrowed by what the program can actually write
        for (slot, h) in env.vars.iter_mut().zip(&hull) {
            if let Some(met) = slot.meet(h) {
                *slot = met;
            }
        }
        let prems = &cb.premises;
        let n = prems.len();
        let mut reach = vec![true; n];
        let mut entail = vec![None; n];
        for j in 0..n {
            // reachability: guard_j plus the negation of every earlier guard
            let mut items: Vec<(&Expr, bool)> = vec![(&prems[j], true)];
            for p in prems.iter().take(j) {
                items.push((p, false));
            }
            reach[j] = sat_all(prog, &env, &items);
            if !reach[j] {
                // distinguish "self-unsatisfiable" from "covered by earlier
                // rules": the entailment lint reports the latter
                if sat(prog, &env, &prems[j]) {
                    for (i, p) in prems.iter().enumerate().take(j) {
                        if !sat_all(prog, &env, &[(&prems[j], true), (p, false)]) {
                            entail[j] = Some(i);
                            break;
                        }
                    }
                }
                continue;
            }
            // semantic shadowing even when the combined negation query
            // was too weak: pairwise entailment is cheaper and sharper
            for (i, p) in prems.iter().enumerate().take(j) {
                if sat(prog, &env, &prems[j])
                    && !sat_all(prog, &env, &[(&prems[j], true), (p, false)])
                {
                    entail[j] = Some(i);
                    reach[j] = false;
                    break;
                }
            }
        }
        // constant atoms in reachable rules
        let mut atoms = Vec::new();
        let mut seen: HashSet<&Expr> = HashSet::new();
        for (ri, p) in prems.iter().enumerate() {
            if !reach[ri] {
                continue;
            }
            let mut leaves = Vec::new();
            conjuncts(p, true, &mut leaves);
            let mut stack: Vec<&Expr> = leaves.iter().map(|&(e, _)| e).collect();
            while let Some(atom) = stack.pop() {
                match atom {
                    Expr::Lit(_) => continue,
                    Expr::Bin(BinOp::And | BinOp::Or, l, r) => {
                        stack.push(l);
                        stack.push(r);
                        continue;
                    }
                    Expr::Un(UnOp::Not, x) => {
                        stack.push(x);
                        continue;
                    }
                    _ => {}
                }
                if !seen.insert(atom) {
                    continue;
                }
                if let Some(t) = abs_eval(prog, &env, atom).truth() {
                    atoms.push(ConstAtom { rule: ri, atom: atom.clone(), truth: t });
                }
            }
        }
        reachable.push(reach);
        entailed_by.push(entail);
        const_atoms.push(atoms);
    }

    Facts { reachable, entailed_by, reg_hull: hull, const_regs, monotone, const_atoms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_rules::{compile, parse, CompileOptions};

    fn compiled(src: &str) -> CompiledProgram {
        compile(&parse(src).unwrap(), &CompileOptions::default()).unwrap()
    }

    #[test]
    fn interval_contradiction_is_unreachable() {
        let c = compiled(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON f() RETURNS 0 TO 1\n\
               IF n < 2 AND n > 5 THEN RETURN(1);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        );
        let f = analyze_program(&c, &TopoFacts::none());
        assert!(!f.reachable[0][0], "n<2 AND n>5 is unsatisfiable");
        assert!(f.reachable[0][1]);
    }

    #[test]
    fn semantic_entailment_detected() {
        // n > 5 entails n > 3; the table compiler cannot see it (two
        // independent predicate bits), the interval domain can
        let c = compiled(
            "INPUT n IN 0 TO 15\n\
             ON f() RETURNS 0 TO 1\n\
               IF n > 3 THEN RETURN(0);\n\
               IF n > 5 THEN RETURN(1);\n\
             END f;",
        );
        let f = analyze_program(&c, &TopoFacts::none());
        assert!(!f.reachable[0][1]);
        assert_eq!(f.entailed_by[0][1], Some(0));
        // the syntactic table lint does NOT flag it: rule 1 wins abstract
        // entries where (n>3)=0, (n>5)=1
        assert!(c.bases[0].rule_applicable[1] > 0);
    }

    #[test]
    fn topology_bounds_prove_unreachability() {
        let c = compiled(
            "CONSTANT maxc = 31\n\
             VARIABLE xpos IN 0 TO maxc INIT 0\n\
             INPUT xdes IN 0 TO maxc\n\
             ON f() RETURNS 0 TO 1\n\
               IF xpos > 5 THEN RETURN(1);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        );
        let unbounded = analyze_program(&c, &TopoFacts::none());
        assert!(unbounded.reachable[0][0]);
        let bounded = analyze_program(&c, &TopoFacts::mesh(4, 4));
        assert!(!bounded.reachable[0][0], "xpos <= 3 on a 4x4 mesh");
    }

    #[test]
    fn constant_register_found() {
        let c = compiled(
            "VARIABLE z IN 0 TO 7 INIT 3\n\
             VARIABLE n IN 0 TO 7 INIT 0\n\
             ON f() RETURNS 0 TO 7\n\
               IF n < 7 THEN n <- n + 1, z <- 3;\n\
               IF TRUE THEN RETURN(z);\n\
             END f;",
        );
        let f = analyze_program(&c, &TopoFacts::none());
        assert_eq!(f.const_regs[0], Some(Value::Int(3)), "z is always 3");
        assert_eq!(f.const_regs[1], None, "n varies");
    }

    #[test]
    fn constant_atom_found() {
        // out_q is declared 0..255, so out_q(d) <= 255 is always true
        let c = compiled(
            "CONSTANT dirs = 0 TO 3\n\
             VARIABLE out_q[dirs] IN 0 TO 255 INIT 0\n\
             ON f(d IN dirs) RETURNS 0 TO 1\n\
               IF out_q(d) <= 255 AND out_q(d) > 3 THEN RETURN(1);\n\
               IF TRUE THEN out_q(d) <- min(out_q(d) + 1, 255), RETURN(0);\n\
             END f;",
        );
        let f = analyze_program(&c, &TopoFacts::none());
        assert_eq!(f.const_atoms[0].len(), 1);
        assert!(f.const_atoms[0][0].truth);
    }

    #[test]
    fn monotone_classification() {
        let c = compiled(
            "CONSTANT dirs = 0 TO 3\n\
             VARIABLE total IN 0 TO 255 INIT 0\n\
             VARIABLE usable IN SETOF dirs INIT {0, 1, 2, 3}\n\
             VARIABLE deadset IN SETOF dirs\n\
             VARIABLE temp IN 0 TO 7 INIT 0\n\
             ON f(d IN dirs) RETURNS 0 TO 1\n\
               IF TRUE THEN total <- min(total + 1, 255),\n\
                 usable <- exclude(usable, d),\n\
                 deadset <- include(deadset, d),\n\
                 temp <- 5, RETURN(0);\n\
             END f;",
        );
        let f = analyze_program(&c, &TopoFacts::none());
        assert_eq!(f.monotone[0], Monotonicity::NonDecreasing);
        assert_eq!(f.monotone[1], Monotonicity::ShrinkingSet);
        assert_eq!(f.monotone[2], Monotonicity::GrowingSet);
        assert_eq!(f.monotone[3], Monotonicity::Unknown);
    }

    #[test]
    fn set_membership_narrowing() {
        // EXISTS-expanded membership guards: `0 IN s AND NOT (0 IN s)`
        // must be unsatisfiable through the must/may domain
        let c = compiled(
            "CONSTANT dirs = 0 TO 3\n\
             VARIABLE s IN SETOF dirs INIT {0, 1, 2, 3}\n\
             ON f() RETURNS 0 TO 1\n\
               IF 0 IN s AND NOT (0 IN s) THEN RETURN(1);\n\
               IF TRUE THEN RETURN(0);\n\
             END f;",
        );
        let f = analyze_program(&c, &TopoFacts::none());
        assert!(!f.reachable[0][0]);
    }

    #[test]
    fn sat_is_conservative_on_reachable_rules() {
        let c = compiled(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             INPUT m IN 0 TO 7\n\
             ON f() RETURNS 0 TO 1\n\
               IF n < 4 AND m > 2 THEN RETURN(1);\n\
               IF n >= 4 OR m <= 2 THEN RETURN(0);\n\
             END f;",
        );
        let f = analyze_program(&c, &TopoFacts::none());
        assert!(f.reachable[0].iter().all(|&r| r), "both rules genuinely reachable");
    }
}
