//! Structured diagnostics with stable lint codes and source spans.
//!
//! Every finding of the rule-base linter is a [`Diagnostic`]: a stable
//! [`LintCode`] (never renumbered, so CI greps and suppression lists stay
//! valid), a [`Severity`], the position of the offending declaration or
//! rule (1-based line/column from the parser), and a human-readable
//! message. A program is *clean* when it produces nothing at warning
//! severity or above — notes record intentional rule-language idioms
//! (source-order conflict resolution, host-read registers) that are worth
//! surfacing but not fixing.

use ftr_rules::error::Pos;
use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Intentional-but-noteworthy: silently order-resolved conflicts,
    /// write-only (host-read) registers, gaps in non-returning bases.
    Note,
    /// Almost certainly a defect: shadowed rules, unused declarations,
    /// gaps in a returning base.
    Warning,
    /// A guaranteed runtime failure: a literal outside its domain.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes. The numeric part never changes meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// FTR001: a rule's premise is satisfiable but an earlier rule wins at
    /// every feature-space entry, so the rule can never fire.
    ShadowedRule,
    /// FTR002: a rule's premise is false at every entry of the abstract
    /// feature space (e.g. `state = safe AND state = faulty`).
    UnsatisfiablePremise,
    /// FTR003: two rules apply at the same entries with *different*
    /// conclusions; §4.3 resolves this silently by source order.
    RuleConflict,
    /// FTR004: feature-space entries with no applicable rule compile to
    /// the no-op entry 0 (the gap-coverage report).
    GapCoverage,
    /// FTR005: a literal value outside the declared domain of a return
    /// type, register, or index — guaranteed to fail at runtime.
    DomainViolation,
    /// FTR006: a register no rule ever reads (warning if also never
    /// written; note if write-only, since the host may read it).
    UnusedRegister,
    /// FTR007: a declared input no rule ever reads.
    UnusedInput,
    /// FTR008: one conclusion writes the same register cell twice with
    /// different values — the parallel-execution semantics of §4.2 make
    /// this a runtime error.
    ParallelWriteConflict,
    /// FTR009: the abstract-interpretation engine proves a rule's guard
    /// unsatisfiable over the value domains (interval/mask/set) even
    /// though the propositional table lints (FTR001/FTR002) cannot see
    /// it — e.g. `n < 2 AND n > 5` over two independent feature bits.
    AbsintUnreachable,
    /// FTR010: a rule's guard semantically entails an earlier rule's
    /// guard, so source-order conflict resolution means the later rule
    /// can never win even though the table shows applicable entries.
    SemanticShadow,
    /// FTR011: a register provably holds a single value at every
    /// decision point under the program's own writes (host writes are
    /// the optimizer's concern, so this stays a note).
    ConstantRegister,
    /// FTR012: an atom inside a reachable rule's guard has a forced
    /// truth value under the declared domains and topology facts.
    ConstantAtom,
    /// FTR013: the progress lint — either a concrete livelock witness
    /// (a message ring that can wait on itself forever under legal
    /// `free`/`linkok` inputs) or an inconclusive screen result.
    ProgressViolation,
}

impl LintCode {
    /// The stable `FTRnnn_slug` identifier.
    pub fn id(self) -> &'static str {
        match self {
            LintCode::ShadowedRule => "FTR001_shadowed_rule",
            LintCode::UnsatisfiablePremise => "FTR002_unsatisfiable_premise",
            LintCode::RuleConflict => "FTR003_rule_conflict",
            LintCode::GapCoverage => "FTR004_gap_coverage",
            LintCode::DomainViolation => "FTR005_domain_violation",
            LintCode::UnusedRegister => "FTR006_unused_register",
            LintCode::UnusedInput => "FTR007_unused_input",
            LintCode::ParallelWriteConflict => "FTR008_parallel_write_conflict",
            LintCode::AbsintUnreachable => "FTR009_absint_unreachable",
            LintCode::SemanticShadow => "FTR010_semantic_shadow",
            LintCode::ConstantRegister => "FTR011_constant_register",
            LintCode::ConstantAtom => "FTR012_constant_atom",
            LintCode::ProgressViolation => "FTR013_progress",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One linter finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// Severity of this particular instance (some codes vary by context).
    pub severity: Severity,
    /// Program name (file stem or builtin name) for the `file:line:col`
    /// prefix.
    pub program: String,
    /// Source position of the offending rule or declaration, when known.
    pub pos: Option<Pos>,
    /// Rule base the finding belongs to, when it is base-scoped.
    pub rulebase: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{}:{}:{}: ", self.program, p.line, p.col)?,
            None => write!(f, "{}: ", self.program)?,
        }
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(rb) = &self.rulebase {
            write!(f, " (in rule base `{rb}`)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(LintCode::ShadowedRule.id(), "FTR001_shadowed_rule");
        assert_eq!(LintCode::ParallelWriteConflict.id(), "FTR008_parallel_write_conflict");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_span_and_code() {
        let d = Diagnostic {
            code: LintCode::DomainViolation,
            severity: Severity::Error,
            program: "broken".into(),
            pos: Some(Pos { line: 7, col: 3 }),
            rulebase: Some("route_msg".into()),
            message: "RETURN(99) outside 0 TO 15".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("broken:7:3: error[FTR005_domain_violation]"), "{s}");
        assert!(s.ends_with("(in rule base `route_msg`)"), "{s}");
    }
}
