//! Layer 2: static deadlock verification of compiled rule programs.
//!
//! A compiled rule program answers one routing query at a time; the
//! Dally/Seitz check in [`ftr_topo::cdg`] needs the *full routing
//! relation* — every output channel the program could select in any
//! network state. This module lifts a compiled program into that relation
//! by firing the real rule machine over an enumeration of the
//! per-decision inputs it cannot otherwise know (which outputs are free,
//! which output queue is shortest, which dead-end flags are set) and
//! taking the union of the decisions. The lift is a sound
//! over-approximation: every channel the live router could request
//! appears, so an acyclic channel dependency graph proves deadlock
//! freedom.
//!
//! Virtual-channel assignment is the *data path's* job, not the rule
//! program's (§2.2): NARA/NAFTA programs compute directions and rely on
//! the two-virtual-network discipline (network 0 routes E/W/N, network 1
//! routes E/W/S plus a committed north climb, one-way 0→1 switching, no
//! 180° turns) being enforced by the channel allocator. The
//! [`MeshVcMode::NaraPair`] lift models exactly that discipline —
//! mirroring `ftr_algos::nafta` — while [`MeshVcMode::SingleVc`] models
//! the plain single-network data path of the rule router.
//!
//! Verification then exhausts destinations (via the CDG construction) and
//! fault sets up to a configurable budget, reporting a concrete cycle
//! witness on failure.

use ftr_rules::value::{Type, Value};
use ftr_rules::{CompiledProgram, InputMap, Machine, RegFile};
use ftr_topo::cdg::{Channel, ChannelDependencyGraph};
use ftr_topo::faults::SimpleRng;
use ftr_topo::mesh::MESH_PORTS;
use ftr_topo::{FaultSet, Hypercube, Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

/// Virtual network 0 of the NARA pair: may route E/W/N.
const VNET_NO_SOUTH: u8 = 0;
/// Virtual network 1: may route E/W/S (plus the committed north climb).
const VNET_NO_NORTH: u8 = 1;

/// How the data path assigns virtual channels to the directions a mesh
/// program returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshVcMode {
    /// One virtual network: every decision stays on the arrival VC.
    SingleVc,
    /// The NARA/NAFTA two-virtual-network discipline (§2.2).
    NaraPair,
}

/// One falsification: a fault scenario whose channel dependency graph
/// contains a cycle.
#[derive(Clone, Debug)]
pub struct CycleWitness {
    /// Human-readable description of the injected faults.
    pub faults: String,
    /// The dependency cycle (consecutive channels wait on each other,
    /// wrapping around).
    pub cycle: Vec<Channel>,
}

/// Outcome of a verification run.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// Program name.
    pub program: String,
    /// Topology description, e.g. `mesh 3x3` or `hypercube d=4`.
    pub topology: String,
    /// Virtual channels the analysis modelled.
    pub num_vcs: usize,
    /// Number of fault scenarios whose CDG was built and checked.
    pub fault_sets_checked: usize,
    /// Scenarios with a dependency cycle (empty ⇒ deadlock-free for every
    /// checked scenario).
    pub failures: Vec<CycleWitness>,
}

impl DeadlockReport {
    /// True if no checked scenario produced a cycle.
    pub fn verified(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        if self.verified() {
            format!(
                "{}: deadlock-free on {} ({} VCs) — CDG acyclic for all {} fault scenarios",
                self.program, self.topology, self.num_vcs, self.fault_sets_checked
            )
        } else {
            let w = &self.failures[0];
            format!(
                "{}: DEADLOCK POSSIBLE on {} ({} VCs) — {}/{} scenarios cyclic; \
                 e.g. [{}] cycle {:?}",
                self.program,
                self.topology,
                self.num_vcs,
                self.failures.len(),
                self.fault_sets_checked,
                w.faults,
                w.cycle
            )
        }
    }
}

/// Default value for an undriven input (lowest element of its domain).
fn default_input(t: Type) -> Value {
    match t {
        Type::Scalar(d) => d.value_at(0),
        Type::Set(d) => Value::empty_set(d),
    }
}

// ---------------------------------------------------------------------------
// mesh lift

/// Lifts a compiled 2-D mesh program (`xdes`/`ydes`/`invc`/`free`/
/// `out_queue` input convention of the rule router) into a routing
/// relation. Decisions are memoised on everything they can depend on:
/// (node, destination, virtual network, usable-direction mask, dead-end
/// flags).
pub struct MeshProgramLift {
    mesh: Mesh2D,
    prog: ftr_rules::Program,
    entry: String,
    mode: MeshVcMode,
    has_de: bool,
    machine: RefCell<Machine>,
    #[allow(clippy::type_complexity)]
    memo: RefCell<HashMap<(u32, u32, u8, u8, bool, bool), Vec<u8>>>,
}

impl MeshProgramLift {
    /// Creates the lift. The entry event is the program's first rule base
    /// (the rule-router convention).
    pub fn new(compiled: CompiledProgram, mesh: Mesh2D, mode: MeshVcMode) -> Self {
        let prog = compiled.prog.clone();
        let entry =
            prog.rulebases.first().map(|rb| rb.name.clone()).unwrap_or_else(|| "route_msg".into());
        let has_de = prog.vars.iter().any(|v| v.name == "de_east");
        MeshProgramLift {
            mesh,
            prog,
            entry,
            mode,
            has_de,
            machine: RefCell::new(Machine::from_compiled(compiled)),
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// Number of virtual channels the mode models.
    pub fn num_vcs(&self) -> usize {
        match self.mode {
            MeshVcMode::SingleVc => 1,
            MeshVcMode::NaraPair => 2,
        }
    }

    fn var_idx(&self, name: &str) -> Option<usize> {
        self.prog.vars.iter().position(|v| v.name == name)
    }

    fn has_input(&self, name: &str) -> bool {
        self.prog.inputs.iter().any(|i| i.name == name)
    }

    fn write_reg(&self, machine: &mut Machine, name: &str, v: Value) {
        if let Some(vi) = self.var_idx(name) {
            machine
                .regs_mut()
                .write(&self.prog, vi, &[], v)
                .expect("lift register value fits its domain");
        }
    }

    /// Every direction the program can return for this query, across all
    /// free-output patterns, queue-minimum positions, and (implicitly,
    /// via the caller's enumeration) dead-end flags.
    fn raw_dirs(
        &self,
        cur: NodeId,
        dst: NodeId,
        invc: u8,
        usable_mask: u8,
        de_east: bool,
        de_west: bool,
    ) -> Vec<u8> {
        let key = (cur.0, dst.0, invc, usable_mask, de_east, de_west);
        if let Some(hit) = self.memo.borrow().get(&key) {
            return hit.clone();
        }
        let mut out: BTreeSet<u8> = BTreeSet::new();
        let mut machine = self.machine.borrow_mut();
        let (dx, dy) = self.mesh.coords(dst);

        // free patterns: everything usable free, each usable direction
        // alone, and nothing free (the escalation path)
        let mut free_patterns: Vec<u8> = vec![usable_mask, 0];
        for d in 0..4u8 {
            if usable_mask & (1 << d) != 0 {
                free_patterns.push(1 << d);
            }
        }
        for fp in free_patterns {
            // queue patterns: each direction as the unique argmin
            for qmin in 0..4u8 {
                *machine.regs_mut() = RegFile::new(&self.prog);
                self.write_reg(&mut machine, "xpos", Value::Int(self.mesh.coords(cur).0 as i64));
                self.write_reg(&mut machine, "ypos", Value::Int(self.mesh.coords(cur).1 as i64));
                if let Some(vi) = self.var_idx("usable") {
                    let dom = self.prog.vars[vi].elem.domain();
                    machine
                        .regs_mut()
                        .write(&self.prog, vi, &[], Value::Set { dom, mask: usable_mask as u64 })
                        .expect("usable mask fits");
                }
                self.write_reg(&mut machine, "de_east", Value::Bool(de_east));
                self.write_reg(&mut machine, "de_west", Value::Bool(de_west));

                let mut im = InputMap::new();
                for decl in &self.prog.inputs {
                    im.set_default(&self.prog, &decl.name, default_input(decl.elem))
                        .expect("default fits input domain");
                }
                im.set(&self.prog, "xdes", &[], Value::Int(dx as i64)).ok();
                im.set(&self.prog, "ydes", &[], Value::Int(dy as i64)).ok();
                if self.has_input("invc") {
                    im.set(&self.prog, "invc", &[], Value::Int(invc as i64)).ok();
                }
                for d in 0..4i64 {
                    let idx = [Value::Int(d)];
                    if self.has_input("free") {
                        im.set(&self.prog, "free", &idx, Value::Bool(fp & (1 << d) != 0)).ok();
                    }
                    if self.has_input("linkok") {
                        im.set(
                            &self.prog,
                            "linkok",
                            &idx,
                            Value::Bool(usable_mask & (1 << d) != 0),
                        )
                        .ok();
                    }
                    if self.has_input("out_queue") {
                        let q = if d == qmin as i64 { 0 } else { 9 };
                        im.set(&self.prog, "out_queue", &idx, Value::Int(q)).ok();
                    }
                }

                if let Ok(casc) = machine.fire_cascade(&self.entry, &[], &im) {
                    if let Some(Value::Int(d)) = casc.last_return() {
                        if (0..4).contains(&d) && usable_mask & (1 << d) != 0 {
                            out.insert(d as u8);
                        }
                    }
                }
            }
        }
        let dirs: Vec<u8> = out.into_iter().collect();
        self.memo.borrow_mut().insert(key, dirs.clone());
        dirs
    }

    /// Directions the data path permits inside virtual network `vnet`
    /// (mirrors the native NAFTA discipline; the committed climb is
    /// handled by the caller).
    fn allowed(vnet: u8, in_port: Option<PortId>, dx: i32, dy: i32) -> Vec<PortId> {
        let mut dirs = vec![EAST, ftr_topo::WEST];
        if vnet == VNET_NO_SOUTH {
            dirs.push(NORTH);
        } else {
            dirs.push(SOUTH);
            // terminal climb: only from the destination column
            if dx == 0 && dy > 0 {
                dirs.push(NORTH);
            }
        }
        dirs.retain(|&d| Some(d) != in_port); // no 180° turns
        dirs
    }

    /// One-way network switch: a network-0 message that overshot its
    /// destination row decides in network 1.
    fn effective_vnet(in_vc: u8, dy: i32) -> u8 {
        if in_vc == VNET_NO_SOUTH && dy < 0 {
            VNET_NO_NORTH
        } else {
            in_vc
        }
    }

    /// The full routing relation under a fault set, in the closure form
    /// [`ChannelDependencyGraph::build`] expects.
    #[allow(clippy::type_complexity)]
    pub fn relation<'s>(
        &'s self,
        faults: &'s FaultSet,
    ) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + 's {
        move |cur, inc, dst| {
            let mut usable: u8 = 0;
            for &p in &MESH_PORTS {
                if let Some(nb) = self.mesh.neighbor(cur, p) {
                    if faults.link_usable(&self.mesh, cur, p) && !faults.node_faulty(nb) {
                        usable |= 1 << p.idx();
                    }
                }
            }
            let (dx, dy) = self.mesh.offset(cur, dst);
            // dead-end flags depend on global fault knowledge; enumerate
            // both values of each (conservative union)
            let de_combos: &[(bool, bool)] = if self.has_de {
                &[(false, false), (true, false), (false, true), (true, true)]
            } else {
                &[(false, false)]
            };

            match self.mode {
                MeshVcMode::SingleVc => {
                    let vc = inc.map(|(_, v)| v).unwrap_or(VcId(0));
                    let mut dirs: BTreeSet<u8> = BTreeSet::new();
                    for &(de, dw) in de_combos {
                        dirs.extend(self.raw_dirs(cur, dst, vc.idx() as u8, usable, de, dw));
                    }
                    dirs.into_iter().map(|d| (PortId(d), vc)).collect()
                }
                MeshVcMode::NaraPair => {
                    // committed climb: already in network 1 and moving north
                    if let Some((ip, iv)) = inc {
                        if iv.idx() as u8 == VNET_NO_NORTH && ip == SOUTH {
                            return if usable & (1 << NORTH.idx()) != 0 {
                                vec![(NORTH, VcId(VNET_NO_NORTH))]
                            } else {
                                Vec::new()
                            };
                        }
                    }
                    let vnets: Vec<u8> = match inc {
                        Some((_, iv)) => vec![Self::effective_vnet(iv.idx() as u8, dy)],
                        None => {
                            if dy > 0 {
                                vec![VNET_NO_SOUTH]
                            } else if dy < 0 {
                                vec![VNET_NO_NORTH]
                            } else {
                                vec![VNET_NO_SOUTH, VNET_NO_NORTH]
                            }
                        }
                    };
                    let in_port = inc.map(|(p, _)| p);
                    let mut out = Vec::new();
                    for v in vnets {
                        let mut dirs: BTreeSet<u8> = BTreeSet::new();
                        for &(de, dw) in de_combos {
                            dirs.extend(self.raw_dirs(cur, dst, v, usable, de, dw));
                        }
                        let allowed = Self::allowed(v, in_port, dx, dy);
                        for d in dirs {
                            if allowed.contains(&PortId(d)) {
                                out.push((PortId(d), VcId(v)));
                            }
                        }
                    }
                    out
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// hypercube lift

/// Lifts a compiled ROUTE_C-style hypercube program (two interpretation
/// steps: `decide_dir` then `decide_vc`, with the `chosen` register
/// carrying the argmin result) into a routing relation.
pub struct CubeProgramLift {
    cube: Hypercube,
    prog: ftr_rules::Program,
    machine: RefCell<Machine>,
    #[allow(clippy::type_complexity)]
    memo: RefCell<HashMap<(u32, u32, u8), Vec<(u8, u8)>>>,
}

impl CubeProgramLift {
    /// Creates the lift for a `d`-dimensional cube program (compile
    /// `ftr_algos::rules_src::route_c_source(d)` for a matching program).
    pub fn new(compiled: CompiledProgram, cube: Hypercube) -> Self {
        let prog = compiled.prog.clone();
        CubeProgramLift {
            cube,
            prog,
            machine: RefCell::new(Machine::from_compiled(compiled)),
            memo: RefCell::new(HashMap::new()),
        }
    }

    fn dims_set(&self, mask: u64) -> Value {
        Value::Set { dom: ftr_rules::Domain::Int { lo: 0, hi: self.cube.dim() as i64 - 1 }, mask }
    }

    fn chosen(&self, machine: &Machine) -> Option<usize> {
        let vi = self.prog.vars.iter().position(|v| v.name == "chosen")?;
        match machine.regs().read(&self.prog, vi, &[]) {
            Ok(Value::Int(v)) => Some(v as usize),
            _ => None,
        }
    }

    /// All (port, vc) pairs the two-step decision can produce for this
    /// query, across every free-channel pattern and queue-minimum
    /// position.
    fn raw_channels(&self, cur: NodeId, dst: NodeId, ok: u8) -> Vec<(u8, u8)> {
        let key = (cur.0, dst.0, ok);
        if let Some(hit) = self.memo.borrow().get(&key) {
            return hit.clone();
        }
        let dim = self.cube.dim() as usize;
        let mut machine = self.machine.borrow_mut();
        let diff = self.cube.diff(cur, dst) as u64;
        let up = diff & !(cur.0 as u64);
        let down = diff & cur.0 as u64;

        let mut im = InputMap::new();
        for decl in &self.prog.inputs {
            im.set_default(&self.prog, &decl.name, default_input(decl.elem))
                .expect("default fits input domain");
        }
        im.set(&self.prog, "diffup", &[], self.dims_set(up)).ok();
        im.set(&self.prog, "diffdown", &[], self.dims_set(down)).ok();
        im.set(&self.prog, "okdirs", &[], self.dims_set(ok as u64)).ok();

        // step 1: decide_dir is deterministic in the difference sets
        *machine.regs_mut() = RegFile::new(&self.prog);
        let cands = match machine.fire_cascade("decide_dir", &[], &im) {
            Ok(casc) => match casc.last_return() {
                Some(Value::Set { mask, .. }) => mask,
                _ => 0,
            },
            Err(_) => 0,
        };
        if cands == 0 {
            self.memo.borrow_mut().insert(key, Vec::new());
            return Vec::new();
        }
        let misr = cands & (up | down) == 0;
        let phase: i64 = if up != 0 { 0 } else { 1 };
        im.set(&self.prog, "cands", &[], self.dims_set(cands)).ok();
        im.set(&self.prog, "phase", &[], Value::Int(phase)).ok();
        im.set(&self.prog, "misr", &[], Value::Bool(misr)).ok();

        // step 2: decide_vc across free-channel-class singletons × argmin
        // positions (one per candidate output)
        let mut out: BTreeSet<(u8, u8)> = BTreeSet::new();
        for qmin in 0..dim {
            if cands & (1 << qmin) == 0 {
                continue;
            }
            for d in 0..dim {
                im.set(
                    &self.prog,
                    "out_queue",
                    &[Value::Int(d as i64)],
                    Value::Int(if d == qmin { 0 } else { 9 }),
                )
                .ok();
            }
            for fv in 0..5i64 {
                for v in 0..5i64 {
                    im.set(&self.prog, "freevc", &[Value::Int(v)], Value::Bool(v == fv)).ok();
                }
                *machine.regs_mut() = RegFile::new(&self.prog);
                let Ok(casc) = machine.fire_cascade("decide_vc", &[], &im) else { continue };
                let Some(Value::Int(vc)) = casc.last_return() else { continue };
                if !(0..5).contains(&vc) {
                    continue; // 7 = wait
                }
                if let Some(port) = self.chosen(&machine) {
                    if port < dim && cands & (1 << port) != 0 {
                        out.insert((port as u8, vc as u8));
                    }
                }
            }
        }
        let chans: Vec<(u8, u8)> = out.into_iter().collect();
        self.memo.borrow_mut().insert(key, chans.clone());
        chans
    }

    /// The full routing relation under a fault set.
    #[allow(clippy::type_complexity)]
    pub fn relation<'s>(
        &'s self,
        faults: &'s FaultSet,
    ) -> impl Fn(NodeId, Option<(PortId, VcId)>, NodeId) -> Vec<(PortId, VcId)> + 's {
        move |cur, _inc, dst| {
            let dim = self.cube.dim() as usize;
            let mut ok: u8 = 0;
            for d in 0..dim {
                let p = PortId(d as u8);
                if let Some(nb) = self.cube.neighbor(cur, p) {
                    if faults.link_usable(&self.cube, cur, p)
                        && (nb == dst || !faults.node_faulty(nb))
                    {
                        ok |= 1 << d;
                    }
                }
            }
            self.raw_channels(cur, dst, ok).into_iter().map(|(p, v)| (PortId(p), VcId(v))).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// fault-set enumeration and the verification drivers

/// All unique links of a topology as (node, port) with the lower node id.
fn unique_links(topo: &dyn Topology) -> Vec<(NodeId, PortId)> {
    let mut links = Vec::new();
    for n in topo.nodes() {
        for p in topo.ports() {
            if let Some(nb) = topo.neighbor(n, p) {
                if n.idx() < nb.idx() {
                    links.push((n, p));
                }
            }
        }
    }
    links
}

/// Every subset of `links` with at most `max_faults` elements; if that
/// exceeds `cap`, a deterministic sample (always including the fault-free
/// scenario).
fn fault_sets(
    links: &[(NodeId, PortId)],
    max_faults: usize,
    cap: usize,
    seed: u64,
) -> Vec<Vec<(NodeId, PortId)>> {
    let mut sets: Vec<Vec<(NodeId, PortId)>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..max_faults {
        let mut next = Vec::new();
        for combo in &frontier {
            let start = combo.last().map_or(0, |&l| l + 1);
            for i in start..links.len() {
                let mut c = combo.clone();
                c.push(i);
                sets.push(c.iter().map(|&j| links[j]).collect());
                next.push(c);
            }
        }
        frontier = next;
    }
    if sets.len() > cap {
        let mut rng = SimpleRng::new(seed);
        let mut sampled = vec![sets[0].clone()];
        while sampled.len() < cap {
            sampled.push(sets[1 + rng.below(sets.len() - 1)].clone());
        }
        sets = sampled;
    }
    sets
}

fn describe_faults(topo: &dyn Topology, set: &[(NodeId, PortId)]) -> String {
    if set.is_empty() {
        return "fault-free".into();
    }
    set.iter().map(|(n, p)| format!("link {}#{}", n.idx(), p.idx())).collect::<Vec<_>>().join(", ")
        + &format!(" ({} faults)", set.len())
        + &format!(" on {}", topo.name())
}

/// Proves (or refutes) deadlock freedom of a mesh rule program: builds
/// the CDG of the lifted relation for every enumerated link-fault set and
/// checks acyclicity by exhaustion over destinations.
pub fn verify_mesh(
    program_name: &str,
    compiled: &CompiledProgram,
    width: u32,
    height: u32,
    mode: MeshVcMode,
    max_faults: usize,
    max_fault_sets: usize,
) -> DeadlockReport {
    let mesh = Mesh2D::new(width, height);
    let lift = MeshProgramLift::new(compiled.clone(), mesh.clone(), mode);
    let links = unique_links(&mesh);
    let sets = fault_sets(&links, max_faults, max_fault_sets, 0x5eed);
    let mut report = DeadlockReport {
        program: program_name.into(),
        topology: format!("mesh {width}x{height}"),
        num_vcs: lift.num_vcs(),
        fault_sets_checked: 0,
        failures: Vec::new(),
    };
    for set in &sets {
        let mut faults = FaultSet::new();
        for &(n, p) in set {
            faults.fail_link(&mesh, n, p);
        }
        let relation = lift.relation(&faults);
        let g = ChannelDependencyGraph::build(&mesh, &faults, lift.num_vcs(), &relation);
        report.fault_sets_checked += 1;
        if let Some(cycle) = g.find_cycle() {
            report.failures.push(CycleWitness { faults: describe_faults(&mesh, set), cycle });
        }
    }
    report
}

/// Hypercube analogue of [`verify_mesh`] for ROUTE_C-style programs.
pub fn verify_cube(
    program_name: &str,
    compiled: &CompiledProgram,
    dim: u32,
    max_faults: usize,
    max_fault_sets: usize,
) -> DeadlockReport {
    let cube = Hypercube::new(dim);
    let lift = CubeProgramLift::new(compiled.clone(), cube.clone());
    let links = unique_links(&cube);
    let sets = fault_sets(&links, max_faults, max_fault_sets, 0x5eed);
    let mut report = DeadlockReport {
        program: program_name.into(),
        topology: format!("hypercube d={dim}"),
        num_vcs: 5,
        fault_sets_checked: 0,
        failures: Vec::new(),
    };
    for set in &sets {
        let mut faults = FaultSet::new();
        for &(n, p) in set {
            faults.fail_link(&cube, n, p);
        }
        let relation = lift.relation(&faults);
        let g = ChannelDependencyGraph::build(&cube, &faults, 5, &relation);
        report.fault_sets_checked += 1;
        if let Some(cycle) = g.find_cycle() {
            report.failures.push(CycleWitness { faults: describe_faults(&cube, set), cycle });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_set_enumeration_counts() {
        let mesh = Mesh2D::new(3, 3);
        let links = unique_links(&mesh);
        assert_eq!(links.len(), 12); // 2*3*3 - 3 - 3
        let sets = fault_sets(&links, 2, usize::MAX, 1);
        // empty + 12 singles + C(12,2) pairs
        assert_eq!(sets.len(), 1 + 12 + 66);
        let sets1 = fault_sets(&links, 1, usize::MAX, 1);
        assert_eq!(sets1.len(), 13);
    }

    #[test]
    fn sampling_keeps_fault_free_scenario() {
        let mesh = Mesh2D::new(4, 4);
        let links = unique_links(&mesh);
        let sets = fault_sets(&links, 2, 10, 7);
        assert_eq!(sets.len(), 10);
        assert!(sets[0].is_empty());
    }
}
