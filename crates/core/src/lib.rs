//! # ftr-core — the flexible fault-tolerant router
//!
//! The paper's router architecture (Figure 3) assembled from the other
//! crates: the **data path** (input/output buffers, connection unit) is the
//! simulator's router model; the **control unit** is a block of rule
//! interpreters (`ftr-rules`) coordinated by an event manager; the
//! **message interface** extracts header fields and delivers them as rule
//! inputs; the **information units** report link state and load.
//!
//! * [`configure`] is the "Rule Compiler": rule-language source →
//!   [`RouterConfiguration`] (compiled tables + hardware cost report).
//! * [`RuleRouter`] plugs a configuration into `ftr-sim` as a
//!   [`ftr_sim::routing::RoutingAlgorithm`], so a network can be *driven
//!   entirely by rule programs* — loading a different program changes the
//!   routing behaviour without touching the router (the paper's
//!   flexibility claim).
//! * [`registry`] names the shipped configurations (xy, west_first, nafta,
//!   route_c, route_c_nft).

pub mod cube_router;
pub mod info_unit;
pub mod registry;
pub mod report;
pub mod rule_router;

pub use cube_router::CubeRuleRouter;
pub use registry::{configuration, list_configurations};
pub use report::HardwareReport;
pub use rule_router::{MeshInterface, RuleRouter};

use ftr_rules::{
    compile, cost, Backend, CompileOptions, CompiledProgram, Machine, ProgramCost, Result,
    StepWeights, VmProgram,
};
use std::sync::Arc;

/// A compiled router configuration: the output of the paper's "rule
/// compiler" tool — configuration data for the rule interpreters plus the
/// hardware cost model used in §5.
#[derive(Clone, Debug)]
pub struct RouterConfiguration {
    /// Configuration name.
    pub name: String,
    /// Compiled program (tables + conclusion code).
    pub compiled: CompiledProgram,
    /// Hardware cost report (Table 1/2 shape).
    pub cost: ProgramCost,
    /// Modeled per-rule decision latencies, installed on every node
    /// machine (set for optimized programs so `decision_steps` stays
    /// comparable to the original program's interpretation counts).
    pub step_weights: Option<Arc<StepWeights>>,
    /// True when `compiled` came out of the certified optimizer rather
    /// than straight from source.
    pub optimized: bool,
    /// Which rule-execution backend node machines run on. Defaults to the
    /// `FTR_BACKEND` environment variable (`table` unless it says
    /// `bytecode`); override with [`RouterConfiguration::with_backend`].
    pub backend: Backend,
    /// The lowered bytecode, shared by every node machine when `backend`
    /// is [`Backend::Bytecode`] (lowered once per configuration, not per
    /// node).
    pub bytecode: Option<Arc<VmProgram>>,
}

impl RouterConfiguration {
    /// Builds a configuration from an already-compiled program — the
    /// entry point for programs rewritten by the certified optimizer
    /// (`ftr_analyze::opt::optimize_rulebase`), whose output is a
    /// standard [`CompiledProgram`].
    pub fn from_compiled(name: &str, compiled: CompiledProgram) -> Result<Self> {
        let cost = cost::analyze(&compiled.prog, &CompileOptions::default())?;
        RouterConfiguration {
            name: name.to_string(),
            compiled,
            cost,
            step_weights: None,
            optimized: false,
            backend: Backend::Table,
            bytecode: None,
        }
        .with_backend(Backend::from_env())
    }

    /// Installs modeled per-rule step weights and tags the configuration
    /// as optimized; routers propagate the weights into every node
    /// machine via `Machine::set_step_weights`.
    pub fn with_step_weights(mut self, weights: StepWeights) -> Self {
        self.step_weights = Some(Arc::new(weights));
        self.optimized = true;
        self
    }

    /// Selects the rule-execution backend. [`Backend::Bytecode`] lowers
    /// the compiled program once here; every node machine then shares the
    /// lowered [`VmProgram`]. Lowering validates the code, so a
    /// configuration carrying bytecode is known-loadable.
    pub fn with_backend(mut self, backend: Backend) -> Result<Self> {
        self.backend = backend;
        self.bytecode = match backend {
            Backend::Table => None,
            Backend::Bytecode => Some(Arc::new(VmProgram::lower(&self.compiled)?)),
        };
        Ok(self)
    }

    /// Applies this configuration's backend choice to a node machine.
    pub fn install_backend(&self, machine: &mut Machine) {
        if let Some(vm) = &self.bytecode {
            machine
                .set_bytecode(Arc::clone(vm))
                .expect("bytecode was validated when the configuration was built");
        }
    }
}

/// Compiles rule-language source into a router configuration.
pub fn configure(name: &str, src: &str) -> Result<RouterConfiguration> {
    let opts = CompileOptions::default();
    let prog = ftr_rules::parse(src)?;
    let compiled = compile(&prog, &opts)?;
    let cost = cost::analyze(&prog, &opts)?;
    RouterConfiguration {
        name: name.to_string(),
        compiled,
        cost,
        step_weights: None,
        optimized: false,
        backend: Backend::Table,
        bytecode: None,
    }
    .with_backend(Backend::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_builds_cost_and_tables() {
        let cfg = configure("xy", ftr_algos::rules_src::XY).unwrap();
        assert_eq!(cfg.name, "xy");
        assert_eq!(cfg.compiled.bases.len(), 1);
        assert_eq!(cfg.cost.rulebases.len(), 1);
        assert!(cfg.cost.total_table_bits() > 0);
    }

    #[test]
    fn configure_rejects_bad_source() {
        assert!(configure("bad", "ON f( END").is_err());
    }
}
