//! The rule-driven router: a [`RoutingAlgorithm`] whose control unit is a
//! compiled rule program executed by the event manager.
//!
//! Every node holds one [`ftr_rules::Machine`] (the "Rule Bases" block of
//! Figure 3). On each head flit the message interface loads header fields
//! and link information into the inputs, fires the program's `route_msg`
//! event, and decodes the cascade's last `RETURN` value:
//!
//! | value | meaning                |
//! |------:|------------------------|
//! | 0..11 | forward via direction  |
//! | 13    | unroutable             |
//! | 14    | wait                   |
//! | 15    | deliver locally        |
//!
//! The number of rule interpretations the cascade used becomes the
//! decision's step count — the rule router therefore exhibits the very
//! overhead the paper measures (1 step for XY, up to 3 for a NAFTA-style
//! escalation chain).

use crate::info_unit::load_link_info;
use crate::RouterConfiguration;
use ftr_rules::{InputMap, InterpProbe, Machine, Value};
use ftr_sim::flit::Header;
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId};
use std::sync::Arc;

/// Return-code conventions of `route_msg`.
pub const RET_UNROUTABLE: i64 = 13;
/// Wait code.
pub const RET_WAIT: i64 = 14;
/// Local delivery code.
pub const RET_DELIVER: i64 = 15;

/// The message interface for 2-D mesh programs: loads node coordinates
/// into the `xpos`/`ypos` registers at configuration time and header
/// coordinates into the `xdes`/`ydes` inputs per decision.
#[derive(Clone)]
pub struct MeshInterface {
    mesh: Mesh2D,
}

impl MeshInterface {
    /// Creates the interface for a mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        MeshInterface { mesh }
    }

    fn init_node(&self, m: &mut Machine, node: NodeId) {
        let (x, y) = self.mesh.coords(node);
        let prog = m.program().clone();
        for (name, v) in [("xpos", x), ("ypos", y)] {
            if let Some(i) = prog.vars.iter().position(|d| d.name == name) {
                m.regs_mut()
                    .write(&prog, i, &[], Value::Int(v as i64))
                    .expect("coordinate fits register domain");
            }
        }
    }

    fn load_header(
        &self,
        m: &Machine,
        im: &mut InputMap,
        header: &Header,
        in_vc: VcId,
    ) -> ftr_rules::Result<()> {
        let prog = m.program();
        let (dx, dy) = self.mesh.coords(header.dst);
        let has = |n: &str| prog.inputs.iter().any(|i| i.name == n);
        if has("xdes") {
            im.set(prog, "xdes", &[], Value::Int(dx as i64))?;
        }
        if has("ydes") {
            im.set(prog, "ydes", &[], Value::Int(dy as i64))?;
        }
        if has("invc") {
            im.set(prog, "invc", &[], Value::Int(in_vc.idx() as i64))?;
        }
        if has("misrouted") {
            im.set(prog, "misrouted", &[], Value::Bool(header.misrouted))?;
        }
        Ok(())
    }
}

/// A rule-driven routing algorithm for 2-D meshes.
pub struct RuleRouter {
    config: Arc<RouterConfiguration>,
    interface: MeshInterface,
    vcs: usize,
    probe: Option<Arc<dyn InterpProbe>>,
}

impl RuleRouter {
    /// Builds a rule router from a configuration. `vcs` is the number of
    /// virtual channels the data path provides (the program addresses them
    /// through the `invc` input).
    pub fn new(config: RouterConfiguration, mesh: Mesh2D, vcs: usize) -> Self {
        RuleRouter {
            config: Arc::new(config),
            interface: MeshInterface::new(mesh),
            vcs,
            probe: None,
        }
    }

    /// Attaches a per-stage interpreter probe (e.g. an
    /// `ftr_obs::InterpProfiler`); every node machine built afterwards
    /// reports premise/kernel/conclusion timings to it.
    pub fn with_profiler(mut self, probe: Arc<dyn InterpProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The configuration driving this router.
    pub fn configuration(&self) -> &RouterConfiguration {
        &self.config
    }
}

impl RoutingAlgorithm for RuleRouter {
    fn name(&self) -> String {
        if self.config.optimized {
            format!("rule:{}+opt", self.config.name)
        } else {
            format!("rule:{}", self.config.name)
        }
    }

    fn num_vcs(&self) -> usize {
        self.vcs
    }

    fn controller(&self, _topo: &dyn Topology, node: NodeId) -> Box<dyn NodeController> {
        let mut machine = Machine::from_compiled(self.config.compiled.clone());
        if let Some(probe) = &self.probe {
            machine.set_probe(Arc::clone(probe));
        }
        if let Some(w) = &self.config.step_weights {
            machine.set_step_weights(Arc::clone(w));
        }
        self.config.install_backend(&mut machine);
        self.interface.init_node(&mut machine, node);
        Box::new(RuleNodeController {
            machine,
            interface: self.interface.clone(),
            entry: self
                .config
                .compiled
                .prog
                .rulebases
                .first()
                .map(|rb| rb.name.clone())
                .unwrap_or_else(|| "route_msg".into()),
        })
    }
}

struct RuleNodeController {
    machine: Machine,
    interface: MeshInterface,
    entry: String,
}

impl NodeController for RuleNodeController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Decision {
        let mut im = InputMap::new();
        let prog = self.machine.program();
        if load_link_info(prog, &mut im, view, in_vc).is_err()
            || self.interface.load_header(&self.machine, &mut im, h, in_vc).is_err()
        {
            return Decision::new(Verdict::Unroutable, 1);
        }
        let entry = self.entry.clone();
        let casc = match self.machine.fire_cascade(&entry, &[], &im) {
            Ok(c) => c,
            Err(_) => return Decision::new(Verdict::Unroutable, 1),
        };
        let steps = casc.steps.max(1);
        let verdict = match casc.last_return() {
            Some(Value::Int(d)) if (0..=11).contains(&d) => {
                if (d as usize) < view.link_alive.len()
                    && view.link_alive[d as usize]
                    && view.out_free[d as usize][in_vc.idx()]
                {
                    Verdict::Route(PortId(d as u8), in_vc)
                } else {
                    Verdict::Wait
                }
            }
            Some(Value::Int(RET_DELIVER)) => Verdict::Deliver,
            Some(Value::Int(RET_UNROUTABLE)) => Verdict::Unroutable,
            Some(Value::Int(RET_WAIT)) | None => Verdict::Wait,
            Some(_) => Verdict::Unroutable,
        };
        Decision::new(verdict, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configure;
    use ftr_algos::rules_src;
    use ftr_sim::{Network, Pattern, TrafficSource};

    fn rule_net(src: &str, name: &str, mesh: Mesh2D) -> Network {
        let cfg = configure(name, src).unwrap();
        let algo = RuleRouter::new(cfg, mesh.clone(), 1);
        Network::builder(Arc::new(mesh)).build(&algo).expect("valid config")
    }

    #[test]
    fn rule_driven_xy_delivers_all_pairs() {
        let mesh = Mesh2D::new(4, 4);
        let mut net = rule_net(rules_src::XY, "xy", mesh.clone());
        net.set_measuring(true);
        for a in mesh.nodes() {
            for b in mesh.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(100_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0, "XY program is minimal");
        assert_eq!(net.stats.decision_steps.max, 1, "one interpretation per hop");
    }

    #[test]
    fn rule_driven_xy_matches_native_xy_paths() {
        // identical single-message latencies: the rule program IS XY
        let mesh = Mesh2D::new(5, 4);
        let native = ftr_algos::XyRouting::new(mesh.clone());
        let mut nn = Network::builder(Arc::new(mesh.clone())).build(&native).expect("valid config");
        let mut rn = rule_net(rules_src::XY, "xy", mesh.clone());
        for (a, b) in [(0u32, 19u32), (3, 16), (7, 12), (18, 1)] {
            nn.send(NodeId(a), NodeId(b), 3).unwrap();
            rn.send(NodeId(a), NodeId(b), 3).unwrap();
        }
        assert!(nn.drain(10_000) && rn.drain(10_000));
        assert_eq!(nn.stats.hops, rn.stats.hops, "same paths");
        assert_eq!(nn.stats.latency, rn.stats.latency, "same timing");
    }

    #[test]
    fn rule_driven_west_first_adapts() {
        let mesh = Mesh2D::new(5, 5);
        let mut net = rule_net(rules_src::WEST_FIRST, "west-first", mesh.clone());
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.2, 4, 17);
        for _ in 0..800 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(20_000));
        assert!(!net.stats.deadlock);
        assert_eq!(net.stats.excess_hops, 0, "west-first is minimal");
        assert!(net.stats.delivered_msgs > 300);
    }

    #[test]
    fn profiler_sees_every_interpretation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct CountProbe(AtomicU64);
        impl InterpProbe for CountProbe {
            fn record_stage(&self, _base: usize, stage: ftr_rules::Stage, _nanos: u64) {
                if stage == ftr_rules::Stage::Kernel {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mesh = Mesh2D::new(4, 4);
        let cfg = configure("xy", rules_src::XY).unwrap();
        let probe = Arc::new(CountProbe(AtomicU64::new(0)));
        let algo = RuleRouter::new(cfg, mesh.clone(), 1)
            .with_profiler(probe.clone() as Arc<dyn InterpProbe>);
        let mut net = Network::builder(Arc::new(mesh.clone())).build(&algo).expect("valid config");
        net.send(mesh.node_at(0, 0), mesh.node_at(3, 0), 2).unwrap();
        assert!(net.drain(5_000));
        // one kernel lookup per interpretation; XY interprets once per
        // routing decision, and the engine re-consults on every Ready
        // retry, so at least the 3 on-path decisions must be visible
        assert!(probe.0.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn swapping_programs_changes_behaviour() {
        // the flexibility claim: same router, different rule program,
        // different routing. XY cannot avoid a fault on the x-leg;
        // west-first routes around it when the detour never goes west.
        let mesh = Mesh2D::new(4, 4);
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(2, 1);

        let mut xy = rule_net(rules_src::XY, "xy", mesh.clone());
        xy.inject_link_fault(mesh.node_at(1, 0), ftr_topo::EAST);
        xy.send(src, dst, 2).unwrap();
        xy.run(200);
        assert_eq!(xy.stats.unroutable_msgs, 1, "XY is stuck");

        let mut wf = rule_net(rules_src::WEST_FIRST, "west-first", mesh.clone());
        wf.inject_link_fault(mesh.node_at(1, 0), ftr_topo::EAST);
        wf.send(src, dst, 2).unwrap();
        assert!(wf.drain(5_000), "west-first detours north around the fault");
        assert_eq!(wf.stats.delivered_msgs, 1);
    }
}
