//! Information units — "generate information about the links, like load
//! (which can be measured by buffer exploitation) and faults" (Figure 3).
//!
//! Translates the simulator's [`RouterView`] into the standard rule-program
//! inputs `free[dirs]`, `linkok[dirs]` and `out_queue[dirs]`. Programs only
//! need to declare the inputs they actually read; loading skips inputs a
//! program does not declare.

use ftr_rules::{InputMap, Program, Result, Value};
use ftr_sim::routing::RouterView;
use ftr_topo::VcId;

/// Loads the per-decision link information into `im`.
///
/// * `free(d)` — output channel `d` is allocatable on virtual channel `vc`
///   (busy/credit state of the data path);
/// * `linkok(d)` — the physical link behind `d` is alive;
/// * `out_queue(d)` — data still assigned to output `d` (the adaptivity
///   criterion), clamped to the input's domain.
pub fn load_link_info(
    prog: &Program,
    im: &mut InputMap,
    view: &RouterView<'_>,
    vc: VcId,
) -> Result<()> {
    let degree = view.link_alive.len();
    let has = |name: &str| prog.inputs.iter().any(|i| i.name == name);
    for d in 0..degree {
        let idx = [Value::Int(d as i64)];
        if has("free") {
            let f = view.link_alive[d] && view.out_free[d][vc.idx()];
            im.set(prog, "free", &idx, Value::Bool(f))?;
        }
        if has("linkok") {
            im.set(prog, "linkok", &idx, Value::Bool(view.link_alive[d]))?;
        }
        if has("out_queue") {
            let q = view.out_load[d].min(255) as i64;
            im.set(prog, "out_queue", &idx, Value::Int(q))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_rules::{parse, InputProvider};
    use ftr_topo::NodeId;

    #[test]
    fn loads_declared_inputs_only() {
        let prog = parse(
            "CONSTANT dirs = 0 TO 3\nINPUT free[dirs] IN bool\nINPUT out_queue[dirs] IN 0 TO 255\n",
        )
        .unwrap();
        let out_free = vec![vec![true], vec![false], vec![true], vec![true]];
        let out_load = vec![3, 400, 0, 7];
        let link_alive = vec![true, true, false, true];
        let view = RouterView {
            node: NodeId(0),
            cycle: 0,
            out_free: &out_free,
            out_load: &out_load,
            link_alive: &link_alive,
        };
        let mut im = InputMap::new();
        load_link_info(&prog, &mut im, &view, VcId(0)).unwrap();
        // free(2) is false because the link is dead even though the VC is free
        assert_eq!(im.read_input(&prog, 0, &[Value::Int(2)]).unwrap(), Value::Bool(false));
        assert_eq!(im.read_input(&prog, 0, &[Value::Int(0)]).unwrap(), Value::Bool(true));
        // out_queue clamps to 255
        assert_eq!(im.read_input(&prog, 1, &[Value::Int(1)]).unwrap(), Value::Int(255));
    }
}
