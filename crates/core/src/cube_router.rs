//! The rule-driven hypercube router: ROUTE_C executed *entirely* by the
//! rule machinery in the live network.
//!
//! Per head flit, the message interface computes the hypercube difference
//! sets (`diffup`, `diffdown`) and the usable-direction set (`okdirs`,
//! derived from the link status and the `neighb_state` registers the rule
//! program itself maintains), then fires the paper's two interpretation
//! steps — `decide_dir` (which output dimensions are legal) and
//! `decide_vc` (channel selection + adaptivity argmin into the `chosen`
//! register). Fault and state propagation run through `update_state`, the
//! Figure-4 rule base, driven by control-plane messages.
//!
//! The step counter therefore measures exactly the paper's "ROUTE_C always
//! needs two steps" on real traffic.

use crate::RouterConfiguration;
use ftr_rules::{Domain, InputMap, Machine, Value};
use ftr_sim::flit::Header;
use ftr_sim::routing::{
    ControlMsg, Decision, NodeController, RouterView, RoutingAlgorithm, Verdict,
};
use ftr_topo::{Hypercube, NodeId, PortId, Topology, VcId};
use std::sync::Arc;

/// Symbol indices of the `fault_states` type in the ROUTE_C program.
const STATE_LFAULT: u32 = 1;
const STATE_OUNSAFE: u32 = 2;
const STATE_STRUNSAFE: u32 = 3;
const STATE_FAULTY: u32 = 4;

/// Rule-driven ROUTE_C for hypercubes.
pub struct CubeRuleRouter {
    config: Arc<RouterConfiguration>,
    cube: Hypercube,
}

impl CubeRuleRouter {
    /// Builds the router from a ROUTE_C configuration (use
    /// `ftr_algos::rules_src::route_c_source(dim)` for the matching
    /// program).
    pub fn new(config: RouterConfiguration, cube: Hypercube) -> Self {
        CubeRuleRouter { config: Arc::new(config), cube }
    }
}

impl RoutingAlgorithm for CubeRuleRouter {
    fn name(&self) -> String {
        if self.config.optimized {
            format!("rule:{}+opt", self.config.name)
        } else {
            format!("rule:{}", self.config.name)
        }
    }

    fn num_vcs(&self) -> usize {
        5
    }

    fn controller(&self, _topo: &dyn Topology, node: NodeId) -> Box<dyn NodeController> {
        let _ = node; // ROUTE_C state is address-free: the machine needs no coordinates
        let mut machine = Machine::from_compiled(self.config.compiled.clone());
        if let Some(w) = &self.config.step_weights {
            machine.set_step_weights(std::sync::Arc::clone(w));
        }
        self.config.install_backend(&mut machine);
        Box::new(CubeRuleController {
            machine,
            cube: self.cube.clone(),
            link_dead: vec![false; self.cube.dim() as usize],
            hop_limit: 4 * self.cube.num_nodes() as u32 + 16,
        })
    }
}

struct CubeRuleController {
    machine: Machine,
    cube: Hypercube,
    /// Local link status shadow (the information unit's view).
    link_dead: Vec<bool>,
    hop_limit: u32,
}

impl CubeRuleController {
    fn dims_domain(&self) -> Domain {
        Domain::Int { lo: 0, hi: self.cube.dim() as i64 - 1 }
    }

    fn set_of(&self, mask: u64) -> Value {
        Value::Set { dom: self.dims_domain(), mask }
    }

    /// Reads `neighb_state(d)` from the program's registers.
    fn neighb_state(&self, d: usize) -> u32 {
        let prog = self.machine.program();
        let vi = prog
            .vars
            .iter()
            .position(|v| v.name == "neighb_state")
            .expect("route_c program has neighb_state");
        match self.machine.regs().read(prog, vi, &[Value::Int(d as i64)]) {
            Ok(Value::Sym { idx, .. }) => idx,
            _ => 0,
        }
    }

    /// Reads the `chosen` register (argmin result of decide_vc).
    fn chosen(&self) -> usize {
        let prog = self.machine.program();
        let vi =
            prog.vars.iter().position(|v| v.name == "chosen").expect("route_c program has chosen");
        match self.machine.regs().read(prog, vi, &[]) {
            Ok(Value::Int(v)) => v as usize,
            _ => 0,
        }
    }

    /// Drives `update_state(dir)` with a reported neighbour state; converts
    /// generated `send_newmessage` events into control messages.
    fn drive_update(&mut self, dir: PortId, reported: u32) -> Vec<ControlMsg> {
        let prog = self.machine.program().clone();
        let mut im = InputMap::new();
        // the rule base only reads new_state(dir); default the rest
        im.set_default(&prog, "new_state", Value::Sym { ty: 0, idx: 0 }).ok();
        if im
            .set(
                &prog,
                "new_state",
                &[Value::Int(dir.idx() as i64)],
                Value::Sym { ty: 0, idx: reported },
            )
            .is_err()
        {
            return Vec::new();
        }
        let Ok(casc) =
            self.machine.fire_cascade("update_state", &[Value::Int(dir.idx() as i64)], &im)
        else {
            return Vec::new();
        };
        casc.host_events
            .iter()
            .filter(|e| e.event == "send_newmessage" && e.args.len() == 2)
            .filter_map(|e| {
                let d = e.args[0].as_int().ok()? as usize;
                let code = e.args[1].as_int().ok()?;
                if d < self.link_dead.len() && !self.link_dead[d] {
                    Some(ControlMsg { port: PortId(d as u8), payload: vec![code] })
                } else {
                    None
                }
            })
            .collect()
    }
}

impl NodeController for CubeRuleController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 2);
        }
        if view.node == h.dst {
            return Decision::new(Verdict::Deliver, 2);
        }
        let dim = self.cube.dim() as usize;
        let prog = self.machine.program().clone();

        // --- message interface: difference and usability sets
        let diff = self.cube.diff(view.node, h.dst) as u64;
        let up = diff & !(view.node.0 as u64);
        let down = diff & view.node.0 as u64;
        let mut ok = 0u64;
        for d in 0..dim {
            let nb = self.cube.neighbor(view.node, PortId(d as u8)).expect("cube port");
            let unsafe_nb = self.neighb_state(d) >= STATE_OUNSAFE;
            if view.link_alive[d] && (nb == h.dst || !unsafe_nb) {
                ok |= 1 << d;
            }
        }

        let mut im = InputMap::new();
        let _ = im.set(&prog, "diffup", &[], self.set_of(up));
        let _ = im.set(&prog, "diffdown", &[], self.set_of(down));
        let _ = im.set(&prog, "okdirs", &[], self.set_of(ok));
        for d in 0..dim {
            let _ = im.set(
                &prog,
                "out_queue",
                &[Value::Int(d as i64)],
                Value::Int(view.out_load[d].min(255) as i64),
            );
        }

        // --- step 1: decide_dir
        let Ok(casc1) = self.machine.fire_cascade("decide_dir", &[], &im) else {
            return Decision::new(Verdict::Unroutable, 1);
        };
        let Some(Value::Set { mask: cands, .. }) = casc1.last_return() else {
            return Decision::new(Verdict::Unroutable, casc1.steps.max(1));
        };
        if cands == 0 {
            return Decision::new(Verdict::Unroutable, casc1.steps.max(1));
        }
        let misr = cands & (up | down) == 0;
        let phase: i64 = if up != 0 { 0 } else { 1 };

        // --- step 2: decide_vc (channel + adaptivity argmin)
        let _ = im.set(&prog, "cands", &[], self.set_of(cands));
        let _ = im.set(&prog, "phase", &[], Value::Int(phase));
        let _ = im.set(&prog, "misr", &[], Value::Bool(misr));
        for v in 0..5usize {
            // a channel class is usable if any candidate output has it free
            let free = (0..dim)
                .any(|d| cands & (1 << d) != 0 && view.link_alive[d] && view.out_free[d][v]);
            let _ = im.set(&prog, "freevc", &[Value::Int(v as i64)], Value::Bool(free));
        }
        let Ok(casc2) = self.machine.fire_cascade("decide_vc", &[], &im) else {
            return Decision::new(Verdict::Unroutable, casc1.steps.max(1) + 1);
        };
        let steps = casc1.steps + casc2.steps;
        let vc = match casc2.last_return() {
            Some(Value::Int(v)) if (0..5).contains(&v) => v as usize,
            _ => return Decision::new(Verdict::Wait, steps), // 7 = wait
        };
        let port = self.chosen();
        if port < dim
            && cands & (1 << port) != 0
            && view.link_alive[port]
            && view.out_free[port][vc]
        {
            if misr {
                h.misrouted = true;
            }
            h.phase = phase as u8;
            Decision::new(Verdict::Route(PortId(port as u8), VcId(vc as u8)), steps)
        } else {
            Decision::new(Verdict::Wait, steps)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        // conservative relation for deadlock analysis: same sets the rule
        // program would compute, all candidate (dim, vc-class) pairs
        if view.node == h.dst {
            return Vec::new();
        }
        let dim = self.cube.dim() as usize;
        let diff = self.cube.diff(view.node, h.dst) as u64;
        let up = diff & !(view.node.0 as u64);
        let down = diff & view.node.0 as u64;
        let mut ok = 0u64;
        for d in 0..dim {
            let nb = self.cube.neighbor(view.node, PortId(d as u8)).expect("cube port");
            if view.link_alive[d] && (nb == h.dst || self.neighb_state(d) < STATE_OUNSAFE) {
                ok |= 1 << d;
            }
        }
        let (cands, vcs): (u64, Vec<u8>) = if up & ok != 0 {
            (up & ok, vec![0])
        } else if down & ok != 0 {
            (down & ok, vec![1])
        } else {
            (ok & !(up | down), vec![2, 3, 4])
        };
        (0..dim)
            .filter(|d| cands & (1 << d) != 0)
            .flat_map(|d| vcs.iter().map(move |&v| (PortId(d as u8), VcId(v))))
            .collect()
    }

    fn on_fault(&mut self, _view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        self.link_dead[port.idx()] = true;
        self.drive_update(port, STATE_LFAULT)
    }

    fn on_control(
        &mut self,
        _view: &RouterView<'_>,
        from: PortId,
        payload: &[i64],
    ) -> Vec<ControlMsg> {
        if payload.len() != 1 {
            return Vec::new();
        }
        let reported = match payload[0] {
            2 => STATE_OUNSAFE,
            3 => STATE_STRUNSAFE,
            4 => STATE_FAULTY,
            _ => return Vec::new(),
        };
        self.drive_update(from, reported)
    }

    fn state_word(&self) -> i64 {
        let prog = self.machine.program();
        let vi = prog.vars.iter().position(|v| v.name == "state").expect("state register");
        match self.machine.regs().read(prog, vi, &[]) {
            Ok(Value::Sym { idx, .. }) => idx as i64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configure;
    use ftr_algos::rules_src::route_c_source;
    use ftr_sim::{Network, Pattern, TrafficSource};

    fn rule_cube_net(dim: u32) -> Network {
        let cube = Hypercube::new(dim);
        let cfg = configure("route_c", &route_c_source(dim)).unwrap();
        let algo = CubeRuleRouter::new(cfg, cube.clone());
        Network::builder(Arc::new(cube)).build(&algo).expect("valid config")
    }

    #[test]
    fn rule_driven_route_c_delivers_all_pairs() {
        let mut net = rule_cube_net(4);
        net.set_measuring(true);
        for a in 0..16u32 {
            for b in 0..16u32 {
                if a != b {
                    net.send(NodeId(a), NodeId(b), 2).unwrap();
                }
            }
        }
        assert!(net.drain(300_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0, "two-phase minimal");
        assert_eq!(
            net.stats.decision_steps.max, 2,
            "the paper's 'always two interpretations', measured live"
        );
        assert!(!net.stats.deadlock);
    }

    #[test]
    fn rule_driven_route_c_survives_node_fault() {
        let mut net = rule_cube_net(4);
        net.inject_node_fault(NodeId(5));
        net.settle_control(10_000).expect("settles");
        net.set_measuring(true);
        let cube = Hypercube::new(4);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, 9);
        for _ in 0..800 {
            for (s, d, l) in tf.tick(&cube, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(50_000));
        assert!(!net.stats.deadlock);
        assert_eq!(net.stats.unroutable_msgs, 0);
        assert!(net.stats.delivered_msgs > 200);
    }

    #[test]
    fn state_propagation_through_rule_machine() {
        // three dead neighbours around node 0 flip its rule-held state to
        // unsafe, exactly like the native implementation
        let mut net = rule_cube_net(4);
        for n in [1u32, 2, 4] {
            net.inject_node_fault(NodeId(n));
        }
        net.settle_control(10_000).unwrap();
        assert!(
            net.controller(NodeId(0)).state_word() >= 2,
            "node 0 should be unsafe, got {}",
            net.controller(NodeId(0)).state_word()
        );
        let far = net.controller(NodeId(15)).state_word();
        assert_eq!(far, 0, "antipode stays safe");
    }
}
