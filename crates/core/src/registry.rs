//! Named router configurations (the shipped rule programs, compiled).

use crate::{configure, RouterConfiguration};
use ftr_algos::rules_src;
use ftr_rules::{Result, RuleError};

/// Names of the shipped configurations.
pub fn list_configurations() -> Vec<&'static str> {
    vec!["xy", "west_first", "nafta", "route_c", "route_c_nft"]
}

/// Compiles a shipped configuration by name.
pub fn configuration(name: &str) -> Result<RouterConfiguration> {
    let src = match name {
        "xy" => rules_src::XY,
        "west_first" => rules_src::WEST_FIRST,
        "nafta" => rules_src::NAFTA,
        "route_c" => rules_src::ROUTE_C,
        "route_c_nft" => rules_src::ROUTE_C_NFT,
        other => {
            return Err(RuleError::resolve(format!(
                "unknown configuration `{other}` (available: {:?})",
                list_configurations()
            )))
        }
    };
    configure(name, src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_configuration_compiles() {
        for name in list_configurations() {
            let cfg = configuration(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!cfg.cost.rulebases.is_empty(), "{name} has rule bases");
        }
    }

    #[test]
    fn unknown_name_errors() {
        assert!(configuration("chaos").is_err());
    }
}
