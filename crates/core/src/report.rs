//! Hardware report: the §5 evaluation artefact for one configuration.
//!
//! Wraps the cost model with the fault-tolerance overhead split the paper
//! reports: total vs nft-subset table bits, register bits with the
//! FT-only share, decision steps, and virtual-channel demand.

use crate::RouterConfiguration;
use serde::Serialize;

/// Summary of a configuration's hardware demands.
#[derive(Clone, Debug, Serialize)]
pub struct HardwareReport {
    /// Configuration name.
    pub name: String,
    /// Number of rule bases.
    pub num_rulebases: usize,
    /// Rule bases also needed by the non-fault-tolerant variant.
    pub num_nft_rulebases: usize,
    /// Total rule-table bits.
    pub table_bits: u64,
    /// Table bits of the nft subset.
    pub nft_table_bits: u64,
    /// Total register bits.
    pub register_bits: u64,
    /// Register bits that exist only for fault tolerance.
    pub ft_only_register_bits: u64,
    /// Number of registers (declarations).
    pub num_registers: usize,
}

impl HardwareReport {
    /// Builds the report from a configuration.
    pub fn of(cfg: &RouterConfiguration) -> Self {
        HardwareReport {
            name: cfg.name.clone(),
            num_rulebases: cfg.cost.rulebases.len(),
            num_nft_rulebases: cfg.cost.rulebases.iter().filter(|r| r.nft).count(),
            table_bits: cfg.cost.total_table_bits(),
            nft_table_bits: cfg.cost.nft_table_bits(),
            register_bits: cfg.cost.total_register_bits(),
            ft_only_register_bits: cfg.cost.ft_only_register_bits(),
            num_registers: cfg.cost.num_registers(),
        }
    }

    /// Fault-tolerance overhead in table bits (absolute).
    pub fn ft_table_overhead(&self) -> u64 {
        self.table_bits - self.nft_table_bits
    }

    /// Fault-tolerance overhead as a factor over the nft subset.
    pub fn ft_table_factor(&self) -> f64 {
        if self.nft_table_bits == 0 {
            f64::INFINITY
        } else {
            self.table_bits as f64 / self.nft_table_bits as f64
        }
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} rule bases ({} nft), table {} bits (nft {}), registers {} bits in {} ({} FT-only)",
            self.name,
            self.num_rulebases,
            self.num_nft_rulebases,
            self.table_bits,
            self.nft_table_bits,
            self.register_bits,
            self.num_registers,
            self.ft_only_register_bits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::configuration;

    #[test]
    fn nafta_report_shows_ft_overhead() {
        let cfg = configuration("nafta").unwrap();
        let r = HardwareReport::of(&cfg);
        assert_eq!(r.num_rulebases, 11);
        assert_eq!(r.num_nft_rulebases, 5);
        assert!(r.ft_table_overhead() > 0, "fault tolerance costs table bits");
        assert!(r.ft_only_register_bits > 0, "fault tolerance costs registers");
        assert!(r.ft_table_factor() > 1.0);
        assert!(r.summary().contains("nafta"));
    }

    #[test]
    fn route_c_report() {
        let cfg = configuration("route_c").unwrap();
        let r = HardwareReport::of(&cfg);
        assert_eq!(r.num_rulebases, 4);
        assert_eq!(r.num_nft_rulebases, 2);
        assert!(r.ft_table_overhead() > 0);
    }
}
