//! Named metrics: counters and histograms behind a shared registry.
//!
//! The registry replaces the per-binary private accounting the bench
//! harness used to hand-roll: a simulation (or several, in a sweep)
//! records into named instruments, and the exporters render one
//! machine-readable snapshot — JSON for `results/`, CSV for spreadsheets.
//!
//! Handles are cheap clones (`Arc` inside); a hot loop should resolve its
//! instruments once and record through the handles.

use crate::json::{self, Obj};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone counter handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram state: count/sum/min/max plus power-of-two buckets.
#[derive(Clone, Debug, Default)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Minimum (0 when empty).
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// `buckets[i]` counts observations `v` with `⌊log2(v+1)⌋ == i`
    /// (bucket 0 holds v = 0, bucket 1 holds 1–2, bucket 2 holds 3–6, …).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q` quantile (0 ≤ q ≤ 1),
    /// estimated from the log₂ buckets and clamped to the observed maximum
    /// (a single observation of 5 must not report a p99 bound of 6).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                // inclusive upper edge of bucket i, clamped to the true max
                let edge = 1u64.checked_shl(i as u32 + 1).map_or(u64::MAX, |e| e - 2);
                return edge.min(self.max);
            }
        }
        self.max
    }
}

const BUCKETS: usize = 64;

/// Histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<HistSnapshot>>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(Mutex::new(HistSnapshot {
            buckets: vec![0; BUCKETS],
            ..Default::default()
        })))
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let mut h = self.0.lock();
        if h.count == 0 {
            h.min = v;
            h.max = v;
        } else {
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h.count += 1;
        h.sum = h.sum.saturating_add(v);
        // saturating: v == u64::MAX must land in the top bucket, not overflow
        let b = (64 - v.saturating_add(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        h.buckets[b] += 1;
    }

    /// Copy of the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.lock().clone()
    }
}

/// Registry of named instruments.
///
/// Names are free-form; the convention in this workspace is
/// `subsystem.quantity` (`sim.latency`, `interp.steps`). Registering the
/// same name twice returns a handle to the same instrument.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters.lock().entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.hists.lock().entry(name.to_string()).or_default().clone()
    }

    /// Counter value, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.lock().get(name).map(Counter::get)
    }

    /// Histogram snapshot, if registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistSnapshot> {
        self.hists.lock().get(name).map(Histogram::snapshot)
    }

    /// All registered instrument names, counters then histograms, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.counters.lock().keys().cloned().collect();
        v.extend(self.hists.lock().keys().cloned());
        v
    }

    /// Renders the whole registry as one JSON object:
    /// `{"counters":{...},"histograms":{name:{count,sum,min,max,mean,buckets}}}`.
    pub fn to_json(&self) -> String {
        let mut counters = Obj::new();
        for (name, c) in self.counters.lock().iter() {
            counters.num(name, c.get());
        }
        let mut hists = Obj::new();
        for (name, h) in self.hists.lock().iter() {
            let s = h.snapshot();
            let mut o = Obj::new();
            o.num("count", s.count)
                .num("sum", s.sum)
                .num("min", s.min)
                .num("max", s.max)
                .float("mean", s.mean());
            // drop the empty tail so exports stay small
            let last = s.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            o.field("buckets", json::array(s.buckets[..last].iter().map(|b| b.to_string())));
            hists.field(name, o.finish());
        }
        let mut root = Obj::new();
        root.field("counters", counters.finish());
        root.field("histograms", hists.finish());
        root.finish()
    }

    /// Renders the registry as CSV (`kind,name,count,sum,min,max,mean`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,count,sum,min,max,mean\n");
        for (name, c) in self.counters.lock().iter() {
            let v = c.get();
            let _ = writeln!(out, "counter,{name},1,{v},{v},{v},{v}");
        }
        for (name, h) in self.hists.lock().iter() {
            let s = h.snapshot();
            let _ = writeln!(
                out,
                "histogram,{name},{},{},{},{},{}",
                s.count,
                s.sum,
                s.min,
                s.max,
                s.mean()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn counters_share_state_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x"), Some(3));
        assert_eq!(r.counter_value("y"), None);
    }

    #[test]
    fn histogram_stats_and_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in [0u64, 1, 2, 3, 10, 100] {
            h.observe(v);
        }
        let s = r.histogram_snapshot("lat").unwrap();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 116);
        assert_eq!(s.buckets[0], 1, "v=0 in bucket 0");
        assert_eq!(s.buckets[1], 2, "v=1,2 in bucket 1");
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        assert!(s.quantile_bound(0.5) >= 2);
        assert!(s.quantile_bound(1.0) >= 100 || s.quantile_bound(1.0) == s.max);
    }

    #[test]
    fn observe_u64_max_does_not_overflow() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[BUCKETS - 1], 2, "extreme values land in the top bucket");
        assert_eq!(s.quantile_bound(0.99), u64::MAX);
    }

    #[test]
    fn quantile_bound_clamps_to_observed_max() {
        let h = Histogram::default();
        h.observe(5);
        let s = h.snapshot();
        // bucket edge for 5 is 6; the true maximum is 5
        assert_eq!(s.quantile_bound(0.99), 5);
        h.observe(0);
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(0.25), 0, "low quantile hits bucket 0");
    }

    #[test]
    fn exports_parse() {
        let r = MetricsRegistry::new();
        r.counter("sim.delivered").add(7);
        r.histogram("sim.latency").observe(12);
        let j = r.to_json();
        assert!(validate(&j).is_ok(), "{j}");
        assert!(j.contains("\"sim.delivered\":7"));
        let csv = r.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("histogram,sim.latency,1,12,12,12,12"));
    }
}
