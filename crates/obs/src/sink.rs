//! Trace sinks: where events go.
//!
//! The simulator holds an `Option<Arc<dyn TraceSink>>`; with no sink
//! attached it never constructs an event (zero-cost-when-disabled is a
//! contract of the emitting side, enforced by closure-based emit hooks).
//! Sinks must be internally synchronised — parallel sweeps share one sink
//! across worker threads.

use crate::event::TraceEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Consumer of trace events.
pub trait TraceSink: Send + Sync {
    /// Records one event. Called on the simulation hot path — implementors
    /// should be cheap and must not block on external systems.
    fn record(&self, ev: &TraceEvent);

    /// Flushes buffered events to their backing store (no-op by default).
    fn flush(&self) {}
}

/// Bounded in-memory ring of the most recent events.
///
/// The default sink for tests and interactive analysis: keeps the last
/// `capacity` events, dropping the oldest on overflow (and counting the
/// drops, so truncation is never silent).
pub struct RingSink {
    buf: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: Mutex<u64>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
            dropped: Mutex::new(0),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Drains and returns all retained events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.buf.lock().drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: &TraceEvent) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            *self.dropped.lock() += 1;
        }
        buf.push_back(ev.clone());
    }
}

/// Streams events as JSON Lines to any writer (one object per line).
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<BufWriter<W>>,
    written: Mutex<u64>,
    write_errors: Mutex<u64>,
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(w: W) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(w)),
            written: Mutex::new(0),
            write_errors: Mutex::new(0),
        }
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        *self.written.lock()
    }

    /// Events lost to write failures — a trace with `write_errors() > 0`
    /// is incomplete and must not be treated as ground truth.
    pub fn write_errors(&self) -> u64 {
        *self.write_errors.lock()
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, ev: &TraceEvent) {
        let mut out = self.out.lock();
        // an unwritable sink must not bring the simulation down, but the
        // loss has to be countable — only successful writes hit `written`
        match writeln!(out, "{}", ev.to_json()) {
            Ok(()) => *self.written.lock() += 1,
            Err(_) => *self.write_errors.lock() += 1,
        }
    }

    fn flush(&self) {
        // a failed flush loses buffered lines that `record` already
        // counted as written — surface it instead of pretending the
        // trace is whole
        if self.out.lock().flush().is_err() {
            *self.write_errors.lock() += 1;
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

/// Fans one event stream out to several sinks.
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Builds a tee over `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, ev: &TraceEvent) {
        for s in &self.sinks {
            s.record(ev);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json::validate;
    use std::sync::Arc;

    fn ev(cycle: u64, msg: u64) -> TraceEvent {
        TraceEvent { cycle, kind: EventKind::Kill { msg } }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let r = RingSink::new(3);
        for i in 0..5 {
            r.record(&ev(i, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_writes_one_valid_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1, 10));
        sink.record(&ev(2, 11));
        sink.flush();
        let buf = {
            let mut g = sink.out.lock();
            g.flush().unwrap();
            g.get_ref().clone()
        };
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            assert!(validate(l).is_ok(), "{l}");
        }
        assert_eq!(sink.written(), 2);
    }

    /// Fails after `cap` bytes — models a full disk mid-trace.
    struct Failing {
        cap: usize,
        taken: usize,
    }

    impl Write for Failing {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.taken + buf.len() > self.cap {
                return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "full"));
            }
            self.taken += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_counts_only_successful_writes() {
        // BufWriter with a tiny buffer so each record hits the writer
        let sink = JsonlSink {
            out: Mutex::new(BufWriter::with_capacity(1, Failing { cap: 40, taken: 0 })),
            written: Mutex::new(0),
            write_errors: Mutex::new(0),
        };
        for i in 0..8 {
            sink.record(&ev(i, i));
        }
        assert!(sink.written() < 8, "some writes must have failed");
        assert_eq!(sink.written() + sink.write_errors(), 8, "every record is accounted for");
        assert!(sink.write_errors() > 0);
    }

    #[test]
    fn tee_duplicates() {
        let a = Arc::new(RingSink::new(10));
        let b = Arc::new(RingSink::new(10));
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        tee.record(&ev(1, 1));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
