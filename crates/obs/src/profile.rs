//! Interpreter profiling: where rule-interpretation time goes.
//!
//! [`InterpProfiler`] implements [`ftr_rules::InterpProbe`] and
//! accumulates per-rule-base, per-stage (premise / kernel / conclusion)
//! wall-clock nanoseconds. Install it on a `Machine` (or through
//! `RuleRouter::with_profiler` in `ftr-core`) and every probed decision
//! feeds the profile.

use crate::json::{self, Obj};
use ftr_rules::{InterpProbe, Stage};
use parking_lot::Mutex;
use std::fmt::Write as _;

/// Accumulated cost of one (rule base, stage) cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageCost {
    /// Number of stage executions.
    pub count: u64,
    /// Total nanoseconds.
    pub nanos: u64,
}

impl StageCost {
    /// Mean nanoseconds per execution (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.nanos as f64 / self.count as f64
        }
    }
}

/// Thread-safe per-stage interpretation profile.
#[derive(Default)]
pub struct InterpProfiler {
    // indexed [base][stage]; grows on demand so one profiler can serve
    // machines compiled from different programs
    cells: Mutex<Vec<[StageCost; 3]>>,
    /// Label distinguishing runs sharing one report (e.g. `"baseline"`
    /// vs `"optimized"`); carried into every JSON row.
    tag: Option<String>,
}

fn stage_idx(stage: Stage) -> usize {
    match stage {
        Stage::Premise => 0,
        Stage::Kernel => 1,
        Stage::Conclusion => 2,
    }
}

impl InterpProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty profiler labeled with `tag` (e.g. `"optimized"`
    /// for runs driven by a rewritten program).
    pub fn with_tag(tag: &str) -> Self {
        InterpProfiler { tag: Some(tag.to_string()), ..Self::default() }
    }

    /// The run label, if any.
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// Snapshot of the `(base, stage)` cost matrix.
    pub fn snapshot(&self) -> Vec<[StageCost; 3]> {
        self.cells.lock().clone()
    }

    /// Cost of one cell (zero if never seen).
    pub fn cost(&self, base: usize, stage: Stage) -> StageCost {
        self.cells.lock().get(base).map_or(StageCost::default(), |c| c[stage_idx(stage)])
    }

    /// Total interpretations observed (premise executions).
    pub fn interpretations(&self) -> u64 {
        self.cells.lock().iter().map(|c| c[0].count).sum()
    }

    /// Human-readable table. `names[i]` labels rule base `i`; missing
    /// names fall back to the index.
    pub fn report(&self, names: &[String]) -> String {
        let cells = self.snapshot();
        let mut s = String::from(
            "rule base                  stage         fires     mean ns    total ns\n",
        );
        for (b, row) in cells.iter().enumerate() {
            let name = names.get(b).cloned().unwrap_or_else(|| format!("base#{b}"));
            for stage in Stage::ALL {
                let c = row[stage_idx(stage)];
                if c.count == 0 {
                    continue;
                }
                let _ = writeln!(
                    s,
                    "{:<26} {:<10} {:>10} {:>11.1} {:>11}",
                    name,
                    stage.name(),
                    c.count,
                    c.mean_nanos(),
                    c.nanos
                );
            }
        }
        s
    }

    /// JSON export: `[{"base":name,"premise":{...},"kernel":{...},...}]`.
    pub fn to_json(&self, names: &[String]) -> String {
        let cells = self.snapshot();
        json::array(cells.iter().enumerate().map(|(b, row)| {
            let mut o = Obj::new();
            o.str("base", names.get(b).map_or("", |s| s.as_str()));
            o.num("index", b as u64);
            if let Some(tag) = &self.tag {
                o.str("tag", tag);
            }
            for stage in Stage::ALL {
                let c = row[stage_idx(stage)];
                let mut cell = Obj::new();
                cell.num("count", c.count).num("nanos", c.nanos).float("mean_ns", c.mean_nanos());
                o.field(stage.name(), cell.finish());
            }
            o.finish()
        }))
    }
}

impl InterpProbe for InterpProfiler {
    fn record_stage(&self, base: usize, stage: Stage, nanos: u64) {
        let mut cells = self.cells.lock();
        if cells.len() <= base {
            cells.resize(base + 1, [StageCost::default(); 3]);
        }
        let c = &mut cells[base][stage_idx(stage)];
        c.count += 1;
        c.nanos += nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn accumulates_per_base_and_stage() {
        let p = InterpProfiler::new();
        p.record_stage(0, Stage::Premise, 100);
        p.record_stage(0, Stage::Premise, 300);
        p.record_stage(2, Stage::Kernel, 50);
        assert_eq!(p.cost(0, Stage::Premise).count, 2);
        assert_eq!(p.cost(0, Stage::Premise).nanos, 400);
        assert!((p.cost(0, Stage::Premise).mean_nanos() - 200.0).abs() < 1e-9);
        assert_eq!(p.cost(2, Stage::Kernel).count, 1);
        assert_eq!(p.cost(1, Stage::Conclusion).count, 0);
        assert_eq!(p.interpretations(), 2, "only premise fires count interpretations");
    }

    #[test]
    fn report_and_json() {
        let p = InterpProfiler::new();
        p.record_stage(0, Stage::Premise, 10);
        p.record_stage(0, Stage::Kernel, 5);
        let names = vec!["route_msg".to_string()];
        let rep = p.report(&names);
        assert!(rep.contains("route_msg"));
        assert!(rep.contains("premise"));
        let j = p.to_json(&names);
        assert!(validate(&j).is_ok(), "{j}");
        assert!(j.contains("\"base\":\"route_msg\""));
    }

    #[test]
    fn drives_a_real_machine() {
        use ftr_rules::{CompileOptions, InputMap, Machine};
        use std::sync::Arc;
        let prog = ftr_rules::parse(
            "VARIABLE n IN 0 TO 7 INIT 0\n\
             ON a()\n IF n < 3 THEN n <- n + 1, !a();\nEND a;",
        )
        .unwrap();
        let mut m = Machine::new(prog, &CompileOptions::default()).unwrap();
        let profiler = Arc::new(InterpProfiler::new());
        m.set_probe(profiler.clone());
        m.fire("a", &[], &InputMap::new()).unwrap();
        // fires at n=0,1,2 (rule applies) and n=3 (gap): 4 interpretations
        assert_eq!(profiler.interpretations(), 4);
        assert_eq!(profiler.cost(0, Stage::Kernel).count, 4);
        // the gap entry skips conclusion processing
        assert_eq!(profiler.cost(0, Stage::Conclusion).count, 4);
    }
}
