//! # ftr-obs — observability layer
//!
//! Structured instrumentation for the fault-tolerant router stack: the
//! paper's central claims are *per-decision* numbers (interpretation
//! steps per routed message, decision-latency overhead, settling waves),
//! and this crate is where they become observable without hand-rolled
//! counters in every binary.
//!
//! Three pieces:
//!
//! - **Event tracing** ([`event`], [`sink`], [`ftb`]): typed,
//!   cycle-stamped [`TraceEvent`]s (injection, per-hop routing decisions
//!   with step counts, VC-allocation stalls, kills, fault injection,
//!   control-plane settling) flow into a [`TraceSink`] — a bounded
//!   [`RingSink`] for analysis in-process, a [`JsonlSink`] streaming
//!   JSON Lines to disk, or a [`BinSink`] streaming the compact FTB
//!   binary format (varint + cycle-delta encoded, ~10x smaller, read
//!   back by the streaming [`FtbReader`]). The simulator emits through
//!   closures, so with no sink attached no event is ever constructed.
//! - **Metrics** ([`metrics`]): a [`MetricsRegistry`] of named counters
//!   and log₂-bucketed histograms with JSON/CSV exporters; the bench
//!   binaries publish their results through it into `results/*.json`.
//! - **Interpreter profiling** ([`profile`]): [`InterpProfiler`]
//!   implements `ftr_rules::InterpProbe` and attributes wall-clock time to
//!   the three hardware stages (premise / kernel / conclusion) per rule
//!   base.
//!
//! JSON is emitted by the in-tree writer in [`json`] (the hermetic build
//! has no serializer crate); [`json::validate`] backs the CI smoke check
//! that exported results parse, and [`json::parse`] reads trace lines
//! back into [`json::Value`]s for [`TraceEvent::from_json`] — the
//! offline half of the `ftr-trace` diagnosis pipeline.

pub mod event;
pub mod ftb;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use event::{EventKind, RouteOutcome, TraceEvent};
pub use ftb::{BinSink, FtbHeader, FtbReader};
pub use json::Value;
pub use metrics::{Counter, HistSnapshot, Histogram, MetricsRegistry};
pub use profile::{InterpProfiler, StageCost};
pub use sink::{JsonlSink, RingSink, TeeSink, TraceSink};
