//! FTB — the compact binary trace format.
//!
//! JSONL traces are self-describing and greppable, but at campaign-fleet
//! scale (10⁴+ runs, each emitting 10⁴–10⁶ events) the ~120-byte lines
//! and per-event `format!` dominate the simulator's wall clock. FTB is
//! the dense alternative: one opcode byte per event, every integer as a
//! LEB128 varint, and cycle stamps delta-encoded against the previous
//! event (zigzag, wrapping — any cycle sequence encodes, monotone or
//! not). A typical event is 4–10 bytes, 10–20x smaller than its JSONL
//! rendering, and encoding is a few stores into a scratch buffer instead
//! of a JSON string build.
//!
//! A stream is:
//!
//! ```text
//! "FTB1" | varint schema_version | varint n_meta | n_meta × (key, value)
//! event* | END opcode (0x00)
//! ```
//!
//! where `key`/`value` are length-prefixed UTF-8 strings. The header
//! makes a trace self-describing: [`FtbHeader`] carries free-form
//! metadata pairs with conventional keys (`geometry`, `seed`, `label`)
//! so a reader can tell which run produced a file without consulting a
//! manifest. The explicit END marker makes truncation detectable: a
//! stream that hits EOF without it was cut mid-write (crash, full disk)
//! and [`FtbReader`] reports it instead of silently ending.
//!
//! [`BinSink`] is the writing half (a [`TraceSink`] with buffered writes
//! and an explicit [`BinSink::finalize`]); [`FtbReader`] is a streaming
//! iterator that decodes one event at a time through a `BufRead` and
//! never materializes the file. The encode/decode pair is proven
//! lossless over every [`EventKind`] variant in `tests/ftb_roundtrip.rs`
//! and event-for-event equal to the JSONL pipeline on full campaign
//! runs in `crates/bench/tests/ftb_diff.rs`.

use crate::event::{EventKind, RouteOutcome, TraceEvent};
use crate::sink::TraceSink;
use ftr_topo::{NodeId, PortId, VcId};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: the first four bytes of every FTB stream.
pub const FTB_MAGIC: [u8; 4] = *b"FTB1";

/// Schema version written by this encoder. Readers reject versions they
/// do not know rather than guessing at opcode layouts.
pub const FTB_SCHEMA_VERSION: u64 = 1;

/// End-of-stream opcode (a finalized trace's last byte).
const OP_END: u8 = 0x00;

// ---------------------------------------------------------------------
// varints
// ---------------------------------------------------------------------

/// Appends `v` as a LEB128 varint (7 bits per byte, high bit = more).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed delta so small magnitudes of either sign stay
/// short (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads one LEB128 varint. At most 10 bytes (ceil(64/7)); anything
/// longer is a malformed stream, not a bigger number.
fn read_varint<R: Read + ?Sized>(r: &mut R) -> Result<u64, String> {
    let mut v: u64 = 0;
    for shift in 0..10 {
        let byte = read_u8(r)?;
        v |= u64::from(byte & 0x7f) << (shift * 7);
        if byte & 0x80 == 0 {
            // the 10th byte may only carry the single remaining bit
            if shift == 9 && byte > 1 {
                return Err("varint overflows u64".into());
            }
            return Ok(v);
        }
    }
    Err("varint longer than 10 bytes".into())
}

fn read_u8<R: Read + ?Sized>(r: &mut R) -> Result<u8, String> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(|e| format!("unexpected end of FTB stream: {e}"))?;
    Ok(b[0])
}

fn read_exact<R: Read + ?Sized>(r: &mut R, n: usize) -> Result<Vec<u8>, String> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(|e| format!("unexpected end of FTB stream: {e}"))?;
    Ok(buf)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str<R: Read + ?Sized>(r: &mut R) -> Result<String, String> {
    let len = read_varint(r)?;
    if len > 1 << 20 {
        return Err(format!("header string of {len} bytes is implausible"));
    }
    String::from_utf8(read_exact(r, len as usize)?).map_err(|e| format!("bad UTF-8: {e}"))
}

// ---------------------------------------------------------------------
// header
// ---------------------------------------------------------------------

/// The self-describing stream header: schema version plus free-form
/// metadata pairs identifying the producing run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FtbHeader {
    /// Format schema version (see [`FTB_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Metadata pairs, in written order. Conventional keys: `geometry`
    /// (e.g. `mesh:6x6`), `seed`, `label`, `algorithm`.
    pub meta: Vec<(String, String)>,
}

impl FtbHeader {
    /// An empty current-schema header.
    pub fn new() -> Self {
        FtbHeader { schema: FTB_SCHEMA_VERSION, meta: Vec::new() }
    }

    /// Adds a metadata pair (builder style).
    pub fn with(mut self, key: &str, value: impl ToString) -> Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// First value recorded for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The `seed` metadata entry parsed as an integer, if present.
    pub fn seed(&self) -> Option<u64> {
        self.get("seed")?.parse().ok()
    }

    /// The `geometry` metadata entry, if present.
    pub fn geometry(&self) -> Option<&str> {
        self.get("geometry")
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&FTB_MAGIC);
        put_varint(out, self.schema);
        put_varint(out, self.meta.len() as u64);
        for (k, v) in &self.meta {
            put_str(out, k);
            put_str(out, v);
        }
    }

    fn decode(r: &mut impl Read) -> Result<Self, String> {
        let magic = read_exact(r, 4)?;
        if magic != FTB_MAGIC {
            return Err("not an FTB stream (bad magic)".into());
        }
        let schema = read_varint(r)?;
        if schema != FTB_SCHEMA_VERSION {
            return Err(format!(
                "unsupported FTB schema version {schema} (reader speaks {FTB_SCHEMA_VERSION})"
            ));
        }
        let n = read_varint(r)?;
        if n > 4096 {
            return Err(format!("{n} header entries is implausible"));
        }
        let mut meta = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let k = read_str(r)?;
            let v = read_str(r)?;
            meta.push((k, v));
        }
        Ok(FtbHeader { schema, meta })
    }
}

// ---------------------------------------------------------------------
// event codec
// ---------------------------------------------------------------------

fn opcode(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Inject { .. } => 1,
        EventKind::RouteDecision { .. } => 2,
        EventKind::VcStall { .. } => 3,
        EventKind::VcAcquire { .. } => 4,
        EventKind::VcRelease { .. } => 5,
        EventKind::RouteWait { .. } => 6,
        EventKind::Deliver { .. } => 7,
        EventKind::Kill { .. } => 8,
        EventKind::Unroutable { .. } => 9,
        EventKind::LinkFault { .. } => 10,
        EventKind::NodeFault { .. } => 11,
        EventKind::LinkRepair { .. } => 12,
        EventKind::NodeRepair { .. } => 13,
        EventKind::Retry { .. } => 14,
        EventKind::SendRejected { .. } => 15,
        EventKind::ControlSend { .. } => 16,
        EventKind::ControlSettled { .. } => 17,
        EventKind::Heartbeat { .. } => 18,
        EventKind::Suspect { .. } => 19,
        EventKind::Alarm { .. } => 20,
        EventKind::ControlDrop { .. } => 21,
    }
}

/// Encodes `ev` into `out` as `opcode, zigzag(cycle − prev_cycle),
/// fields…`. Wrapping subtraction means every (prev, cycle) pair is
/// representable, including a jump of nearly `u64::MAX` in either
/// direction.
fn encode_event(ev: &TraceEvent, prev_cycle: u64, out: &mut Vec<u8>) {
    out.push(opcode(&ev.kind));
    put_varint(out, zigzag(ev.cycle.wrapping_sub(prev_cycle) as i64));
    let node = |out: &mut Vec<u8>, n: NodeId| put_varint(out, u64::from(n.0));
    match &ev.kind {
        EventKind::Inject { msg, src, dst, len_flits } => {
            put_varint(out, *msg);
            node(out, *src);
            node(out, *dst);
            put_varint(out, u64::from(*len_flits));
        }
        EventKind::RouteDecision { node: n, msg, in_port, in_vc, outcome, steps, misrouted } => {
            node(out, *n);
            put_varint(out, *msg);
            match in_port {
                Some(p) => {
                    out.push(1);
                    out.push(p.0);
                }
                None => out.push(0),
            }
            out.push(in_vc.0);
            match outcome {
                RouteOutcome::Routed(p, v) => {
                    out.push(0);
                    out.push(p.0);
                    out.push(v.0);
                }
                RouteOutcome::Wait => out.push(1),
                RouteOutcome::Deliver => out.push(2),
                RouteOutcome::Unroutable => out.push(3),
            }
            put_varint(out, u64::from(*steps));
            out.push(u8::from(*misrouted));
        }
        EventKind::VcStall { node: n, msg, port, vc }
        | EventKind::VcAcquire { node: n, msg, port, vc }
        | EventKind::VcRelease { node: n, msg, port, vc } => {
            node(out, *n);
            put_varint(out, *msg);
            out.push(port.0);
            out.push(vc.0);
        }
        EventKind::RouteWait { node: n, msg, wants } => {
            node(out, *n);
            put_varint(out, *msg);
            put_varint(out, wants.len() as u64);
            for (p, v) in wants {
                out.push(p.0);
                out.push(v.0);
            }
        }
        EventKind::Deliver { node: n, msg } => {
            node(out, *n);
            put_varint(out, *msg);
        }
        EventKind::Kill { msg } | EventKind::Unroutable { msg } => put_varint(out, *msg),
        EventKind::LinkFault { node: n, port } | EventKind::LinkRepair { node: n, port } => {
            node(out, *n);
            out.push(port.0);
        }
        EventKind::NodeFault { node: n } | EventKind::NodeRepair { node: n } => node(out, *n),
        EventKind::Retry { msg, attempt } => {
            put_varint(out, *msg);
            put_varint(out, u64::from(*attempt));
        }
        EventKind::SendRejected { src, dst } => {
            node(out, *src);
            node(out, *dst);
        }
        EventKind::ControlSend { from, to } => {
            node(out, *from);
            node(out, *to);
        }
        EventKind::ControlSettled { cycles } => put_varint(out, *cycles),
        EventKind::Heartbeat { node: n, port, pong } => {
            node(out, *n);
            out.push(port.0);
            out.push(u8::from(*pong));
        }
        EventKind::Suspect { node: n, port, misses } => {
            node(out, *n);
            out.push(port.0);
            put_varint(out, u64::from(*misses));
        }
        EventKind::Alarm { node: n, port } | EventKind::ControlDrop { node: n, port } => {
            node(out, *n);
            out.push(port.0);
        }
    }
}

/// Decodes the event that follows an already-consumed opcode byte.
fn decode_event(op: u8, prev_cycle: u64, r: &mut impl Read) -> Result<TraceEvent, String> {
    let cycle = prev_cycle.wrapping_add(unzigzag(read_varint(r)?) as u64);
    let node = |r: &mut dyn Read| -> Result<NodeId, String> {
        let v = read_varint(r)?;
        Ok(NodeId(u32::try_from(v).map_err(|_| format!("node id {v} out of range"))?))
    };
    let port = |r: &mut dyn Read| -> Result<PortId, String> { Ok(PortId(read_u8(r)?)) };
    let vc = |r: &mut dyn Read| -> Result<VcId, String> { Ok(VcId(read_u8(r)?)) };
    let small = |v: u64| -> Result<u32, String> {
        u32::try_from(v).map_err(|_| format!("field {v} out of u32 range"))
    };
    let kind = match op {
        1 => EventKind::Inject {
            msg: read_varint(r)?,
            src: node(r)?,
            dst: node(r)?,
            len_flits: small(read_varint(r)?)?,
        },
        2 => {
            let n = node(r)?;
            let msg = read_varint(r)?;
            let in_port = match read_u8(r)? {
                0 => None,
                1 => Some(port(r)?),
                other => return Err(format!("bad in_port presence byte {other}")),
            };
            let in_vc = vc(r)?;
            let outcome = match read_u8(r)? {
                0 => RouteOutcome::Routed(port(r)?, vc(r)?),
                1 => RouteOutcome::Wait,
                2 => RouteOutcome::Deliver,
                3 => RouteOutcome::Unroutable,
                other => return Err(format!("bad route outcome byte {other}")),
            };
            let steps = small(read_varint(r)?)?;
            let misrouted = match read_u8(r)? {
                0 => false,
                1 => true,
                other => return Err(format!("bad misrouted byte {other}")),
            };
            EventKind::RouteDecision { node: n, msg, in_port, in_vc, outcome, steps, misrouted }
        }
        3..=5 => {
            let n = node(r)?;
            let msg = read_varint(r)?;
            let p = port(r)?;
            let v = vc(r)?;
            match op {
                3 => EventKind::VcStall { node: n, msg, port: p, vc: v },
                4 => EventKind::VcAcquire { node: n, msg, port: p, vc: v },
                _ => EventKind::VcRelease { node: n, msg, port: p, vc: v },
            }
        }
        6 => {
            let n = node(r)?;
            let msg = read_varint(r)?;
            let len = read_varint(r)?;
            if len > 1 << 16 {
                return Err(format!("wants list of {len} entries is implausible"));
            }
            let mut wants = Vec::with_capacity(len as usize);
            for _ in 0..len {
                let p = port(r)?;
                let v = vc(r)?;
                wants.push((p, v));
            }
            EventKind::RouteWait { node: n, msg, wants }
        }
        7 => EventKind::Deliver { node: node(r)?, msg: read_varint(r)? },
        8 => EventKind::Kill { msg: read_varint(r)? },
        9 => EventKind::Unroutable { msg: read_varint(r)? },
        10 => EventKind::LinkFault { node: node(r)?, port: port(r)? },
        11 => EventKind::NodeFault { node: node(r)? },
        12 => EventKind::LinkRepair { node: node(r)?, port: port(r)? },
        13 => EventKind::NodeRepair { node: node(r)? },
        14 => EventKind::Retry { msg: read_varint(r)?, attempt: small(read_varint(r)?)? },
        15 => EventKind::SendRejected { src: node(r)?, dst: node(r)? },
        16 => EventKind::ControlSend { from: node(r)?, to: node(r)? },
        17 => EventKind::ControlSettled { cycles: read_varint(r)? },
        18 => {
            let n = node(r)?;
            let p = port(r)?;
            let pong = match read_u8(r)? {
                0 => false,
                1 => true,
                other => return Err(format!("bad pong byte {other}")),
            };
            EventKind::Heartbeat { node: n, port: p, pong }
        }
        19 => {
            EventKind::Suspect { node: node(r)?, port: port(r)?, misses: small(read_varint(r)?)? }
        }
        20 => EventKind::Alarm { node: node(r)?, port: port(r)? },
        21 => EventKind::ControlDrop { node: node(r)?, port: port(r)? },
        other => return Err(format!("unknown FTB opcode {other:#04x}")),
    };
    Ok(TraceEvent { cycle, kind })
}

// ---------------------------------------------------------------------
// sink
// ---------------------------------------------------------------------

struct BinInner<W: Write> {
    out: BufWriter<W>,
    scratch: Vec<u8>,
    last_cycle: u64,
    written: u64,
    write_errors: u64,
    bytes: u64,
    finalized: bool,
}

/// A [`TraceSink`] streaming events in FTB through a buffered writer.
///
/// The header is written eagerly on construction. Call
/// [`BinSink::finalize`] when the run is over — it appends the END
/// marker and flushes, turning the file into a complete, truncation-
/// detectable trace. Dropping an unfinalized sink finalizes it best-
/// effort; like [`crate::JsonlSink`], write failures never panic the
/// simulation but are counted in [`BinSink::write_errors`], and a trace
/// with a non-zero count is incomplete and must not be treated as
/// ground truth.
pub struct BinSink<W: Write + Send> {
    inner: Mutex<BinInner<W>>,
}

impl BinSink<std::fs::File> {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>, header: FtbHeader) -> std::io::Result<Self> {
        BinSink::new(std::fs::File::create(path)?, header)
    }
}

impl<W: Write + Send> BinSink<W> {
    /// Wraps an arbitrary writer; writes the stream header immediately
    /// (a header that cannot be written is a hard error — nothing useful
    /// can follow it).
    pub fn new(w: W, header: FtbHeader) -> std::io::Result<Self> {
        let mut head = Vec::with_capacity(64);
        header.encode(&mut head);
        let mut out = BufWriter::new(w);
        out.write_all(&head)?;
        Ok(BinSink {
            inner: Mutex::new(BinInner {
                out,
                scratch: Vec::with_capacity(64),
                last_cycle: 0,
                written: 0,
                write_errors: 0,
                bytes: head.len() as u64,
                finalized: false,
            }),
        })
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.inner.lock().written
    }

    /// Events (or flushes) lost to write failures — a trace with
    /// `write_errors() > 0` is incomplete.
    pub fn write_errors(&self) -> u64 {
        self.inner.lock().write_errors
    }

    /// Total bytes handed to the writer, header and END marker included.
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Writes the END marker and flushes. Idempotent; events recorded
    /// after finalization are counted as write errors rather than
    /// corrupting the terminated stream.
    pub fn finalize(&self) -> std::io::Result<()> {
        let mut g = self.inner.lock();
        if g.finalized {
            return Ok(());
        }
        g.finalized = true;
        let res = g.out.write_all(&[OP_END]).and_then(|()| g.out.flush());
        match res {
            Ok(()) => {
                g.bytes += 1;
                Ok(())
            }
            Err(e) => {
                g.write_errors += 1;
                Err(e)
            }
        }
    }
}

impl<W: Write + Send> TraceSink for BinSink<W> {
    fn record(&self, ev: &TraceEvent) {
        let g = &mut *self.inner.lock();
        if g.finalized {
            g.write_errors += 1;
            return;
        }
        g.scratch.clear();
        encode_event(ev, g.last_cycle, &mut g.scratch);
        match g.out.write_all(&g.scratch) {
            Ok(()) => {
                g.written += 1;
                g.bytes += g.scratch.len() as u64;
                g.last_cycle = ev.cycle;
            }
            Err(_) => g.write_errors += 1,
        }
    }

    fn flush(&self) {
        let g = &mut *self.inner.lock();
        if g.out.flush().is_err() {
            g.write_errors += 1;
        }
    }
}

impl<W: Write + Send> Drop for BinSink<W> {
    fn drop(&mut self) {
        let _ = self.finalize();
    }
}

// ---------------------------------------------------------------------
// reader
// ---------------------------------------------------------------------

/// Streaming FTB decoder: an iterator of events that reads one event at
/// a time and never materializes the stream (O(1) memory in the trace
/// length; the only allocation proportional to anything is a
/// `RouteWait` wants list).
///
/// The iterator yields `Err` once and then ends on a malformed or
/// truncated stream — a trace without the END marker was cut mid-write
/// and is reported, not silently accepted.
pub struct FtbReader<R: BufRead> {
    r: R,
    header: FtbHeader,
    last_cycle: u64,
    /// Events decoded so far.
    decoded: u64,
    done: bool,
    /// Set when the END marker was consumed (clean end of stream).
    finalized: bool,
}

impl FtbReader<BufReader<std::fs::File>> {
    /// Opens `path` and parses the header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, String> {
        let f = std::fs::File::open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.as_ref().display()))?;
        FtbReader::from_reader(BufReader::new(f))
    }
}

impl<R: BufRead> FtbReader<R> {
    /// Wraps a buffered reader and parses the header.
    pub fn from_reader(mut r: R) -> Result<Self, String> {
        let header = FtbHeader::decode(&mut r)?;
        Ok(FtbReader { r, header, last_cycle: 0, decoded: 0, done: false, finalized: false })
    }

    /// The stream header.
    pub fn header(&self) -> &FtbHeader {
        &self.header
    }

    /// Events decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// True once the END marker was consumed — the stream is complete.
    pub fn finalized(&self) -> bool {
        self.finalized
    }
}

impl<R: BufRead> Iterator for FtbReader<R> {
    type Item = Result<TraceEvent, String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // opcode: the one place EOF is meaningful (but only the END
        // marker makes it a *clean* end)
        let mut op = [0u8; 1];
        match self.r.read_exact(&mut op) {
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                self.done = true;
                return Some(Err(format!(
                    "FTB stream truncated after {} events (missing END marker)",
                    self.decoded
                )));
            }
            Err(e) => {
                self.done = true;
                return Some(Err(format!("read error after {} events: {e}", self.decoded)));
            }
            Ok(()) => {}
        }
        if op[0] == OP_END {
            self.done = true;
            self.finalized = true;
            return None;
        }
        match decode_event(op[0], self.last_cycle, &mut self.r) {
            Ok(ev) => {
                self.last_cycle = ev.cycle;
                self.decoded += 1;
                Some(Ok(ev))
            }
            Err(e) => {
                self.done = true;
                Some(Err(format!("malformed event {}: {e}", self.decoded + 1)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            ev(0, EventKind::Inject { msg: 1, src: NodeId(0), dst: NodeId(35), len_flits: 16 }),
            ev(
                3,
                EventKind::RouteDecision {
                    node: NodeId(0),
                    msg: 1,
                    in_port: None,
                    in_vc: VcId(0),
                    outcome: RouteOutcome::Routed(PortId(1), VcId(1)),
                    steps: 4,
                    misrouted: false,
                },
            ),
            ev(3, EventKind::VcAcquire { node: NodeId(0), msg: 1, port: PortId(1), vc: VcId(1) }),
            ev(
                9,
                EventKind::RouteWait {
                    node: NodeId(7),
                    msg: 1,
                    wants: vec![(PortId(0), VcId(0)), (PortId(3), VcId(1))],
                },
            ),
            ev(42, EventKind::Deliver { node: NodeId(35), msg: 1 }),
        ]
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let got = read_varint(&mut &buf[..]).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn stream_round_trips_and_finalizes() {
        let header = FtbHeader::new().with("geometry", "mesh:6x6").with("seed", 7u64);
        let sink = BinSink::new(Vec::new(), header.clone()).unwrap();
        let events = sample_events();
        for e in &events {
            sink.record(e);
        }
        sink.finalize().unwrap();
        assert_eq!(sink.written(), events.len() as u64);
        assert_eq!(sink.write_errors(), 0);
        let bytes = {
            let g = sink.inner.lock();
            g.out.get_ref().clone()
        };
        assert_eq!(bytes.len() as u64, sink.bytes_written());

        let mut reader = FtbReader::from_reader(&bytes[..]).unwrap();
        assert_eq!(reader.header().geometry(), Some("mesh:6x6"));
        assert_eq!(reader.header().seed(), Some(7));
        let back: Vec<TraceEvent> = (&mut reader).map(|r| r.unwrap()).collect();
        assert_eq!(back, events);
        assert!(reader.finalized());
    }

    #[test]
    fn truncated_stream_is_reported_not_swallowed() {
        let sink = BinSink::new(Vec::new(), FtbHeader::new()).unwrap();
        for e in &sample_events() {
            sink.record(e);
        }
        sink.flush();
        // no finalize: steal the bytes and also chop one off the tail
        let bytes = sink.inner.lock().out.get_ref().clone();
        for cut in [bytes.len(), bytes.len() - 1] {
            let reader = FtbReader::from_reader(&bytes[..cut]).unwrap();
            let items: Vec<_> = reader.collect();
            let last = items.last().expect("yields something");
            assert!(last.is_err(), "truncation must surface an error");
        }
    }

    #[test]
    fn record_after_finalize_is_a_counted_error() {
        let sink = BinSink::new(Vec::new(), FtbHeader::new()).unwrap();
        sink.finalize().unwrap();
        sink.record(&ev(1, EventKind::Kill { msg: 1 }));
        assert_eq!(sink.written(), 0);
        assert_eq!(sink.write_errors(), 1);
    }

    #[test]
    fn wrapping_cycle_deltas_encode_any_sequence() {
        let cycles = [0u64, u64::MAX, 0, 1, u64::MAX / 2, u64::MAX, 5];
        let sink = BinSink::new(Vec::new(), FtbHeader::new()).unwrap();
        for &c in &cycles {
            sink.record(&ev(c, EventKind::Kill { msg: 9 }));
        }
        sink.finalize().unwrap();
        let bytes = sink.inner.lock().out.get_ref().clone();
        let got: Vec<u64> =
            FtbReader::from_reader(&bytes[..]).unwrap().map(|r| r.unwrap().cycle).collect();
        assert_eq!(got, cycles);
    }

    #[test]
    fn empty_trace_round_trips() {
        let sink = BinSink::new(Vec::new(), FtbHeader::new().with("label", "empty")).unwrap();
        sink.finalize().unwrap();
        let bytes = sink.inner.lock().out.get_ref().clone();
        let mut reader = FtbReader::from_reader(&bytes[..]).unwrap();
        assert!(reader.next().is_none());
        assert!(reader.finalized());
        assert_eq!(reader.decoded(), 0);
    }

    #[test]
    fn rejects_bad_magic_and_future_schema() {
        assert!(FtbReader::from_reader(&b"NOPE"[..]).is_err());
        let mut bytes = Vec::new();
        FtbHeader { schema: FTB_SCHEMA_VERSION + 1, meta: vec![] }.encode(&mut bytes);
        let err = FtbReader::from_reader(&bytes[..]).err().expect("future schema rejected");
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn failed_writes_are_counted() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("full"))
            }
        }
        // header fits in the BufWriter, so construction succeeds; the
        // failure surfaces when event bytes force a flush
        let sink = BinSink {
            inner: Mutex::new(BinInner {
                out: BufWriter::with_capacity(1, Failing),
                scratch: Vec::new(),
                last_cycle: 0,
                written: 0,
                write_errors: 0,
                bytes: 0,
                finalized: false,
            }),
        };
        for i in 0..4 {
            sink.record(&ev(i, EventKind::Kill { msg: i }));
        }
        assert_eq!(sink.written() + sink.write_errors(), 4);
        assert!(sink.write_errors() > 0);
        assert!(sink.finalize().is_err());
    }
}
