//! Minimal JSON emission.
//!
//! The workspace builds hermetically (the `serde` dependency is a
//! derive-only shim with no serializer), so the observability layer
//! carries its own small writer. It covers exactly what the exporters
//! need — objects, arrays, strings, integers and finite floats — and
//! always produces valid UTF-8 JSON.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Incremental writer for one JSON object or array.
///
/// ```
/// let mut o = ftr_obs::json::Obj::new();
/// o.field("name", ftr_obs::json::string("steps"));
/// o.num("count", 3);
/// assert_eq!(o.finish(), r#"{"name":"steps","count":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj { buf: String::from("{"), any: false }
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn field(&mut self, key: &str, json_value: impl AsRef<str>) -> &mut Self {
        self.sep();
        self.buf.push_str(&string(key));
        self.buf.push(':');
        self.buf.push_str(json_value.as_ref());
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.field(key, string(v))
    }

    /// Adds an integer field.
    pub fn num(&mut self, key: &str, v: impl Into<i128>) -> &mut Self {
        self.field(key, v.into().to_string())
    }

    /// Adds a float field.
    pub fn float(&mut self, key: &str, v: f64) -> &mut Self {
        self.field(key, float(v))
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.field(key, if v { "true" } else { "false" })
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Joins already-rendered JSON values into an array.
pub fn array<I: IntoIterator<Item = S>, S: AsRef<str>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(it.as_ref());
    }
    buf.push(']');
    buf
}

/// Structural validity check used by tests and the CI smoke job: parses
/// the value grammar (objects, arrays, strings, numbers, booleans, null)
/// and returns the number of values seen, or an error description.
pub fn validate(s: &str) -> Result<usize, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0, seen: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(p.seen)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    seen: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.seen += 1;
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    /// RFC 8259 number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
    /// Delegating to `f64::parse` would also accept `.5`, `01`, `1.` and
    /// `+3`, which JSON forbids.
    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // int part: a lone 0, or a nonzero digit followed by digits
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(format!("bad number: missing integer digits at byte {start}")),
        }
        if self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(format!("bad number: leading zero at byte {start}"));
        }
        // optional fraction: '.' requires at least one digit
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(format!("bad number: empty fraction at byte {start}"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        // optional exponent: e/E, optional sign, at least one digit
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(format!("bad number: empty exponent at byte {start}"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    self.i += 1; // escape consumes the next byte (\uXXXX digits parse as chars)
                }
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_builder() {
        let mut o = Obj::new();
        o.str("name", "x").num("n", 3).float("f", 0.5).bool("ok", true);
        let s = o.finish();
        assert_eq!(s, r#"{"name":"x","n":3,"f":0.5,"ok":true}"#);
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn arrays_and_nesting_validate() {
        let inner = {
            let mut o = Obj::new();
            o.num("a", 1);
            o.finish()
        };
        let s = array([inner.as_str(), "2", "null", r#""s""#]);
        assert_eq!(s, r#"[{"a":1},2,null,"s"]"#);
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate(r#"{"a":}"#).is_err());
        assert!(validate("[1,2,]").is_err());
        assert!(validate("123 45").is_err());
        assert!(validate(r#"{"a":1}"#).is_ok());
    }

    #[test]
    fn validator_enforces_rfc8259_numbers() {
        // f64::parse accepts all of these; the JSON grammar does not
        for bad in [".5", "01", "1.", "+3", "1e", "1e+", "-", "-.5", "00", "0x1", "1.e3"] {
            assert!(validate(bad).is_err(), "`{bad}` must be rejected");
        }
        for good in ["0", "-0", "5", "-0.5", "0.25", "1e3", "1E-2", "-12.5e+10", "120"] {
            assert!(validate(good).is_ok(), "`{good}` must be accepted");
        }
        assert!(validate(r#"[0.5,1e9,{"a":-3.25E-4}]"#).is_ok());
        assert!(validate(r#"{"a":.5}"#).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(2.5), "2.5");
    }
}
