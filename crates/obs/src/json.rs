//! Minimal JSON emission and parsing.
//!
//! The workspace builds hermetically (the `serde` dependency is a
//! derive-only shim with no serializer), so the observability layer
//! carries its own small writer and reader. The writer covers exactly
//! what the exporters need — objects, arrays, strings, integers and
//! finite floats — and always produces valid UTF-8 JSON. The reader
//! ([`parse`] → [`Value`], and the counting [`validate`]) implements the
//! strict RFC 8259 grammar and backs both the CI smoke checks and the
//! `ftr-trace` JSONL loader.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Incremental writer for one JSON object or array.
///
/// ```
/// let mut o = ftr_obs::json::Obj::new();
/// o.field("name", ftr_obs::json::string("steps"));
/// o.num("count", 3);
/// assert_eq!(o.finish(), r#"{"name":"steps","count":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj { buf: String::from("{"), any: false }
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn field(&mut self, key: &str, json_value: impl AsRef<str>) -> &mut Self {
        self.sep();
        self.buf.push_str(&string(key));
        self.buf.push(':');
        self.buf.push_str(json_value.as_ref());
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.field(key, string(v))
    }

    /// Adds an integer field.
    pub fn num(&mut self, key: &str, v: impl Into<i128>) -> &mut Self {
        self.field(key, v.into().to_string())
    }

    /// Adds a float field.
    pub fn float(&mut self, key: &str, v: f64) -> &mut Self {
        self.field(key, float(v))
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.field(key, if v { "true" } else { "false" })
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Joins already-rendered JSON values into an array.
pub fn array<I: IntoIterator<Item = S>, S: AsRef<str>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(it.as_ref());
    }
    buf.push(']');
    buf
}

/// A parsed JSON value.
///
/// Produced by [`parse`]; integers that fit `i128` without a fraction or
/// exponent stay exact ([`Value::Int`]), everything else numeric becomes
/// [`Value::Float`]. Object fields keep their textual order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer without fraction/exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object (`None` for other value kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses one JSON document into a [`Value`] under the same strict
/// RFC 8259 grammar [`validate`] enforces.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0, seen: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

/// Structural validity check used by tests and the CI smoke job: parses
/// the value grammar (objects, arrays, strings, numbers, booleans, null)
/// and returns the number of values seen, or an error description.
pub fn validate(s: &str) -> Result<usize, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0, seen: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(p.seen)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    seen: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.seen += 1;
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    /// RFC 8259 number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
    /// Delegating to `f64::parse` would also accept `.5`, `01`, `1.` and
    /// `+3`, which JSON forbids.
    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // int part: a lone 0, or a nonzero digit followed by digits
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(format!("bad number: missing integer digits at byte {start}")),
        }
        if self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(format!("bad number: leading zero at byte {start}"));
        }
        // optional fraction: '.' requires at least one digit
        if self.peek() == Some(b'.') {
            integral = false;
            self.i += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(format!("bad number: empty fraction at byte {start}"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        // optional exponent: e/E, optional sign, at least one digit
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(format!("bad number: empty exponent at byte {start}"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        // decode bytes up to the closing quote; multi-byte UTF-8 sequences
        // pass through verbatim (the input is a &str, so they are valid)
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| String::from("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // high surrogate: require a low-surrogate pair
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.i += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or(format!("invalid \\u escape {cp:04x}"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!(
                                "bad escape \\{} at byte {}",
                                other as char, self.i
                            ))
                        }
                    }
                }
                _ => {
                    // re-take the full UTF-8 character starting at c
                    let s =
                        std::str::from_utf8(&self.b[self.i - 1..]).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8() - 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.i + 4;
        if end > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.b[self.i..end]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
        self.i = end;
        Ok(cp)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_builder() {
        let mut o = Obj::new();
        o.str("name", "x").num("n", 3).float("f", 0.5).bool("ok", true);
        let s = o.finish();
        assert_eq!(s, r#"{"name":"x","n":3,"f":0.5,"ok":true}"#);
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn arrays_and_nesting_validate() {
        let inner = {
            let mut o = Obj::new();
            o.num("a", 1);
            o.finish()
        };
        let s = array([inner.as_str(), "2", "null", r#""s""#]);
        assert_eq!(s, r#"[{"a":1},2,null,"s"]"#);
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate(r#"{"a":}"#).is_err());
        assert!(validate("[1,2,]").is_err());
        assert!(validate("123 45").is_err());
        assert!(validate(r#"{"a":1}"#).is_ok());
    }

    #[test]
    fn validator_enforces_rfc8259_numbers() {
        // f64::parse accepts all of these; the JSON grammar does not
        for bad in [".5", "01", "1.", "+3", "1e", "1e+", "-", "-.5", "00", "0x1", "1.e3"] {
            assert!(validate(bad).is_err(), "`{bad}` must be rejected");
        }
        for good in ["0", "-0", "5", "-0.5", "0.25", "1e3", "1E-2", "-12.5e+10", "120"] {
            assert!(validate(good).is_ok(), "`{good}` must be accepted");
        }
        assert!(validate(r#"[0.5,1e9,{"a":-3.25E-4}]"#).is_ok());
        assert!(validate(r#"{"a":.5}"#).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(2.5), "2.5");
    }

    #[test]
    fn parse_produces_typed_values() {
        let v = parse(r#"{"a":1,"b":-2.5,"c":"x","d":[true,null],"e":{"f":18446744073709551615}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("d").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert!(arr[1].is_null());
        // u64::MAX has no i64 representation but stays exact as an integer
        assert_eq!(v.get("e").unwrap().get("f").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("e").unwrap().get("f").unwrap().as_i64(), None);
    }

    #[test]
    fn parse_resolves_escapes() {
        assert_eq!(parse(r#""a\"b\\c\n\tA""#).unwrap(), Value::Str("a\"b\\c\n\tA".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("😀".into()));
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate must be rejected");
        assert!(parse(r#""\q""#).is_err(), "unknown escape must be rejected");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let s = string("mixed \u{1} text\nwith 😀 and \"quotes\"");
        assert_eq!(parse(&s).unwrap().as_str(), Some("mixed \u{1} text\nwith 😀 and \"quotes\""));
    }

    #[test]
    fn parse_and_validate_agree_on_errors() {
        for bad in ["{", r#"{"a":}"#, "[1,2,]", "123 45", ".5", "01"] {
            assert!(parse(bad).is_err(), "`{bad}`");
            assert!(validate(bad).is_err(), "`{bad}`");
        }
    }
}
