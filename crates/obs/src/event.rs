//! Typed, cycle-stamped trace events.
//!
//! Every event the simulator, router and control plane can emit is a
//! variant of [`EventKind`]; a [`TraceEvent`] stamps it with the cycle it
//! happened on. Message ids are plain `u64` (the simulator's `MessageId`
//! newtype lives above this crate in the dependency graph).

use crate::json::Obj;
use ftr_topo::{NodeId, PortId, VcId};

/// What a routing decision concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The message was assigned this output port and virtual channel.
    Routed(PortId, VcId),
    /// The algorithm asked the message to wait.
    Wait,
    /// Deliver locally (destination reached, or algorithm verdict).
    Deliver,
    /// No healthy route exists (condition-3 violation).
    Unroutable,
}

impl RouteOutcome {
    fn name(self) -> &'static str {
        match self {
            RouteOutcome::Routed(..) => "routed",
            RouteOutcome::Wait => "wait",
            RouteOutcome::Deliver => "deliver",
            RouteOutcome::Unroutable => "unroutable",
        }
    }
}

/// One observable occurrence inside the simulated network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A message entered the network at its source.
    Inject {
        /// Message id.
        msg: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Message length in flits.
        len_flits: u32,
    },
    /// A routing decision completed for the head flit at `node` (emitted
    /// once per message per node, when the decision's step count is
    /// charged — the paper's per-decision quantity).
    RouteDecision {
        /// Deciding node.
        node: NodeId,
        /// Message id.
        msg: u64,
        /// Input port (`None` = injection queue).
        in_port: Option<PortId>,
        /// Input virtual channel.
        in_vc: VcId,
        /// The verdict.
        outcome: RouteOutcome,
        /// Consecutive rule interpretations the decision took (§5).
        steps: u32,
        /// The message is travelling a non-minimal path due to faults.
        misrouted: bool,
    },
    /// A routed message could not take its granted output channel this
    /// cycle (VC busy or no credit) — allocation stall.
    VcStall {
        /// Stalling node.
        node: NodeId,
        /// Message id.
        msg: u64,
        /// Output port the verdict chose.
        port: PortId,
        /// Output virtual channel the verdict chose.
        vc: VcId,
    },
    /// Tail flit ejected: the message is fully delivered.
    Deliver {
        /// Destination node.
        node: NodeId,
        /// Message id.
        msg: u64,
    },
    /// The message was ripped by a dynamic fault and removed network-wide.
    Kill {
        /// Message id.
        msg: u64,
    },
    /// The algorithm declared the message unroutable; it was removed.
    Unroutable {
        /// Message id.
        msg: u64,
    },
    /// The link leaving `node` through `port` failed.
    LinkFault {
        /// Link endpoint.
        node: NodeId,
        /// Failed port.
        port: PortId,
    },
    /// `node` failed.
    NodeFault {
        /// The failed node.
        node: NodeId,
    },
    /// The link leaving `node` through `port` was repaired and re-armed.
    LinkRepair {
        /// Link endpoint.
        node: NodeId,
        /// Repaired port.
        port: PortId,
    },
    /// `node` was repaired and rejoined the network.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// A killed or unroutable message was re-injected at its source by the
    /// retry policy.
    Retry {
        /// Message id (stable across attempts).
        msg: u64,
        /// Attempt number of the re-injection (first retry = 2).
        attempt: u32,
    },
    /// An injection was rejected because an endpoint was faulty at send
    /// time (a scheduled send racing a dynamic fault).
    SendRejected {
        /// Intended source.
        src: NodeId,
        /// Intended destination.
        dst: NodeId,
    },
    /// A control-plane message was sent over a link (fault/state
    /// propagation traffic).
    ControlSend {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The control plane went quiet after fault injection (E10 settling
    /// wave complete).
    ControlSettled {
        /// Cycles from the settle request until quiescence.
        cycles: u64,
    },
}

impl EventKind {
    /// Stable lowercase tag for exporters and filters.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Inject { .. } => "inject",
            EventKind::RouteDecision { .. } => "route_decision",
            EventKind::VcStall { .. } => "vc_stall",
            EventKind::Deliver { .. } => "deliver",
            EventKind::Kill { .. } => "kill",
            EventKind::Unroutable { .. } => "unroutable",
            EventKind::LinkFault { .. } => "link_fault",
            EventKind::NodeFault { .. } => "node_fault",
            EventKind::LinkRepair { .. } => "link_repair",
            EventKind::NodeRepair { .. } => "node_repair",
            EventKind::Retry { .. } => "retry",
            EventKind::SendRejected { .. } => "send_rejected",
            EventKind::ControlSend { .. } => "control_send",
            EventKind::ControlSettled { .. } => "control_settled",
        }
    }
}

/// A cycle-stamped event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle the event occurred on.
    pub cycle: u64,
    /// The event.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Renders the event as one JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.num("cycle", self.cycle);
        o.str("event", self.kind.tag());
        match &self.kind {
            EventKind::Inject { msg, src, dst, len_flits } => {
                o.num("msg", *msg);
                o.num("src", src.0);
                o.num("dst", dst.0);
                o.num("len_flits", *len_flits);
            }
            EventKind::RouteDecision { node, msg, in_port, in_vc, outcome, steps, misrouted } => {
                o.num("node", node.0);
                o.num("msg", *msg);
                match in_port {
                    Some(p) => o.num("in_port", p.0),
                    None => o.field("in_port", "null"),
                };
                o.num("in_vc", in_vc.0);
                o.str("outcome", outcome.name());
                if let RouteOutcome::Routed(p, v) = outcome {
                    o.num("out_port", p.0);
                    o.num("out_vc", v.0);
                }
                o.num("steps", *steps);
                o.bool("misrouted", *misrouted);
            }
            EventKind::VcStall { node, msg, port, vc } => {
                o.num("node", node.0);
                o.num("msg", *msg);
                o.num("port", port.0);
                o.num("vc", vc.0);
            }
            EventKind::Deliver { node, msg } => {
                o.num("node", node.0);
                o.num("msg", *msg);
            }
            EventKind::Kill { msg } | EventKind::Unroutable { msg } => {
                o.num("msg", *msg);
            }
            EventKind::LinkFault { node, port } | EventKind::LinkRepair { node, port } => {
                o.num("node", node.0);
                o.num("port", port.0);
            }
            EventKind::NodeFault { node } | EventKind::NodeRepair { node } => {
                o.num("node", node.0);
            }
            EventKind::Retry { msg, attempt } => {
                o.num("msg", *msg);
                o.num("attempt", *attempt);
            }
            EventKind::SendRejected { src, dst } => {
                o.num("src", src.0);
                o.num("dst", dst.0);
            }
            EventKind::ControlSend { from, to } => {
                o.num("from", from.0);
                o.num("to", to.0);
            }
            EventKind::ControlSettled { cycles } => {
                o.num("cycles", *cycles);
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn every_variant_renders_valid_json() {
        let kinds = [
            EventKind::Inject { msg: 1, src: NodeId(0), dst: NodeId(5), len_flits: 4 },
            EventKind::RouteDecision {
                node: NodeId(2),
                msg: 1,
                in_port: Some(PortId(3)),
                in_vc: VcId(0),
                outcome: RouteOutcome::Routed(PortId(1), VcId(1)),
                steps: 3,
                misrouted: true,
            },
            EventKind::RouteDecision {
                node: NodeId(2),
                msg: 1,
                in_port: None,
                in_vc: VcId(0),
                outcome: RouteOutcome::Wait,
                steps: 1,
                misrouted: false,
            },
            EventKind::VcStall { node: NodeId(2), msg: 1, port: PortId(0), vc: VcId(0) },
            EventKind::Deliver { node: NodeId(5), msg: 1 },
            EventKind::Kill { msg: 1 },
            EventKind::Unroutable { msg: 1 },
            EventKind::LinkFault { node: NodeId(1), port: PortId(2) },
            EventKind::NodeFault { node: NodeId(1) },
            EventKind::LinkRepair { node: NodeId(1), port: PortId(2) },
            EventKind::NodeRepair { node: NodeId(1) },
            EventKind::Retry { msg: 1, attempt: 2 },
            EventKind::SendRejected { src: NodeId(3), dst: NodeId(4) },
            EventKind::ControlSend { from: NodeId(1), to: NodeId(2) },
            EventKind::ControlSettled { cycles: 9 },
        ];
        for kind in kinds {
            let ev = TraceEvent { cycle: 7, kind };
            let j = ev.to_json();
            assert!(validate(&j).is_ok(), "invalid json: {j}");
            assert!(j.contains(&format!("\"event\":\"{}\"", ev.kind.tag())), "{j}");
        }
    }
}
