//! Typed, cycle-stamped trace events.
//!
//! Every event the simulator, router and control plane can emit is a
//! variant of [`EventKind`]; a [`TraceEvent`] stamps it with the cycle it
//! happened on. Message ids are plain `u64` (the simulator's `MessageId`
//! newtype lives above this crate in the dependency graph).

use crate::json::{self, Obj, Value};
use ftr_topo::{NodeId, PortId, VcId};

/// What a routing decision concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The message was assigned this output port and virtual channel.
    Routed(PortId, VcId),
    /// The algorithm asked the message to wait.
    Wait,
    /// Deliver locally (destination reached, or algorithm verdict).
    Deliver,
    /// No healthy route exists (condition-3 violation).
    Unroutable,
}

impl RouteOutcome {
    fn name(self) -> &'static str {
        match self {
            RouteOutcome::Routed(..) => "routed",
            RouteOutcome::Wait => "wait",
            RouteOutcome::Deliver => "deliver",
            RouteOutcome::Unroutable => "unroutable",
        }
    }
}

/// One observable occurrence inside the simulated network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A message entered the network at its source.
    Inject {
        /// Message id.
        msg: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Message length in flits.
        len_flits: u32,
    },
    /// A routing decision completed for the head flit at `node` (emitted
    /// once per message per node, when the decision's step count is
    /// charged — the paper's per-decision quantity).
    RouteDecision {
        /// Deciding node.
        node: NodeId,
        /// Message id.
        msg: u64,
        /// Input port (`None` = injection queue).
        in_port: Option<PortId>,
        /// Input virtual channel.
        in_vc: VcId,
        /// The verdict.
        outcome: RouteOutcome,
        /// Consecutive rule interpretations the decision took (§5).
        steps: u32,
        /// The message is travelling a non-minimal path due to faults.
        misrouted: bool,
    },
    /// A routed message could not take its granted output channel this
    /// cycle (VC busy or no credit) — allocation stall.
    VcStall {
        /// Stalling node.
        node: NodeId,
        /// Message id.
        msg: u64,
        /// Output port the verdict chose.
        port: PortId,
        /// Output virtual channel the verdict chose.
        vc: VcId,
    },
    /// The head flit acquired its granted output virtual channel: the
    /// channel's owner is now this message (wormhole allocation point).
    VcAcquire {
        /// Allocating node.
        node: NodeId,
        /// Message id.
        msg: u64,
        /// Acquired output port.
        port: PortId,
        /// Acquired output virtual channel.
        vc: VcId,
    },
    /// The tail flit passed the switch at `node`: the output channel is
    /// free for re-allocation (killed worms release without this event).
    VcRelease {
        /// Releasing node.
        node: NodeId,
        /// Message id.
        msg: u64,
        /// Released output port.
        port: PortId,
        /// Released output virtual channel.
        vc: VcId,
    },
    /// The algorithm asked the head flit to wait — blocked with no granted
    /// channel. `wants` lists every output channel the algorithm would
    /// accept right now (probed under single-free views), the edge set the
    /// online deadlock diagnoser consumes. Emitted once per blocked cycle.
    RouteWait {
        /// Blocking node.
        node: NodeId,
        /// Message id.
        msg: u64,
        /// Acceptable output channels `(port, vc)` this cycle.
        wants: Vec<(PortId, VcId)>,
    },
    /// Tail flit ejected: the message is fully delivered.
    Deliver {
        /// Destination node.
        node: NodeId,
        /// Message id.
        msg: u64,
    },
    /// The message was ripped by a dynamic fault and removed network-wide.
    Kill {
        /// Message id.
        msg: u64,
    },
    /// The algorithm declared the message unroutable; it was removed.
    Unroutable {
        /// Message id.
        msg: u64,
    },
    /// The link leaving `node` through `port` failed.
    LinkFault {
        /// Link endpoint.
        node: NodeId,
        /// Failed port.
        port: PortId,
    },
    /// `node` failed.
    NodeFault {
        /// The failed node.
        node: NodeId,
    },
    /// The link leaving `node` through `port` was repaired and re-armed.
    LinkRepair {
        /// Link endpoint.
        node: NodeId,
        /// Repaired port.
        port: PortId,
    },
    /// `node` was repaired and rejoined the network.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// A killed or unroutable message was re-injected at its source by the
    /// retry policy.
    Retry {
        /// Message id (stable across attempts).
        msg: u64,
        /// Attempt number of the re-injection (first retry = 2).
        attempt: u32,
    },
    /// An injection was rejected because an endpoint was faulty at send
    /// time (a scheduled send racing a dynamic fault).
    SendRejected {
        /// Intended source.
        src: NodeId,
        /// Intended destination.
        dst: NodeId,
    },
    /// A control-plane message was sent over a link (fault/state
    /// propagation traffic).
    ControlSend {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The control plane went quiet after fault injection (E10 settling
    /// wave complete).
    ControlSettled {
        /// Cycles from the settle request until quiescence.
        cycles: u64,
    },
    /// A liveness probe (ping) or its response (pong) left `node` through
    /// `port` — detection-layer heartbeat traffic.
    Heartbeat {
        /// Probing node.
        node: NodeId,
        /// Port the probe left through.
        port: PortId,
        /// `false` = ping, `true` = pong.
        pong: bool,
    },
    /// The detector at `node` began suspecting the neighbour behind
    /// `port` after consecutive missed heartbeats.
    Suspect {
        /// Suspecting node.
        node: NodeId,
        /// Port towards the suspected neighbour.
        port: PortId,
        /// Consecutive misses when suspicion was raised.
        misses: u32,
    },
    /// Suspicion hardened into an alarm: the detector at `node` declared
    /// the link through `port` faulty and triggered reconfiguration.
    Alarm {
        /// Alarming node.
        node: NodeId,
        /// Port of the locally declared fault.
        port: PortId,
    },
    /// A control-plane message was discarded at `node` because the link
    /// through `port` was unusable (at send or at delivery time).
    ControlDrop {
        /// Endpoint where the drop happened.
        node: NodeId,
        /// Port of the unusable link at that endpoint.
        port: PortId,
    },
}

impl EventKind {
    /// Stable lowercase tag for exporters and filters.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Inject { .. } => "inject",
            EventKind::RouteDecision { .. } => "route_decision",
            EventKind::VcStall { .. } => "vc_stall",
            EventKind::VcAcquire { .. } => "vc_acquire",
            EventKind::VcRelease { .. } => "vc_release",
            EventKind::RouteWait { .. } => "route_wait",
            EventKind::Deliver { .. } => "deliver",
            EventKind::Kill { .. } => "kill",
            EventKind::Unroutable { .. } => "unroutable",
            EventKind::LinkFault { .. } => "link_fault",
            EventKind::NodeFault { .. } => "node_fault",
            EventKind::LinkRepair { .. } => "link_repair",
            EventKind::NodeRepair { .. } => "node_repair",
            EventKind::Retry { .. } => "retry",
            EventKind::SendRejected { .. } => "send_rejected",
            EventKind::ControlSend { .. } => "control_send",
            EventKind::ControlSettled { .. } => "control_settled",
            EventKind::Heartbeat { .. } => "heartbeat",
            EventKind::Suspect { .. } => "suspect",
            EventKind::Alarm { .. } => "alarm",
            EventKind::ControlDrop { .. } => "control_drop",
        }
    }

    /// The message the event is about, if any.
    pub fn msg(&self) -> Option<u64> {
        match self {
            EventKind::Inject { msg, .. }
            | EventKind::RouteDecision { msg, .. }
            | EventKind::VcStall { msg, .. }
            | EventKind::VcAcquire { msg, .. }
            | EventKind::VcRelease { msg, .. }
            | EventKind::RouteWait { msg, .. }
            | EventKind::Deliver { msg, .. }
            | EventKind::Kill { msg }
            | EventKind::Unroutable { msg }
            | EventKind::Retry { msg, .. } => Some(*msg),
            _ => None,
        }
    }

    /// The node the event happened at, if the event is node-local.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            EventKind::Inject { src, .. } => Some(*src),
            EventKind::RouteDecision { node, .. }
            | EventKind::VcStall { node, .. }
            | EventKind::VcAcquire { node, .. }
            | EventKind::VcRelease { node, .. }
            | EventKind::RouteWait { node, .. }
            | EventKind::Deliver { node, .. }
            | EventKind::LinkFault { node, .. }
            | EventKind::NodeFault { node }
            | EventKind::LinkRepair { node, .. }
            | EventKind::NodeRepair { node }
            | EventKind::Heartbeat { node, .. }
            | EventKind::Suspect { node, .. }
            | EventKind::Alarm { node, .. }
            | EventKind::ControlDrop { node, .. } => Some(*node),
            _ => None,
        }
    }

    /// True for the three ways a message leaves the network for good —
    /// `Deliver`, `Kill`, `Unroutable` (a `Kill`/`Unroutable` later undone
    /// by a `Retry` is not final; callers see the `Retry` that follows).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            EventKind::Deliver { .. } | EventKind::Kill { .. } | EventKind::Unroutable { .. }
        )
    }
}

/// A cycle-stamped event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle the event occurred on.
    pub cycle: u64,
    /// The event.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Renders the event as one JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.num("cycle", self.cycle);
        o.str("event", self.kind.tag());
        match &self.kind {
            EventKind::Inject { msg, src, dst, len_flits } => {
                o.num("msg", *msg);
                o.num("src", src.0);
                o.num("dst", dst.0);
                o.num("len_flits", *len_flits);
            }
            EventKind::RouteDecision { node, msg, in_port, in_vc, outcome, steps, misrouted } => {
                o.num("node", node.0);
                o.num("msg", *msg);
                match in_port {
                    Some(p) => o.num("in_port", p.0),
                    None => o.field("in_port", "null"),
                };
                o.num("in_vc", in_vc.0);
                o.str("outcome", outcome.name());
                if let RouteOutcome::Routed(p, v) = outcome {
                    o.num("out_port", p.0);
                    o.num("out_vc", v.0);
                }
                o.num("steps", *steps);
                o.bool("misrouted", *misrouted);
            }
            EventKind::VcStall { node, msg, port, vc }
            | EventKind::VcAcquire { node, msg, port, vc }
            | EventKind::VcRelease { node, msg, port, vc } => {
                o.num("node", node.0);
                o.num("msg", *msg);
                o.num("port", port.0);
                o.num("vc", vc.0);
            }
            EventKind::RouteWait { node, msg, wants } => {
                o.num("node", node.0);
                o.num("msg", *msg);
                o.field(
                    "wants",
                    json::array(wants.iter().map(|(p, v)| format!("[{},{}]", p.0, v.0))),
                );
            }
            EventKind::Deliver { node, msg } => {
                o.num("node", node.0);
                o.num("msg", *msg);
            }
            EventKind::Kill { msg } | EventKind::Unroutable { msg } => {
                o.num("msg", *msg);
            }
            EventKind::LinkFault { node, port } | EventKind::LinkRepair { node, port } => {
                o.num("node", node.0);
                o.num("port", port.0);
            }
            EventKind::NodeFault { node } | EventKind::NodeRepair { node } => {
                o.num("node", node.0);
            }
            EventKind::Retry { msg, attempt } => {
                o.num("msg", *msg);
                o.num("attempt", *attempt);
            }
            EventKind::SendRejected { src, dst } => {
                o.num("src", src.0);
                o.num("dst", dst.0);
            }
            EventKind::ControlSend { from, to } => {
                o.num("from", from.0);
                o.num("to", to.0);
            }
            EventKind::ControlSettled { cycles } => {
                o.num("cycles", *cycles);
            }
            EventKind::Heartbeat { node, port, pong } => {
                o.num("node", node.0);
                o.num("port", port.0);
                o.bool("pong", *pong);
            }
            EventKind::Suspect { node, port, misses } => {
                o.num("node", node.0);
                o.num("port", port.0);
                o.num("misses", *misses);
            }
            EventKind::Alarm { node, port } | EventKind::ControlDrop { node, port } => {
                o.num("node", node.0);
                o.num("port", port.0);
            }
        }
        o.finish()
    }

    /// Parses one JSONL line produced by [`TraceEvent::to_json`] back into
    /// the typed event. This is the contract `ftr-trace` relies on; the
    /// round-trip is asserted over every variant in `tests/roundtrip.rs`.
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let v = json::parse(line)?;
        let cycle = req_u64(&v, "cycle")?;
        let tag = v.get("event").and_then(Value::as_str).ok_or("missing `event` tag")?;
        let kind = match tag {
            "inject" => EventKind::Inject {
                msg: req_u64(&v, "msg")?,
                src: node_of(&v, "src")?,
                dst: node_of(&v, "dst")?,
                len_flits: req_u32(&v, "len_flits")?,
            },
            "route_decision" => {
                let outcome = match v.get("outcome").and_then(Value::as_str) {
                    Some("routed") => {
                        RouteOutcome::Routed(port_of(&v, "out_port")?, vc_of(&v, "out_vc")?)
                    }
                    Some("wait") => RouteOutcome::Wait,
                    Some("deliver") => RouteOutcome::Deliver,
                    Some("unroutable") => RouteOutcome::Unroutable,
                    other => return Err(format!("bad route_decision outcome {other:?}")),
                };
                let in_port = match v.get("in_port") {
                    Some(Value::Null) => None,
                    Some(_) => Some(port_of(&v, "in_port")?),
                    None => return Err("missing `in_port`".into()),
                };
                EventKind::RouteDecision {
                    node: node_of(&v, "node")?,
                    msg: req_u64(&v, "msg")?,
                    in_port,
                    in_vc: vc_of(&v, "in_vc")?,
                    outcome,
                    steps: req_u32(&v, "steps")?,
                    misrouted: v
                        .get("misrouted")
                        .and_then(Value::as_bool)
                        .ok_or("missing `misrouted`")?,
                }
            }
            "vc_stall" | "vc_acquire" | "vc_release" => {
                let node = node_of(&v, "node")?;
                let msg = req_u64(&v, "msg")?;
                let port = port_of(&v, "port")?;
                let vc = vc_of(&v, "vc")?;
                match tag {
                    "vc_stall" => EventKind::VcStall { node, msg, port, vc },
                    "vc_acquire" => EventKind::VcAcquire { node, msg, port, vc },
                    _ => EventKind::VcRelease { node, msg, port, vc },
                }
            }
            "route_wait" => {
                let mut wants = Vec::new();
                for pair in v.get("wants").and_then(Value::as_arr).ok_or("missing `wants` array")? {
                    let pv = pair.as_arr().ok_or("wants entry must be a [port,vc] pair")?;
                    let (p, vc) = match pv {
                        [p, vc] => (p, vc),
                        _ => return Err("wants entry must have exactly two elements".into()),
                    };
                    let p = p.as_u64().and_then(|x| u8::try_from(x).ok()).ok_or("bad port")?;
                    let vc = vc.as_u64().and_then(|x| u8::try_from(x).ok()).ok_or("bad vc")?;
                    wants.push((PortId(p), VcId(vc)));
                }
                EventKind::RouteWait { node: node_of(&v, "node")?, msg: req_u64(&v, "msg")?, wants }
            }
            "deliver" => {
                EventKind::Deliver { node: node_of(&v, "node")?, msg: req_u64(&v, "msg")? }
            }
            "kill" => EventKind::Kill { msg: req_u64(&v, "msg")? },
            "unroutable" => EventKind::Unroutable { msg: req_u64(&v, "msg")? },
            "link_fault" => {
                EventKind::LinkFault { node: node_of(&v, "node")?, port: port_of(&v, "port")? }
            }
            "link_repair" => {
                EventKind::LinkRepair { node: node_of(&v, "node")?, port: port_of(&v, "port")? }
            }
            "node_fault" => EventKind::NodeFault { node: node_of(&v, "node")? },
            "node_repair" => EventKind::NodeRepair { node: node_of(&v, "node")? },
            "retry" => {
                EventKind::Retry { msg: req_u64(&v, "msg")?, attempt: req_u32(&v, "attempt")? }
            }
            "send_rejected" => {
                EventKind::SendRejected { src: node_of(&v, "src")?, dst: node_of(&v, "dst")? }
            }
            "control_send" => {
                EventKind::ControlSend { from: node_of(&v, "from")?, to: node_of(&v, "to")? }
            }
            "control_settled" => EventKind::ControlSettled { cycles: req_u64(&v, "cycles")? },
            "heartbeat" => EventKind::Heartbeat {
                node: node_of(&v, "node")?,
                port: port_of(&v, "port")?,
                pong: v.get("pong").and_then(Value::as_bool).ok_or("missing `pong`")?,
            },
            "suspect" => EventKind::Suspect {
                node: node_of(&v, "node")?,
                port: port_of(&v, "port")?,
                misses: req_u32(&v, "misses")?,
            },
            "alarm" => EventKind::Alarm { node: node_of(&v, "node")?, port: port_of(&v, "port")? },
            "control_drop" => {
                EventKind::ControlDrop { node: node_of(&v, "node")?, port: port_of(&v, "port")? }
            }
            other => return Err(format!("unknown event tag `{other}`")),
        };
        Ok(TraceEvent { cycle, kind })
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing or bad `{key}`"))
}

fn req_u32(v: &Value, key: &str) -> Result<u32, String> {
    req_u64(v, key)?.try_into().map_err(|_| format!("`{key}` out of u32 range"))
}

fn node_of(v: &Value, key: &str) -> Result<NodeId, String> {
    Ok(NodeId(req_u64(v, key)?.try_into().map_err(|_| format!("`{key}` out of node range"))?))
}

fn port_of(v: &Value, key: &str) -> Result<PortId, String> {
    Ok(PortId(req_u64(v, key)?.try_into().map_err(|_| format!("`{key}` out of port range"))?))
}

fn vc_of(v: &Value, key: &str) -> Result<VcId, String> {
    Ok(VcId(req_u64(v, key)?.try_into().map_err(|_| format!("`{key}` out of vc range"))?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn every_variant_renders_valid_json() {
        let kinds = [
            EventKind::Inject { msg: 1, src: NodeId(0), dst: NodeId(5), len_flits: 4 },
            EventKind::RouteDecision {
                node: NodeId(2),
                msg: 1,
                in_port: Some(PortId(3)),
                in_vc: VcId(0),
                outcome: RouteOutcome::Routed(PortId(1), VcId(1)),
                steps: 3,
                misrouted: true,
            },
            EventKind::RouteDecision {
                node: NodeId(2),
                msg: 1,
                in_port: None,
                in_vc: VcId(0),
                outcome: RouteOutcome::Wait,
                steps: 1,
                misrouted: false,
            },
            EventKind::VcStall { node: NodeId(2), msg: 1, port: PortId(0), vc: VcId(0) },
            EventKind::VcAcquire { node: NodeId(2), msg: 1, port: PortId(0), vc: VcId(1) },
            EventKind::VcRelease { node: NodeId(2), msg: 1, port: PortId(0), vc: VcId(1) },
            EventKind::RouteWait { node: NodeId(2), msg: 1, wants: vec![] },
            EventKind::RouteWait {
                node: NodeId(2),
                msg: 1,
                wants: vec![(PortId(0), VcId(0)), (PortId(3), VcId(1))],
            },
            EventKind::Deliver { node: NodeId(5), msg: 1 },
            EventKind::Kill { msg: 1 },
            EventKind::Unroutable { msg: 1 },
            EventKind::LinkFault { node: NodeId(1), port: PortId(2) },
            EventKind::NodeFault { node: NodeId(1) },
            EventKind::LinkRepair { node: NodeId(1), port: PortId(2) },
            EventKind::NodeRepair { node: NodeId(1) },
            EventKind::Retry { msg: 1, attempt: 2 },
            EventKind::SendRejected { src: NodeId(3), dst: NodeId(4) },
            EventKind::ControlSend { from: NodeId(1), to: NodeId(2) },
            EventKind::ControlSettled { cycles: 9 },
            EventKind::Heartbeat { node: NodeId(1), port: PortId(2), pong: false },
            EventKind::Heartbeat { node: NodeId(2), port: PortId(0), pong: true },
            EventKind::Suspect { node: NodeId(1), port: PortId(2), misses: 3 },
            EventKind::Alarm { node: NodeId(1), port: PortId(2) },
            EventKind::ControlDrop { node: NodeId(1), port: PortId(2) },
        ];
        for kind in kinds {
            let ev = TraceEvent { cycle: 7, kind };
            let j = ev.to_json();
            assert!(validate(&j).is_ok(), "invalid json: {j}");
            assert!(j.contains(&format!("\"event\":\"{}\"", ev.kind.tag())), "{j}");
        }
    }
}
