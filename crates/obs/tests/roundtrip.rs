//! Serialization round-trip: every `EventKind` variant must survive
//! `to_json()` → `TraceEvent::from_json()` identically. This is the
//! contract the `ftr-trace` offline loader relies on — a variant that
//! renders but does not parse back would silently vanish from reports.

use ftr_obs::json;
use ftr_obs::{EventKind, RouteOutcome, TraceEvent};
use ftr_topo::{NodeId, PortId, VcId};

/// One exemplar per variant, plus shape edge cases (null in_port, every
/// outcome, empty and multi-entry wants).
fn exemplars() -> Vec<EventKind> {
    let outcomes = [
        RouteOutcome::Routed(PortId(1), VcId(1)),
        RouteOutcome::Wait,
        RouteOutcome::Deliver,
        RouteOutcome::Unroutable,
    ];
    let mut kinds = vec![
        EventKind::Inject { msg: 7, src: NodeId(0), dst: NodeId(35), len_flits: 16 },
        EventKind::VcStall { node: NodeId(2), msg: 7, port: PortId(0), vc: VcId(0) },
        EventKind::VcAcquire { node: NodeId(2), msg: 7, port: PortId(3), vc: VcId(1) },
        EventKind::VcRelease { node: NodeId(2), msg: 7, port: PortId(3), vc: VcId(1) },
        EventKind::RouteWait { node: NodeId(2), msg: 7, wants: vec![] },
        EventKind::RouteWait {
            node: NodeId(8),
            msg: u64::MAX,
            wants: vec![(PortId(0), VcId(0)), (PortId(2), VcId(1)), (PortId(3), VcId(4))],
        },
        EventKind::Deliver { node: NodeId(35), msg: 7 },
        EventKind::Kill { msg: 7 },
        EventKind::Unroutable { msg: 7 },
        EventKind::LinkFault { node: NodeId(1), port: PortId(2) },
        EventKind::NodeFault { node: NodeId(1) },
        EventKind::LinkRepair { node: NodeId(1), port: PortId(2) },
        EventKind::NodeRepair { node: NodeId(1) },
        EventKind::Retry { msg: 7, attempt: 3 },
        EventKind::SendRejected { src: NodeId(3), dst: NodeId(4) },
        EventKind::ControlSend { from: NodeId(1), to: NodeId(2) },
        EventKind::ControlSettled { cycles: 9 },
        EventKind::Heartbeat { node: NodeId(1), port: PortId(2), pong: false },
        EventKind::Heartbeat { node: NodeId(2), port: PortId(0), pong: true },
        EventKind::Suspect { node: NodeId(1), port: PortId(2), misses: 3 },
        EventKind::Alarm { node: NodeId(1), port: PortId(2) },
        EventKind::ControlDrop { node: NodeId(4), port: PortId(1) },
    ];
    for (i, outcome) in outcomes.into_iter().enumerate() {
        kinds.push(EventKind::RouteDecision {
            node: NodeId(2),
            msg: 7,
            in_port: if i % 2 == 0 { Some(PortId(3)) } else { None },
            in_vc: VcId(i as u8),
            outcome,
            steps: i as u32,
            misrouted: i % 2 == 1,
        });
    }
    kinds
}

#[test]
fn every_variant_round_trips_through_json() {
    let mut tags_seen = std::collections::BTreeSet::new();
    for kind in exemplars() {
        tags_seen.insert(kind.tag());
        let ev = TraceEvent { cycle: 123_456, kind };
        let line = ev.to_json();
        assert!(json::validate(&line).is_ok(), "invalid json: {line}");
        let back =
            TraceEvent::from_json(&line).unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
        assert_eq!(back, ev, "round-trip mismatch for {line}");
    }
    // guard against a future variant missing from the exemplar list: the
    // tag set here must cover every tag the enum can produce
    let expected: std::collections::BTreeSet<&str> = [
        "inject",
        "route_decision",
        "vc_stall",
        "vc_acquire",
        "vc_release",
        "route_wait",
        "deliver",
        "kill",
        "unroutable",
        "link_fault",
        "node_fault",
        "link_repair",
        "node_repair",
        "retry",
        "send_rejected",
        "control_send",
        "control_settled",
        "heartbeat",
        "suspect",
        "alarm",
        "control_drop",
    ]
    .into_iter()
    .collect();
    assert_eq!(tags_seen, expected, "exemplar list must cover every EventKind variant");
}

#[test]
fn from_json_rejects_malformed_lines() {
    for bad in [
        "",
        "{}",
        r#"{"cycle":1}"#,
        r#"{"cycle":1,"event":"nope"}"#,
        r#"{"cycle":1,"event":"kill"}"#,
        r#"{"cycle":1,"event":"inject","msg":0,"src":0,"dst":1}"#,
        r#"{"cycle":-1,"event":"kill","msg":0}"#,
        r#"{"cycle":1,"event":"route_wait","node":0,"msg":0,"wants":[[1]]}"#,
        r#"{"cycle":1,"event":"route_wait","node":0,"msg":0,"wants":[1,2]}"#,
    ] {
        assert!(TraceEvent::from_json(bad).is_err(), "`{bad}` must be rejected");
    }
}

#[test]
fn jsonl_stream_round_trips() {
    use ftr_obs::{JsonlSink, TraceSink};
    let sink = JsonlSink::new(Vec::new());
    let evs: Vec<TraceEvent> = exemplars()
        .into_iter()
        .enumerate()
        .map(|(i, k)| TraceEvent { cycle: i as u64, kind: k })
        .collect();
    for e in &evs {
        sink.record(e);
    }
    // no public reader for the buffer; re-render instead — each line is
    // exactly to_json, which the per-variant test already ties to record()
    let text: String = evs.iter().map(|e| format!("{}\n", e.to_json())).collect();
    let back: Vec<TraceEvent> =
        text.lines().map(|l| TraceEvent::from_json(l).expect("line parses")).collect();
    assert_eq!(back, evs);
    assert_eq!(sink.written(), evs.len() as u64);
    assert_eq!(sink.write_errors(), 0);
}
