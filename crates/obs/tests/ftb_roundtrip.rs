//! FTB serialization property test: random event streams — every
//! `EventKind` variant, adversarial cycle stamps including maximal
//! deltas, empty traces — must survive `BinSink` → `FtbReader`
//! event-for-event, and must agree with what the JSONL pipeline would
//! reconstruct from the same stream. This mirrors the JSONL round-trip
//! contract in `tests/roundtrip.rs`; together they pin both trace
//! formats to the same typed event semantics.

use ftr_obs::ftb::{BinSink, FtbHeader, FtbReader};
use ftr_obs::{EventKind, RouteOutcome, TraceEvent, TraceSink};
use ftr_topo::{NodeId, PortId, VcId};
use proptest::prelude::*;

fn arb_outcome() -> impl Strategy<Value = RouteOutcome> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(p, v)| RouteOutcome::Routed(PortId(p), VcId(v))),
        Just(RouteOutcome::Wait),
        Just(RouteOutcome::Deliver),
        Just(RouteOutcome::Unroutable),
    ]
}

fn arb_kind() -> impl Strategy<Value = EventKind> {
    let node = || any::<u32>().prop_map(NodeId);
    let port = || any::<u8>().prop_map(PortId);
    let vc = || any::<u8>().prop_map(VcId);
    prop_oneof![
        (any::<u64>(), node(), node(), any::<u32>()).prop_map(|(msg, src, dst, len_flits)| {
            EventKind::Inject { msg, src, dst, len_flits }
        }),
        (
            node(),
            any::<u64>(),
            prop_oneof![Just(None), port().prop_map(Some)],
            vc(),
            arb_outcome(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(node, msg, in_port, in_vc, outcome, steps, misrouted)| {
                EventKind::RouteDecision { node, msg, in_port, in_vc, outcome, steps, misrouted }
            }),
        (node(), any::<u64>(), port(), vc()).prop_map(|(node, msg, port, vc)| EventKind::VcStall {
            node,
            msg,
            port,
            vc
        }),
        (node(), any::<u64>(), port(), vc())
            .prop_map(|(node, msg, port, vc)| EventKind::VcAcquire { node, msg, port, vc }),
        (node(), any::<u64>(), port(), vc())
            .prop_map(|(node, msg, port, vc)| EventKind::VcRelease { node, msg, port, vc }),
        (node(), any::<u64>(), proptest::collection::vec((port(), vc()), 0..6))
            .prop_map(|(node, msg, wants)| EventKind::RouteWait { node, msg, wants }),
        (node(), any::<u64>()).prop_map(|(node, msg)| EventKind::Deliver { node, msg }),
        any::<u64>().prop_map(|msg| EventKind::Kill { msg }),
        any::<u64>().prop_map(|msg| EventKind::Unroutable { msg }),
        (node(), port()).prop_map(|(node, port)| EventKind::LinkFault { node, port }),
        node().prop_map(|node| EventKind::NodeFault { node }),
        (node(), port()).prop_map(|(node, port)| EventKind::LinkRepair { node, port }),
        node().prop_map(|node| EventKind::NodeRepair { node }),
        (any::<u64>(), any::<u32>()).prop_map(|(msg, attempt)| EventKind::Retry { msg, attempt }),
        (node(), node()).prop_map(|(src, dst)| EventKind::SendRejected { src, dst }),
        (node(), node()).prop_map(|(from, to)| EventKind::ControlSend { from, to }),
        any::<u64>().prop_map(|cycles| EventKind::ControlSettled { cycles }),
        (node(), port(), any::<bool>()).prop_map(|(node, port, pong)| EventKind::Heartbeat {
            node,
            port,
            pong
        }),
        (node(), port(), any::<u32>()).prop_map(|(node, port, misses)| EventKind::Suspect {
            node,
            port,
            misses
        }),
        (node(), port()).prop_map(|(node, port)| EventKind::Alarm { node, port }),
        (node(), port()).prop_map(|(node, port)| EventKind::ControlDrop { node, port }),
    ]
}

/// Cycle stamps biased toward the delta-codec's edges: zero, maximal
/// u64, off-by-one neighbours, plus uniform draws. Consecutive events
/// may jump by nearly `u64::MAX` in either direction — the wrapping
/// zigzag delta must absorb all of it.
fn arb_cycle() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(u64::MAX / 2),
        any::<u64>(),
    ]
}

fn arb_stream() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        (arb_cycle(), arb_kind()).prop_map(|(cycle, kind)| TraceEvent { cycle, kind }),
        0..40,
    )
}

/// Writes `events` through a `BinSink`, finalizes, and decodes them
/// back with a streaming reader.
fn ftb_round_trip(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut bytes = Vec::new();
    {
        let header = FtbHeader::new().with("label", "prop").with("seed", 1u64);
        let sink = BinSink::new(SharedVec(&mut bytes), header).expect("vec sink");
        for e in events {
            sink.record(e);
        }
        sink.finalize().expect("finalize");
        assert_eq!(sink.written(), events.len() as u64);
        assert_eq!(sink.write_errors(), 0);
    }
    let mut reader = FtbReader::from_reader(&bytes[..]).expect("header parses");
    assert_eq!(reader.header().get("label"), Some("prop"));
    let back: Vec<TraceEvent> = (&mut reader).map(|r| r.expect("event decodes")).collect();
    assert!(reader.finalized(), "finalized stream must end cleanly");
    back
}

/// Borrowed `Vec<u8>` writer, so the encoded bytes survive the sink.
struct SharedVec<'a>(&'a mut Vec<u8>);

impl std::io::Write for SharedVec<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #[test]
    fn random_streams_round_trip_through_ftb(events in arb_stream()) {
        let back = ftb_round_trip(&events);
        prop_assert_eq!(back, events);
    }

    /// The two formats must reconstruct the *same* typed stream: FTB
    /// decode of an encoded stream equals JSONL parse of the JSONL
    /// rendering, event for event.
    #[test]
    fn ftb_and_jsonl_agree(events in arb_stream()) {
        let via_ftb = ftb_round_trip(&events);
        let via_jsonl: Vec<TraceEvent> = events
            .iter()
            .map(|e| TraceEvent::from_json(&e.to_json()).expect("jsonl parses"))
            .collect();
        prop_assert_eq!(via_ftb, via_jsonl);
    }
}

#[test]
fn empty_stream_round_trips() {
    assert_eq!(ftb_round_trip(&[]), Vec::<TraceEvent>::new());
}

#[test]
fn maximal_cycle_delta_round_trips() {
    let events = vec![
        TraceEvent { cycle: 0, kind: EventKind::Kill { msg: 0 } },
        TraceEvent { cycle: u64::MAX, kind: EventKind::Kill { msg: 1 } },
        TraceEvent { cycle: 0, kind: EventKind::Kill { msg: 2 } },
    ];
    assert_eq!(ftb_round_trip(&events), events);
}
