//! No-oracle mode: silent faults (armed without `notify_fault`) against
//! NAFTA and ROUTE_C, with and without the heartbeat detection layer.
//!
//! The contrast these tests pin down is the tentpole claim of the
//! detection work: both algorithms route purely on *learned* fault
//! state, so a fault nobody announces leaves messages waiting forever
//! on the dead output and the watchdog declares deadlock — while the
//! same run wrapped in [`WithDetection`] converts heartbeat timeouts
//! into the very `on_fault` calls the oracle used to make, and delivery
//! resumes through misrouting.

use ftr_algos::{Nafta, RouteC};
use ftr_sim::detect::{DetectorConfig, WithDetection};
use ftr_sim::plan::{FaultAction, FaultPlan};
use ftr_sim::{Network, RetryPolicy};
use ftr_topo::{Hypercube, Mesh2D, NodeId, PortId, Topology, EAST};
use std::sync::Arc;

const MSG_LEN: u32 = 4;

/// A mesh message pinned to one row has a single minimal direction, so
/// a silent fault on a row link is unavoidable without misrouting.
#[test]
fn nafta_without_detection_deadlocks_on_silent_fault() {
    let mesh = Mesh2D::new(6, 6);
    let blocked = mesh.node_at(2, 3);
    let plan = FaultPlan::new().at(1, FaultAction::FailLinkSilent(blocked, EAST));
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .fault_plan(plan)
        .deadlock_threshold(100)
        .build(&Nafta::new(mesh.clone()))
        .expect("valid");
    net.run(2); // arm the fault before the message approaches it
    net.send(mesh.node_at(0, 3), mesh.node_at(5, 3), MSG_LEN).expect("alive");
    assert!(!net.drain(3_000), "nobody tells NAFTA, so the worm waits forever");
    assert!(net.stats.deadlock, "the watchdog is the only observer left");
    assert_eq!(net.stats.delivered_msgs, 0);
    assert_eq!(net.stats.control_msgs, 0, "silent means no notification wave");
}

#[test]
fn nafta_with_detection_recovers_from_silent_fault() {
    let mesh = Mesh2D::new(6, 6);
    let blocked = mesh.node_at(2, 3);
    let plan = FaultPlan::new().at(10, FaultAction::FailLinkSilent(blocked, EAST));
    let algo = WithDetection::new(Nafta::new(mesh.clone()), DetectorConfig { miss_threshold: 3 });
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .fault_plan(plan)
        .tick_period(4)
        .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 32 })
        .build(&algo)
        .expect("valid");
    // the message departs after the silent fault but before any detector
    // could have noticed it — it walks east and waits at the dead link
    net.run(12);
    net.send(mesh.node_at(0, 3), mesh.node_at(5, 3), MSG_LEN).expect("alive");
    assert!(net.drain(3_000), "alarms re-arm NAFTA's misrouting");
    assert!(!net.stats.deadlock);
    assert_eq!(net.stats.delivered_msgs, 1, "the waiting worm reroutes and lands");
    assert!(net.stats.control_msgs > 0, "heartbeats and fault waves flowed");
    assert!(net.stats.control_dropped > 0, "probes into the dead link are accounted");
    assert!(net.stats.accounting_balanced());
}

/// After a silent *repair*, pong resumption must un-learn the fault:
/// NAFTA's reset wave re-runs propagation and minimal routing returns.
#[test]
fn nafta_with_detection_unlearns_after_silent_repair() {
    let mesh = Mesh2D::new(6, 6);
    let blocked = mesh.node_at(2, 3);
    let plan = FaultPlan::new()
        .at(10, FaultAction::FailLinkSilent(blocked, EAST))
        .at(120, FaultAction::RepairLinkSilent(blocked, EAST));
    let algo = WithDetection::new(Nafta::new(mesh.clone()), DetectorConfig { miss_threshold: 3 });
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .fault_plan(plan)
        .tick_period(4)
        .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 32 })
        .build(&algo)
        .expect("valid");
    net.run(400); // fault detected, repair detected, reset wave settled
    let before = net.stats.control_msgs;
    net.send(mesh.node_at(0, 3), mesh.node_at(5, 3), MSG_LEN).expect("alive");
    assert!(net.drain(3_000));
    assert_eq!(net.stats.delivered_msgs, 1);
    // five minimal hops and one decision per hop — a misroute around the
    // (repaired) link would need at least two extra link traversals
    assert!(
        net.stats.latency.sum <= 5 * (MSG_LEN as u64 + 6),
        "post-repair route must be minimal again, latency {}",
        net.stats.latency.sum
    );
    assert!(net.stats.control_msgs > before, "heartbeats kept flowing after repair");
}

/// A one-bit hypercube pair has exactly one minimal link; kill it
/// silently and ROUTE_C waits forever.
#[test]
fn route_c_without_detection_deadlocks_on_silent_fault() {
    let cube = Hypercube::new(3);
    let plan = FaultPlan::new().at(1, FaultAction::FailLinkSilent(NodeId(0), PortId(0)));
    let mut net = Network::builder(Arc::new(cube.clone()))
        .fault_plan(plan)
        .deadlock_threshold(100)
        .build(&RouteC::new(cube.clone()))
        .expect("valid");
    net.run(2);
    net.send(NodeId(0), NodeId(1), MSG_LEN).expect("alive");
    assert!(!net.drain(3_000));
    assert!(net.stats.deadlock);
    assert_eq!(net.stats.delivered_msgs, 0);
}

#[test]
fn route_c_with_detection_recovers_from_silent_fault() {
    let cube = Hypercube::new(3);
    let plan = FaultPlan::new().at(10, FaultAction::FailLinkSilent(NodeId(0), PortId(0)));
    let algo = WithDetection::new(RouteC::new(cube.clone()), DetectorConfig { miss_threshold: 3 });
    let mut net = Network::builder(Arc::new(cube.clone()))
        .fault_plan(plan)
        .tick_period(4)
        .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 32 })
        .build(&algo)
        .expect("valid");
    net.run(12);
    net.send(NodeId(0), NodeId(1), MSG_LEN).expect("alive");
    assert!(net.drain(3_000), "spare-dimension routing takes over once the alarm lands");
    assert!(!net.stats.deadlock);
    assert_eq!(net.stats.delivered_msgs, 1);
    assert!(net.stats.accounting_balanced());
}

/// Detection must change nothing on a healthy network: same deliveries,
/// zero drops, and (other than heartbeat traffic) the same behaviour as
/// the bare algorithm under identical load.
#[test]
fn detection_wrapper_is_transparent_when_fault_free() {
    let run = |detect: bool| {
        let mesh = Mesh2D::new(6, 6);
        let mut b = Network::builder(Arc::new(mesh.clone()));
        if detect {
            b = b.tick_period(4);
        }
        let mut net = if detect {
            b.build(&WithDetection::new(Nafta::new(mesh.clone()), DetectorConfig::default()))
                .expect("valid")
        } else {
            b.build(&Nafta::new(mesh.clone())).expect("valid")
        };
        let n = mesh.num_nodes() as u32;
        for i in 0..n {
            let (src, dst) = (NodeId(i), NodeId((i * 7 + 11) % n));
            if src != dst {
                net.send(src, dst, MSG_LEN).expect("alive");
            }
        }
        assert!(net.drain(10_000));
        net.stats.clone()
    };
    let bare = run(false);
    let detected = run(true);
    assert_eq!(bare.delivered_msgs, detected.delivered_msgs);
    assert_eq!(detected.control_dropped, 0, "no false drops on a healthy fabric");
    assert_eq!(detected.killed_msgs, 0);
    assert!(detected.control_msgs > bare.control_msgs, "the difference is heartbeat traffic");
}
