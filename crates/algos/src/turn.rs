//! West-first turn-model routing (Glass & Ni \[GlN92\]) — the partially
//! adaptive single-VC baseline.
//!
//! All westward hops happen first; afterwards the message routes
//! adaptively among {E, N, S} and never turns west again. Prohibiting the
//! two turns into west breaks both abstract cycles, so one virtual channel
//! suffices. Used by the benches as the "cheap adaptivity" point between
//! oblivious XY and fully adaptive NARA, and by the examples as the
//! flexibility demo (a new algorithm = a new rule program).

use crate::common::{allocatable, least_loaded, max_hops};
use ftr_sim::flit::Header;
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH, WEST};

/// The west-first algorithm.
#[derive(Clone)]
pub struct WestFirst {
    mesh: Mesh2D,
}

impl WestFirst {
    /// Creates west-first routing for a mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        WestFirst { mesh }
    }

    /// The set of ports west-first may use at `node` for `dst`.
    pub fn options(mesh: &Mesh2D, node: NodeId, dst: NodeId) -> Vec<PortId> {
        let (dx, dy) = mesh.offset(node, dst);
        if dx < 0 {
            // all west hops first, obliviously
            return vec![WEST];
        }
        let mut out = Vec::with_capacity(3);
        if dx > 0 {
            out.push(EAST);
        }
        if dy > 0 {
            out.push(NORTH);
        }
        if dy < 0 {
            out.push(SOUTH);
        }
        out
    }
}

impl RoutingAlgorithm for WestFirst {
    fn name(&self) -> String {
        "west-first".into()
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn controller(&self, _topo: &dyn Topology, _node: NodeId) -> Box<dyn NodeController> {
        Box::new(WfController {
            mesh: self.mesh.clone(),
            hop_limit: max_hops(self.mesh.num_nodes()),
        })
    }
}

struct WfController {
    mesh: Mesh2D,
    hop_limit: u32,
}

impl NodeController for WfController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.node == h.dst {
            return Decision::new(Verdict::Deliver, 1);
        }
        let opts: Vec<(PortId, VcId)> = WestFirst::options(&self.mesh, view.node, h.dst)
            .into_iter()
            .map(|p| (p, VcId(0)))
            .collect();
        let any_alive = opts.iter().any(|(p, _)| view.link_alive[p.idx()]);
        let avail = allocatable(view, &opts);
        if let Some((p, v)) = least_loaded(view, &avail) {
            Decision::new(Verdict::Route(p, v), 1)
        } else if any_alive {
            Decision::new(Verdict::Wait, 1)
        } else {
            Decision::new(Verdict::Unroutable, 1)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        WestFirst::options(&self.mesh, view.node, h.dst)
            .into_iter()
            .filter(|p| view.link_alive[p.idx()])
            .map(|p| (p, VcId(0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_sim::Network;
    use ftr_topo::FaultSet;
    use std::sync::Arc;

    #[test]
    fn option_sets() {
        let m = Mesh2D::new(4, 4);
        // destination to the west: oblivious west
        assert_eq!(WestFirst::options(&m, m.node_at(3, 0), m.node_at(0, 2)), vec![WEST]);
        // north-east: adaptive between E and N
        assert_eq!(WestFirst::options(&m, m.node_at(0, 0), m.node_at(2, 2)), vec![EAST, NORTH]);
        // due south
        assert_eq!(WestFirst::options(&m, m.node_at(1, 3), m.node_at(1, 0)), vec![SOUTH]);
    }

    #[test]
    fn cdg_acyclic_on_one_vc() {
        let m = Mesh2D::new(4, 4);
        let algo = WestFirst::new(m.clone());
        let g = crate::conditions::build_cdg(&m, &algo, &FaultSet::new());
        assert!(!g.has_cycle());
    }

    #[test]
    fn all_pairs_delivered() {
        let m = Mesh2D::new(4, 4);
        let topo = Arc::new(m.clone());
        let mut net =
            Network::builder(topo.clone()).build(&WestFirst::new(m)).expect("valid config");
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(100_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0);
    }

    #[test]
    fn partially_adaptive_between_xy_and_nara() {
        // conditions report: west-first passes cond2 everywhere fault-free,
        // cond1 only where minimal adaptivity isn't needed towards west
        let m = Mesh2D::new(4, 4);
        let algo = WestFirst::new(m.clone());
        let rep = crate::conditions::check_conditions(&m, &algo, &FaultSet::new(), None);
        assert_eq!(rep.cond2_ok, rep.cond2_pairs);
        assert!(rep.cond1_ok < rep.cond1_pairs, "not fully adaptive");

        let xy = crate::dor::XyRouting::new(m.clone());
        let rep_xy = crate::conditions::check_conditions(&m, &xy, &FaultSet::new(), None);
        assert!(rep.cond1_ok > rep_xy.cond1_ok, "more adaptive than XY");
    }
}
