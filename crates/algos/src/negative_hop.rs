//! The negative-hop deadlock-prevention scheme (\[BoC96\], discussed in the
//! paper's §3): "using the negative hop scheme — for which the number of
//! virtual channels depends on the network diameter — no changes to the
//! deadlock avoidance are necessary at all" when faults appear.
//!
//! Nodes are 2-coloured (checkerboard classes); every hop flips the class;
//! a hop into class 0 is *negative*. A message travels on virtual channel
//! `k` after taking `k` negative hops. Within one channel class only
//! class-0 → class-1 hops exist (acyclic), and channel indices only grow,
//! so the full dependency graph is acyclic for *any* routing relation —
//! minimal, adaptive or misrouted. Fault tolerance therefore costs **no
//! scheme changes at all**, only the diameter-dependent channel count the
//! paper contrasts with NAFTA's two channels + near-fault reconfiguration.

use crate::common::{allocatable, least_loaded, max_hops};
use ftr_sim::flit::Header;
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId};

/// Fully adaptive minimal routing with misrouting, deadlock-free by the
/// negative-hop virtual-channel discipline.
#[derive(Clone)]
pub struct NegativeHop {
    mesh: Mesh2D,
    /// Extra (non-minimal) hops a message may take around faults.
    detour_budget: u32,
}

impl NegativeHop {
    /// Creates the algorithm; `detour_budget` bounds misrouting and hence
    /// the channel count.
    pub fn new(mesh: Mesh2D, detour_budget: u32) -> Self {
        NegativeHop { mesh, detour_budget }
    }

    /// Network diameter of the mesh.
    fn diameter(&self) -> u32 {
        self.mesh.width() + self.mesh.height() - 2
    }

    /// Node colour class (checkerboard).
    pub fn class(mesh: &Mesh2D, n: NodeId) -> u8 {
        let (x, y) = mesh.coords(n);
        ((x + y) % 2) as u8
    }
}

impl RoutingAlgorithm for NegativeHop {
    fn name(&self) -> String {
        "negative-hop".into()
    }

    /// ceil((diameter + budget) / 2) + 1 channels — the diameter-dependent
    /// cost the paper calls out.
    fn num_vcs(&self) -> usize {
        ((self.diameter() + self.detour_budget).div_ceil(2) + 1) as usize
    }

    fn controller(&self, _topo: &dyn Topology, _node: NodeId) -> Box<dyn NodeController> {
        Box::new(NhController {
            mesh: self.mesh.clone(),
            num_vcs: self.num_vcs(),
            max_len: self.diameter() + self.detour_budget,
            hop_limit: max_hops(self.mesh.num_nodes()),
        })
    }
}

struct NhController {
    mesh: Mesh2D,
    num_vcs: usize,
    max_len: u32,
    hop_limit: u32,
}

impl NhController {
    /// The channel a hop through `p` must use, or `None` when the channel
    /// budget is exhausted.
    fn hop_vc(&self, node: NodeId, p: PortId, in_vc: VcId) -> Option<VcId> {
        let nb = self.mesh.neighbor(node, p)?;
        let negative = NegativeHop::class(&self.mesh, nb) == 0;
        let v = in_vc.idx() + usize::from(negative);
        (v < self.num_vcs).then_some(VcId(v as u8))
    }

    fn candidates(
        &self,
        view: &RouterView<'_>,
        dst: NodeId,
        in_port: Option<PortId>,
        in_vc: VcId,
        hops: u32,
    ) -> Vec<(PortId, VcId)> {
        let minimal = self.mesh.minimal_directions(view.node, dst);
        let usable = |p: &PortId| view.link_alive[p.idx()] && Some(*p) != in_port;
        let min_ok: Vec<(PortId, VcId)> = minimal
            .iter()
            .copied()
            .filter(usable)
            .filter_map(|p| self.hop_vc(view.node, p, in_vc).map(|v| (p, v)))
            .collect();
        if !min_ok.is_empty() {
            return min_ok;
        }
        // misroute anywhere (no turn restrictions needed!) while the
        // path-length budget holds
        if hops + self.mesh.min_distance(view.node, dst) + 2 > self.max_len {
            return Vec::new();
        }
        self.mesh
            .minimal_directions(view.node, dst)
            .iter()
            .chain(ftr_topo::mesh::MESH_PORTS.iter())
            .copied()
            .filter(usable)
            .filter_map(|p| self.hop_vc(view.node, p, in_vc).map(|v| (p, v)))
            .collect()
    }
}

impl NodeController for NhController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.node == h.dst {
            return Decision::new(Verdict::Deliver, 1);
        }
        let cands = self.candidates(view, h.dst, in_port, in_vc, h.hops);
        if cands.is_empty() {
            return Decision::new(Verdict::Unroutable, 1);
        }
        let avail = allocatable(view, &cands);
        if let Some((p, v)) = least_loaded(view, &avail) {
            if !self.mesh.minimal_directions(view.node, h.dst).contains(&p) {
                h.misrouted = true;
            }
            Decision::new(Verdict::Route(p, v), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        if view.node == h.dst {
            return Vec::new();
        }
        self.candidates(view, h.dst, in_port, in_vc, h.hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_sim::{Network, Pattern, TrafficSource};
    use ftr_topo::{FaultSet, EAST, NORTH};
    use std::sync::Arc;

    #[test]
    fn vc_count_depends_on_diameter() {
        assert_eq!(NegativeHop::new(Mesh2D::new(4, 4), 0).num_vcs(), 4);
        assert_eq!(NegativeHop::new(Mesh2D::new(8, 8), 0).num_vcs(), 8);
        assert_eq!(NegativeHop::new(Mesh2D::new(8, 8), 6).num_vcs(), 11);
        // versus NAFTA's constant 2 — the paper's §3 trade-off
    }

    #[test]
    fn classes_alternate() {
        let m = Mesh2D::new(4, 4);
        for n in m.nodes() {
            for (_, nb) in m.neighbors(n) {
                assert_ne!(
                    NegativeHop::class(&m, n),
                    NegativeHop::class(&m, nb),
                    "adjacent nodes differ in class"
                );
            }
        }
    }

    #[test]
    fn all_pairs_delivered_minimally() {
        let m = Mesh2D::new(4, 4);
        let algo = NegativeHop::new(m.clone(), 4);
        let mut net = Network::builder(Arc::new(m.clone())).build(&algo).expect("valid config");
        net.set_measuring(true);
        for a in m.nodes() {
            for b in m.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(200_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0);
        assert!(!net.stats.deadlock);
    }

    #[test]
    fn cdg_acyclic_even_when_misrouting() {
        // the whole point: ANY relation is deadlock-free under the
        // negative-hop discipline, faults included, with zero scheme changes
        let m = Mesh2D::new(4, 4);
        let algo = NegativeHop::new(m.clone(), 4);
        for seed in [1u64, 5, 9] {
            let mut faults = FaultSet::new();
            faults.inject_random_links(&m, 4, true, seed);
            let g = crate::conditions::build_cdg(&m, &algo, &faults);
            assert!(!g.has_cycle(), "seed {seed}: {:?}", g.find_cycle());
        }
    }

    #[test]
    fn routes_around_faults_without_state() {
        let m = Mesh2D::new(5, 5);
        let algo = NegativeHop::new(m.clone(), 6);
        let mut net = Network::builder(Arc::new(m.clone())).build(&algo).expect("valid config");
        net.inject_link_fault(m.node_at(1, 1), EAST);
        net.inject_link_fault(m.node_at(2, 2), NORTH);
        // no settle needed: the scheme keeps no fault state at all
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, 3);
        for _ in 0..800 {
            for (s, d, l) in tf.tick(&m, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(50_000));
        assert!(!net.stats.deadlock);
        let total = net.stats.delivered_msgs + net.stats.unroutable_msgs;
        assert!(
            net.stats.delivered_msgs as f64 / total as f64 > 0.97,
            "delivered {} of {total}",
            net.stats.delivered_msgs
        );
    }

    #[test]
    fn condition1_fault_free() {
        let m = Mesh2D::new(4, 4);
        let algo = NegativeHop::new(m.clone(), 2);
        let rep = crate::conditions::check_conditions(&m, &algo, &FaultSet::new(), None);
        assert_eq!(rep.cond1_ok, rep.cond1_pairs, "fully adaptive minimal");
        assert_eq!(rep.cond2_ok, rep.cond2_pairs);
    }
}
