//! Shared helpers for the routing algorithms.

use ftr_sim::routing::RouterView;
use ftr_topo::{PortId, VcId};

/// Livelock guard: messages exceeding this many hops are declared
/// unroutable (§3 "Lifelock Avoidance" — sufficiently long paths must be
/// permitted, but delivery requires finite paths; the bound is generous so
/// only genuinely trapped messages trip it).
pub fn max_hops(num_nodes: usize) -> u32 {
    (4 * num_nodes + 16) as u32
}

/// Among `candidates`, picks the output with the lowest assigned load
/// (NAFTA's adaptivity criterion: prefer the port with the least data still
/// to pass). Ties break to the earliest candidate.
pub fn least_loaded(
    view: &RouterView<'_>,
    candidates: &[(PortId, VcId)],
) -> Option<(PortId, VcId)> {
    candidates.iter().copied().min_by_key(|(p, _)| (view.out_load[p.idx()], p.idx()))
}

/// Filters `(port, vc)` candidates down to those currently allocatable.
pub fn allocatable(view: &RouterView<'_>, candidates: &[(PortId, VcId)]) -> Vec<(PortId, VcId)> {
    candidates
        .iter()
        .copied()
        .filter(|(p, v)| view.link_alive[p.idx()] && view.out_free[p.idx()][v.idx()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_topo::NodeId;

    fn view<'a>(
        out_free: &'a [Vec<bool>],
        out_load: &'a [u32],
        link_alive: &'a [bool],
    ) -> RouterView<'a> {
        RouterView { node: NodeId(0), cycle: 0, out_free, out_load, link_alive }
    }

    #[test]
    fn least_loaded_prefers_low_load() {
        let free = vec![vec![true], vec![true], vec![true]];
        let load = vec![5, 1, 3];
        let alive = vec![true, true, true];
        let v = view(&free, &load, &alive);
        let cands = [(PortId(0), VcId(0)), (PortId(1), VcId(0)), (PortId(2), VcId(0))];
        assert_eq!(least_loaded(&v, &cands), Some((PortId(1), VcId(0))));
    }

    #[test]
    fn allocatable_filters_dead_and_busy() {
        let free = vec![vec![true, false], vec![true, true]];
        let load = vec![0, 0];
        let alive = vec![true, false];
        let v = view(&free, &load, &alive);
        let cands = [(PortId(0), VcId(0)), (PortId(0), VcId(1)), (PortId(1), VcId(0))];
        assert_eq!(allocatable(&v, &cands), vec![(PortId(0), VcId(0))]);
    }

    #[test]
    fn max_hops_scales() {
        assert!(max_hops(64) > 64);
        assert!(max_hops(16) >= 80);
    }
}
